// aqua_serve: an approximate-query HTTP server over the serving engine.
//
// Every query endpoint returns the paper's notion of a query response — an
// approximate answer plus an accuracy measure (§1) — together with the
// server-side response time in nanoseconds:
//
//   GET /hotlist?k=10&beta=3        hot list (§5)
//   GET /frequency?value=42         per-value frequency estimate
//   GET /count_where?low=1&high=99  COUNT(*) WHERE low <= v <= high
//   GET /quantile?q=0.5             estimated q-quantile of the relation
//   GET /distinct                   distinct-values estimate ([FM85])
//   GET /stats                      ingest counters + snapshot-cache stats
//   GET /healthz                    liveness probe
//   POST /ingest                    body: JSON array (or bare list) of values
//   POST /delete                    body: a single value
//
// With one or more --attr flags the multi-attribute catalog is served too,
// under the same footprint budget (--catalog-budget):
//
//   GET /attr/{name}/hotlist?k=10&beta=3
//   GET /attr/{name}/frequency?value=42
//   GET /attr/{name}/count_where?low=1&high=99
//   GET /attr/{name}/quantile?q=0.5
//   GET /attr/{name}/distinct
//   GET /attr/{name}/stats
//   POST /attr/{name}/ingest        body: JSON array of values
//   POST /attr/{name}/delete        body: JSON array of values
//
// Unknown attributes answer 404.
//
// Queries are answered from epoch-cached snapshots (SnapshotCache) and the
// frozen view built alongside each epoch, so a request costs a pointer load
// plus O(k) (hot list) or O(log m) (count_where/quantile) answer
// computation; snapshots trail ingest by at most --cache-stale-ops
// operations or --cache-stale-ms milliseconds.  When the bounded request
// queue is full the server answers 503 instead of queueing without
// bound.  SIGTERM/SIGINT drain gracefully.

#include <signal.h>

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "server/cluster.h"
#include "server/epoch_pump.h"
#include "server/push_client.h"
#include "server/routes.h"
#include "server/server.h"
#include "server/serving_engine.h"
#include "warehouse/catalog.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace aqua {
namespace {

struct ServeFlags {
  HttpServerOptions http;
  ServingEngineOptions engine;
  // --attr name[:weight], repeatable; non-empty enables the catalog routes.
  std::vector<std::pair<std::string, double>> attrs;
  Words catalog_budget = 16384;
  // --preload-zipf N,DOMAIN,ALPHA,SEED
  std::int64_t preload_n = 0;
  std::int64_t preload_domain = 1000;
  double preload_alpha = 1.0;
  std::uint64_t preload_seed = 42;
  bool enable_debug = false;
  // --refresh-mode inline|pump; pump moves every epoch refresh (snapshot
  // re-merge + view build) onto a background thread per refresh domain.
  RefreshMode refresh_mode = RefreshMode::kInline;
  std::int64_t refresh_interval_ms = 20;
  // Cluster mode (--role ingest|aggregator); see src/server/cluster.h.
  ClusterRole role = ClusterRole::kSingle;
  std::string node_id = "node";
  std::string data_dir;
  std::string push_host = "127.0.0.1";
  std::uint16_t push_port = 0;
  std::int64_t push_interval_ms = 200;
  std::int64_t checkpoint_ops = 4096;
  std::int64_t push_retries = 3;
  std::int64_t push_backoff_ms = 50;
  std::int64_t debug_commit_hold_ms = 0;
};

bool ParseInt64(std::string_view s, std::int64_t* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size() && !s.empty();
}

bool ParseDouble(std::string_view s, double* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size() && !s.empty();
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N             listen port (0 = ephemeral; default 0)\n"
      "  --bind ADDR          bind address (default 127.0.0.1)\n"
      "  --reactors N         shared-nothing IO reactors; each owns an\n"
      "                       SO_REUSEPORT listener, epoll instance and\n"
      "                       response cache (default 1)\n"
      "  --workers N          handler threads for mutating routes "
      "(default 4)\n"
      "  --io-backend B       reactor IO backend: epoll | io_uring\n"
      "                       (default epoll; io_uring falls back to epoll\n"
      "                       with a warning when the kernel lacks support)\n"
      "  --pin-cores          pin reactor i to CPU i (mod online cores)\n"
      "  --queue-capacity N   bounded request queue (default 256)\n"
      "  --shards N           ingest shards for the concise sample "
      "(default 8)\n"
      "  --footprint N        per-synopsis footprint bound, words "
      "(default 4096)\n"
      "  --seed N             synopsis RNG seed\n"
      "  --cache-stale-ops N  snapshot refresh after N ingest ops "
      "(default 8192)\n"
      "  --cache-stale-ms N   snapshot refresh after N ms (default 100)\n"
      "  --refresh-mode M     inline | pump (default inline).  pump runs\n"
      "                       every epoch refresh on a background thread,\n"
      "                       so query threads never pay a re-merge\n"
      "  --refresh-interval-ms N  pump wake cadence (default 20)\n"
      "  --attr NAME[:WEIGHT] serve /attr/NAME/... from the catalog "
      "(repeatable)\n"
      "  --catalog-budget N   total words across all --attr synopses "
      "(default 16384)\n"
      "  --preload-zipf N,DOMAIN,ALPHA,SEED  ingest a Zipf stream at "
      "startup\n"
      "  --enable-debug       expose GET /debug/sleep?ms= (testing only)\n"
      "cluster mode:\n"
      "  --role R             single | ingest | aggregator (default "
      "single)\n"
      "  --node-id NAME       this ingest node's stable id\n"
      "  --data-dir DIR       WAL + checkpoint directory (ingest role)\n"
      "  --push-to HOST:PORT  the aggregator's /cluster/push endpoint\n"
      "  --push-interval-ms N background delta push period (default 200)\n"
      "  --checkpoint-ops N   checkpoint after N new ops (0 = never; "
      "default 4096)\n"
      "  --push-retries N     push attempts per frame (default 3)\n"
      "  --push-backoff-ms N  sleep between push attempts (default 50)\n"
      "  --debug-commit-hold-ms N  fault injection: hold between push ack\n"
      "                       and WAL commit marker (testing only)\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, ServeFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    std::int64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      std::exit(0);
    } else if (arg == "--enable-debug") {
      flags->enable_debug = true;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0 || n > 65535) {
        return false;
      }
      flags->http.port = static_cast<std::uint16_t>(n);
    } else if (arg == "--bind") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->http.bind_address = v;
    } else if (arg == "--reactors") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1 || n > 256) {
        return false;
      }
      flags->http.reactors = static_cast<int>(n);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->http.workers = static_cast<int>(n);
    } else if (arg == "--io-backend") {
      const char* v = next();
      if (v == nullptr || !ParseIoBackendKind(v, &flags->http.io_backend)) {
        return false;
      }
    } else if (arg == "--pin-cores") {
      flags->http.pin_reactors = true;
    } else if (arg == "--queue-capacity") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->http.queue_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->engine.shards = static_cast<std::size_t>(n);
    } else if (arg == "--footprint") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 16) return false;
      flags->engine.footprint_bound = n;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n)) return false;
      flags->engine.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--cache-stale-ops") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->engine.cache_max_stale_ops = n;
    } else if (arg == "--cache-stale-ms") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0) return false;
      flags->engine.cache_max_stale_interval = std::chrono::milliseconds(n);
    } else if (arg == "--refresh-mode") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string_view mode(v);
      if (mode == "inline") {
        flags->refresh_mode = RefreshMode::kInline;
      } else if (mode == "pump") {
        flags->refresh_mode = RefreshMode::kPump;
      } else {
        return false;
      }
    } else if (arg == "--refresh-interval-ms") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1 || n > 60000) {
        return false;
      }
      flags->refresh_interval_ms = n;
    } else if (arg == "--attr") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      std::string_view spec(v);
      double weight = 1.0;
      const std::size_t colon = spec.rfind(':');
      if (colon != std::string_view::npos) {
        if (!ParseDouble(spec.substr(colon + 1), &weight) || weight <= 0.0) {
          return false;
        }
        spec = spec.substr(0, colon);
      }
      if (spec.empty()) return false;
      flags->attrs.emplace_back(std::string(spec), weight);
    } else if (arg == "--catalog-budget") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 16) return false;
      flags->catalog_budget = n;
    } else if (arg == "--preload-zipf") {
      const char* v = next();
      if (v == nullptr) return false;
      // N,DOMAIN,ALPHA,SEED
      std::string spec(v);
      std::vector<std::string_view> parts;
      std::string_view rest(spec);
      while (true) {
        const std::size_t comma = rest.find(',');
        parts.push_back(rest.substr(0, comma));
        if (comma == std::string_view::npos) break;
        rest = rest.substr(comma + 1);
      }
      std::int64_t seed = 0;
      if (parts.size() != 4 || !ParseInt64(parts[0], &flags->preload_n) ||
          !ParseInt64(parts[1], &flags->preload_domain) ||
          !ParseDouble(parts[2], &flags->preload_alpha) ||
          !ParseInt64(parts[3], &seed)) {
        return false;
      }
      flags->preload_seed = static_cast<std::uint64_t>(seed);
    } else if (arg == "--role") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string_view role(v);
      if (role == "single") {
        flags->role = ClusterRole::kSingle;
      } else if (role == "ingest") {
        flags->role = ClusterRole::kIngest;
      } else if (role == "aggregator") {
        flags->role = ClusterRole::kAggregator;
      } else {
        return false;
      }
    } else if (arg == "--node-id") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      flags->node_id = v;
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      flags->data_dir = v;
    } else if (arg == "--push-to") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string_view spec(v);
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string_view::npos || colon == 0 ||
          !ParseInt64(spec.substr(colon + 1), &n) || n < 1 || n > 65535) {
        return false;
      }
      flags->push_host = std::string(spec.substr(0, colon));
      flags->push_port = static_cast<std::uint16_t>(n);
    } else if (arg == "--push-interval-ms") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->push_interval_ms = n;
    } else if (arg == "--checkpoint-ops") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0) return false;
      flags->checkpoint_ops = n;
    } else if (arg == "--push-retries") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->push_retries = n;
    } else if (arg == "--push-backoff-ms") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0) return false;
      flags->push_backoff_ms = n;
    } else if (arg == "--debug-commit-hold-ms") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0 || n > 60000) {
        return false;
      }
      flags->debug_commit_hold_ms = n;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return false;
    }
  }
  return true;
}

int ServeMain(int argc, char** argv) {
  ServeFlags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage(argv[0]);
    return 2;
  }

  // Block SIGTERM/SIGINT in every thread; the main thread sigwait()s below
  // so signals become a plain synchronous drain instead of an async handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  signal(SIGPIPE, SIG_IGN);

  if (flags.role != ClusterRole::kSingle) {
    if (!flags.attrs.empty()) {
      std::fprintf(stderr, "cluster roles do not serve --attr catalogs\n");
      return 2;
    }
    // Cluster roles maintain only the mergeable + persistable synopses
    // (traditional + concise): only those can ship as deltas.
    static_cast<SynopsisSelection&>(flags.engine) = ClusterSelection();
  }
  if (flags.role == ClusterRole::kIngest &&
      (flags.data_dir.empty() || flags.push_port == 0)) {
    std::fprintf(stderr,
                 "--role ingest requires --data-dir and --push-to\n");
    return 2;
  }

  const bool pump_mode = flags.refresh_mode == RefreshMode::kPump;
  // In pump mode the query path must never refresh: warmed Get() serves
  // the current epoch by pointer copy and only the pump's SettleCaches()
  // re-merges.
  flags.engine.external_refresh = pump_mode;

  ServingEngine engine(flags.engine);

  std::unique_ptr<DeltaAcceptor> acceptor;
  std::unique_ptr<IngestReplicator> replicator;
  if (flags.role == ClusterRole::kAggregator) {
    acceptor = std::make_unique<DeltaAcceptor>(engine.mutable_registry());
  } else if (flags.role == ClusterRole::kIngest) {
    IngestReplicatorOptions cluster_options;
    cluster_options.node_id = flags.node_id;
    cluster_options.data_dir = flags.data_dir;
    cluster_options.node_seed = flags.engine.seed;
    cluster_options.push_attempts = static_cast<int>(flags.push_retries);
    cluster_options.push_backoff =
        std::chrono::milliseconds(flags.push_backoff_ms);
    cluster_options.debug_commit_hold =
        std::chrono::milliseconds(flags.debug_commit_hold_ms);
    cluster_options.push_transport =
        [host = flags.push_host,
         port = flags.push_port](const std::vector<std::uint8_t>& bytes) {
          return HttpPostBlocking(host, port, "/cluster/push", bytes);
        };
    replicator = std::make_unique<IngestReplicator>(
        engine.mutable_registry(),
        MakeClusterDeltaFactory(flags.engine.footprint_bound),
        std::move(cluster_options));
    const Status init = replicator->Init();
    if (!init.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   std::string(init.message()).c_str());
      return 1;
    }
    const IngestReplicator::Stats recovered = replicator->GetStats();
    std::fprintf(stderr,
                 "node %s recovered: op_count=%lld checkpoint=%d "
                 "wal_ops=%lld pending=%d\n",
                 flags.node_id.c_str(),
                 static_cast<long long>(recovered.op_count),
                 recovered.recovered_checkpoint ? 1 : 0,
                 static_cast<long long>(recovered.recovered_ops),
                 recovered.pending ? 1 : 0);
  }

  if (flags.preload_n > 0) {
    const std::vector<Value> values =
        ZipfValues(flags.preload_n, flags.preload_domain, flags.preload_alpha,
                   flags.preload_seed);
    if (replicator != nullptr) {
      const Status status = replicator->Ingest(values);
      if (!status.ok()) {
        std::fprintf(stderr, "preload failed: %s\n",
                     std::string(status.message()).c_str());
        return 1;
      }
    } else {
      engine.InsertBatch(values);
    }
    std::fprintf(stderr, "preloaded %lld Zipf(%.2f) values over [1, %lld]\n",
                 static_cast<long long>(flags.preload_n), flags.preload_alpha,
                 static_cast<long long>(flags.preload_domain));
  }

  std::unique_ptr<SynopsisCatalog> catalog;
  if (!flags.attrs.empty()) {
    CatalogOptions catalog_options;
    catalog_options.seed = flags.engine.seed;
    catalog_options.cache_max_stale_ops = flags.engine.cache_max_stale_ops;
    catalog_options.cache_max_stale_interval =
        flags.engine.cache_max_stale_interval;
    catalog_options.external_refresh = pump_mode;
    catalog = std::make_unique<SynopsisCatalog>(flags.catalog_budget,
                                                catalog_options);
    for (const auto& [name, weight] : flags.attrs) {
      AttributeOptions attr_options;
      attr_options.weight = weight;
      const Status status = catalog->RegisterAttribute(name, attr_options);
      if (!status.ok()) {
        std::fprintf(stderr, "bad --attr %s: %s\n", name.c_str(),
                     std::string(status.message()).c_str());
        return 2;
      }
    }
    const Status sealed = catalog->Seal();
    if (!sealed.ok()) {
      std::fprintf(stderr, "catalog seal failed: %s\n",
                   std::string(sealed.message()).c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "catalog: %zu attributes under a %lld-word budget\n",
                 catalog->attribute_count(),
                 static_cast<long long>(catalog->budget()));
  }

  // The pump owns one refresh domain per registry: the engine's, plus
  // each catalog attribute's (a slow attribute merge must not delay the
  // stream's cadence).  Domains are registered up front; threads spawn
  // only in pump mode.
  EpochPumpOptions pump_options;
  pump_options.interval = std::chrono::milliseconds(flags.refresh_interval_ms);
  EpochPump pump(pump_options);
  if (pump_mode) {
    pump.AddDomain(
        "stream", [&engine] { return engine.AnyCacheStale(); },
        [&engine] { engine.SettleCaches(); });
    if (catalog != nullptr) {
      for (const auto& [name, weight] : flags.attrs) {
        const SynopsisRegistry* registry = catalog->registry(name);
        if (registry == nullptr) continue;
        pump.AddDomain(
            name, [registry] { return registry->AnyCacheStale(); },
            [registry] { registry->SettleCaches(); });
      }
    }
  }

  HttpServer server(flags.http);
  RouteConfig routes;
  routes.enable_debug = flags.enable_debug;
  routes.replicator = replicator.get();
  routes.refresh_mode = flags.refresh_mode;
  routes.pump = pump_mode ? &pump : nullptr;
  RegisterServingRoutes(server, engine, routes);
  if (catalog != nullptr) {
    RegisterCatalogRoutes(server, *catalog, flags.refresh_mode);
  }
  RegisterQueryRoutes(server, engine, catalog.get(), flags.refresh_mode);
  if (flags.role != ClusterRole::kSingle) {
    ClusterRouteConfig cluster_routes;
    cluster_routes.role = flags.role;
    cluster_routes.acceptor = acceptor.get();
    cluster_routes.replicator = replicator.get();
    RegisterClusterRoutes(server, engine, cluster_routes);
  }
  InstallEpochSource(server, engine, catalog.get(), flags.refresh_mode);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 std::string(status.message()).c_str());
    return 1;
  }
  // The e2e test and scripts parse this exact line to learn the port.
  std::printf("aqua_serve listening on %s:%u\n",
              flags.http.bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (pump_mode) pump.Start();
  if (replicator != nullptr) {
    replicator->StartPusher(
        std::chrono::milliseconds(flags.push_interval_ms),
        flags.checkpoint_ops);
  }

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "signal %d: draining\n", sig);
  pump.Stop();
  if (replicator != nullptr) {
    replicator->StopPusher();
    // Best-effort final flush so a graceful stop ships everything the node
    // observed; a failure just leaves it pending for the next incarnation.
    (void)replicator->PushNow();
  }
  server.Shutdown();
  return 0;
}

}  // namespace
}  // namespace aqua

int main(int argc, char** argv) { return aqua::ServeMain(argc, argv); }
