// aqua_serve: an approximate-query HTTP server over the serving engine.
//
// Every query endpoint returns the paper's notion of a query response — an
// approximate answer plus an accuracy measure (§1) — together with the
// server-side response time in nanoseconds:
//
//   GET /hotlist?k=10&beta=3        hot list (§5)
//   GET /frequency?value=42         per-value frequency estimate
//   GET /count_where?low=1&high=99  COUNT(*) WHERE low <= v <= high
//   GET /quantile?q=0.5             estimated q-quantile of the relation
//   GET /distinct                   distinct-values estimate ([FM85])
//   GET /stats                      ingest counters + snapshot-cache stats
//   GET /healthz                    liveness probe
//   POST /ingest                    body: JSON array (or bare list) of values
//   POST /delete                    body: a single value
//
// With one or more --attr flags the multi-attribute catalog is served too,
// under the same footprint budget (--catalog-budget):
//
//   GET /attr/{name}/hotlist?k=10&beta=3
//   GET /attr/{name}/frequency?value=42
//   GET /attr/{name}/count_where?low=1&high=99
//   GET /attr/{name}/quantile?q=0.5
//   GET /attr/{name}/distinct
//   GET /attr/{name}/stats
//   POST /attr/{name}/ingest        body: JSON array of values
//   POST /attr/{name}/delete        body: JSON array of values
//
// Unknown attributes answer 404.
//
// Queries are answered from epoch-cached snapshots (SnapshotCache) and the
// frozen view built alongside each epoch, so a request costs a pointer load
// plus O(k) (hot list) or O(log m) (count_where/quantile) answer
// computation; snapshots trail ingest by at most --cache-stale-ops
// operations or --cache-stale-ms milliseconds.  When the bounded request
// queue is full the server answers 503 instead of queueing without
// bound.  SIGTERM/SIGINT drain gracefully.

#include <signal.h>

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "server/json.h"
#include "server/server.h"
#include "server/serving_engine.h"
#include "warehouse/catalog.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace aqua {
namespace {

struct ServeFlags {
  HttpServerOptions http;
  ServingEngineOptions engine;
  // --attr name[:weight], repeatable; non-empty enables the catalog routes.
  std::vector<std::pair<std::string, double>> attrs;
  Words catalog_budget = 16384;
  // --preload-zipf N,DOMAIN,ALPHA,SEED
  std::int64_t preload_n = 0;
  std::int64_t preload_domain = 1000;
  double preload_alpha = 1.0;
  std::uint64_t preload_seed = 42;
  bool enable_debug = false;
};

bool ParseInt64(std::string_view s, std::int64_t* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size() && !s.empty();
}

bool ParseDouble(std::string_view s, double* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size() && !s.empty();
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N             listen port (0 = ephemeral; default 0)\n"
      "  --bind ADDR          bind address (default 127.0.0.1)\n"
      "  --reactors N         shared-nothing IO reactors; each owns an\n"
      "                       SO_REUSEPORT listener, epoll instance and\n"
      "                       response cache (default 1)\n"
      "  --workers N          handler threads for mutating routes "
      "(default 4)\n"
      "  --queue-capacity N   bounded request queue (default 256)\n"
      "  --shards N           ingest shards for the concise sample "
      "(default 8)\n"
      "  --footprint N        per-synopsis footprint bound, words "
      "(default 4096)\n"
      "  --seed N             synopsis RNG seed\n"
      "  --cache-stale-ops N  snapshot refresh after N ingest ops "
      "(default 8192)\n"
      "  --cache-stale-ms N   snapshot refresh after N ms (default 100)\n"
      "  --attr NAME[:WEIGHT] serve /attr/NAME/... from the catalog "
      "(repeatable)\n"
      "  --catalog-budget N   total words across all --attr synopses "
      "(default 16384)\n"
      "  --preload-zipf N,DOMAIN,ALPHA,SEED  ingest a Zipf stream at "
      "startup\n"
      "  --enable-debug       expose GET /debug/sleep?ms= (testing only)\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, ServeFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    std::int64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      std::exit(0);
    } else if (arg == "--enable-debug") {
      flags->enable_debug = true;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0 || n > 65535) {
        return false;
      }
      flags->http.port = static_cast<std::uint16_t>(n);
    } else if (arg == "--bind") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->http.bind_address = v;
    } else if (arg == "--reactors") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1 || n > 256) {
        return false;
      }
      flags->http.reactors = static_cast<int>(n);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->http.workers = static_cast<int>(n);
    } else if (arg == "--queue-capacity") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->http.queue_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->engine.shards = static_cast<std::size_t>(n);
    } else if (arg == "--footprint") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 16) return false;
      flags->engine.footprint_bound = n;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n)) return false;
      flags->engine.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--cache-stale-ops") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->engine.cache_max_stale_ops = n;
    } else if (arg == "--cache-stale-ms") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0) return false;
      flags->engine.cache_max_stale_interval = std::chrono::milliseconds(n);
    } else if (arg == "--attr") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      std::string_view spec(v);
      double weight = 1.0;
      const std::size_t colon = spec.rfind(':');
      if (colon != std::string_view::npos) {
        if (!ParseDouble(spec.substr(colon + 1), &weight) || weight <= 0.0) {
          return false;
        }
        spec = spec.substr(0, colon);
      }
      if (spec.empty()) return false;
      flags->attrs.emplace_back(std::string(spec), weight);
    } else if (arg == "--catalog-budget") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 16) return false;
      flags->catalog_budget = n;
    } else if (arg == "--preload-zipf") {
      const char* v = next();
      if (v == nullptr) return false;
      // N,DOMAIN,ALPHA,SEED
      std::string spec(v);
      std::vector<std::string_view> parts;
      std::string_view rest(spec);
      while (true) {
        const std::size_t comma = rest.find(',');
        parts.push_back(rest.substr(0, comma));
        if (comma == std::string_view::npos) break;
        rest = rest.substr(comma + 1);
      }
      std::int64_t seed = 0;
      if (parts.size() != 4 || !ParseInt64(parts[0], &flags->preload_n) ||
          !ParseInt64(parts[1], &flags->preload_domain) ||
          !ParseDouble(parts[2], &flags->preload_alpha) ||
          !ParseInt64(parts[3], &seed)) {
        return false;
      }
      flags->preload_seed = static_cast<std::uint64_t>(seed);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return false;
    }
  }
  return true;
}

HttpResponse JsonOk(std::string body) {
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse JsonError(int code, std::string_view message) {
  HttpResponse response;
  response.status_code = code;
  JsonWriter w;
  w.BeginObject().Key("error").String(message).EndObject();
  response.body = w.TakeString();
  return response;
}

void WriteEstimate(JsonWriter& w, const QueryResponse<Estimate>& response) {
  w.BeginObject();
  w.Key("estimate").Double(response.answer.value);
  w.Key("ci_low").Double(response.answer.ci_low);
  w.Key("ci_high").Double(response.answer.ci_high);
  w.Key("confidence").Double(response.answer.confidence);
  w.Key("sample_points").Int(response.answer.sample_points);
  w.Key("method").String(response.method);
  w.Key("response_ns").Int(response.response_ns);
  w.EndObject();
}

void WriteHotList(JsonWriter& w, const QueryResponse<HotList>& response) {
  w.BeginObject();
  w.Key("items").BeginArray();
  for (const HotListItem& item : response.answer) {
    w.BeginObject();
    w.Key("value").Int(item.value);
    w.Key("estimated_count").Double(item.estimated_count);
    w.Key("synopsis_count").Int(item.synopsis_count);
    w.EndObject();
  }
  w.EndArray();
  w.Key("method").String(response.method);
  w.Key("response_ns").Int(response.response_ns);
  w.EndObject();
}

void WriteSynopsisStats(JsonWriter& w,
                        const std::vector<SynopsisHandleStats>& synopses) {
  w.Key("synopses").BeginArray();
  for (const SynopsisHandleStats& s : synopses) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("valid").Bool(s.valid);
    w.Key("cached").Bool(s.cached);
    w.Key("sharded").Bool(s.sharded);
    w.Key("footprint").Int(s.footprint);
    w.Key("epoch").UInt(s.epoch);
    w.Key("has_view").Bool(s.has_view);
    w.Key("view_build_ns").Int(s.view_build_ns);
    w.Key("cache").BeginObject();
    w.Key("hits").Int(s.cache.hits);
    w.Key("refreshes").Int(s.cache.refreshes);
    w.Key("stale_served").Int(s.cache.stale_served);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
}

/// Parses GET hot-list/frequency/count_where parameters shared by the
/// engine and catalog handlers.  Each returns nullopt after filling *error
/// with a 400 response.
std::optional<HotListQuery> ParseHotListQuery(const HttpRequest& request,
                                              HttpResponse* error) {
  const auto k = request.QueryInt("k", 10);
  const auto beta = request.QueryDouble("beta", 3.0);
  if (!k.has_value() || *k < 0 || !beta.has_value() || *beta < 0) {
    *error = JsonError(400, "k and beta must be nonnegative numbers");
    return std::nullopt;
  }
  HotListQuery query;
  query.k = *k;
  query.beta = *beta;
  return query;
}

struct RangeQuery {
  ValueRange range;
  double confidence = 0.95;
};

std::optional<RangeQuery> ParseRangeQuery(const HttpRequest& request,
                                          HttpResponse* error) {
  const auto low =
      request.QueryInt("low", std::numeric_limits<std::int64_t>::min());
  const auto high =
      request.QueryInt("high", std::numeric_limits<std::int64_t>::max());
  const auto confidence = request.QueryDouble("confidence", 0.95);
  if (!low.has_value() || !high.has_value() || !confidence.has_value() ||
      *confidence <= 0.0 || *confidence >= 1.0) {
    *error = JsonError(400,
                       "malformed ?low=/?high=/?confidence= (confidence in "
                       "(0,1))");
    return std::nullopt;
  }
  RangeQuery query;
  query.range.low = *low;
  query.range.high = *high;
  query.confidence = *confidence;
  return query;
}

struct QuantileQueryParams {
  double q = 0.5;
  double confidence = 0.95;
};

std::optional<QuantileQueryParams> ParseQuantileQuery(
    const HttpRequest& request, HttpResponse* error) {
  const auto q = request.QueryDouble("q", 0.5);
  const auto confidence = request.QueryDouble("confidence", 0.95);
  if (!q.has_value() || *q < 0.0 || *q > 1.0 || !confidence.has_value() ||
      *confidence <= 0.0 || *confidence >= 1.0) {
    *error = JsonError(
        400, "malformed ?q=/?confidence= (q in [0,1], confidence in (0,1))");
    return std::nullopt;
  }
  QuantileQueryParams params;
  params.q = *q;
  params.confidence = *confidence;
  return params;
}

void RegisterRoutes(HttpServer& server, ServingEngine& engine,
                    const ServeFlags& flags) {
  // Query routes are cacheable: within one serving epoch the synopsis is
  // frozen, so identical requests have byte-identical responses.
  RouteOptions cacheable;
  cacheable.cacheable = true;

  server.Route("GET", "/healthz", [](const HttpRequest&) {
    return JsonOk("{\"ok\":true}");
  });

  server.Route(
      "GET", "/hotlist",
      [&engine](const HttpRequest& request) {
        HttpResponse error;
        const auto query = ParseHotListQuery(request, &error);
        if (!query.has_value()) return error;
        JsonWriter w;
        WriteHotList(w, engine.HotListAnswer(*query));
        return JsonOk(w.TakeString());
      },
      cacheable);

  server.Route(
      "GET", "/frequency",
      [&engine](const HttpRequest& request) {
        const auto value = request.QueryInt("value", /*fallback=*/0);
        if (!value.has_value() || !request.QueryParam("value").has_value()) {
          return JsonError(400, "missing or malformed ?value=");
        }
        JsonWriter w;
        WriteEstimate(w, engine.FrequencyAnswer(*value));
        return JsonOk(w.TakeString());
      },
      cacheable);

  server.Route(
      "GET", "/count_where",
      [&engine](const HttpRequest& request) {
        HttpResponse error;
        const auto query = ParseRangeQuery(request, &error);
        if (!query.has_value()) return error;
        // The range overload answers in O(log m) from the epoch's frozen
        // view when one exists (identical estimate to the predicate form).
        JsonWriter w;
        WriteEstimate(w,
                      engine.CountWhereAnswer(query->range, query->confidence));
        return JsonOk(w.TakeString());
      },
      cacheable);

  server.Route(
      "GET", "/quantile",
      [&engine](const HttpRequest& request) {
        HttpResponse error;
        const auto params = ParseQuantileQuery(request, &error);
        if (!params.has_value()) return error;
        JsonWriter w;
        WriteEstimate(w,
                      engine.QuantileAnswer(params->q, params->confidence));
        return JsonOk(w.TakeString());
      },
      cacheable);

  server.Route(
      "GET", "/distinct",
      [&engine](const HttpRequest&) {
        JsonWriter w;
        WriteEstimate(w, engine.DistinctValuesAnswer());
        return JsonOk(w.TakeString());
      },
      cacheable);

  // /stats is deliberately NOT cacheable: it reports live counters.
  server.Route("GET", "/stats", [&engine, &server](const HttpRequest&) {
    const ServingEngine::Stats stats = engine.GetStats();
    const HttpServer::ServerStats http = server.Stats();
    JsonWriter w;
    w.BeginObject();
    w.Key("inserts").Int(stats.inserts);
    w.Key("deletes").Int(stats.deletes);
    w.Key("concise_valid").Bool(stats.concise_valid);
    w.Key("shards").UInt(stats.shards);
    w.Key("footprint_bound").Int(stats.footprint_bound);
    w.Key("epoch").UInt(stats.epoch);
    WriteSynopsisStats(w, stats.synopses);
    w.Key("http").BeginObject();
    w.Key("accepted").Int(http.accepted);
    w.Key("requests").Int(http.requests);
    w.Key("responses_503").Int(http.responses_503);
    w.Key("bad_requests").Int(http.bad_requests);
    w.Key("queue_depth").UInt(http.queue_depth);
    w.Key("reactors").UInt(http.reactors);
    w.Key("cache_hits").Int(http.cache_hits);
    w.Key("cache_misses").Int(http.cache_misses);
    w.Key("cache_bypass").Int(http.cache_bypass);
    w.Key("cache_invalidations").Int(http.cache_invalidations);
    w.EndObject();
    w.EndObject();
    return JsonOk(w.TakeString());
  });

  server.Route("POST", "/ingest", [&engine](const HttpRequest& request) {
    Result<std::vector<Value>> values = ParseValueArray(request.body);
    if (!values.ok()) {
      return JsonError(400, values.status().message());
    }
    engine.InsertBatch(values.ValueOrDie());
    JsonWriter w;
    w.BeginObject();
    w.Key("ingested").UInt(values.ValueOrDie().size());
    w.Key("total_inserts").Int(engine.observed_inserts());
    w.EndObject();
    return JsonOk(w.TakeString());
  });

  server.Route("POST", "/delete", [&engine](const HttpRequest& request) {
    Result<std::vector<Value>> values = ParseValueArray(request.body);
    if (!values.ok()) {
      return JsonError(400, values.status().message());
    }
    for (Value v : values.ValueOrDie()) {
      const Status status = engine.Delete(v);
      if (!status.ok()) return JsonError(409, status.message());
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("deleted").UInt(values.ValueOrDie().size());
    w.Key("total_deletes").Int(engine.observed_deletes());
    w.EndObject();
    return JsonOk(w.TakeString());
  });

  if (flags.enable_debug) {
    // Deterministic worker occupancy for overload tests: holds a worker
    // thread for ?ms= milliseconds before answering.  Explicitly
    // worker-dispatched — a blocking GET must never stall a reactor.
    RouteOptions on_worker;
    on_worker.dispatch = RouteOptions::Dispatch::kWorker;
    server.Route(
        "GET", "/debug/sleep",
        [](const HttpRequest& request) {
          const auto ms = request.QueryInt("ms", 100);
          if (!ms.has_value() || *ms < 0 || *ms > 10000) {
            return JsonError(400, "ms must be in [0, 10000]");
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(*ms));
          return JsonOk("{\"slept_ms\":" + std::to_string(*ms) + "}");
        },
        on_worker);
  }
}

/// Maps a catalog Result to the HTTP layer: NotFound (unknown attribute)
/// answers 404, everything else 500.
HttpResponse CatalogError(const Status& status) {
  return JsonError(status.code() == StatusCode::kNotFound ? 404 : 500,
                   status.message());
}

HttpResponse HandleCatalogGet(const SynopsisCatalog& catalog,
                              const std::string& attribute,
                              std::string_view endpoint,
                              const HttpRequest& request) {
  if (endpoint == "hotlist") {
    HttpResponse error;
    const auto query = ParseHotListQuery(request, &error);
    if (!query.has_value()) return error;
    const auto response = catalog.HotListFor(attribute, *query);
    if (!response.ok()) return CatalogError(response.status());
    JsonWriter w;
    WriteHotList(w, response.ValueOrDie());
    return JsonOk(w.TakeString());
  }
  if (endpoint == "frequency") {
    const auto value = request.QueryInt("value", /*fallback=*/0);
    if (!value.has_value() || !request.QueryParam("value").has_value()) {
      return JsonError(400, "missing or malformed ?value=");
    }
    const auto response = catalog.FrequencyFor(attribute, *value);
    if (!response.ok()) return CatalogError(response.status());
    JsonWriter w;
    WriteEstimate(w, response.ValueOrDie());
    return JsonOk(w.TakeString());
  }
  if (endpoint == "count_where") {
    HttpResponse error;
    const auto query = ParseRangeQuery(request, &error);
    if (!query.has_value()) return error;
    const auto response =
        catalog.CountWhereFor(attribute, query->range, query->confidence);
    if (!response.ok()) return CatalogError(response.status());
    JsonWriter w;
    WriteEstimate(w, response.ValueOrDie());
    return JsonOk(w.TakeString());
  }
  if (endpoint == "quantile") {
    HttpResponse error;
    const auto params = ParseQuantileQuery(request, &error);
    if (!params.has_value()) return error;
    const auto response =
        catalog.QuantileFor(attribute, params->q, params->confidence);
    if (!response.ok()) return CatalogError(response.status());
    JsonWriter w;
    WriteEstimate(w, response.ValueOrDie());
    return JsonOk(w.TakeString());
  }
  if (endpoint == "distinct") {
    const auto response = catalog.DistinctFor(attribute);
    if (!response.ok()) return CatalogError(response.status());
    JsonWriter w;
    WriteEstimate(w, response.ValueOrDie());
    return JsonOk(w.TakeString());
  }
  if (endpoint == "stats") {
    const auto stats = catalog.StatsFor(attribute);
    if (!stats.ok()) return CatalogError(stats.status());
    const SynopsisRegistry* registry = catalog.registry(attribute);
    JsonWriter w;
    w.BeginObject();
    w.Key("attribute").String(attribute);
    w.Key("inserts").Int(stats.ValueOrDie().inserts);
    w.Key("deletes").Int(stats.ValueOrDie().deletes);
    w.Key("share_words").Int(catalog.ShareOf(attribute));
    w.Key("epoch").UInt(registry != nullptr ? registry->ServingEpoch() : 0);
    WriteSynopsisStats(w, stats.ValueOrDie().synopses);
    w.EndObject();
    return JsonOk(w.TakeString());
  }
  return JsonError(404, "no such endpoint");
}

HttpResponse HandleCatalogPost(SynopsisCatalog& catalog,
                               const std::string& attribute,
                               std::string_view endpoint,
                               const HttpRequest& request) {
  if (endpoint != "ingest" && endpoint != "delete") {
    return JsonError(404, "no such endpoint");
  }
  Result<std::vector<Value>> values = ParseValueArray(request.body);
  if (!values.ok()) return JsonError(400, values.status().message());
  if (endpoint == "ingest") {
    const Status status = catalog.InsertBatch(attribute, values.ValueOrDie());
    if (!status.ok()) return CatalogError(status);
    JsonWriter w;
    w.BeginObject();
    w.Key("attribute").String(attribute);
    w.Key("ingested").UInt(values.ValueOrDie().size());
    w.EndObject();
    return JsonOk(w.TakeString());
  }
  for (Value v : values.ValueOrDie()) {
    StreamOp op;
    op.kind = StreamOp::Kind::kDelete;
    op.value = v;
    const Status status = catalog.Observe(attribute, op);
    if (!status.ok()) {
      return status.code() == StatusCode::kNotFound
                 ? CatalogError(status)
                 : JsonError(409, status.message());
    }
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("attribute").String(attribute);
  w.Key("deleted").UInt(values.ValueOrDie().size());
  w.EndObject();
  return JsonOk(w.TakeString());
}

/// Serves /attr/{name}/{endpoint} from the sealed catalog.  The path split
/// happens here so one prefix route covers every attribute.
void RegisterCatalogRoutes(HttpServer& server, SynopsisCatalog& catalog) {
  auto split = [](const std::string& path)
      -> std::optional<std::pair<std::string, std::string>> {
    constexpr std::string_view kPrefix = "/attr/";
    std::string_view rest(path);
    rest.remove_prefix(kPrefix.size());
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos || slash == 0) return std::nullopt;
    const std::string_view endpoint = rest.substr(slash + 1);
    if (endpoint.empty() ||
        endpoint.find('/') != std::string_view::npos) {
      return std::nullopt;
    }
    return std::make_pair(std::string(rest.substr(0, slash)),
                          std::string(endpoint));
  };

  // Catalog queries are cacheable like the engine's, except the live
  // /attr/{name}/stats endpoint, which the predicate carves out.
  RouteOptions cacheable;
  cacheable.cacheable = true;
  cacheable.cacheable_if = [](const HttpRequest& request) {
    return !request.path.ends_with("/stats");
  };

  server.RoutePrefix(
      "GET", "/attr/",
      [&catalog, split](const HttpRequest& request) {
        const auto parts = split(request.path);
        if (!parts.has_value()) {
          return JsonError(404, "expected /attr/{name}/{endpoint}");
        }
        return HandleCatalogGet(catalog, parts->first, parts->second,
                                request);
      },
      cacheable);
  server.RoutePrefix(
      "POST", "/attr/", [&catalog, split](const HttpRequest& request) {
        const auto parts = split(request.path);
        if (!parts.has_value()) {
          return JsonError(404, "expected /attr/{name}/{endpoint}");
        }
        return HandleCatalogPost(catalog, parts->first, parts->second,
                                 request);
      });
}

int ServeMain(int argc, char** argv) {
  ServeFlags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage(argv[0]);
    return 2;
  }

  // Block SIGTERM/SIGINT in every thread; the main thread sigwait()s below
  // so signals become a plain synchronous drain instead of an async handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  signal(SIGPIPE, SIG_IGN);

  ServingEngine engine(flags.engine);
  if (flags.preload_n > 0) {
    const std::vector<Value> values =
        ZipfValues(flags.preload_n, flags.preload_domain, flags.preload_alpha,
                   flags.preload_seed);
    engine.InsertBatch(values);
    std::fprintf(stderr, "preloaded %lld Zipf(%.2f) values over [1, %lld]\n",
                 static_cast<long long>(flags.preload_n), flags.preload_alpha,
                 static_cast<long long>(flags.preload_domain));
  }

  std::unique_ptr<SynopsisCatalog> catalog;
  if (!flags.attrs.empty()) {
    CatalogOptions catalog_options;
    catalog_options.seed = flags.engine.seed;
    catalog_options.cache_max_stale_ops = flags.engine.cache_max_stale_ops;
    catalog_options.cache_max_stale_interval =
        flags.engine.cache_max_stale_interval;
    catalog = std::make_unique<SynopsisCatalog>(flags.catalog_budget,
                                                catalog_options);
    for (const auto& [name, weight] : flags.attrs) {
      AttributeOptions attr_options;
      attr_options.weight = weight;
      const Status status = catalog->RegisterAttribute(name, attr_options);
      if (!status.ok()) {
        std::fprintf(stderr, "bad --attr %s: %s\n", name.c_str(),
                     std::string(status.message()).c_str());
        return 2;
      }
    }
    const Status sealed = catalog->Seal();
    if (!sealed.ok()) {
      std::fprintf(stderr, "catalog seal failed: %s\n",
                   std::string(sealed.message()).c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "catalog: %zu attributes under a %lld-word budget\n",
                 catalog->attribute_count(),
                 static_cast<long long>(catalog->budget()));
  }

  HttpServer server(flags.http);
  RegisterRoutes(server, engine, flags);
  if (catalog != nullptr) RegisterCatalogRoutes(server, *catalog);
  // The response caches key on the combined serving epoch of everything
  // this process serves; nullopt (some snapshot cache stale) forces a miss
  // so the handler runs, refreshes, and advances the epoch — cached bytes
  // are never fresher-looking than the staleness bounds allow.
  SynopsisCatalog* catalog_ptr = catalog.get();
  server.SetEpochSource(
      [&engine, catalog_ptr]() -> std::optional<std::uint64_t> {
        // Queries only refresh the synopsis they touch, so stale caches on
        // other synopses would keep the epoch unsettled forever; settle
        // them here (at most one merge per handle per staleness window).
        if (engine.AnyCacheStale()) engine.SettleCaches();
        if (catalog_ptr != nullptr && catalog_ptr->AnyCacheStale()) {
          catalog_ptr->SettleCaches();
        }
        if (engine.AnyCacheStale() ||
            (catalog_ptr != nullptr && catalog_ptr->AnyCacheStale())) {
          return std::nullopt;  // a refresh failed; serve uncached
        }
        std::uint64_t epoch = engine.ServingEpoch();
        if (catalog_ptr != nullptr) epoch += catalog_ptr->ServingEpoch();
        return epoch;
      });
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 std::string(status.message()).c_str());
    return 1;
  }
  // The e2e test and scripts parse this exact line to learn the port.
  std::printf("aqua_serve listening on %s:%u\n",
              flags.http.bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "signal %d: draining\n", sig);
  server.Shutdown();
  return 0;
}

}  // namespace
}  // namespace aqua

int main(int argc, char** argv) { return aqua::ServeMain(argc, argv); }
