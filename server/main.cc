// aqua_serve: an approximate-query HTTP server over the serving engine.
//
// Every query endpoint returns the paper's notion of a query response — an
// approximate answer plus an accuracy measure (§1) — together with the
// server-side response time in nanoseconds:
//
//   GET /hotlist?k=10&beta=3        hot list (§5)
//   GET /frequency?value=42         per-value frequency estimate
//   GET /count_where?low=1&high=99  COUNT(*) WHERE low <= v <= high
//   GET /distinct                   distinct-values estimate ([FM85])
//   GET /stats                      ingest counters + snapshot-cache stats
//   GET /healthz                    liveness probe
//   POST /ingest                    body: JSON array (or bare list) of values
//   POST /delete                    body: a single value
//
// Queries are answered from epoch-cached snapshots (SnapshotCache), so a
// request costs a pointer load plus the answer computation; snapshots trail
// ingest by at most --cache-stale-ops operations or --cache-stale-ms
// milliseconds.  When the bounded request queue is full the server answers
// 503 instead of queueing without bound.  SIGTERM/SIGINT drain gracefully.

#include <signal.h>

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/json.h"
#include "server/server.h"
#include "server/serving_engine.h"
#include "workload/generators.h"

namespace aqua {
namespace {

struct ServeFlags {
  HttpServerOptions http;
  ServingEngineOptions engine;
  // --preload-zipf N,DOMAIN,ALPHA,SEED
  std::int64_t preload_n = 0;
  std::int64_t preload_domain = 1000;
  double preload_alpha = 1.0;
  std::uint64_t preload_seed = 42;
  bool enable_debug = false;
};

bool ParseInt64(std::string_view s, std::int64_t* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size() && !s.empty();
}

bool ParseDouble(std::string_view s, double* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size() && !s.empty();
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N             listen port (0 = ephemeral; default 0)\n"
      "  --bind ADDR          bind address (default 127.0.0.1)\n"
      "  --workers N          handler threads (default 4)\n"
      "  --queue-capacity N   bounded request queue (default 256)\n"
      "  --shards N           ingest shards for the concise sample "
      "(default 8)\n"
      "  --footprint N        per-synopsis footprint bound, words "
      "(default 4096)\n"
      "  --seed N             synopsis RNG seed\n"
      "  --cache-stale-ops N  snapshot refresh after N ingest ops "
      "(default 8192)\n"
      "  --cache-stale-ms N   snapshot refresh after N ms (default 100)\n"
      "  --preload-zipf N,DOMAIN,ALPHA,SEED  ingest a Zipf stream at "
      "startup\n"
      "  --enable-debug       expose GET /debug/sleep?ms= (testing only)\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, ServeFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    std::int64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      std::exit(0);
    } else if (arg == "--enable-debug") {
      flags->enable_debug = true;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0 || n > 65535) {
        return false;
      }
      flags->http.port = static_cast<std::uint16_t>(n);
    } else if (arg == "--bind") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->http.bind_address = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->http.workers = static_cast<int>(n);
    } else if (arg == "--queue-capacity") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->http.queue_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->engine.shards = static_cast<std::size_t>(n);
    } else if (arg == "--footprint") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 16) return false;
      flags->engine.footprint_bound = n;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n)) return false;
      flags->engine.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--cache-stale-ops") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return false;
      flags->engine.cache_max_stale_ops = n;
    } else if (arg == "--cache-stale-ms") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0) return false;
      flags->engine.cache_max_stale_interval = std::chrono::milliseconds(n);
    } else if (arg == "--preload-zipf") {
      const char* v = next();
      if (v == nullptr) return false;
      // N,DOMAIN,ALPHA,SEED
      std::string spec(v);
      std::vector<std::string_view> parts;
      std::string_view rest(spec);
      while (true) {
        const std::size_t comma = rest.find(',');
        parts.push_back(rest.substr(0, comma));
        if (comma == std::string_view::npos) break;
        rest = rest.substr(comma + 1);
      }
      std::int64_t seed = 0;
      if (parts.size() != 4 || !ParseInt64(parts[0], &flags->preload_n) ||
          !ParseInt64(parts[1], &flags->preload_domain) ||
          !ParseDouble(parts[2], &flags->preload_alpha) ||
          !ParseInt64(parts[3], &seed)) {
        return false;
      }
      flags->preload_seed = static_cast<std::uint64_t>(seed);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return false;
    }
  }
  return true;
}

HttpResponse JsonOk(std::string body) {
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse JsonError(int code, std::string_view message) {
  HttpResponse response;
  response.status_code = code;
  JsonWriter w;
  w.BeginObject().Key("error").String(message).EndObject();
  response.body = w.TakeString();
  return response;
}

void WriteEstimate(JsonWriter& w, const QueryResponse<Estimate>& response) {
  w.BeginObject();
  w.Key("estimate").Double(response.answer.value);
  w.Key("ci_low").Double(response.answer.ci_low);
  w.Key("ci_high").Double(response.answer.ci_high);
  w.Key("confidence").Double(response.answer.confidence);
  w.Key("sample_points").Int(response.answer.sample_points);
  w.Key("method").String(response.method);
  w.Key("response_ns").Int(response.response_ns);
  w.EndObject();
}

void RegisterRoutes(HttpServer& server, ServingEngine& engine,
                    const ServeFlags& flags) {
  server.Route("GET", "/healthz", [](const HttpRequest&) {
    return JsonOk("{\"ok\":true}");
  });

  server.Route("GET", "/hotlist", [&engine](const HttpRequest& request) {
    const auto k = request.QueryInt("k", 10);
    const auto beta = request.QueryDouble("beta", 3.0);
    if (!k.has_value() || *k < 0 || !beta.has_value() || *beta < 0) {
      return JsonError(400, "k and beta must be nonnegative numbers");
    }
    HotListQuery query;
    query.k = *k;
    query.beta = *beta;
    const QueryResponse<HotList> response = engine.HotListAnswer(query);
    JsonWriter w;
    w.BeginObject();
    w.Key("items").BeginArray();
    for (const HotListItem& item : response.answer) {
      w.BeginObject();
      w.Key("value").Int(item.value);
      w.Key("estimated_count").Double(item.estimated_count);
      w.Key("synopsis_count").Int(item.synopsis_count);
      w.EndObject();
    }
    w.EndArray();
    w.Key("method").String(response.method);
    w.Key("response_ns").Int(response.response_ns);
    w.EndObject();
    return JsonOk(w.TakeString());
  });

  server.Route("GET", "/frequency", [&engine](const HttpRequest& request) {
    const auto value = request.QueryInt("value", /*fallback=*/0);
    if (!value.has_value() || !request.QueryParam("value").has_value()) {
      return JsonError(400, "missing or malformed ?value=");
    }
    JsonWriter w;
    WriteEstimate(w, engine.FrequencyAnswer(*value));
    return JsonOk(w.TakeString());
  });

  server.Route("GET", "/count_where", [&engine](const HttpRequest& request) {
    const auto low = request.QueryInt(
        "low", std::numeric_limits<std::int64_t>::min());
    const auto high = request.QueryInt(
        "high", std::numeric_limits<std::int64_t>::max());
    const auto confidence = request.QueryDouble("confidence", 0.95);
    if (!low.has_value() || !high.has_value() || !confidence.has_value() ||
        *confidence <= 0.0 || *confidence >= 1.0) {
      return JsonError(400,
                       "malformed ?low=/?high=/?confidence= (confidence in "
                       "(0,1))");
    }
    const Value lo = *low;
    const Value hi = *high;
    const QueryResponse<Estimate> response = engine.CountWhereAnswer(
        [lo, hi](Value v) { return v >= lo && v <= hi; }, *confidence);
    JsonWriter w;
    WriteEstimate(w, response);
    return JsonOk(w.TakeString());
  });

  server.Route("GET", "/distinct", [&engine](const HttpRequest&) {
    JsonWriter w;
    WriteEstimate(w, engine.DistinctValuesAnswer());
    return JsonOk(w.TakeString());
  });

  server.Route("GET", "/stats", [&engine, &server](const HttpRequest&) {
    const ServingEngine::Stats stats = engine.GetStats();
    const HttpServer::ServerStats http = server.Stats();
    JsonWriter w;
    w.BeginObject();
    w.Key("inserts").Int(stats.inserts);
    w.Key("deletes").Int(stats.deletes);
    w.Key("concise_valid").Bool(stats.concise_valid);
    w.Key("shards").UInt(stats.shards);
    w.Key("footprint_bound").Int(stats.footprint_bound);
    w.Key("concise_cache").BeginObject();
    w.Key("epoch").UInt(stats.concise_epoch);
    w.Key("hits").Int(stats.concise_cache.hits);
    w.Key("refreshes").Int(stats.concise_cache.refreshes);
    w.Key("stale_served").Int(stats.concise_cache.stale_served);
    w.EndObject();
    w.Key("counting_cache").BeginObject();
    w.Key("epoch").UInt(stats.counting_epoch);
    w.Key("hits").Int(stats.counting_cache.hits);
    w.Key("refreshes").Int(stats.counting_cache.refreshes);
    w.Key("stale_served").Int(stats.counting_cache.stale_served);
    w.EndObject();
    w.Key("http").BeginObject();
    w.Key("accepted").Int(http.accepted);
    w.Key("requests").Int(http.requests);
    w.Key("responses_503").Int(http.responses_503);
    w.Key("bad_requests").Int(http.bad_requests);
    w.Key("queue_depth").UInt(http.queue_depth);
    w.EndObject();
    w.EndObject();
    return JsonOk(w.TakeString());
  });

  server.Route("POST", "/ingest", [&engine](const HttpRequest& request) {
    Result<std::vector<Value>> values = ParseValueArray(request.body);
    if (!values.ok()) {
      return JsonError(400, values.status().message());
    }
    engine.InsertBatch(values.ValueOrDie());
    JsonWriter w;
    w.BeginObject();
    w.Key("ingested").UInt(values.ValueOrDie().size());
    w.Key("total_inserts").Int(engine.observed_inserts());
    w.EndObject();
    return JsonOk(w.TakeString());
  });

  server.Route("POST", "/delete", [&engine](const HttpRequest& request) {
    Result<std::vector<Value>> values = ParseValueArray(request.body);
    if (!values.ok()) {
      return JsonError(400, values.status().message());
    }
    for (Value v : values.ValueOrDie()) {
      const Status status = engine.Delete(v);
      if (!status.ok()) return JsonError(409, status.message());
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("deleted").UInt(values.ValueOrDie().size());
    w.Key("total_deletes").Int(engine.observed_deletes());
    w.EndObject();
    return JsonOk(w.TakeString());
  });

  if (flags.enable_debug) {
    // Deterministic worker occupancy for overload tests: holds a worker
    // thread for ?ms= milliseconds before answering.
    server.Route("GET", "/debug/sleep", [](const HttpRequest& request) {
      const auto ms = request.QueryInt("ms", 100);
      if (!ms.has_value() || *ms < 0 || *ms > 10000) {
        return JsonError(400, "ms must be in [0, 10000]");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(*ms));
      return JsonOk("{\"slept_ms\":" + std::to_string(*ms) + "}");
    });
  }
}

int ServeMain(int argc, char** argv) {
  ServeFlags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage(argv[0]);
    return 2;
  }

  // Block SIGTERM/SIGINT in every thread; the main thread sigwait()s below
  // so signals become a plain synchronous drain instead of an async handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  signal(SIGPIPE, SIG_IGN);

  ServingEngine engine(flags.engine);
  if (flags.preload_n > 0) {
    const std::vector<Value> values =
        ZipfValues(flags.preload_n, flags.preload_domain, flags.preload_alpha,
                   flags.preload_seed);
    engine.InsertBatch(values);
    std::fprintf(stderr, "preloaded %lld Zipf(%.2f) values over [1, %lld]\n",
                 static_cast<long long>(flags.preload_n), flags.preload_alpha,
                 static_cast<long long>(flags.preload_domain));
  }

  HttpServer server(flags.http);
  RegisterRoutes(server, engine, flags);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 std::string(status.message()).c_str());
    return 1;
  }
  // The e2e test and scripts parse this exact line to learn the port.
  std::printf("aqua_serve listening on %s:%u\n",
              flags.http.bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "signal %d: draining\n", sig);
  server.Shutdown();
  return 0;
}

}  // namespace
}  // namespace aqua

int main(int argc, char** argv) { return aqua::ServeMain(argc, argv); }
