#ifndef AQUA_PERSIST_SNAPSHOT_H_
#define AQUA_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "sample/reservoir_sample.h"

namespace aqua {

/// Synopsis snapshots — the paper's footnote 2: "for persistence and
/// recovery, combinations of snapshots and/or logs can be stored on disk".
///
/// Format (all integers LEB128, values delta-coded after sorting):
///   magic, version, kind, footprint_bound, threshold (IEEE bits),
///   observed_inserts, #entries, then per entry: value delta, count.
/// Counts use footnote-3 variable-length coding, so a snapshot is usually
/// far smaller than the in-memory word footprint.
///
/// Restored synopses are statistically equivalent to the saved ones (same
/// entries, threshold, and observed-insert count) but draw from a fresh
/// seeded random stream.

/// Serializes a concise sample.
std::vector<std::uint8_t> EncodeSnapshot(const ConciseSample& sample);

/// Serializes a counting sample.
std::vector<std::uint8_t> EncodeSnapshot(const CountingSample& sample);

/// Restores a concise sample; `seed` reseeds its random stream.
/// InvalidArgument/OutOfRange on malformed or mismatched input.
Result<ConciseSample> DecodeConciseSnapshot(
    const std::vector<std::uint8_t>& bytes, std::uint64_t seed);

/// Restores a counting sample.
Result<CountingSample> DecodeCountingSnapshot(
    const std::vector<std::uint8_t>& bytes, std::uint64_t seed);

/// Serializes a traditional (reservoir) sample: kind 3 carries capacity,
/// algorithm, observed count and the sorted, delta-coded sample points
/// (point order is irrelevant to a uniform sample, so sorting buys both
/// compression and byte-stable re-encoding).
std::vector<std::uint8_t> EncodeSnapshot(const ReservoirSample& sample);

/// Restores a reservoir sample; `seed` reseeds its random stream and
/// re-primes the skip state at the restored position.
Result<ReservoirSample> DecodeReservoirSnapshot(
    const std::vector<std::uint8_t>& bytes, std::uint64_t seed);

}  // namespace aqua

#endif  // AQUA_PERSIST_SNAPSHOT_H_
