#include "persist/snapshot.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "persist/varint.h"

namespace aqua {
namespace {

constexpr std::uint64_t kMagic = 0xA07A;  // "AQUA"-ish
constexpr std::uint64_t kVersion = 1;
constexpr std::uint64_t kKindConcise = 1;
constexpr std::uint64_t kKindCounting = 2;
constexpr std::uint64_t kKindReservoir = 3;

std::vector<std::uint8_t> EncodeCommon(std::uint64_t kind,
                                       Words footprint_bound,
                                       double threshold,
                                       std::int64_t observed,
                                       std::vector<ValueCount> entries) {
  std::vector<std::uint8_t> out;
  PutVarint(kMagic, out);
  PutVarint(kVersion, out);
  PutVarint(kind, out);
  PutVarint(static_cast<std::uint64_t>(footprint_bound), out);
  PutVarint(std::bit_cast<std::uint64_t>(threshold), out);
  PutVarint(static_cast<std::uint64_t>(observed), out);
  std::sort(entries.begin(), entries.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.value < b.value;
            });
  PutVarint(entries.size(), out);
  Value previous = 0;
  for (const ValueCount& e : entries) {
    PutVarintSigned(e.value - previous, out);  // delta from previous value
    previous = e.value;
    PutVarint(static_cast<std::uint64_t>(e.count), out);
  }
  return out;
}

struct DecodedSnapshot {
  std::uint64_t kind = 0;
  Words footprint_bound = 0;
  double threshold = 1.0;
  std::int64_t observed = 0;
  std::vector<ValueCount> entries;
};

Result<DecodedSnapshot> DecodeCommon(const std::vector<std::uint8_t>& bytes,
                                     std::uint64_t expected_kind) {
  VarintReader reader(bytes);
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t magic, reader.Next());
  if (magic != kMagic) {
    return Status::InvalidArgument("not an aqua snapshot (bad magic)");
  }
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t version, reader.Next());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  DecodedSnapshot snap;
  AQUA_ASSIGN_OR_RETURN(snap.kind, reader.Next());
  if (snap.kind != expected_kind) {
    return Status::InvalidArgument("snapshot holds a different synopsis kind");
  }
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t bound, reader.Next());
  // Validated here, not in the sample constructor: a corrupt bound must
  // surface as a Status, never as an AQUA_CHECK abort on untrusted bytes.
  if (bound < 2 || bound > (std::uint64_t{1} << 48)) {
    return Status::InvalidArgument("corrupt snapshot footprint bound");
  }
  snap.footprint_bound = static_cast<Words>(bound);
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t threshold_bits, reader.Next());
  snap.threshold = std::bit_cast<double>(threshold_bits);
  if (!std::isfinite(snap.threshold) || snap.threshold < 1.0) {
    return Status::InvalidArgument("corrupt snapshot threshold");
  }
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t observed, reader.Next());
  snap.observed = static_cast<std::int64_t>(observed);
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t n_entries, reader.Next());
  // Every entry costs at least 2 encoded bytes (delta + count), so a count
  // claiming more entries than the remaining bytes could hold is corrupt —
  // rejected before reserve() can turn it into a giant allocation.
  if (n_entries > (bytes.size() - reader.position()) / 2) {
    return Status::InvalidArgument("corrupt snapshot entry count");
  }
  snap.entries.reserve(n_entries);
  Value previous = 0;
  for (std::uint64_t i = 0; i < n_entries; ++i) {
    AQUA_ASSIGN_OR_RETURN(const std::int64_t delta, reader.NextSigned());
    AQUA_ASSIGN_OR_RETURN(const std::uint64_t count, reader.Next());
    previous += delta;
    snap.entries.push_back(
        ValueCount{previous, static_cast<Count>(count)});
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot");
  }
  return snap;
}

}  // namespace

std::vector<std::uint8_t> EncodeSnapshot(const ConciseSample& sample) {
  return EncodeCommon(kKindConcise, sample.FootprintBound(),
                      sample.Threshold(), sample.ObservedInserts(),
                      sample.Entries());
}

std::vector<std::uint8_t> EncodeSnapshot(const CountingSample& sample) {
  return EncodeCommon(kKindCounting, sample.FootprintBound(),
                      sample.Threshold(), sample.ObservedInserts(),
                      sample.Entries());
}

Result<ConciseSample> DecodeConciseSnapshot(
    const std::vector<std::uint8_t>& bytes, std::uint64_t seed) {
  AQUA_ASSIGN_OR_RETURN(const DecodedSnapshot snap,
                        DecodeCommon(bytes, kKindConcise));
  ConciseSampleOptions options;
  options.footprint_bound = snap.footprint_bound;
  options.seed = seed;
  return ConciseSample::Restore(options, snap.threshold, snap.observed,
                                snap.entries);
}

Result<CountingSample> DecodeCountingSnapshot(
    const std::vector<std::uint8_t>& bytes, std::uint64_t seed) {
  AQUA_ASSIGN_OR_RETURN(const DecodedSnapshot snap,
                        DecodeCommon(bytes, kKindCounting));
  CountingSampleOptions options;
  options.footprint_bound = snap.footprint_bound;
  options.seed = seed;
  return CountingSample::Restore(options, snap.threshold, snap.observed,
                                 snap.entries);
}

std::vector<std::uint8_t> EncodeSnapshot(const ReservoirSample& sample) {
  std::vector<std::uint8_t> out;
  PutVarint(kMagic, out);
  PutVarint(kVersion, out);
  PutVarint(kKindReservoir, out);
  PutVarint(static_cast<std::uint64_t>(sample.Capacity()), out);
  PutVarint(static_cast<std::uint64_t>(sample.algorithm()), out);
  PutVarint(static_cast<std::uint64_t>(sample.ObservedInserts()), out);
  std::vector<Value> points = sample.Points();
  std::sort(points.begin(), points.end());
  PutVarint(points.size(), out);
  Value previous = 0;
  for (Value v : points) {
    PutVarintSigned(v - previous, out);
    previous = v;
  }
  return out;
}

Result<ReservoirSample> DecodeReservoirSnapshot(
    const std::vector<std::uint8_t>& bytes, std::uint64_t seed) {
  VarintReader reader(bytes);
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t magic, reader.Next());
  if (magic != kMagic) {
    return Status::InvalidArgument("not an aqua snapshot (bad magic)");
  }
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t version, reader.Next());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t kind, reader.Next());
  if (kind != kKindReservoir) {
    return Status::InvalidArgument("snapshot holds a different synopsis kind");
  }
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t capacity, reader.Next());
  // Same untrusted-bytes rule as DecodeCommon: a corrupt capacity must be a
  // Status, never an AQUA_CHECK abort or a giant reserve().
  if (capacity < 1 || capacity > (std::uint64_t{1} << 48)) {
    return Status::InvalidArgument("corrupt reservoir snapshot capacity");
  }
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t algorithm, reader.Next());
  if (algorithm > static_cast<std::uint64_t>(ReservoirAlgorithm::kL)) {
    return Status::InvalidArgument("corrupt reservoir snapshot algorithm");
  }
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t observed, reader.Next());
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t n_points, reader.Next());
  // Every point costs at least 1 encoded byte, and a live reservoir never
  // holds more than min(observed, capacity) points.
  if (n_points > bytes.size() - reader.position() ||
      n_points > std::min(capacity, observed)) {
    return Status::InvalidArgument("corrupt reservoir snapshot point count");
  }
  std::vector<Value> points;
  points.reserve(n_points);
  Value previous = 0;
  for (std::uint64_t i = 0; i < n_points; ++i) {
    AQUA_ASSIGN_OR_RETURN(const std::int64_t delta, reader.NextSigned());
    previous += delta;
    points.push_back(previous);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot");
  }
  return ReservoirSample::Restore(
      static_cast<std::int64_t>(capacity), seed,
      static_cast<ReservoirAlgorithm>(algorithm),
      static_cast<std::int64_t>(observed), std::move(points));
}

}  // namespace aqua
