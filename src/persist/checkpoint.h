#ifndef AQUA_PERSIST_CHECKPOINT_H_
#define AQUA_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace aqua {

/// One serialized synopsis inside a node checkpoint.
struct CheckpointBlob {
  std::string name;
  std::vector<std::uint8_t> state;
};

/// A periodic ingest-node checkpoint: the full synopsis state at a known
/// op count, plus the not-yet-exported delta synopses, so recovery only
/// replays the WAL suffix written after the checkpoint instead of the
/// whole stream.
///
/// Invariants the replicator maintains:
///  - A checkpoint is only written while no export is pending, so the
///    delta blobs always describe the *current* accumulation round (ops
///    (exported_up_to, op_count]) and `next_seq` is the seq that round
///    will export under.
///  - The file is written to a temp path and rename()d into place, then
///    the WAL is rotated to `base_op_count = op_count`.  A crash between
///    the rename and the rotation leaves a WAL whose base is older than
///    the checkpoint; recovery skips the first (op_count - base) op
///    records — the skip-prefix rule — instead of double-applying them.
///
/// Wire format (integers LEB128, strings/blobs length-prefixed):
///   magic, version, op_count, next_seq, exported_up_to,
///   #full blobs, blobs..., #delta blobs, blobs...
struct NodeCheckpoint {
  /// Stream ops folded into the full blobs.
  std::int64_t op_count = 0;
  /// The sequence number the next export will claim.
  std::uint64_t next_seq = 1;
  /// Ops covered by already-exported (and committed) deltas.
  std::int64_t exported_up_to = 0;
  /// Full synopsis state of the node's main registry.
  std::vector<CheckpointBlob> full;
  /// The in-progress delta round (ops (exported_up_to, op_count]).
  std::vector<CheckpointBlob> delta;
};

std::vector<std::uint8_t> EncodeNodeCheckpoint(const NodeCheckpoint& cp);

Result<NodeCheckpoint> DecodeNodeCheckpoint(const std::uint8_t* data,
                                            std::size_t size);
Result<NodeCheckpoint> DecodeNodeCheckpoint(
    const std::vector<std::uint8_t>& bytes);

/// Atomic write: temp file + rename, so a crash mid-write leaves either
/// the old checkpoint or the new one, never a torn file.
Status WriteNodeCheckpointFile(const NodeCheckpoint& cp,
                               const std::string& path);

/// NotFound when the file is absent (a fresh node).
Result<NodeCheckpoint> ReadNodeCheckpointFile(const std::string& path);

}  // namespace aqua

#endif  // AQUA_PERSIST_CHECKPOINT_H_
