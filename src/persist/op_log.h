#ifndef AQUA_PERSIST_OP_LOG_H_
#define AQUA_PERSIST_OP_LOG_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/result.h"
#include "sample/synopsis.h"
#include "workload/stream.h"

namespace aqua {

/// Packs one stream op into a single integer: kind in bit 0 (1 = delete),
/// zigzag(value) above.  The unit both the OpLogWriter records and the
/// cluster WAL's op records carry.
std::uint64_t PackStreamOp(const StreamOp& op);

/// Inverse of PackStreamOp.
StreamOp UnpackStreamOp(std::uint64_t packed);

/// An append-only operation log for warehouse load streams (the "logs"
/// half of footnote 2).  Combined with periodic snapshots, a crashed
/// approximate answer engine recovers by decoding the latest snapshot and
/// replaying the log suffix recorded after it — no base-data scan.
///
/// On-disk format: a varint record per op — (kind | value-delta zigzag
/// interleave): kind in the low bit, zigzag(value) above it.  Typical zipf
/// streams encode in ~1.5 bytes/op.
class OpLogWriter {
 public:
  /// Creates/truncates `path`.  Check status() before use.
  explicit OpLogWriter(const std::string& path);
  ~OpLogWriter();

  OpLogWriter(const OpLogWriter&) = delete;
  OpLogWriter& operator=(const OpLogWriter&) = delete;

  Status status() const { return status_; }

  /// Appends one operation (buffered).
  void Append(const StreamOp& op);

  /// Flushes buffered records to the file.
  Status Flush();

  /// Number of ops appended so far.
  std::int64_t size() const { return appended_; }

 private:
  std::string path_;
  std::vector<std::uint8_t> buffer_;
  std::int64_t appended_ = 0;
  std::ofstream stream_;
  Status status_;
};

/// Reads every op in a log file.  Fails on truncated/corrupt records.
Result<UpdateStream> ReadOpLog(const std::string& path);

/// Replays `ops` into any synopsis: inserts via Insert(), deletes via
/// Delete() (which fails for synopses that cannot handle deletions).
Status ReplayInto(Synopsis& synopsis, const UpdateStream& ops);

}  // namespace aqua

#endif  // AQUA_PERSIST_OP_LOG_H_
