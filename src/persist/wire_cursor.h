#ifndef AQUA_PERSIST_WIRE_CURSOR_H_
#define AQUA_PERSIST_WIRE_CURSOR_H_

#include <cstddef>
#include <cstdint>

namespace aqua {
namespace persist_internal {

/// Bounds-checked cursor over untrusted wire bytes, shared by the WAL,
/// delta-frame and checkpoint decoders.  Every read reports failure via a
/// bool instead of a Status so decode loops can map anomalies to the mode
/// they run under (strict InvalidArgument vs tolerate-torn-tail stop);
/// nothing here allocates, so "reject before any allocation" holds by
/// construction.
struct WireCursor {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  std::size_t remaining() const { return size - pos; }
  bool AtEnd() const { return pos == size; }

  /// Unsigned LEB128; false on truncation or an overlong (> 10 byte)
  /// encoding, leaving `pos` unspecified-but-in-bounds.
  bool ReadVarint(std::uint64_t* out) {
    std::uint64_t value = 0;
    int shift = 0;
    while (pos < size && shift < 64) {
      const std::uint8_t byte = data[pos++];
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *out = value;
        return true;
      }
      shift += 7;
    }
    return false;
  }

  /// Advances past `n` raw bytes, exposing their start; false when fewer
  /// than `n` remain.
  bool ReadBytes(std::size_t n, const std::uint8_t** out) {
    if (remaining() < n) return false;
    *out = data + pos;
    pos += n;
    return true;
  }
};

/// FNV-1a 64 over (`type` byte, then `n` payload bytes), folded to 16
/// bits.  The WAL and delta-frame records carry this as a torn-tail /
/// bit-flip detector.
inline std::uint16_t FoldedFnv16(std::uint8_t type, const std::uint8_t* data,
                                 std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = (h ^ type) * 0x100000001b3ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * 0x100000001b3ULL;
  }
  return static_cast<std::uint16_t>((h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) &
                                    0xFFFF);
}

}  // namespace persist_internal
}  // namespace aqua

#endif  // AQUA_PERSIST_WIRE_CURSOR_H_
