#ifndef AQUA_PERSIST_WAL_H_
#define AQUA_PERSIST_WAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/stream.h"

namespace aqua {

/// The cluster write-ahead log: every ingest node appends here *before*
/// applying an op to its synopses, so a SIGKILLed node replays the log
/// suffix after its latest checkpoint instead of the stream.
///
/// On-disk format (all integers LEB128):
///
///   header:  magic, version, base_op_count
///   record:  key = (payload_len << 2) | type, payload bytes, checksum
///
/// `base_op_count` is the number of stream ops already folded into the
/// checkpoint the log was rotated against — replay resumes there.  Record
/// types: 0 = stream op (payload: one PackStreamOp varint), 1 = export
/// marker (payload: delta seq, absolute op count the delta covers
/// through), 2 = commit marker (payload: delta seq the aggregator acked).
/// The checksum is FNV-1a 64 over the type byte + payload, folded to 16
/// bits — enough to catch torn tails and bit flips at ~2 bytes/record.
///
/// Export/commit markers make delta shipping exactly-once across crashes:
/// an export marker durably claims a sequence number and an op range
/// before the frame leaves the node, and the commit marker lands only
/// after the aggregator acked it.  Recovery re-derives any exported,
/// uncommitted frame (same seq, same ops, same seeds) and re-pushes it;
/// the aggregator deduplicates by (node, seq).

enum class WalRecordType : std::uint8_t {
  kOp = 0,
  kExport = 1,
  kCommit = 2,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kOp;
  /// kOp only.
  StreamOp op = StreamOp::Insert(0);
  /// kExport / kCommit: the delta sequence number.
  std::uint64_t seq = 0;
  /// kExport only: the absolute op count the delta covers through.
  std::int64_t up_to = 0;
};

struct WalContents {
  std::int64_t base_op_count = 0;
  std::vector<WalRecord> records;
  /// Bytes of header + complete, checksum-valid records.  A recovering
  /// node truncates the file here before reopening it for append.
  std::size_t valid_bytes = 0;
  /// False when kTolerateTornTail dropped a torn/corrupt tail.
  bool clean = true;
};

enum class WalReadMode {
  /// Any anomaly — truncated record, bad checksum, unknown type, overlong
  /// varint, trailing garbage — is InvalidArgument.  Payload lengths are
  /// validated against the remaining bytes before any read, so corrupt
  /// input never reaches an allocation sized by attacker-controlled
  /// counts, and never aborts.
  kStrict,
  /// Crash recovery: decode records until the first anomaly, then stop and
  /// report what was valid (`clean = false`).  A torn tail is the expected
  /// result of SIGKILL mid-append, not corruption.  A bad *header* is
  /// still an error — there is no prefix worth salvaging.
  kTolerateTornTail,
};

/// Encoders, exposed for tests that build corrupt inputs byte-by-byte.
void EncodeWalHeader(std::int64_t base_op_count,
                     std::vector<std::uint8_t>& out);
void EncodeWalRecord(const WalRecord& record, std::vector<std::uint8_t>& out);

Result<WalContents> DecodeWal(const std::uint8_t* data, std::size_t size,
                              WalReadMode mode);
Result<WalContents> DecodeWal(const std::vector<std::uint8_t>& bytes,
                              WalReadMode mode);

/// Reads and decodes a whole WAL file.  NotFound when the file is absent.
Result<WalContents> ReadWalFile(const std::string& path, WalReadMode mode);

/// Buffered appender.  kTruncate starts a fresh log (writes the header
/// with `base_op_count`); kAppend reopens an existing, already-validated
/// log at its end (recovery truncates the torn tail first).
class WalWriter {
 public:
  enum class OpenMode { kTruncate, kAppend };

  WalWriter(const std::string& path, std::int64_t base_op_count,
            OpenMode mode);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status status() const { return status_; }

  void AppendOp(const StreamOp& op);
  void AppendExportMarker(std::uint64_t seq, std::int64_t up_to);
  void AppendCommitMarker(std::uint64_t seq);

  /// Flushes buffered records to the file.  Called before acking an ingest
  /// batch and after every marker — the durability points the recovery
  /// invariants rely on.
  Status Flush();

 private:
  void Append(const WalRecord& record);

  std::string path_;
  std::vector<std::uint8_t> buffer_;
  std::ofstream stream_;
  Status status_;
};

}  // namespace aqua

#endif  // AQUA_PERSIST_WAL_H_
