#include "persist/varint.h"

namespace aqua {

void PutVarint(std::uint64_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void PutVarintSigned(std::int64_t value, std::vector<std::uint8_t>& out) {
  PutVarint(ZigzagEncode(value), out);
}

Result<std::uint64_t> VarintReader::Next() {
  std::uint64_t value = 0;
  int shift = 0;
  while (position_ < size_) {
    const std::uint8_t byte = data_[position_++];
    if (shift == 63 && (byte & 0x7E) != 0) {
      return Status::OutOfRange("varint overflows 64 bits");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) return Status::OutOfRange("varint too long");
  }
  return Status::OutOfRange("truncated varint");
}

Result<std::int64_t> VarintReader::NextSigned() {
  AQUA_ASSIGN_OR_RETURN(const std::uint64_t raw, Next());
  return ZigzagDecode(raw);
}

}  // namespace aqua
