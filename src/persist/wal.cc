#include "persist/wal.h"

#include <fstream>
#include <iterator>

#include "persist/op_log.h"
#include "persist/varint.h"
#include "persist/wire_cursor.h"

namespace aqua {

namespace {

using persist_internal::FoldedFnv16;
using persist_internal::WireCursor;

constexpr std::uint64_t kWalMagic = 0xAA17;
constexpr std::uint64_t kWalVersion = 1;
constexpr std::uint64_t kMaxRecordType =
    static_cast<std::uint64_t>(WalRecordType::kCommit);

/// Payloads are tiny (at most three varints); anything claiming more than
/// this is corrupt regardless of the remaining byte count.
constexpr std::uint64_t kMaxPayloadLen = 64;

void EncodePayload(const WalRecord& record, std::vector<std::uint8_t>& out) {
  switch (record.type) {
    case WalRecordType::kOp:
      PutVarint(PackStreamOp(record.op), out);
      break;
    case WalRecordType::kExport:
      PutVarint(record.seq, out);
      PutVarint(static_cast<std::uint64_t>(record.up_to), out);
      break;
    case WalRecordType::kCommit:
      PutVarint(record.seq, out);
      break;
  }
}

/// Parses one record payload.  False when the payload does not decode to
/// exactly the fields the type requires (a checksum-valid but misshapen
/// payload is corruption, not a torn tail).
bool ParsePayload(WalRecordType type, const std::uint8_t* payload,
                  std::size_t len, WalRecord* out) {
  WireCursor cursor{payload, len, 0};
  out->type = type;
  switch (type) {
    case WalRecordType::kOp: {
      std::uint64_t packed = 0;
      if (!cursor.ReadVarint(&packed)) return false;
      out->op = UnpackStreamOp(packed);
      break;
    }
    case WalRecordType::kExport: {
      std::uint64_t up_to = 0;
      if (!cursor.ReadVarint(&out->seq)) return false;
      if (!cursor.ReadVarint(&up_to)) return false;
      out->up_to = static_cast<std::int64_t>(up_to);
      break;
    }
    case WalRecordType::kCommit:
      if (!cursor.ReadVarint(&out->seq)) return false;
      break;
  }
  return cursor.AtEnd();
}

}  // namespace

void EncodeWalHeader(std::int64_t base_op_count,
                     std::vector<std::uint8_t>& out) {
  PutVarint(kWalMagic, out);
  PutVarint(kWalVersion, out);
  PutVarint(static_cast<std::uint64_t>(base_op_count), out);
}

void EncodeWalRecord(const WalRecord& record, std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> payload;
  EncodePayload(record, payload);
  const std::uint64_t key = (static_cast<std::uint64_t>(payload.size()) << 2) |
                            static_cast<std::uint64_t>(record.type);
  PutVarint(key, out);
  out.insert(out.end(), payload.begin(), payload.end());
  PutVarint(FoldedFnv16(static_cast<std::uint8_t>(record.type),
                        payload.data(), payload.size()),
            out);
}

Result<WalContents> DecodeWal(const std::uint8_t* data, std::size_t size,
                              WalReadMode mode) {
  WireCursor cursor{data, size, 0};
  std::uint64_t magic = 0, version = 0, base = 0;
  // Header anomalies are errors in both modes: without a trusted
  // base_op_count there is no valid prefix to salvage.
  if (!cursor.ReadVarint(&magic) || magic != kWalMagic) {
    return Status::InvalidArgument("not an aqua WAL (bad magic)");
  }
  if (!cursor.ReadVarint(&version) || version != kWalVersion) {
    return Status::InvalidArgument("unsupported WAL version");
  }
  if (!cursor.ReadVarint(&base) || base > (std::uint64_t{1} << 62)) {
    return Status::InvalidArgument("corrupt WAL base op count");
  }
  WalContents contents;
  contents.base_op_count = static_cast<std::int64_t>(base);
  contents.valid_bytes = cursor.pos;
  while (!cursor.AtEnd()) {
    std::uint64_t key = 0;
    const std::uint8_t* payload = nullptr;
    std::uint64_t checksum = 0;
    WalRecord record;
    const bool record_ok =
        cursor.ReadVarint(&key) && (key & 3) <= kMaxRecordType &&
        (key >> 2) <= kMaxPayloadLen &&
        cursor.ReadBytes(static_cast<std::size_t>(key >> 2), &payload) &&
        cursor.ReadVarint(&checksum) &&
        checksum == FoldedFnv16(static_cast<std::uint8_t>(key & 3), payload,
                                static_cast<std::size_t>(key >> 2)) &&
        ParsePayload(static_cast<WalRecordType>(key & 3), payload,
                     static_cast<std::size_t>(key >> 2), &record);
    if (!record_ok) {
      if (mode == WalReadMode::kStrict) {
        return Status::InvalidArgument("corrupt WAL record at byte " +
                                       std::to_string(contents.valid_bytes));
      }
      contents.clean = false;
      return contents;
    }
    contents.records.push_back(record);
    contents.valid_bytes = cursor.pos;
  }
  return contents;
}

Result<WalContents> DecodeWal(const std::vector<std::uint8_t>& bytes,
                              WalReadMode mode) {
  return DecodeWal(bytes.data(), bytes.size(), mode);
}

Result<WalContents> ReadWalFile(const std::string& path, WalReadMode mode) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open WAL: " + path);
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return DecodeWal(bytes, mode);
}

WalWriter::WalWriter(const std::string& path, std::int64_t base_op_count,
                     OpenMode mode)
    : path_(path),
      stream_(path, mode == OpenMode::kTruncate
                        ? (std::ios::binary | std::ios::trunc)
                        : (std::ios::binary | std::ios::app)) {
  if (!stream_) {
    status_ = Status::InvalidArgument("cannot open WAL for writing: " + path);
    return;
  }
  if (mode == OpenMode::kTruncate) {
    EncodeWalHeader(base_op_count, buffer_);
    (void)Flush();
  }
}

WalWriter::~WalWriter() { (void)Flush(); }

void WalWriter::Append(const WalRecord& record) {
  EncodeWalRecord(record, buffer_);
  if (buffer_.size() >= 1 << 16) (void)Flush();
}

void WalWriter::AppendOp(const StreamOp& op) {
  WalRecord record;
  record.type = WalRecordType::kOp;
  record.op = op;
  Append(record);
}

void WalWriter::AppendExportMarker(std::uint64_t seq, std::int64_t up_to) {
  WalRecord record;
  record.type = WalRecordType::kExport;
  record.seq = seq;
  record.up_to = up_to;
  Append(record);
}

void WalWriter::AppendCommitMarker(std::uint64_t seq) {
  WalRecord record;
  record.type = WalRecordType::kCommit;
  record.seq = seq;
  Append(record);
}

Status WalWriter::Flush() {
  if (!status_.ok()) return status_;
  if (!buffer_.empty()) {
    stream_.write(reinterpret_cast<const char*>(buffer_.data()),
                  static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
    stream_.flush();
    if (!stream_) {
      status_ = Status::Internal("WAL write failed: " + path_);
    }
  }
  return status_;
}

}  // namespace aqua
