#include "persist/op_log.h"

#include <fstream>
#include <iterator>

#include "persist/varint.h"

namespace aqua {

std::uint64_t PackStreamOp(const StreamOp& op) {
  const std::uint64_t kind_bit =
      op.kind == StreamOp::Kind::kDelete ? 1u : 0u;
  return (ZigzagEncode(op.value) << 1) | kind_bit;
}

StreamOp UnpackStreamOp(std::uint64_t packed) {
  StreamOp op;
  op.kind = (packed & 1) ? StreamOp::Kind::kDelete : StreamOp::Kind::kInsert;
  op.value = ZigzagDecode(packed >> 1);
  return op;
}

OpLogWriter::OpLogWriter(const std::string& path)
    : path_(path),
      stream_(path, std::ios::binary | std::ios::trunc) {
  if (!stream_) {
    status_ = Status::InvalidArgument("cannot open op log for writing: " +
                                      path);
  }
}

OpLogWriter::~OpLogWriter() { (void)Flush(); }

void OpLogWriter::Append(const StreamOp& op) {
  PutVarint(PackStreamOp(op), buffer_);
  ++appended_;
  if (buffer_.size() >= 1 << 16) (void)Flush();
}

Status OpLogWriter::Flush() {
  if (!status_.ok()) return status_;
  if (!buffer_.empty()) {
    stream_.write(reinterpret_cast<const char*>(buffer_.data()),
                  static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
    stream_.flush();
    if (!stream_) {
      status_ = Status::Internal("op log write failed: " + path_);
    }
  }
  return status_;
}

Result<UpdateStream> ReadOpLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open op log: " + path);
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  VarintReader reader(bytes);
  UpdateStream ops;
  while (!reader.AtEnd()) {
    AQUA_ASSIGN_OR_RETURN(const std::uint64_t packed, reader.Next());
    ops.push_back(UnpackStreamOp(packed));
  }
  return ops;
}

Status ReplayInto(Synopsis& synopsis, const UpdateStream& ops) {
  for (const StreamOp& op : ops) {
    if (op.kind == StreamOp::Kind::kInsert) {
      synopsis.Insert(op.value);
    } else {
      AQUA_RETURN_NOT_OK(synopsis.Delete(op.value));
    }
  }
  return Status::OK();
}

}  // namespace aqua
