#include "persist/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <iterator>

#include "persist/varint.h"
#include "persist/wire_cursor.h"

namespace aqua {

namespace {

using persist_internal::WireCursor;

constexpr std::uint64_t kCheckpointMagic = 0xC4EC;
constexpr std::uint64_t kCheckpointVersion = 1;
constexpr std::uint64_t kMaxNameLen = 256;
constexpr std::uint64_t kMaxBlobs = 1024;

void PutBlobs(const std::vector<CheckpointBlob>& blobs,
              std::vector<std::uint8_t>& out) {
  PutVarint(blobs.size(), out);
  for (const CheckpointBlob& blob : blobs) {
    PutVarint(blob.name.size(), out);
    out.insert(out.end(), blob.name.begin(), blob.name.end());
    PutVarint(blob.state.size(), out);
    out.insert(out.end(), blob.state.begin(), blob.state.end());
  }
}

bool ReadBlobs(WireCursor& cursor, std::vector<CheckpointBlob>* out) {
  std::uint64_t n = 0;
  // Two length prefixes minimum per blob: a count the remaining bytes
  // cannot hold is rejected before the reserve allocates.
  if (!cursor.ReadVarint(&n) || n > kMaxBlobs ||
      n > cursor.remaining() / 2) {
    return false;
  }
  out->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    CheckpointBlob blob;
    std::uint64_t name_len = 0, state_len = 0;
    const std::uint8_t* bytes = nullptr;
    if (!cursor.ReadVarint(&name_len) || name_len > kMaxNameLen ||
        name_len > cursor.remaining() ||
        !cursor.ReadBytes(name_len, &bytes)) {
      return false;
    }
    blob.name.assign(reinterpret_cast<const char*>(bytes), name_len);
    if (blob.name.empty()) return false;
    if (!cursor.ReadVarint(&state_len) || state_len > cursor.remaining() ||
        !cursor.ReadBytes(state_len, &bytes)) {
      return false;
    }
    blob.state.assign(bytes, bytes + state_len);
    out->push_back(std::move(blob));
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> EncodeNodeCheckpoint(const NodeCheckpoint& cp) {
  std::vector<std::uint8_t> out;
  PutVarint(kCheckpointMagic, out);
  PutVarint(kCheckpointVersion, out);
  PutVarint(static_cast<std::uint64_t>(cp.op_count), out);
  PutVarint(cp.next_seq, out);
  PutVarint(static_cast<std::uint64_t>(cp.exported_up_to), out);
  PutBlobs(cp.full, out);
  PutBlobs(cp.delta, out);
  return out;
}

Result<NodeCheckpoint> DecodeNodeCheckpoint(const std::uint8_t* data,
                                            std::size_t size) {
  WireCursor cursor{data, size, 0};
  std::uint64_t magic = 0, version = 0;
  if (!cursor.ReadVarint(&magic) || magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a node checkpoint (bad magic)");
  }
  if (!cursor.ReadVarint(&version) || version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  NodeCheckpoint cp;
  std::uint64_t op_count = 0, exported = 0;
  if (!cursor.ReadVarint(&op_count) || op_count > (std::uint64_t{1} << 62) ||
      !cursor.ReadVarint(&cp.next_seq) || !cursor.ReadVarint(&exported) ||
      exported > op_count) {
    return Status::InvalidArgument("corrupt checkpoint header");
  }
  cp.op_count = static_cast<std::int64_t>(op_count);
  cp.exported_up_to = static_cast<std::int64_t>(exported);
  if (!ReadBlobs(cursor, &cp.full)) {
    return Status::InvalidArgument("corrupt checkpoint full-state blobs");
  }
  if (!ReadBlobs(cursor, &cp.delta)) {
    return Status::InvalidArgument("corrupt checkpoint delta blobs");
  }
  if (!cursor.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }
  return cp;
}

Result<NodeCheckpoint> DecodeNodeCheckpoint(
    const std::vector<std::uint8_t>& bytes) {
  return DecodeNodeCheckpoint(bytes.data(), bytes.size());
}

Status WriteNodeCheckpointFile(const NodeCheckpoint& cp,
                               const std::string& path) {
  const std::vector<std::uint8_t> bytes = EncodeNodeCheckpoint(cp);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open checkpoint temp file: " + tmp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      return Status::Internal("checkpoint write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("checkpoint rename failed: " + path);
  }
  return Status::OK();
}

Result<NodeCheckpoint> ReadNodeCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open checkpoint: " + path);
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return DecodeNodeCheckpoint(bytes);
}

}  // namespace aqua
