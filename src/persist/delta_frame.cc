#include "persist/delta_frame.h"

#include "persist/varint.h"
#include "persist/wire_cursor.h"

namespace aqua {

namespace {

using persist_internal::WireCursor;

constexpr std::uint64_t kFrameMagic = 0xDE17A;
constexpr std::uint64_t kFrameVersion = 1;
/// Node ids and synopsis names are short identifiers; anything longer is
/// corrupt regardless of the frame size.
constexpr std::uint64_t kMaxNameLen = 256;
/// An aggregator registry holds a handful of synopses per frame.
constexpr std::uint64_t kMaxSynopses = 1024;

bool ReadString(WireCursor& cursor, std::uint64_t max_len,
                std::string* out) {
  std::uint64_t len = 0;
  const std::uint8_t* bytes = nullptr;
  if (!cursor.ReadVarint(&len) || len > max_len ||
      len > cursor.remaining() || !cursor.ReadBytes(len, &bytes)) {
    return false;
  }
  out->assign(reinterpret_cast<const char*>(bytes), len);
  return true;
}

}  // namespace

std::vector<std::uint8_t> EncodeDeltaFrame(const DeltaFrame& frame) {
  std::vector<std::uint8_t> out;
  PutVarint(kFrameMagic, out);
  PutVarint(kFrameVersion, out);
  PutVarint(frame.node_id.size(), out);
  out.insert(out.end(), frame.node_id.begin(), frame.node_id.end());
  PutVarint(frame.seq, out);
  PutVarint(static_cast<std::uint64_t>(frame.covers_ops), out);
  PutVarint(frame.synopses.size(), out);
  for (const auto& [name, blob] : frame.synopses) {
    PutVarint(name.size(), out);
    out.insert(out.end(), name.begin(), name.end());
    PutVarint(blob.size(), out);
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

Result<DeltaFrame> DecodeDeltaFrame(const std::uint8_t* data,
                                    std::size_t size) {
  WireCursor cursor{data, size, 0};
  std::uint64_t magic = 0, version = 0;
  if (!cursor.ReadVarint(&magic) || magic != kFrameMagic) {
    return Status::InvalidArgument("not a delta frame (bad magic)");
  }
  if (!cursor.ReadVarint(&version) || version != kFrameVersion) {
    return Status::InvalidArgument("unsupported delta frame version");
  }
  DeltaFrame frame;
  if (!ReadString(cursor, kMaxNameLen, &frame.node_id) ||
      frame.node_id.empty()) {
    return Status::InvalidArgument("corrupt delta frame node id");
  }
  std::uint64_t covers = 0;
  if (!cursor.ReadVarint(&frame.seq) || !cursor.ReadVarint(&covers) ||
      covers > (std::uint64_t{1} << 62)) {
    return Status::InvalidArgument("corrupt delta frame header");
  }
  frame.covers_ops = static_cast<std::int64_t>(covers);
  std::uint64_t n_synopses = 0;
  // Each synopsis costs at least 2 bytes (two zero-length prefixes), so a
  // count beyond remaining/2 cannot be satisfied — rejected before the
  // reserve below can allocate from an attacker-controlled count.
  if (!cursor.ReadVarint(&n_synopses) || n_synopses > kMaxSynopses ||
      n_synopses > cursor.remaining() / 2) {
    return Status::InvalidArgument("corrupt delta frame synopsis count");
  }
  frame.synopses.reserve(n_synopses);
  for (std::uint64_t i = 0; i < n_synopses; ++i) {
    std::string name;
    if (!ReadString(cursor, kMaxNameLen, &name) || name.empty()) {
      return Status::InvalidArgument("corrupt delta frame synopsis name");
    }
    std::uint64_t blob_len = 0;
    const std::uint8_t* blob = nullptr;
    if (!cursor.ReadVarint(&blob_len) || blob_len > cursor.remaining() ||
        !cursor.ReadBytes(blob_len, &blob)) {
      return Status::InvalidArgument("corrupt delta frame synopsis blob");
    }
    frame.synopses.emplace_back(
        std::move(name), std::vector<std::uint8_t>(blob, blob + blob_len));
  }
  if (!cursor.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after delta frame");
  }
  return frame;
}

Result<DeltaFrame> DecodeDeltaFrame(const std::vector<std::uint8_t>& bytes) {
  return DecodeDeltaFrame(bytes.data(), bytes.size());
}

Result<DeltaFrame> DecodeDeltaFrame(const std::string& bytes) {
  return DecodeDeltaFrame(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                          bytes.size());
}

}  // namespace aqua
