#ifndef AQUA_PERSIST_VARINT_H_
#define AQUA_PERSIST_VARINT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace aqua {

/// LEB128 variable-length integer coding — the paper's footnote 3
/// ("variable-length encoding could be used for the counts, so that only
/// ⌈lg x⌉ bits are needed to store x as a count; this reduces the footprint
/// but complicates the memory management").  We use it for the persistence
/// layer (snapshots and operation logs), where compactness is free: counts
/// and delta-coded values shrink to 1-2 bytes each in practice.

/// Appends `value` to `out` as unsigned LEB128 (7 bits per byte).
void PutVarint(std::uint64_t value, std::vector<std::uint8_t>& out);

/// Appends a signed value with zigzag coding.
void PutVarintSigned(std::int64_t value, std::vector<std::uint8_t>& out);

/// Cursor over an encoded buffer.
class VarintReader {
 public:
  VarintReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit VarintReader(const std::vector<std::uint8_t>& buffer)
      : VarintReader(buffer.data(), buffer.size()) {}

  /// Reads the next unsigned varint; OutOfRange at end or on overlong
  /// encodings.
  Result<std::uint64_t> Next();

  /// Reads the next zigzag-coded signed varint.
  Result<std::int64_t> NextSigned();

  bool AtEnd() const { return position_ == size_; }
  std::size_t position() const { return position_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t position_ = 0;
};

/// Zigzag transforms (exposed for tests).
inline std::uint64_t ZigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t ZigzagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace aqua

#endif  // AQUA_PERSIST_VARINT_H_
