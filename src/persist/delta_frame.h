#ifndef AQUA_PERSIST_DELTA_FRAME_H_
#define AQUA_PERSIST_DELTA_FRAME_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace aqua {

/// One shipped synopsis delta: everything an ingest node accumulated since
/// its previous export, serialized per synopsis with the persist codecs
/// and pushed to the aggregator over POST /cluster/push.
///
/// `seq` is the node's export sequence number — assigned once, durably
/// (the WAL export marker lands before the frame leaves the node), and
/// never reused, so the aggregator can deduplicate retried pushes by
/// (node_id, seq).  `covers_ops` is the number of stream ops the delta
/// summarizes; the aggregator folds it into its observed-insert counter so
/// count_where scaling stays correct without replaying any op.
///
/// Wire format (integers LEB128, strings/blobs length-prefixed):
///   magic, version, node_id, seq, covers_ops,
///   #synopses, then per synopsis: name, state blob.
/// Every length is validated against the remaining bytes before any
/// allocation — frames arrive over the network and are untrusted.
struct DeltaFrame {
  std::string node_id;
  std::uint64_t seq = 0;
  std::int64_t covers_ops = 0;
  /// (synopsis name, EncodeState bytes) pairs.
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> synopses;
};

std::vector<std::uint8_t> EncodeDeltaFrame(const DeltaFrame& frame);

Result<DeltaFrame> DecodeDeltaFrame(const std::uint8_t* data,
                                    std::size_t size);
Result<DeltaFrame> DecodeDeltaFrame(const std::vector<std::uint8_t>& bytes);
/// HTTP request bodies arrive as std::string.
Result<DeltaFrame> DecodeDeltaFrame(const std::string& bytes);

}  // namespace aqua

#endif  // AQUA_PERSIST_DELTA_FRAME_H_
