#ifndef AQUA_WORKLOAD_STREAM_H_
#define AQUA_WORKLOAD_STREAM_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace aqua {

/// One operation in the data warehouse load stream (Figure 2: "new data
/// being loaded into the data warehouse is also observed by an approximate
/// answer engine").
struct StreamOp {
  enum class Kind : std::uint8_t { kInsert, kDelete };

  Kind kind = Kind::kInsert;
  Value value = 0;

  static StreamOp Insert(Value v) { return {Kind::kInsert, v}; }
  static StreamOp Delete(Value v) { return {Kind::kDelete, v}; }

  friend bool operator==(const StreamOp& a, const StreamOp& b) {
    return a.kind == b.kind && a.value == b.value;
  }
};

/// A materialized load stream.
using UpdateStream = std::vector<StreamOp>;

}  // namespace aqua

#endif  // AQUA_WORKLOAD_STREAM_H_
