#ifndef AQUA_WORKLOAD_GENERATORS_H_
#define AQUA_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "workload/stream.h"

namespace aqua {

/// Generators for the synthetic workloads of §3.3 and §5.3: "500K new
/// values were inserted into an initially empty data warehouse … integer
/// value domain from [1, D] … a large variety of Zipf data distributions."
///
/// All generators are deterministic for a fixed seed.

/// n values drawn i.i.d. Zipf(alpha) over [1, domain_size] (alpha = 0 is
/// uniform).  Value i has rank i (the paper notes "the exact attribute
/// values do not effect the relative quality of our techniques").
std::vector<Value> ZipfValues(std::int64_t n, std::int64_t domain_size,
                              double alpha, std::uint64_t seed);

/// n values drawn i.i.d. uniform over [1, domain_size].
std::vector<Value> UniformValues(std::int64_t n, std::int64_t domain_size,
                                 std::uint64_t seed);

/// n values from the Theorem 3 exponential family P(v=i) = α^{-i}(α-1).
std::vector<Value> ExponentialValues(std::int64_t n, double alpha,
                                     std::uint64_t seed);

/// Zipf values whose rank→value mapping shifts mid-stream: after
/// `shift_at` inserts, rank r maps to value ((r - 1 + rotation) mod D) + 1.
/// Models "detecting when itemsets that were small become large due to a
/// shift in the distribution of the newer data" (§1.2).
std::vector<Value> ShiftingZipfValues(std::int64_t n,
                                      std::int64_t domain_size, double alpha,
                                      std::int64_t shift_at,
                                      std::int64_t rotation,
                                      std::uint64_t seed);

/// An insert-only stream from a value vector.
UpdateStream InsertStream(const std::vector<Value>& values);

/// A mixed insert/delete stream: Zipf(alpha) inserts, and after a warm-up
/// of `warmup` inserts each subsequent op is a delete of a uniformly random
/// *live* tuple with probability `delete_fraction`.  The multiset of live
/// tuples is tracked exactly, so every delete targets an existing tuple
/// (counting samples must stay subsets under such streams, Theorem 5).
UpdateStream MixedStream(std::int64_t n_ops, std::int64_t domain_size,
                         double alpha, double delete_fraction,
                         std::int64_t warmup, std::uint64_t seed);

/// Transactions of `items_per_basket` distinct Zipf-distributed items; all
/// unordered item pairs of each basket are emitted as single encoded
/// values — hot lists over them are the "2-itemset" hot lists of §1.2
/// ("they can be maintained on k-itemsets for any specified k, and used to
/// produce association rules [AS94]").
std::vector<Value> PairItemsetValues(std::int64_t n_baskets,
                                     std::int64_t item_domain, double alpha,
                                     int items_per_basket,
                                     std::uint64_t seed);

/// Encodes / decodes an unordered item pair into one Value.
Value EncodeItemPair(std::int64_t a, std::int64_t b);
std::pair<std::int64_t, std::int64_t> DecodeItemPair(Value encoded);

}  // namespace aqua

#endif  // AQUA_WORKLOAD_GENERATORS_H_
