#include "workload/generators.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "random/exponential_values.h"
#include "random/random.h"
#include "random/zipf.h"

namespace aqua {

std::vector<Value> ZipfValues(std::int64_t n, std::int64_t domain_size,
                              double alpha, std::uint64_t seed) {
  AQUA_CHECK_GE(n, 0);
  Random random(seed);
  ZipfDistribution zipf(domain_size, alpha);
  std::vector<Value> values;
  values.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) values.push_back(zipf.Sample(random));
  return values;
}

std::vector<Value> UniformValues(std::int64_t n, std::int64_t domain_size,
                                 std::uint64_t seed) {
  AQUA_CHECK_GE(n, 0);
  AQUA_CHECK_GE(domain_size, 1);
  Random random(seed);
  std::vector<Value> values;
  values.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    values.push_back(random.UniformInt(1, domain_size));
  }
  return values;
}

std::vector<Value> ExponentialValues(std::int64_t n, double alpha,
                                     std::uint64_t seed) {
  AQUA_CHECK_GE(n, 0);
  Random random(seed);
  ExponentialValueDistribution dist(alpha);
  std::vector<Value> values;
  values.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) values.push_back(dist.Sample(random));
  return values;
}

std::vector<Value> ShiftingZipfValues(std::int64_t n,
                                      std::int64_t domain_size, double alpha,
                                      std::int64_t shift_at,
                                      std::int64_t rotation,
                                      std::uint64_t seed) {
  std::vector<Value> values = ZipfValues(n, domain_size, alpha, seed);
  for (std::int64_t i = shift_at; i < n; ++i) {
    const Value rank = values[static_cast<std::size_t>(i)];
    values[static_cast<std::size_t>(i)] =
        ((rank - 1 + rotation) % domain_size) + 1;
  }
  return values;
}

UpdateStream InsertStream(const std::vector<Value>& values) {
  UpdateStream stream;
  stream.reserve(values.size());
  for (Value v : values) stream.push_back(StreamOp::Insert(v));
  return stream;
}

UpdateStream MixedStream(std::int64_t n_ops, std::int64_t domain_size,
                         double alpha, double delete_fraction,
                         std::int64_t warmup, std::uint64_t seed) {
  AQUA_CHECK(delete_fraction >= 0.0 && delete_fraction < 1.0);
  Random random(seed);
  ZipfDistribution zipf(domain_size, alpha);
  UpdateStream stream;
  stream.reserve(static_cast<std::size_t>(n_ops));
  std::vector<Value> live;  // exact multiset of live tuples
  for (std::int64_t i = 0; i < n_ops; ++i) {
    const bool do_delete = i >= warmup && !live.empty() &&
                           random.Bernoulli(delete_fraction);
    if (do_delete) {
      const auto idx = static_cast<std::size_t>(
          random.UniformU64(static_cast<std::uint64_t>(live.size())));
      stream.push_back(StreamOp::Delete(live[idx]));
      live[idx] = live.back();
      live.pop_back();
    } else {
      const Value v = zipf.Sample(random);
      stream.push_back(StreamOp::Insert(v));
      live.push_back(v);
    }
  }
  return stream;
}

Value EncodeItemPair(std::int64_t a, std::int64_t b) {
  if (a > b) std::swap(a, b);
  AQUA_CHECK(a >= 0 && b >= 0 && a < (std::int64_t{1} << 31) &&
             b < (std::int64_t{1} << 31))
      << "item ids must fit in 31 bits for pair encoding";
  return (a << 31) | b;
}

std::pair<std::int64_t, std::int64_t> DecodeItemPair(Value encoded) {
  return {encoded >> 31, encoded & ((std::int64_t{1} << 31) - 1)};
}

std::vector<Value> PairItemsetValues(std::int64_t n_baskets,
                                     std::int64_t item_domain, double alpha,
                                     int items_per_basket,
                                     std::uint64_t seed) {
  AQUA_CHECK_GE(items_per_basket, 2);
  Random random(seed);
  ZipfDistribution zipf(item_domain, alpha);
  std::vector<Value> pairs;
  std::vector<std::int64_t> basket;
  for (std::int64_t t = 0; t < n_baskets; ++t) {
    basket.clear();
    while (static_cast<int>(basket.size()) < items_per_basket) {
      const std::int64_t item = zipf.Sample(random);
      if (std::find(basket.begin(), basket.end(), item) == basket.end()) {
        basket.push_back(item);
      }
    }
    for (std::size_t i = 0; i < basket.size(); ++i) {
      for (std::size_t j = i + 1; j < basket.size(); ++j) {
        pairs.push_back(EncodeItemPair(basket[i], basket[j]));
      }
    }
  }
  return pairs;
}

}  // namespace aqua
