#ifndef AQUA_PLAN_SQL_FRONTEND_H_
#define AQUA_PLAN_SQL_FRONTEND_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "plan/planner.h"

namespace aqua {

/// One parsed /query statement: the planned query plus the FROM target,
/// which is a view into the input text (the parser never copies it).
struct ParsedSqlQuery {
  PlannedQuery query;
  /// FROM target: an attribute name, or "stream" for the default engine.
  std::string_view target;
  /// Whether an explicit WHERE v BETWEEN a AND b clause was present (a
  /// missing one counts the whole relation).
  bool has_where = false;
  bool has_error = false;
  bool has_confidence = false;
  bool has_deadline = false;
};

/// Parses the SQL-ish /query dialect:
///
///   SELECT APPROX(<agg>) FROM <target>
///     [WHERE <ident> BETWEEN <int> AND <int>]
///     [ERROR <x>[%]] [CONFIDENCE <y>[%]] [WITHIN <t><unit>] [;]
///
/// with <agg> one of COUNT(*), COUNT(DISTINCT <ident>), FREQUENCY(<int>),
/// QUANTILE(<q>), MEDIAN, TOP(<k>), and <unit> one of ns/us/ms/s.  The
/// bound clauses may appear in any order, once each; keywords are
/// case-insensitive.  Malformed input — truncation at any byte, garbage,
/// overlong numerics, WHERE on a kind that takes none — returns
/// InvalidArgument without allocating (messages fit the small-string
/// buffer); `*out` is only written on success.
Status ParseSqlQuery(std::string_view text, ParsedSqlQuery* out);

/// Appends the canonical key for a parsed query to `*out`: a fixed
/// field order with normalized numerics, so every spelling of the same
/// query — clause order, ERROR 2% vs ERROR 0.02, case — produces the same
/// response-cache key.  Appends into caller-owned storage (no allocation
/// once the caller's string capacity is warm).
void AppendCanonicalSqlKey(const ParsedSqlQuery& parsed, std::string* out);

}  // namespace aqua

#endif  // AQUA_PLAN_SQL_FRONTEND_H_
