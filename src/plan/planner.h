#ifndef AQUA_PLAN_PLANNER_H_
#define AQUA_PLAN_PLANNER_H_

#include <cstdint>
#include <limits>
#include <string_view>

#include "estimate/aggregates.h"
#include "hotlist/hot_list.h"
#include "registry/registry.h"

namespace aqua {

/// The bounds a client may attach to a query.  Unset bounds are sentinels
/// (max_error <= 0, deadline_ns <= 0) so a default-constructed bound means
/// "unbounded" — the planner then reproduces the §6 accuracy ordering
/// exactly.
struct QueryBound {
  /// Requested worst-case relative error in (0, 1]; <= 0 means no bound.
  double max_error = 0.0;
  /// Confidence the error bound must hold at (and the confidence passed to
  /// interval-producing answer functions).
  double confidence = 0.95;
  /// Requested answer deadline in nanoseconds; <= 0 means no deadline.
  std::int64_t deadline_ns = 0;

  bool HasError() const { return max_error > 0.0; }
  bool HasDeadline() const { return deadline_ns > 0; }
  bool Unbounded() const { return !HasError() && !HasDeadline(); }
};

/// One parsed /query request: the kind plus its kind-specific parameters
/// and the requested bounds.  The SQL frontend produces these; the planner
/// executes them.
struct PlannedQuery {
  QueryKind kind = QueryKind::kCountWhere;
  /// TOP(k) for hot lists (0: all reportable pairs).
  std::int64_t k = 0;
  /// FREQUENCY(value).
  Value value = 0;
  /// COUNT(*) WHERE low <= v <= high; defaults to the full domain, so a
  /// missing WHERE clause counts the whole relation.
  ValueRange range;
  /// QUANTILE(q) / MEDIAN.
  double q = 0.5;
  QueryBound bound;
};

/// The planner's selection for one query: which synopsis answers, over
/// which path, and what the model predicted for that choice.  `handle` is
/// null when nothing valid answers the kind.
struct PlanChoice {
  const SynopsisHandle* handle = nullptr;
  /// Answer from the epoch-frozen view (true) or the direct computation
  /// path (false).  Answers are bit-identical; only the cost differs.
  bool use_view = true;
  double predicted_error = std::numeric_limits<double>::infinity();
  /// Predicted answer latency from the handle's measured EWMA profile; an
  /// unobserved path predicts 0 (optimistically free until warmed).
  double predicted_ns = 0.0;
  /// Whether the choice satisfies the requested bounds *as predicted* —
  /// false means the planner degraded gracefully (no feasible option) and
  /// is reporting its best effort.
  bool meets_error = true;
  bool meets_deadline = true;
};

/// Scores every valid (synopsis, path) option for `kind` against the
/// handle's predicted error and measured latency profile:
///
///  - unbounded: the first valid candidate in accuracy order — provably
///    the same selection the legacy answer path makes;
///  - error bound only: the *cheapest* option whose predicted error fits
///    (accuracy order breaks ties), falling back to the most accurate
///    option with meets_error=false when none fits;
///  - deadline set: the most accurate option whose predicted latency fits
///    (restricted to error-feasible options when an error bound is also
///    present), falling back to the fastest such option with
///    meets_deadline=false when the deadline cuts everything.
PlanChoice PlanQuery(const SynopsisRegistry& registry, QueryKind kind,
                     const QueryBound& bound, const QueryContext& ctx);

/// One executed planned query.  The method/synopsis tags view
/// registry-owned storage; the hotlist vector is reused across calls when
/// the response struct is reused (the zero-alloc serving discipline).
struct PlannedResponse {
  /// Synopsis that answered ("none" when nothing could).
  std::string_view method = "none";
  bool used_view = false;
  /// Estimate kinds fill `estimate`; hot lists fill `hotlist`.
  Estimate estimate;
  HotList hotlist;
  /// Error the planner reports for the answer: the measured half-width
  /// relative to the relation for interval answers, the model's predicted
  /// error otherwise; +infinity when nothing answered.
  double achieved_error = std::numeric_limits<double>::infinity();
  double predicted_error = std::numeric_limits<double>::infinity();
  double predicted_ns = 0.0;
  /// Whether the requested bounds were met (achieved error vs requested;
  /// measured response time vs deadline).  True when the bound was absent.
  bool met_error = true;
  bool met_deadline = true;
  std::int64_t response_ns = 0;
};

/// Plans and executes `query` against the registry: picks the synopsis and
/// path via PlanQuery, pins it (falling back through the accuracy order if
/// the chosen handle can no longer pin), computes the answer, records the
/// observed latency into the handle's profile and the achieved error into
/// the registry's planner stats.  Fills `*out` in place (clearing the
/// hotlist) so a warmed caller answers without allocating.
void RunPlannedQueryInto(const SynopsisRegistry& registry,
                         const PlannedQuery& query, PlannedResponse* out);

}  // namespace aqua

#endif  // AQUA_PLAN_PLANNER_H_
