#include "plan/sql_frontend.h"

#include <charconv>
#include <cmath>
#include <cstdint>

namespace aqua {

namespace {

// The parser is a hand-rolled cursor over the input view.  It allocates
// nothing: every token is a view, numbers go through from_chars, and every
// failure message fits the small-string buffer — a hostile /query payload
// is rejected before the request touches the allocator.

struct Cursor {
  const char* p;
  const char* end;
};

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

bool IsAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

void SkipSpace(Cursor& c) {
  while (c.p < c.end && IsSpace(*c.p)) ++c.p;
}

bool AtEnd(Cursor& c) {
  SkipSpace(c);
  return c.p == c.end;
}

/// Reads a keyword/identifier word ([A-Za-z_][A-Za-z0-9_]*); empty view
/// when the cursor is not at one.
std::string_view ReadWord(Cursor& c) {
  SkipSpace(c);
  const char* start = c.p;
  if (c.p < c.end && IsAlpha(*c.p)) {
    ++c.p;
    while (c.p < c.end && (IsAlpha(*c.p) || IsDigit(*c.p))) ++c.p;
  }
  return std::string_view(start, static_cast<std::size_t>(c.p - start));
}

/// Reads a FROM target: like a word but also allowing '-' and '.' (the
/// catalog registers attribute names such as "region-7").
std::string_view ReadTarget(Cursor& c) {
  SkipSpace(c);
  const char* start = c.p;
  while (c.p < c.end &&
         (IsAlpha(*c.p) || IsDigit(*c.p) || *c.p == '-' || *c.p == '.')) {
    ++c.p;
  }
  return std::string_view(start, static_cast<std::size_t>(c.p - start));
}

bool Consume(Cursor& c, char ch) {
  SkipSpace(c);
  if (c.p < c.end && *c.p == ch) {
    ++c.p;
    return true;
  }
  return false;
}

char ToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

/// Case-insensitive keyword match (`upper` must be uppercase).
bool WordIs(std::string_view word, std::string_view upper) {
  if (word.size() != upper.size()) return false;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (ToUpper(word[i]) != upper[i]) return false;
  }
  return true;
}

bool ReadInt(Cursor& c, std::int64_t* out) {
  SkipSpace(c);
  // from_chars handles the sign itself for signed types.
  const auto [ptr, ec] = std::from_chars(c.p, c.end, *out);
  if (ec != std::errc() || ptr == c.p) return false;
  c.p = ptr;
  return true;
}

bool ReadDouble(Cursor& c, double* out) {
  SkipSpace(c);
  // Bound the token before converting: libstdc++'s floating-point
  // from_chars heap-allocates a scratch buffer for very long inputs, and
  // the parser promises to reject overlong numerics *before* any
  // allocation.  No legitimate literal in this dialect needs 40 chars.
  const char* scan = c.p;
  while (scan < c.end &&
         (IsDigit(*scan) || *scan == '.' || *scan == 'e' || *scan == 'E' ||
          *scan == '+' || *scan == '-')) {
    ++scan;
  }
  if (scan - c.p > 40) return false;
  const auto [ptr, ec] = std::from_chars(c.p, scan, *out);
  if (ec != std::errc() || ptr == c.p || !std::isfinite(*out)) return false;
  c.p = ptr;
  return true;
}

/// Parses the APPROX(<agg>) aggregate into the query's kind + parameters.
Status ParseAggregate(Cursor& c, PlannedQuery* query) {
  const std::string_view agg = ReadWord(c);
  if (WordIs(agg, "COUNT")) {
    if (!Consume(c, '(')) return Status::InvalidArgument("bad aggregate");
    if (Consume(c, '*')) {
      if (!Consume(c, ')')) return Status::InvalidArgument("bad aggregate");
      query->kind = QueryKind::kCountWhere;
      return Status::OK();
    }
    const std::string_view word = ReadWord(c);
    if (!WordIs(word, "DISTINCT")) {
      return Status::InvalidArgument("bad aggregate");
    }
    if (!Consume(c, '*') && ReadWord(c).empty()) {
      return Status::InvalidArgument("bad aggregate");
    }
    if (!Consume(c, ')')) return Status::InvalidArgument("bad aggregate");
    query->kind = QueryKind::kDistinct;
    return Status::OK();
  }
  if (WordIs(agg, "FREQUENCY")) {
    std::int64_t value = 0;
    if (!Consume(c, '(') || !ReadInt(c, &value) || !Consume(c, ')')) {
      return Status::InvalidArgument("bad aggregate");
    }
    query->kind = QueryKind::kFrequency;
    query->value = value;
    return Status::OK();
  }
  if (WordIs(agg, "QUANTILE")) {
    double q = 0.0;
    if (!Consume(c, '(') || !ReadDouble(c, &q) || !Consume(c, ')')) {
      return Status::InvalidArgument("bad aggregate");
    }
    if (q < 0.0 || q > 1.0) return Status::InvalidArgument("bad quantile");
    query->kind = QueryKind::kQuantile;
    query->q = q;
    return Status::OK();
  }
  if (WordIs(agg, "MEDIAN")) {
    query->kind = QueryKind::kQuantile;
    query->q = 0.5;
    return Status::OK();
  }
  if (WordIs(agg, "TOP")) {
    std::int64_t k = 0;
    if (!Consume(c, '(') || !ReadInt(c, &k) || !Consume(c, ')') || k < 0) {
      return Status::InvalidArgument("bad aggregate");
    }
    query->kind = QueryKind::kHotList;
    query->k = k;
    return Status::OK();
  }
  return Status::InvalidArgument("bad aggregate");
}

/// A percentage-friendly fraction: `x` or `x%`, normalized to [0, 1] scale.
bool ReadFraction(Cursor& c, double* out) {
  if (!ReadDouble(c, out)) return false;
  // A '%' immediately following (no space needed) scales down.
  if (c.p < c.end && *c.p == '%') {
    ++c.p;
    *out /= 100.0;
  }
  return true;
}

Status ParseWithin(Cursor& c, std::int64_t* deadline_ns) {
  double value = 0.0;
  if (!ReadDouble(c, &value) || value <= 0.0) {
    return Status::InvalidArgument("bad WITHIN");
  }
  // Unit may abut the number (1ms) or follow spaces (1 ms).
  const std::string_view unit = ReadWord(c);
  double scale = 0.0;
  if (WordIs(unit, "NS")) {
    scale = 1.0;
  } else if (WordIs(unit, "US")) {
    scale = 1e3;
  } else if (WordIs(unit, "MS")) {
    scale = 1e6;
  } else if (WordIs(unit, "S")) {
    scale = 1e9;
  } else {
    return Status::InvalidArgument("bad WITHIN");
  }
  const double ns = value * scale;
  if (!(ns >= 1.0) || ns > 9.0e18) {
    return Status::InvalidArgument("bad WITHIN");
  }
  *deadline_ns = static_cast<std::int64_t>(ns);
  return Status::OK();
}

void AppendInt(std::string* out, std::int64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, static_cast<std::size_t>(ptr - buf));
}

void AppendDouble(std::string* out, double value) {
  char buf[32];
  // Shortest round-trip form: a deterministic spelling per value, so 0.02,
  // 2e-2 and ERROR 2% all canonicalize identically.
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, static_cast<std::size_t>(ptr - buf));
}

}  // namespace

Status ParseSqlQuery(std::string_view text, ParsedSqlQuery* out) {
  Cursor c{text.data(), text.data() + text.size()};
  ParsedSqlQuery parsed;

  if (!WordIs(ReadWord(c), "SELECT")) {
    return Status::InvalidArgument("expect SELECT");
  }
  if (!WordIs(ReadWord(c), "APPROX") || !Consume(c, '(')) {
    return Status::InvalidArgument("expect APPROX");
  }
  AQUA_RETURN_NOT_OK(ParseAggregate(c, &parsed.query));
  if (!Consume(c, ')')) return Status::InvalidArgument("expect APPROX");

  if (!WordIs(ReadWord(c), "FROM")) {
    return Status::InvalidArgument("expect FROM");
  }
  parsed.target = ReadTarget(c);
  if (parsed.target.empty()) return Status::InvalidArgument("bad target");

  while (!AtEnd(c)) {
    if (Consume(c, ';')) {
      if (!AtEnd(c)) return Status::InvalidArgument("trailing junk");
      break;
    }
    const std::string_view clause = ReadWord(c);
    if (WordIs(clause, "WHERE")) {
      if (parsed.has_where) return Status::InvalidArgument("dup clause");
      // WHERE only narrows a predicate count; on any other kind it is the
      // client confusing aggregates, which we reject rather than ignore.
      if (parsed.query.kind != QueryKind::kCountWhere) {
        return Status::InvalidArgument("bad WHERE");
      }
      if (ReadWord(c).empty()) return Status::InvalidArgument("bad WHERE");
      if (!WordIs(ReadWord(c), "BETWEEN")) {
        return Status::InvalidArgument("bad WHERE");
      }
      std::int64_t low = 0;
      std::int64_t high = 0;
      if (!ReadInt(c, &low)) return Status::InvalidArgument("bad WHERE");
      if (!WordIs(ReadWord(c), "AND")) {
        return Status::InvalidArgument("bad WHERE");
      }
      if (!ReadInt(c, &high)) return Status::InvalidArgument("bad WHERE");
      parsed.query.range = ValueRange{low, high};
      parsed.has_where = true;
    } else if (WordIs(clause, "ERROR")) {
      if (parsed.has_error) return Status::InvalidArgument("dup clause");
      double error = 0.0;
      if (!ReadFraction(c, &error) || error <= 0.0 || error > 1.0) {
        return Status::InvalidArgument("bad ERROR");
      }
      parsed.query.bound.max_error = error;
      parsed.has_error = true;
    } else if (WordIs(clause, "CONFIDENCE")) {
      if (parsed.has_confidence) return Status::InvalidArgument("dup clause");
      double confidence = 0.0;
      if (!ReadFraction(c, &confidence) || confidence <= 0.0 ||
          confidence >= 1.0) {
        return Status::InvalidArgument("bad CONFIDENCE");
      }
      parsed.query.bound.confidence = confidence;
      parsed.has_confidence = true;
    } else if (WordIs(clause, "WITHIN")) {
      if (parsed.has_deadline) return Status::InvalidArgument("dup clause");
      AQUA_RETURN_NOT_OK(ParseWithin(c, &parsed.query.bound.deadline_ns));
      parsed.has_deadline = true;
    } else {
      return Status::InvalidArgument("trailing junk");
    }
  }

  *out = parsed;
  return Status::OK();
}

void AppendCanonicalSqlKey(const ParsedSqlQuery& parsed, std::string* out) {
  const PlannedQuery& query = parsed.query;
  out->append("k=");
  AppendInt(out, static_cast<int>(query.kind));
  out->append(";t=");
  out->append(parsed.target);
  switch (query.kind) {
    case QueryKind::kHotList:
      out->append(";n=");
      AppendInt(out, query.k);
      break;
    case QueryKind::kFrequency:
      out->append(";v=");
      AppendInt(out, query.value);
      break;
    case QueryKind::kCountWhere:
      out->append(";lo=");
      AppendInt(out, query.range.low);
      out->append(";hi=");
      AppendInt(out, query.range.high);
      break;
    case QueryKind::kDistinct:
      break;
    case QueryKind::kQuantile:
      out->append(";q=");
      AppendDouble(out, query.q);
      break;
  }
  // Confidence always participates (it has a default, so an explicit
  // CONFIDENCE 95% must hit the same entry as no clause at all); the other
  // bounds only exist when requested.
  out->append(";conf=");
  AppendDouble(out, query.bound.confidence);
  if (parsed.has_error) {
    out->append(";err=");
    AppendDouble(out, query.bound.max_error);
  }
  if (parsed.has_deadline) {
    out->append(";dl=");
    AppendInt(out, query.bound.deadline_ns);
  }
}

}  // namespace aqua
