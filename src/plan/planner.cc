#include "plan/planner.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>

namespace aqua {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One scored (synopsis, path) option.
struct PlanOption {
  const SynopsisHandle* handle = nullptr;
  bool use_view = false;
  double predicted_error = 0.0;
  double predicted_ns = 0.0;
};

/// More handles than any registry registers per kind; options are
/// collected into fixed storage so planning never allocates.
constexpr std::size_t kMaxPlannedHandles = 16;

/// Computes the answer for `query` from a pinned source into `out`.
void ComputeInto(const AnswerSource& source, const PlannedQuery& query,
                 const QueryContext& ctx, PlannedResponse* out) {
  switch (query.kind) {
    case QueryKind::kHotList: {
      HotListQuery hot_query;
      hot_query.k = query.k;
      source.HotListAnswerInto(hot_query, ctx, &out->hotlist);
      return;
    }
    case QueryKind::kFrequency:
      out->estimate = source.FrequencyAnswer(query.value, ctx);
      return;
    case QueryKind::kCountWhere:
      out->estimate = source.CountWhereRangeAnswer(
          query.range, query.bound.confidence, ctx);
      return;
    case QueryKind::kDistinct:
      out->estimate = source.DistinctAnswer(ctx);
      return;
    case QueryKind::kQuantile:
      out->estimate =
          source.QuantileAnswer(query.q, query.bound.confidence, ctx);
      return;
  }
}

PlanChoice ChoiceFrom(const PlanOption& option, bool meets_error,
                      bool meets_deadline) {
  PlanChoice choice;
  choice.handle = option.handle;
  choice.use_view = option.use_view;
  choice.predicted_error = option.predicted_error;
  choice.predicted_ns = option.predicted_ns;
  choice.meets_error = meets_error;
  choice.meets_deadline = meets_deadline;
  return choice;
}

}  // namespace

PlanChoice PlanQuery(const SynopsisRegistry& registry, QueryKind kind,
                     const QueryBound& bound, const QueryContext& ctx) {
  PlanChoice choice;
  const auto handles = registry.HandlesFor(kind);

  if (bound.Unbounded()) {
    // No bounds: the first valid candidate in accuracy order, view allowed
    // — exactly the legacy answer path's selection, so unbounded /query
    // answers are bit-identical to the dedicated routes.
    for (const SynopsisHandle* handle : handles) {
      if (!handle->valid()) continue;
      choice.handle = handle;
      choice.use_view = true;
      choice.predicted_error = handle->PredictedError(kind, ctx,
                                                      bound.confidence);
      const LatencyProfile profile = handle->LatencyFor(kind);
      choice.predicted_ns =
          (handle->ViewAnswers(kind) && profile.view_observations > 0)
              ? profile.view_ns
              : profile.direct_ns;
      return choice;
    }
    return choice;  // nothing answers; handle stays null
  }

  // Score every (handle, path) option.  The view option precedes the
  // direct option of the same handle, so "first wins" tie-breaks prefer
  // the typically-cheaper path; handle order is the accuracy order.
  std::array<PlanOption, 2 * kMaxPlannedHandles> options;
  std::size_t count = 0;
  std::size_t considered = 0;
  for (const SynopsisHandle* handle : handles) {
    if (!handle->valid()) continue;
    if (++considered > kMaxPlannedHandles) break;
    const double error = handle->PredictedError(kind, ctx, bound.confidence);
    const LatencyProfile profile = handle->LatencyFor(kind);
    if (handle->ViewAnswers(kind)) {
      options[count++] = {handle, true, error, profile.view_ns};
    }
    options[count++] = {handle, false, error, profile.direct_ns};
  }
  if (count == 0) return choice;

  const auto error_ok = [&bound](const PlanOption& option) {
    return !bound.HasError() || option.predicted_error <= bound.max_error;
  };
  const auto deadline_ok = [&bound](const PlanOption& option) {
    return !bound.HasDeadline() ||
           option.predicted_ns <=
               static_cast<double>(bound.deadline_ns);
  };

  bool meets_error = true;
  bool any_error_ok = false;
  for (std::size_t i = 0; i < count; ++i) {
    any_error_ok = any_error_ok || error_ok(options[i]);
  }
  if (!any_error_ok) {
    // No option's predicted error fits: degrade to the most accurate
    // option (min predicted error, accuracy order breaks ties) and say so.
    meets_error = false;
  }
  const auto in_pool = [&](const PlanOption& option) {
    return !any_error_ok || error_ok(option);
  };

  if (!any_error_ok && !bound.HasDeadline()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < count; ++i) {
      if (options[i].predicted_error < options[best].predicted_error) {
        best = i;
      }
    }
    return ChoiceFrom(options[best], false, true);
  }

  if (!bound.HasDeadline()) {
    // Error bound only: the cheapest option that fits the bound.
    std::size_t best = count;
    for (std::size_t i = 0; i < count; ++i) {
      if (!error_ok(options[i])) continue;
      if (best == count ||
          options[i].predicted_ns < options[best].predicted_ns) {
        best = i;
      }
    }
    return ChoiceFrom(options[best], true, true);
  }

  // Deadline set: the most accurate pool option whose predicted latency
  // fits.  Options are in accuracy order, so the first feasible handle is
  // the most accurate; among its paths, take the faster feasible one.
  std::size_t best = count;
  for (std::size_t i = 0; i < count; ++i) {
    if (!in_pool(options[i]) || !deadline_ok(options[i])) continue;
    if (best == count) {
      best = i;
    } else if (options[i].handle == options[best].handle &&
               options[i].predicted_ns < options[best].predicted_ns) {
      best = i;  // the same handle's other (faster) path
    }
    if (best != count && options[i].handle != options[best].handle) break;
  }
  if (best != count) {
    return ChoiceFrom(options[best], meets_error, true);
  }
  // The deadline cuts everything: fastest pool option, flagged.
  for (std::size_t i = 0; i < count; ++i) {
    if (!in_pool(options[i])) continue;
    if (best == count ||
        options[i].predicted_ns < options[best].predicted_ns) {
      best = i;
    }
  }
  return ChoiceFrom(options[best], meets_error, false);
}

void RunPlannedQueryInto(const SynopsisRegistry& registry,
                         const PlannedQuery& query, PlannedResponse* out) {
  const std::int64_t start = NowNs();
  out->method = "none";
  out->used_view = false;
  out->estimate = {};
  out->hotlist.clear();
  out->achieved_error = std::numeric_limits<double>::infinity();

  const QueryContext ctx{registry.observed_inserts()};
  const PlanChoice plan = PlanQuery(registry, query.kind, query.bound, ctx);
  out->predicted_error = plan.predicted_error;
  out->predicted_ns = plan.predicted_ns;

  PinnedAnswerSource pinned;
  const AnswerSource* source = nullptr;
  const SynopsisHandle* served = nullptr;
  if (plan.handle != nullptr) {
    source = plan.handle->PinInto(pinned, plan.use_view);
    if (source != nullptr) served = plan.handle;
  }
  if (source == nullptr) {
    // The chosen handle lost its state between planning and pinning (a
    // racing invalidation): fall back through the accuracy order, exactly
    // like the unbounded answer path.
    for (const SynopsisHandle* candidate : registry.HandlesFor(query.kind)) {
      source = candidate->PinInto(pinned);
      if (source != nullptr) {
        served = candidate;
        break;
      }
    }
  }
  if (source == nullptr) {
    out->met_error = !query.bound.HasError();
    out->met_deadline = !query.bound.HasDeadline();
    out->response_ns = NowNs() - start;
    return;
  }

  const std::int64_t compute_start = NowNs();
  ComputeInto(*source, query, ctx, out);
  const std::int64_t compute_ns = NowNs() - compute_start;
  const bool via_view = source->AnswersFromView(query.kind);
  served->RecordLatency(query.kind, via_view, compute_ns);
  out->method = source->Method();
  out->used_view = via_view;

  // The achieved bound reported with the answer: interval answers measure
  // it directly (half-width relative to the relation size — the paper's §6
  // error metric); the rest report the model's prediction over the state
  // that answered.
  switch (query.kind) {
    case QueryKind::kCountWhere:
    case QueryKind::kFrequency: {
      const double n =
          std::max<double>(1.0, static_cast<double>(ctx.observed_inserts));
      out->achieved_error = out->estimate.HalfWidth() / n;
      break;
    }
    default:
      out->achieved_error =
          served->PredictedError(query.kind, ctx, query.bound.confidence);
      break;
  }
  if (std::isfinite(out->achieved_error)) {
    registry.NoteAchievedError(query.kind, out->achieved_error);
  }
  out->response_ns = NowNs() - start;
  out->met_error = !query.bound.HasError() ||
                   (std::isfinite(out->achieved_error) &&
                    out->achieved_error <= query.bound.max_error);
  out->met_deadline = !query.bound.HasDeadline() ||
                      out->response_ns <= query.bound.deadline_ns;
}

}  // namespace aqua
