#ifndef AQUA_SKETCH_AMS_SKETCH_H_
#define AQUA_SKETCH_AMS_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace aqua {

/// Alon–Matias–Szegedy sketch for the second frequency moment F₂ = Σ n_j²
/// [AMS96] — the work §5.2 leans on for the lower bound ("any randomized
/// online algorithm for approximating the frequency of the mode … requires
/// space linear in the number of distinct values").
///
/// Maintains `depth` × `width` counters; each stream element adds ±1 per
/// row according to a 4-wise-independent hash of its value.  The estimate
/// is the median over rows of the mean of squared counters — a classic
/// (ε, δ) guarantee with width = O(1/ε²), depth = O(lg 1/δ).
///
/// Supports deletions (decrements), like the counting sample.
class AmsSketch {
 public:
  AmsSketch(int depth, int width, std::uint64_t seed);

  void Insert(Value value) { Update(value, +1); }
  void Delete(Value value) { Update(value, -1); }

  /// Estimated F₂ of the inserted-minus-deleted multiset.
  double EstimateF2() const;

  int depth() const { return depth_; }
  int width() const { return width_; }

 private:
  void Update(Value value, std::int64_t delta);
  /// 4-wise independent ±1 hash for row `row` (polynomial over 2^61 - 1).
  std::int64_t Sign(int row, Value value) const;
  std::size_t Bucket(int row, Value value) const;

  int depth_;
  int width_;
  std::vector<std::int64_t> counters_;        // depth_ × width_
  std::vector<std::uint64_t> coefficients_;   // 4 per row
};

}  // namespace aqua

#endif  // AQUA_SKETCH_AMS_SKETCH_H_
