#ifndef AQUA_SKETCH_FLAJOLET_MARTIN_H_
#define AQUA_SKETCH_FLAJOLET_MARTIN_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace aqua {

/// Flajolet–Martin probabilistic distinct-value counting [FM83, FM85]:
/// estimates the number of distinct values in a single pass with O(lg n)
/// bits per bitmap.  §2 cites this as prior art ("an algorithm for
/// approximating the number of distinct values in a relation in a single
/// pass through the data").
///
/// Each of `num_maps` bitmaps records, for a hashed copy of the value, the
/// position of the lowest zero bit pattern ρ(hash); the mean lowest-unset
/// index R satisfies E[R] ≈ log2(φ·D) with φ ≈ 0.77351, giving
/// D̂ = 2^{R̄} / φ.  Averaging across bitmaps (stochastic averaging) tames
/// the variance.
class FlajoletMartin {
 public:
  explicit FlajoletMartin(int num_maps = 64, std::uint64_t seed = 0x5eedULL);

  /// Observes one (possibly repeated) value.  Idempotent per value per map.
  void Insert(Value value);

  /// Estimated number of distinct values observed.
  double Estimate() const;

  int num_maps() const { return static_cast<int>(bitmaps_.size()); }

  /// Words of memory: one bitmap word plus one salt word per map.
  Words Footprint() const {
    return static_cast<Words>(bitmaps_.size() + salts_.size());
  }

 private:
  static std::uint64_t Mix(std::uint64_t x, std::uint64_t salt);

  std::vector<std::uint64_t> bitmaps_;
  std::vector<std::uint64_t> salts_;
};

}  // namespace aqua

#endif  // AQUA_SKETCH_FLAJOLET_MARTIN_H_
