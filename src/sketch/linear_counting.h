#ifndef AQUA_SKETCH_LINEAR_COUNTING_H_
#define AQUA_SKETCH_LINEAR_COUNTING_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace aqua {

/// Linear probabilistic counting [WVZT90] (cited in §2 among the
/// distinct-value estimators): hash every value to one bit of a bitmap of
/// size B; with V = fraction of bits still zero, the MLE of the number of
/// distinct values is D̂ = -B · ln(V).  Accurate while the load D/B stays
/// moderate (the paper recommends B ≈ D/ρ for load factors up to ~12);
/// complements Flajolet–Martin, which needs no advance cardinality bound
/// but has a higher constant error.
class LinearCounting {
 public:
  explicit LinearCounting(std::size_t bits, std::uint64_t seed = 0x11C0ULL)
      : bitmap_((bits + 63) / 64, 0), bits_(bits), seed_(seed) {
    AQUA_CHECK_GE(bits, 1u);
  }

  void Insert(Value value) {
    const std::uint64_t h = Mix(static_cast<std::uint64_t>(value) ^ seed_);
    const std::uint64_t bit = h % bits_;
    bitmap_[bit >> 6] |= (std::uint64_t{1} << (bit & 63));
  }

  /// Number of bits still zero.
  std::int64_t ZeroBits() const {
    std::int64_t ones = 0;
    for (std::uint64_t word : bitmap_) ones += std::popcount(word);
    return static_cast<std::int64_t>(bits_) - ones;
  }

  /// MLE of the number of distinct values inserted.  When the bitmap is
  /// saturated (no zero bits) the MLE diverges; returns bits·ln(bits) as
  /// the conventional saturation answer.
  double Estimate() const {
    const std::int64_t zeros = ZeroBits();
    const auto b = static_cast<double>(bits_);
    if (zeros == 0) return b * std::log(b);
    return -b * std::log(static_cast<double>(zeros) / b);
  }

  std::size_t bits() const { return bits_; }

 private:
  static std::uint64_t Mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  std::vector<std::uint64_t> bitmap_;
  std::size_t bits_;
  std::uint64_t seed_;
};

}  // namespace aqua

#endif  // AQUA_SKETCH_LINEAR_COUNTING_H_
