#include "sketch/flajolet_martin.h"

#include <cmath>

#include "common/check.h"
#include "random/xoshiro256.h"

namespace aqua {

namespace {
// Flajolet–Martin magic constant φ.
constexpr double kPhi = 0.77351;
}  // namespace

FlajoletMartin::FlajoletMartin(int num_maps, std::uint64_t seed) {
  AQUA_CHECK_GE(num_maps, 1);
  bitmaps_.assign(static_cast<std::size_t>(num_maps), 0);
  salts_.resize(static_cast<std::size_t>(num_maps));
  std::uint64_t sm = seed;
  for (auto& salt : salts_) salt = SplitMix64Next(sm);
}

std::uint64_t FlajoletMartin::Mix(std::uint64_t x, std::uint64_t salt) {
  x ^= salt;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

void FlajoletMartin::Insert(Value value) {
  for (std::size_t i = 0; i < bitmaps_.size(); ++i) {
    const std::uint64_t h = Mix(static_cast<std::uint64_t>(value), salts_[i]);
    // ρ(h): index of the least significant set bit (all-zero is ~impossible
    // and maps to the top position).
    const int rho = h == 0 ? 63 : std::countr_zero(h);
    bitmaps_[i] |= (std::uint64_t{1} << rho);
  }
}

double FlajoletMartin::Estimate() const {
  double mean_r = 0.0;
  for (std::uint64_t bitmap : bitmaps_) {
    // R = index of the lowest unset bit.
    const int r = std::countr_one(bitmap);
    mean_r += static_cast<double>(r);
  }
  mean_r /= static_cast<double>(bitmaps_.size());
  return std::pow(2.0, mean_r) / kPhi;
}

}  // namespace aqua
