#ifndef AQUA_SKETCH_MORRIS_COUNTER_H_
#define AQUA_SKETCH_MORRIS_COUNTER_H_

#include <cmath>
#include <cstdint>

#include "random/random.h"

namespace aqua {

/// Morris's approximate counter [Mor78] (analyzed in detail by Flajolet
/// [Fla85]): counts up to n events in O(lg lg n) bits by storing only the
/// exponent x and incrementing it with probability b^{-x}.
///
/// The estimate (b^x - 1)/(b - 1) is unbiased; smaller bases trade memory
/// for lower variance (Var ≈ (b-1)/2 · n² for base b).
///
/// §2 cites this as prior art in probabilistic counting; the library also
/// uses it in tests as a reference for "probabilistic counting schemes to
/// identify newly-popular itemsets" intuition.
class MorrisCounter {
 public:
  /// `base` > 1; base 2 is the classical O(lg lg n)-bit configuration.
  explicit MorrisCounter(double base, std::uint64_t seed)
      : base_(base), random_(seed) {}

  /// Registers one event.
  void Increment() {
    if (random_.Bernoulli(std::pow(base_, -static_cast<double>(exponent_)))) {
      ++exponent_;
    }
  }

  /// Unbiased estimate of the number of events so far.
  double Estimate() const {
    return (std::pow(base_, static_cast<double>(exponent_)) - 1.0) /
           (base_ - 1.0);
  }

  /// Stored register value (the only persistent state, O(lg lg n) bits).
  std::uint32_t exponent() const { return exponent_; }
  double base() const { return base_; }

 private:
  double base_;
  Random random_;
  std::uint32_t exponent_ = 0;
};

}  // namespace aqua

#endif  // AQUA_SKETCH_MORRIS_COUNTER_H_
