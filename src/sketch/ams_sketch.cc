#include "sketch/ams_sketch.h"

#include <algorithm>

#include "common/check.h"
#include "random/xoshiro256.h"

namespace aqua {

namespace {
// Mersenne prime 2^61 - 1 for polynomial hashing.
constexpr std::uint64_t kPrime = (std::uint64_t{1} << 61) - 1;

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b) {
  const unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  std::uint64_t lo = static_cast<std::uint64_t>(p & kPrime);
  std::uint64_t hi = static_cast<std::uint64_t>(p >> 61);
  std::uint64_t r = lo + hi;
  if (r >= kPrime) r -= kPrime;
  return r;
}

/// Degree-3 polynomial over GF(2^61 - 1): 4-wise independent.
std::uint64_t Poly4(const std::uint64_t* c, std::uint64_t x) {
  std::uint64_t r = c[0];
  r = MulMod(r, x);
  r = (r + c[1]) % kPrime;
  r = MulMod(r, x);
  r = (r + c[2]) % kPrime;
  r = MulMod(r, x);
  r = (r + c[3]) % kPrime;
  return r;
}

}  // namespace

AmsSketch::AmsSketch(int depth, int width, std::uint64_t seed)
    : depth_(depth), width_(width) {
  AQUA_CHECK_GE(depth, 1);
  AQUA_CHECK_GE(width, 1);
  counters_.assign(static_cast<std::size_t>(depth) *
                       static_cast<std::size_t>(width),
                   0);
  // 8 coefficients per row: an independent degree-3 polynomial each for the
  // ±1 sign hash (needs 4-wise independence) and the bucket hash.
  coefficients_.resize(static_cast<std::size_t>(depth) * 8);
  std::uint64_t sm = seed;
  for (auto& c : coefficients_) c = SplitMix64Next(sm) % kPrime;
}

std::int64_t AmsSketch::Sign(int row, Value value) const {
  const std::uint64_t h =
      Poly4(&coefficients_[static_cast<std::size_t>(row) * 8],
            (static_cast<std::uint64_t>(value) % kPrime) + 1);
  return (h & 1) ? +1 : -1;
}

std::size_t AmsSketch::Bucket(int row, Value value) const {
  const std::uint64_t h =
      Poly4(&coefficients_[static_cast<std::size_t>(row) * 8 + 4],
            (static_cast<std::uint64_t>(value) % kPrime) + 1);
  return static_cast<std::size_t>(h % static_cast<std::uint64_t>(width_));
}

void AmsSketch::Update(Value value, std::int64_t delta) {
  for (int row = 0; row < depth_; ++row) {
    const std::size_t idx =
        static_cast<std::size_t>(row) * static_cast<std::size_t>(width_) +
        Bucket(row, value);
    counters_[idx] += Sign(row, value) * delta;
  }
}

double AmsSketch::EstimateF2() const {
  std::vector<double> row_estimates;
  row_estimates.reserve(static_cast<std::size_t>(depth_));
  for (int row = 0; row < depth_; ++row) {
    double sum_sq = 0.0;
    for (int col = 0; col < width_; ++col) {
      const auto c = static_cast<double>(
          counters_[static_cast<std::size_t>(row) *
                        static_cast<std::size_t>(width_) +
                    static_cast<std::size_t>(col)]);
      sum_sq += c * c;
    }
    row_estimates.push_back(sum_sq);
  }
  std::sort(row_estimates.begin(), row_estimates.end());
  const std::size_t mid = row_estimates.size() / 2;
  if (row_estimates.size() % 2 == 1) return row_estimates[mid];
  return 0.5 * (row_estimates[mid - 1] + row_estimates[mid]);
}

}  // namespace aqua
