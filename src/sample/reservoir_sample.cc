#include "sample/reservoir_sample.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqua {

ReservoirSample::ReservoirSample(std::int64_t capacity, std::uint64_t seed,
                                 ReservoirAlgorithm algorithm)
    : capacity_(capacity), algorithm_(algorithm), random_(seed) {
  AQUA_CHECK_GE(capacity, 1);
  points_.reserve(static_cast<std::size_t>(capacity));
}

Result<ReservoirSample> ReservoirSample::Restore(std::int64_t capacity,
                                                 std::uint64_t seed,
                                                 ReservoirAlgorithm algorithm,
                                                 std::int64_t observed,
                                                 std::vector<Value> points) {
  if (capacity < 1) {
    return Status::InvalidArgument("reservoir capacity must be >= 1");
  }
  if (observed < 0) {
    return Status::InvalidArgument("reservoir observed count negative");
  }
  const std::int64_t expected = std::min(observed, capacity);
  if (static_cast<std::int64_t>(points.size()) != expected) {
    return Status::InvalidArgument(
        "reservoir point count does not match min(observed, capacity)");
  }
  ReservoirSample sample(capacity, seed, algorithm);
  sample.points_ = std::move(points);
  sample.observed_ = observed;
  if (sample.SampleSize() == capacity) {
    sample.PrimeSkipAfterMerge();
  } else {
    sample.skip_ = 0;  // still filling; the transition in Insert() primes
  }
  return sample;
}

void ReservoirSample::Insert(Value value) {
  ++observed_;
  if (SampleSize() < capacity_) {
    points_.push_back(value);
    // Transitioning to the steady state: prime the skip counter.
    if (SampleSize() == capacity_ &&
        algorithm_ != ReservoirAlgorithm::kR) {
      if (algorithm_ == ReservoirAlgorithm::kX) {
        ComputeSkipX();
      } else {
        w_ = std::exp(std::log(random_.NextDoublePositive()) /
                      static_cast<double>(capacity_));
        ++cost_.coin_flips;
        ComputeSkipL();
      }
    }
    return;
  }
  if (algorithm_ == ReservoirAlgorithm::kR) {
    InsertAlgorithmR(value);
  } else {
    InsertWithSkips(value);
  }
}

void ReservoirSample::InsertAlgorithmR(Value value) {
  // Record t (1-based) replaces a uniformly random slot with prob m/t.
  const auto slot =
      static_cast<std::int64_t>(random_.UniformU64(
          static_cast<std::uint64_t>(observed_)));
  ++cost_.coin_flips;
  if (slot < capacity_) points_[static_cast<std::size_t>(slot)] = value;
}

void ReservoirSample::InsertWithSkips(Value value) {
  if (skip_ > 0) {
    --skip_;
    return;
  }
  Replace(value);
}

void ReservoirSample::Replace(Value value) {
  const auto slot = static_cast<std::size_t>(
      random_.UniformU64(static_cast<std::uint64_t>(capacity_)));
  ++cost_.coin_flips;
  points_[slot] = value;
  if (algorithm_ == ReservoirAlgorithm::kX) {
    ComputeSkipX();
  } else {
    ComputeSkipL();
    w_ *= std::exp(std::log(random_.NextDoublePositive()) /
                   static_cast<double>(capacity_));
    ++cost_.coin_flips;
  }
}

void ReservoirSample::InsertBatch(std::span<const Value> values) {
  std::size_t i = 0;
  const std::size_t n = values.size();
  // Fill phase (and the fill->steady transition) per element.
  while (i < n && SampleSize() < capacity_) Insert(values[i++]);
  if (algorithm_ == ReservoirAlgorithm::kR) {
    // Algorithm R draws per record; nothing to jump over.
    for (; i < n; ++i) Insert(values[i]);
    return;
  }
  while (i < n) {
    const auto left = static_cast<std::int64_t>(n - i);
    if (skip_ >= left) {
      // No replacement lands in the rest of this batch.
      skip_ -= left;
      observed_ += left;
      return;
    }
    // Jump straight to the next replaced record.  ComputeSkipX reads
    // observed_ as "records processed including this one", so advance it
    // before drawing.
    i += static_cast<std::size_t>(skip_);
    observed_ += skip_ + 1;
    skip_ = 0;
    Replace(values[i]);
    ++i;
  }
}

Status ReservoirSample::MergeFrom(const ReservoirSample& other) {
  if (&other == this) {
    return Status::InvalidArgument(
        "cannot merge a reservoir sample into itself");
  }
  const std::int64_t na = observed_;
  const std::int64_t nb = other.observed_;
  const std::int64_t n = na + nb;
  const std::int64_t m = std::min(capacity_, n);
  if (other.SampleSize() < std::min(m, nb)) {
    return Status::InvalidArgument(
        "other reservoir holds too few points to merge (smaller capacity)");
  }
  // A single reservoir of size m over the concatenated stream would hold
  // K ~ Hypergeometric(n, na, m) points of substream A; and a uniform
  // K-subset of this reservoir (itself a uniform subset of substream A) is
  // a uniform K-subset of substream A.  Draw K by sequential sampling
  // without replacement — O(m) draws, exact.
  std::int64_t k = 0;
  std::int64_t rem_a = na;
  std::int64_t rem_total = n;
  for (std::int64_t i = 0; i < m; ++i) {
    if (static_cast<std::int64_t>(random_.UniformU64(
            static_cast<std::uint64_t>(rem_total))) < rem_a) {
      ++k;
      --rem_a;
    }
    --rem_total;
  }
  // Uniform k-subset of ours + (m-k)-subset of theirs via partial
  // Fisher-Yates.
  std::vector<Value> merged;
  merged.reserve(static_cast<std::size_t>(m));
  auto take = [&](std::vector<Value> pool, std::int64_t want) {
    for (std::int64_t j = 0; j < want; ++j) {
      const auto pick =
          static_cast<std::size_t>(j) +
          static_cast<std::size_t>(random_.UniformU64(
              static_cast<std::uint64_t>(pool.size() - static_cast<std::size_t>(j))));
      std::swap(pool[static_cast<std::size_t>(j)], pool[pick]);
      merged.push_back(pool[static_cast<std::size_t>(j)]);
    }
  };
  take(points_, k);
  take(other.points_, m - k);
  points_ = std::move(merged);
  observed_ = n;
  if (SampleSize() == capacity_) {
    PrimeSkipAfterMerge();
  } else {
    skip_ = 0;  // still filling; the transition in Insert() will prime
  }
  return Status::OK();
}

void ReservoirSample::Reseed(std::uint64_t seed) {
  random_ = Random(seed);
  if (SampleSize() == capacity_) {
    // Steady state: the pending skip (and L's w_) came from the old
    // stream; re-derive them from the new one.  Exact for X; for L the
    // order-statistic re-draw is the same one MergeFrom uses.
    PrimeSkipAfterMerge();
  } else {
    skip_ = 0;  // still filling; the transition in Insert() will prime
  }
}

void ReservoirSample::PrimeSkipAfterMerge() {
  if (algorithm_ == ReservoirAlgorithm::kR) return;
  if (algorithm_ == ReservoirAlgorithm::kX) {
    // Algorithm X's skip distribution depends only on (t, m); exact.
    ComputeSkipX();
    return;
  }
  // Algorithm L's w_ is the m-th smallest of t uniform keys (the reservoir
  // holds the m smallest keys; a new record replaces when its key < w_).
  // Sample it exactly in m draws via the Renyi representation of descending
  // order statistics applied to the complemented keys:
  //   m-th smallest of t  =  1 - prod_{i=1..m} U_i^{1/(t-i+1)}.
  double prod = 1.0;
  const double t = static_cast<double>(observed_);
  for (std::int64_t i = 1; i <= capacity_; ++i) {
    prod *= std::exp(std::log(random_.NextDoublePositive()) /
                     (t - static_cast<double>(i) + 1.0));
    ++cost_.coin_flips;
  }
  w_ = 1.0 - prod;
  ComputeSkipL();
}

void ReservoirSample::ComputeSkipX() {
  // Algorithm X [Vit85]: with t records processed, the number of records to
  // skip before the next replacement is the smallest g >= 0 with
  //   prod_{i=1}^{g+1} (t + i - m) / (t + i)  <=  V,   V ~ U(0,1).
  // Found by sequential search; costs exactly one uniform draw.
  const double v = random_.NextDoublePositive();
  ++cost_.coin_flips;
  const double t = static_cast<double>(observed_);
  const double m = static_cast<double>(capacity_);
  double quot = (t + 1.0 - m) / (t + 1.0);
  std::int64_t g = 0;
  while (quot > v) {
    ++g;
    quot *= (t + 1.0 + static_cast<double>(g) - m) /
            (t + 1.0 + static_cast<double>(g));
  }
  skip_ = g;
}

void ReservoirSample::ComputeSkipL() {
  // Algorithm L: skip ~ floor(log U / log(1 - w)).
  const double u = random_.NextDoublePositive();
  ++cost_.coin_flips;
  const double denom = std::log1p(-w_);
  if (denom >= 0.0) {  // w_ == 0 can only arise from underflow
    skip_ = 0;
    return;
  }
  const double g = std::floor(std::log(u) / denom);
  skip_ = g < 0 ? 0 : static_cast<std::int64_t>(g);
}

}  // namespace aqua
