#include "sample/reservoir_sample.h"

#include <cmath>

#include "common/check.h"

namespace aqua {

ReservoirSample::ReservoirSample(std::int64_t capacity, std::uint64_t seed,
                                 ReservoirAlgorithm algorithm)
    : capacity_(capacity), algorithm_(algorithm), random_(seed) {
  AQUA_CHECK_GE(capacity, 1);
  points_.reserve(static_cast<std::size_t>(capacity));
}

void ReservoirSample::Insert(Value value) {
  ++observed_;
  if (SampleSize() < capacity_) {
    points_.push_back(value);
    // Transitioning to the steady state: prime the skip counter.
    if (SampleSize() == capacity_ &&
        algorithm_ != ReservoirAlgorithm::kR) {
      if (algorithm_ == ReservoirAlgorithm::kX) {
        ComputeSkipX();
      } else {
        w_ = std::exp(std::log(random_.NextDoublePositive()) /
                      static_cast<double>(capacity_));
        ++cost_.coin_flips;
        ComputeSkipL();
      }
    }
    return;
  }
  if (algorithm_ == ReservoirAlgorithm::kR) {
    InsertAlgorithmR(value);
  } else {
    InsertWithSkips(value);
  }
}

void ReservoirSample::InsertAlgorithmR(Value value) {
  // Record t (1-based) replaces a uniformly random slot with prob m/t.
  const auto slot =
      static_cast<std::int64_t>(random_.UniformU64(
          static_cast<std::uint64_t>(observed_)));
  ++cost_.coin_flips;
  if (slot < capacity_) points_[static_cast<std::size_t>(slot)] = value;
}

void ReservoirSample::InsertWithSkips(Value value) {
  if (skip_ > 0) {
    --skip_;
    return;
  }
  const auto slot = static_cast<std::size_t>(
      random_.UniformU64(static_cast<std::uint64_t>(capacity_)));
  ++cost_.coin_flips;
  points_[slot] = value;
  if (algorithm_ == ReservoirAlgorithm::kX) {
    ComputeSkipX();
  } else {
    ComputeSkipL();
    w_ *= std::exp(std::log(random_.NextDoublePositive()) /
                   static_cast<double>(capacity_));
    ++cost_.coin_flips;
  }
}

void ReservoirSample::ComputeSkipX() {
  // Algorithm X [Vit85]: with t records processed, the number of records to
  // skip before the next replacement is the smallest g >= 0 with
  //   prod_{i=1}^{g+1} (t + i - m) / (t + i)  <=  V,   V ~ U(0,1).
  // Found by sequential search; costs exactly one uniform draw.
  const double v = random_.NextDoublePositive();
  ++cost_.coin_flips;
  const double t = static_cast<double>(observed_);
  const double m = static_cast<double>(capacity_);
  double quot = (t + 1.0 - m) / (t + 1.0);
  std::int64_t g = 0;
  while (quot > v) {
    ++g;
    quot *= (t + 1.0 + static_cast<double>(g) - m) /
            (t + 1.0 + static_cast<double>(g));
  }
  skip_ = g;
}

void ReservoirSample::ComputeSkipL() {
  // Algorithm L: skip ~ floor(log U / log(1 - w)).
  const double u = random_.NextDoublePositive();
  ++cost_.coin_flips;
  const double denom = std::log1p(-w_);
  if (denom >= 0.0) {  // w_ == 0 can only arise from underflow
    skip_ = 0;
    return;
  }
  const double g = std::floor(std::log(u) / denom);
  skip_ = g < 0 ? 0 : static_cast<std::int64_t>(g);
}

}  // namespace aqua
