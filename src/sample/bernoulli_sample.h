#ifndef AQUA_SAMPLE_BERNOULLI_SAMPLE_H_
#define AQUA_SAMPLE_BERNOULLI_SAMPLE_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "random/random.h"
#include "random/skip_sampler.h"
#include "sample/synopsis.h"

namespace aqua {

/// A Bernoulli (binomial) sample: every inserted value is retained
/// independently with a fixed probability p.  Unlike a reservoir sample its
/// size is not bounded — it grows as p·n in expectation — so it is used as a
/// test fixture and as the reference process in statistical tests of the
/// threshold-based synopses (a concise sample under a *fixed* threshold τ is
/// exactly a Bernoulli(1/τ) sample in concise representation).
class BernoulliSample final : public Synopsis {
 public:
  BernoulliSample(double probability, std::uint64_t seed)
      : probability_(probability),
        random_(seed),
        skips_(random_, probability) {
    AQUA_CHECK(probability > 0.0 && probability <= 1.0);
  }

  std::string_view Name() const override { return "bernoulli-sample"; }

  void Insert(Value value) override {
    ++observed_;
    if (skips_.ShouldSelect(random_)) points_.push_back(value);
    cost_.coin_flips = skips_.DrawCount();
  }

  Words Footprint() const override {
    return static_cast<Words>(points_.size());
  }

  const UpdateCost& Cost() const override { return cost_; }

  std::int64_t ObservedInserts() const override { return observed_; }

  const std::vector<Value>& Points() const { return points_; }

  double probability() const { return probability_; }

 private:
  double probability_;
  Random random_;
  SkipSampler skips_;
  std::vector<Value> points_;
  std::int64_t observed_ = 0;
  UpdateCost cost_;
};

}  // namespace aqua

#endif  // AQUA_SAMPLE_BERNOULLI_SAMPLE_H_
