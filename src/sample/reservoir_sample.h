#ifndef AQUA_SAMPLE_RESERVOIR_SAMPLE_H_
#define AQUA_SAMPLE_RESERVOIR_SAMPLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "random/random.h"
#include "sample/synopsis.h"
#include "sample/update_cost.h"

namespace aqua {

/// Reservoir sampling algorithm variants [Vit85].
enum class ReservoirAlgorithm {
  /// Algorithm R: one uniform draw per stream record.
  kR,
  /// Algorithm X: geometric-style skip counting via sequential search; one
  /// uniform draw per *replacement*, not per record.  This is the variant
  /// the paper's "traditional" baseline uses and whose draw counts underlie
  /// Tables 1–2.
  kX,
  /// Algorithm L (Li 1994): skip counting in O(1) draws per replacement via
  /// inversion.  Post-dates the paper; serves the same role as Vitter's
  /// Algorithm Z (fewer draws for huge streams) with a simpler derivation.
  kL,
};

/// A traditional uniform random sample of fixed sample-size m maintained
/// under insertions with reservoir sampling [Vit85].
///
/// For a traditional sample the sample-size equals the footprint (§1.1): m
/// sample points occupy m words.  This is the baseline that concise and
/// counting samples are measured against.
class ReservoirSample final : public Synopsis {
 public:
  /// `capacity` = m ≥ 1 sample points; `seed` makes the stream reproducible.
  ReservoirSample(std::int64_t capacity, std::uint64_t seed,
                  ReservoirAlgorithm algorithm = ReservoirAlgorithm::kX);

  /// Rebuilds a sample from persisted state (the persist codec's entry
  /// point).  `points` must hold exactly min(observed, capacity) values —
  /// the invariant a live reservoir maintains; anything else is corrupt
  /// input and fails with InvalidArgument rather than aborting.  The
  /// restored sample draws from a fresh stream derived from `seed` with the
  /// skip state re-primed for the restored stream position, exactly like
  /// Reseed() on a copy.
  static Result<ReservoirSample> Restore(std::int64_t capacity,
                                         std::uint64_t seed,
                                         ReservoirAlgorithm algorithm,
                                         std::int64_t observed,
                                         std::vector<Value> points);

  std::string_view Name() const override { return "traditional-sample"; }

  void Insert(Value value) override;

  /// Observes a whole batch of stream records.  For Algorithms X/L the
  /// pending skip counter jumps over passed-over records in O(1)
  /// (cost O(#replacements + 1) per batch); Algorithm R still draws per
  /// record.  Draw-for-draw equivalent to per-element Insert().
  void InsertBatch(std::span<const Value> values);

  /// Merges `other` — a reservoir sample of a *disjoint* substream — into
  /// this sample, producing a uniform m-subset of the concatenated stream:
  /// the number of points kept from this side is drawn exactly
  /// hypergeometric (the count a single reservoir over the union would
  /// have), then uniform subsets of both reservoirs are unioned and the
  /// skip state is re-primed for the combined stream length.  Fails on
  /// self-merge, or if `other` holds fewer points than the union sample
  /// could need from it (its capacity is smaller than this one's).
  Status MergeFrom(const ReservoirSample& other);

  /// Replaces the private random stream with a fresh one derived from
  /// `seed` and re-primes the skip state (for X/L) from the new stream.
  /// The sample points are untouched and every future draw is independent
  /// of the old stream — used on copies (e.g. ShardedSynopsis::Snapshot)
  /// so they don't replay the original's randomness.
  void Reseed(std::uint64_t seed);

  /// Footprint = capacity in words (one word per sample point slot).  The
  /// paper charges the traditional baseline its full prespecified footprint.
  Words Footprint() const override { return capacity_; }

  const UpdateCost& Cost() const override { return cost_; }

  std::int64_t ObservedInserts() const override { return observed_; }

  /// Number of sample points currently held (= min(n, m)).
  std::int64_t SampleSize() const {
    return static_cast<std::int64_t>(points_.size());
  }

  std::int64_t Capacity() const { return capacity_; }

  /// The sample points, in reservoir order (not sorted).
  const std::vector<Value>& Points() const { return points_; }

  ReservoirAlgorithm algorithm() const { return algorithm_; }

 private:
  void InsertAlgorithmR(Value value);
  void InsertWithSkips(Value value);
  /// Replaces a uniformly random slot with `value` and draws the next skip.
  void Replace(Value value);
  void ComputeSkipX();
  void ComputeSkipL();
  /// Re-derives the skip state (and Algorithm L's w_) from scratch for the
  /// current observed_/capacity_ — used after a merge rewrites history.
  void PrimeSkipAfterMerge();

  std::int64_t capacity_;
  ReservoirAlgorithm algorithm_;
  Random random_;
  std::vector<Value> points_;
  std::int64_t observed_ = 0;
  // Records to pass over before the next replacement (Algorithms X/L).
  std::int64_t skip_ = 0;
  // Algorithm L state: running max-order-statistic surrogate.
  double w_ = 0.0;
  UpdateCost cost_;
};

}  // namespace aqua

#endif  // AQUA_SAMPLE_RESERVOIR_SAMPLE_H_
