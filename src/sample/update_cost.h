#ifndef AQUA_SAMPLE_UPDATE_COST_H_
#define AQUA_SAMPLE_UPDATE_COST_H_

#include <cstdint>

namespace aqua {

/// Abstract update-time overhead counters, exactly the measures the paper
/// reports in Tables 1 and 2:
///
///  - `coin_flips`: number of random draws performed by the maintenance
///    algorithm.  With skip counting, one geometric draw replaces a run of
///    Bernoulli flips and is counted once ("the number of coin flips is a
///    good measure of the update time overheads", §3.3).
///  - `lookups`: probes into the synopsis's lookup structure, including the
///    start-up phase where every insert is placed into the synopsis.
///  - `threshold_raises`: number of times the entry threshold was raised
///    (the "raises" column of Table 2).
struct UpdateCost {
  std::int64_t coin_flips = 0;
  std::int64_t lookups = 0;
  std::int64_t threshold_raises = 0;

  UpdateCost& operator+=(const UpdateCost& other) {
    coin_flips += other.coin_flips;
    lookups += other.lookups;
    threshold_raises += other.threshold_raises;
    return *this;
  }

  friend UpdateCost operator+(UpdateCost a, const UpdateCost& b) {
    a += b;
    return a;
  }

  /// Per-insert rates, as reported in Tables 1–2.
  double FlipsPerInsert(std::int64_t inserts) const {
    return inserts > 0 ? static_cast<double>(coin_flips) /
                             static_cast<double>(inserts)
                       : 0.0;
  }
  double LookupsPerInsert(std::int64_t inserts) const {
    return inserts > 0 ? static_cast<double>(lookups) /
                             static_cast<double>(inserts)
                       : 0.0;
  }
};

}  // namespace aqua

#endif  // AQUA_SAMPLE_UPDATE_COST_H_
