#ifndef AQUA_SAMPLE_CAPABILITIES_H_
#define AQUA_SAMPLE_CAPABILITIES_H_

#include <array>
#include <cstdint>

#include "common/types.h"

namespace aqua {

/// The query kinds an AQUA synopsis can answer (the paper's query classes:
/// hot lists §5, per-value frequencies §5.2, predicate counts §1.1,
/// distinct-value counts §2's [FM85] citation, and quantiles — one of §6's
/// "other concrete approximate answer scenarios" for uniform samples).
enum class QueryKind : int {
  kHotList = 0,
  kFrequency = 1,
  kCountWhere = 2,
  kDistinct = 3,
  kQuantile = 4,
};

inline constexpr int kNumQueryKinds = 5;

/// What a synopsis does when a delete arrives (§4.1).
enum class DeleteBehavior {
  /// Insert-only structure; deletes pass it by (the FM sketch — removing a
  /// value cannot clear a shared bitmap bit).
  kIgnores,
  /// Cannot be maintained under deletions; invalidated by the first delete
  /// so stale uniform samples are never served (concise/traditional
  /// samples, §4.1).
  kInvalidates,
  /// Applies the delete exactly (counting sample, Theorem 5; the full
  /// histogram).
  kApplies,
};

/// Accuracy-class value meaning "this synopsis does not answer that query
/// kind".
inline constexpr int kCannotAnswer = -1;

/// The static half of one query kind's cost/error model, as published
/// through SynopsisHandle::Capabilities(): where the synopsis sits in §6's
/// accuracy ordering (lower classes are more accurate and answer first when
/// a query carries no explicit bound; ties break by registration order).
/// The live half — the descriptor's error estimator evaluated on the
/// current state and the measured latency profile — is served by the
/// handle's PredictedError()/LatencyFor() because it changes per epoch.
struct KindModelInfo {
  int accuracy_class = kCannotAnswer;

  bool Answers() const { return accuracy_class != kCannotAnswer; }
};

/// Measured per-kind answer latency of one handle, split by serving path:
/// epoch-frozen FrozenView answers vs the descriptor's direct computation.
/// EWMAs of observed answer times (ns), fed by the registry's answer paths
/// and the planner; a path with zero observations has no profile yet and
/// the planner treats it as free (selection degenerates to the accuracy
/// ordering until profiles warm).
struct LatencyProfile {
  double view_ns = 0.0;
  double direct_ns = 0.0;
  std::int64_t view_observations = 0;
  std::int64_t direct_observations = 0;
};

/// Everything the registry needs to know about a synopsis besides how to
/// compute answers: delete semantics, concurrency-relevant traits (derived
/// from the synopsis type at registration), persistence, and the per-kind
/// model declarations implementing §6's "most accurate synopsis first"
/// ordering for unbounded queries.
struct SynopsisCapabilities {
  DeleteBehavior on_delete = DeleteBehavior::kIgnores;
  /// MergeFrom over disjoint substreams (gates sharded ingest).
  bool mergeable = false;
  /// Reseed of the private random stream (required for merged snapshots).
  bool reseedable = false;
  /// Synopsis-level InsertBatch fast path.
  bool batch_insertable = false;
  /// Has a persist encode/decode codec.
  bool persistable = false;
  /// This handle instance shards its ingest (concurrent mode + mergeable).
  bool sharded = false;
  std::array<KindModelInfo, kNumQueryKinds> model = {};

  int AccuracyClass(QueryKind kind) const {
    return model[static_cast<int>(kind)].accuracy_class;
  }
  bool Answers(QueryKind kind) const {
    return model[static_cast<int>(kind)].Answers();
  }
};

/// Stream-level context an answer computation needs beyond the synopsis
/// itself.
struct QueryContext {
  /// Size n of the observed stream (scales sample estimates to the
  /// relation).
  std::int64_t observed_inserts = 0;
};

}  // namespace aqua

#endif  // AQUA_SAMPLE_CAPABILITIES_H_
