#ifndef AQUA_SAMPLE_SYNOPSIS_H_
#define AQUA_SAMPLE_SYNOPSIS_H_

#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "sample/update_cost.h"

namespace aqua {

/// A synopsis data structure (§1, [GM97]): a small summary maintained inside
/// the approximate answer engine as new data is loaded into the warehouse.
///
/// The effectiveness metrics the paper defines for a synopsis are its
/// footprint (memory words), the accuracy of the answers it provides, its
/// response time, and its update time; Footprint() and Cost() expose the
/// first and last, while accuracy/response time are measured by the query
/// layer (hotlist/, estimate/).
class Synopsis {
 public:
  virtual ~Synopsis() = default;

  /// Short stable identifier, e.g. "concise-sample".
  virtual std::string_view Name() const = 0;

  /// Observes one inserted attribute value from the load stream.
  virtual void Insert(Value value) = 0;

  /// Observes one deleted attribute value.  Synopses that cannot handle
  /// deletions (e.g. concise samples, §4.1) return FailedPrecondition.
  virtual Status Delete(Value value) {
    (void)value;
    return Status::FailedPrecondition(
        std::string(Name()) + " does not support deletions");
  }

  /// Current memory footprint in words (paper §1).
  virtual Words Footprint() const = 0;

  /// Cumulative update-time overhead counters.
  virtual const UpdateCost& Cost() const = 0;

  /// Number of inserts observed so far (the warehouse size n under
  /// insert-only streams).
  virtual std::int64_t ObservedInserts() const = 0;
};

}  // namespace aqua

#endif  // AQUA_SAMPLE_SYNOPSIS_H_
