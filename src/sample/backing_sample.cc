#include "sample/backing_sample.h"

#include <algorithm>

#include "common/check.h"

namespace aqua {

BackingSample::BackingSample(std::int64_t capacity,
                             std::int64_t low_watermark, std::uint64_t seed)
    : capacity_(capacity), low_watermark_(low_watermark), random_(seed) {
  AQUA_CHECK_GE(capacity, 1);
  AQUA_CHECK_GE(low_watermark, 0);
  AQUA_CHECK_LE(low_watermark, capacity);
  points_.reserve(static_cast<std::size_t>(capacity));
}

void BackingSample::Insert(Value value) {
  ++observed_inserts_;
  ++relation_size_;
  if (SampleSize() < capacity_ && SampleSize() == relation_size_ - 1) {
    // Still in the phase where the sample holds the entire relation.
    points_.push_back(value);
    return;
  }
  if (SampleSize() < capacity_) {
    // Deletions shrank the sample below capacity: each new tuple enters
    // with probability sample-size/|R| to stay uniform ([GMP97b] §3.2-style
    // handling; the sample regrows only via Repopulate()).
    ++cost_.coin_flips;
    if (random_.Bernoulli(static_cast<double>(SampleSize() + 1) /
                          static_cast<double>(relation_size_))) {
      points_.push_back(value);
    }
    return;
  }
  // Standard reservoir step at capacity m over relation of size |R|.
  ++cost_.coin_flips;
  const auto j = static_cast<std::int64_t>(
      random_.UniformU64(static_cast<std::uint64_t>(relation_size_)));
  if (j < capacity_) points_[static_cast<std::size_t>(j)] = value;
}

Status BackingSample::Delete(Value value) {
  (void)value;
  return Status::FailedPrecondition(
      "backing-sample deletes need the pre-delete frequency; "
      "use DeleteWithFrequency");
}

Status BackingSample::DeleteWithFrequency(Value value,
                                          Count frequency_before) {
  if (frequency_before <= 0) {
    return Status::InvalidArgument(
        "delete of a value with non-positive frequency");
  }
  --relation_size_;
  ++cost_.lookups;
  const auto in_sample = static_cast<Count>(
      std::count(points_.begin(), points_.end(), value));
  if (in_sample == 0) return Status::OK();
  ++cost_.coin_flips;
  if (random_.Bernoulli(static_cast<double>(in_sample) /
                        static_cast<double>(frequency_before))) {
    auto it = std::find(points_.begin(), points_.end(), value);
    AQUA_DCHECK(it != points_.end());
    *it = points_.back();
    points_.pop_back();
  }
  return Status::OK();
}

void BackingSample::Repopulate(std::span<const Value> base_data) {
  points_.clear();
  relation_size_ = static_cast<std::int64_t>(base_data.size());
  const std::int64_t take =
      std::min<std::int64_t>(capacity_, relation_size_);
  // Floyd's algorithm for a uniform sample without replacement would need a
  // hash set; with m << n a partial Fisher-Yates over indices is simplest.
  std::vector<std::int64_t> indices(base_data.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<std::int64_t>(i);
  }
  for (std::int64_t i = 0; i < take; ++i) {
    const auto j = i + static_cast<std::int64_t>(random_.UniformU64(
                           static_cast<std::uint64_t>(
                               relation_size_ - i)));
    std::swap(indices[static_cast<std::size_t>(i)],
              indices[static_cast<std::size_t>(j)]);
    points_.push_back(base_data[static_cast<std::size_t>(
        indices[static_cast<std::size_t>(i)])]);
    ++cost_.coin_flips;
  }
}

}  // namespace aqua
