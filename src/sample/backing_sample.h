#ifndef AQUA_SAMPLE_BACKING_SAMPLE_H_
#define AQUA_SAMPLE_BACKING_SAMPLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "random/random.h"
#include "sample/synopsis.h"

namespace aqua {

/// A backing sample [GMP97b]: a uniform random sample of a relation that is
/// kept up-to-date under both insertions and deletions, used to refresh
/// derived synopses (e.g. equi-depth histograms, histogram/) without
/// touching the base data.  §2 notes "a concise sample could be used as a
/// backing sample, for more sample points for the same footprint"; this
/// class is the traditional-sample version we compare against.
///
/// Maintenance:
///  - Inserts follow reservoir sampling with respect to the current relation
///    size.
///  - A delete of value v removes one sample point holding v with
///    probability (#sample points with value v) / f_v, where f_v is the
///    value's frequency before the delete — exactly the probability that the
///    deleted tuple was one of the sampled tuples.  The caller supplies f_v
///    (the warehouse tracks exact frequencies).
///  - Deletions shrink the sample; when it drops below the low watermark the
///    owner must Repopulate() from the base data (the one operation
///    [GMP97b] cannot avoid).
class BackingSample final : public Synopsis {
 public:
  /// `capacity` = target sample-size m; `low_watermark` < capacity triggers
  /// NeedsRepopulation() once deletions shrink the sample below it.
  BackingSample(std::int64_t capacity, std::int64_t low_watermark,
                std::uint64_t seed);

  std::string_view Name() const override { return "backing-sample"; }

  void Insert(Value value) override;

  /// Unsupported without the frequency hint; use DeleteWithFrequency.
  Status Delete(Value value) override;

  /// Observes a delete of `value` whose frequency in the relation *before*
  /// the delete was `frequency_before`.
  Status DeleteWithFrequency(Value value, Count frequency_before);

  Words Footprint() const override { return capacity_; }
  const UpdateCost& Cost() const override { return cost_; }
  std::int64_t ObservedInserts() const override { return observed_inserts_; }

  std::int64_t SampleSize() const {
    return static_cast<std::int64_t>(points_.size());
  }
  const std::vector<Value>& Points() const { return points_; }

  bool NeedsRepopulation() const {
    return SampleSize() < low_watermark_ && relation_size_ > SampleSize();
  }

  /// Rebuilds the sample as a fresh uniform sample (without replacement) of
  /// `base_data`, which must be the relation's current contents.
  void Repopulate(std::span<const Value> base_data);

 private:
  std::int64_t capacity_;
  std::int64_t low_watermark_;
  Random random_;
  std::vector<Value> points_;
  std::int64_t observed_inserts_ = 0;
  std::int64_t relation_size_ = 0;  // inserts minus deletes
  UpdateCost cost_;
};

}  // namespace aqua

#endif  // AQUA_SAMPLE_BACKING_SAMPLE_H_
