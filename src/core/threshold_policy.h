#ifndef AQUA_CORE_THRESHOLD_POLICY_H_
#define AQUA_CORE_THRESHOLD_POLICY_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace aqua {

/// Snapshot of a synopsis's state handed to a threshold policy when the
/// footprint bound is hit and the entry threshold must be raised.
struct ThresholdRaiseContext {
  double threshold = 1.0;        // current τ
  Words footprint = 0;           // current footprint (= bound + 1)
  Words footprint_bound = 0;     // prespecified bound m
  std::int64_t sample_size = 0;  // Σ counts (concise) / Σ counts (counting)
  std::int64_t singletons = 0;   // entries with count == 1
  std::int64_t pairs = 0;        // entries with count >= 2
  /// Counts of all entries (present only for policies that need the exact
  /// count histogram, e.g. binary search); may be null.
  const std::vector<Count>* counts = nullptr;
};

/// Strategy for choosing the new threshold τ' > τ when raising (§3.1).
///
/// "The algorithm maintains a concise sample regardless of the sequence of
/// increasing thresholds used.  Thus, there is complete flexibility in
/// deciding, when raising the threshold, what the new threshold should be."
/// The trade-off: a large raise evicts more than needed (smaller
/// sample-size, fewer future raises); a small raise risks not decreasing
/// the footprint at all, forcing a repeat.
class ThresholdPolicy {
 public:
  virtual ~ThresholdPolicy() = default;
  virtual std::string_view Name() const = 0;
  /// Returns τ' > context.threshold.
  virtual double NextThreshold(const ThresholdRaiseContext& context) = 0;
  /// Whether this policy wants ThresholdRaiseContext::counts populated.
  virtual bool NeedsCounts() const { return false; }
};

/// τ' = factor · τ.  The paper's experiments use factor 1.1 ("whenever the
/// threshold is raised, the new threshold is set to 1.1τ").
class MultiplicativeThresholdPolicy final : public ThresholdPolicy {
 public:
  explicit MultiplicativeThresholdPolicy(double factor = 1.1);
  std::string_view Name() const override { return "multiplicative"; }
  double NextThreshold(const ThresholdRaiseContext& context) override;
  double factor() const { return factor_; }

 private:
  double factor_;
};

/// Sets τ' so that (1 - τ/τ') · #singletons >= desired decrease — the
/// paper's "setting the threshold so that (1 - τ/τ') times the number of
/// singletons is a lower bound on the desired decrease in the footprint".
/// Every evicted singleton frees exactly one word, so the expected decrease
/// is at least the target.  Falls back to a multiplicative raise when there
/// are too few singletons for the bound to be attainable.
class SingletonBoundThresholdPolicy final : public ThresholdPolicy {
 public:
  /// `target_decrease_fraction`: desired footprint decrease as a fraction of
  /// the bound (the paper leaves this free; a few percent works well).
  explicit SingletonBoundThresholdPolicy(double target_decrease_fraction =
                                             0.05,
                                         double fallback_factor = 1.1);
  std::string_view Name() const override { return "singleton-bound"; }
  double NextThreshold(const ThresholdRaiseContext& context) override;

 private:
  double target_fraction_;
  double fallback_factor_;
};

/// Binary search for the smallest τ' whose *expected* footprint decrease
/// meets the target — the paper's "using binary search to find a threshold
/// that will create the desired decrease in the footprint".  Uses the exact
/// per-entry expectation: an entry with count c, retained per-point with
/// probability r = τ/τ', loses
///   2·P[Bin(c,r)=0] + 1·P[Bin(c,r)=1]   words if it is a pair (c >= 2),
///   1·(1-r)                             words if it is a singleton.
class BinarySearchThresholdPolicy final : public ThresholdPolicy {
 public:
  explicit BinarySearchThresholdPolicy(double target_decrease_fraction = 0.05,
                                       double max_factor = 8.0);
  std::string_view Name() const override { return "binary-search"; }
  double NextThreshold(const ThresholdRaiseContext& context) override;
  bool NeedsCounts() const override { return true; }

  /// Expected footprint decrease if the threshold is raised from
  /// context.threshold to `new_threshold` (exposed for tests).
  static double ExpectedDecrease(const ThresholdRaiseContext& context,
                                 double new_threshold);

 private:
  double target_fraction_;
  double max_factor_;
};

/// The library default: ×1.1, matching the paper's experiments.
std::shared_ptr<ThresholdPolicy> DefaultThresholdPolicy();

}  // namespace aqua

#endif  // AQUA_CORE_THRESHOLD_POLICY_H_
