#ifndef AQUA_CORE_CONCISE_SAMPLE_BUILDER_H_
#define AQUA_CORE_CONCISE_SAMPLE_BUILDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/value_count.h"

namespace aqua {

/// Result of the offline/static extraction (§3): the concise representation
/// plus the bookkeeping the experiments report.
struct OfflineConciseSample {
  std::vector<ValueCount> entries;
  std::int64_t sample_size = 0;  // number of sample points taken (m')
  Words footprint = 0;
  /// Simulated disk accesses: the offline algorithm "typically takes
  /// multiple disk reads per tuple"; we charge Θ(1) access per sampled
  /// tuple (the paper's cost statement: "the cost is Θ(m') disk accesses").
  std::int64_t disk_accesses = 0;
};

/// The offline/static algorithm of §3 for extracting a concise sample of
/// footprint at most `footprint_bound` from a static relation: sample
/// random tuples with replacement, fold them into the concise
/// representation, and stop when either adding a sample point would push
/// the footprint to m+1 (that last point is ignored) or n samples have been
/// taken.
///
/// The plotted "concise offline" curve of Figure 3 is "the intrinsic
/// sample-size of concise samples for the given distribution"; the gap to
/// the online curve is the online algorithm's threshold-adjustment penalty.
OfflineConciseSample BuildOfflineConciseSample(std::span<const Value> data,
                                               Words footprint_bound,
                                               std::uint64_t seed);

}  // namespace aqua

#endif  // AQUA_CORE_CONCISE_SAMPLE_BUILDER_H_
