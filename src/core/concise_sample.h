#ifndef AQUA_CORE_CONCISE_SAMPLE_H_
#define AQUA_CORE_CONCISE_SAMPLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "container/flat_hash_map.h"
#include "core/threshold_policy.h"
#include "core/value_count.h"
#include "random/random.h"
#include "random/skip_sampler.h"
#include "sample/synopsis.h"

namespace aqua {

/// Options for a ConciseSample.
struct ConciseSampleOptions {
  /// Prespecified footprint bound m in memory words (Definition 2).
  Words footprint_bound = 1000;
  /// Seed for the synopsis's private random stream.
  std::uint64_t seed = 0x19980531ULL;
  /// Threshold-raise policy; null selects the paper's ×1.1 default.
  std::shared_ptr<ThresholdPolicy> policy;
  /// When false, disables geometric skip counting and flips a coin per
  /// stream element / per sample point — the naive baseline for the
  /// update-time ablation (bench/ablation_skip).  Statistically identical.
  bool use_skip_counting = true;
};

/// A concise sample (Definition 1): "a uniform random sample of the data
/// set such that values appearing more than once in the sample are
/// represented as a value and a count."
///
/// This class implements the incremental maintenance algorithm of §3.1 with
/// an entry threshold τ (initially 1):
///
///  - Each inserted tuple is selected with probability 1/τ (via geometric
///    skip counting — one draw per selected tuple).
///  - A selected value is looked up: a pair's count is incremented, a
///    singleton becomes a pair, an absent value becomes a singleton.  The
///    latter two grow the footprint by one word.
///  - When the footprint exceeds the prespecified bound, the threshold is
///    raised to τ' (policy-chosen, default 1.1τ) and every *sample point*
///    is retained independently with probability τ/τ' (again via skip
///    counting — one draw per evicted point).  If the footprint did not
///    shrink, the threshold is raised again.
///
/// Theorem 2: for any sequence of insertions and any sequence of increasing
/// thresholds, the result is a uniform random sample of the stream whose
/// selection probability is 1/τ.  Amortized expected update time is O(1)
/// per insert regardless of the data distribution.
///
/// Invariant glossary (Definition 2):
///   sample-size  = Σ counts                (represented sample points)
///   footprint    = #entries + #pairs       (memory words)
class ConciseSample final : public Synopsis {
 public:
  explicit ConciseSample(const ConciseSampleOptions& options);

  /// Restores a concise sample from persisted state (see persist/):
  /// `entries` with their counts, the threshold τ in force, and the number
  /// of observed inserts.  The options supply the footprint bound, policy
  /// and a *fresh* seed — the restored sample is statistically equivalent
  /// to the saved one but does not replay the saved random stream.
  /// Fails if the entries violate the footprint bound or have counts < 1.
  static Result<ConciseSample> Restore(const ConciseSampleOptions& options,
                                       double threshold,
                                       std::int64_t observed_inserts,
                                       const std::vector<ValueCount>& entries);

  std::string_view Name() const override { return "concise-sample"; }

  /// Observes one inserted value from the load stream.  O(1) amortized.
  void Insert(Value value) override;

  /// Observes a whole batch of inserted values.  Exploits the geometric
  /// skip counter to jump over unselected elements in O(1) each
  /// (SkipSampler::SkipAhead), so the cost is O(#selected + 1) per batch
  /// instead of one call (and one countdown decrement) per element; in the
  /// dense start-up regime (τ == 1, everything selected) the batch is
  /// funneled through the vector hash kernel in chunks instead.
  /// Draw-for-draw equivalent to calling Insert() on each element in order:
  /// the random stream, entries, threshold, and all counters end identical.
  void InsertBatch(std::span<const Value> values);

  /// InsertBatch with caller-supplied hashes (hashes[i] must equal
  /// IntegerHash{}(values[i]) — e.g. computed once by the shard router and
  /// reused here).  Identical behavior to InsertBatch.
  void InsertBatchPrehashed(std::span<const Value> values,
                            std::span<const std::uint64_t> hashes);

  /// Merges `other` — a concise sample of a *disjoint* substream — into
  /// this sample (Theorem 2 threshold alignment): both sides are aligned to
  /// τ' = max(τ_this, τ_other) by retaining each sample point independently
  /// with probability τ_i/τ', then the entries are unioned.  Since each
  /// side is a uniform sample of its substream with selection probability
  /// 1/τ_i, the union is a uniform sample of the concatenated stream with
  /// selection probability 1/τ'.  If the union overflows this sample's
  /// footprint bound, the threshold is raised further (the normal §3.1
  /// overflow path).  Fails on self-merge.
  Status MergeFrom(const ConciseSample& other);

  /// Replaces the private random stream with a fresh one derived from
  /// `seed` and redraws the pending skip.  The sample's contents are
  /// untouched and every future draw is independent of the old stream —
  /// used on copies (e.g. ShardedSynopsis::Snapshot) so they don't replay
  /// the original's randomness.  Resets the coin-flip counters.
  void Reseed(std::uint64_t seed);

  /// Footprint in words: #distinct represented values + #pairs.
  Words Footprint() const override { return footprint_; }

  const UpdateCost& Cost() const override;

  std::int64_t ObservedInserts() const override { return observed_; }

  /// Definition 2 sample-size: the number of sample points this concise
  /// representation stands for.  Always >= Footprint() - #pairs.
  std::int64_t SampleSize() const { return sample_size_; }

  /// Number of distinct values currently represented.
  std::int64_t DistinctValues() const {
    return static_cast<std::int64_t>(entries_.size());
  }

  /// Number of entries stored as <value, count> pairs (count >= 2).
  std::int64_t PairCount() const { return pairs_; }

  /// Current entry threshold τ.
  double Threshold() const { return threshold_; }

  Words FootprintBound() const { return footprint_bound_; }

  /// Sample count of `value` (0 if not in the sample).
  Count CountOf(Value value) const {
    const Count* c = entries_.Find(value);
    return c == nullptr ? 0 : *c;
  }

  /// Snapshot of all entries (unspecified order).
  std::vector<ValueCount> Entries() const;

  /// Expands the concise representation into the multiset of sample points
  /// it stands for (size = SampleSize()); for use as a plain uniform sample
  /// in any sampling-based estimator.
  std::vector<Value> ToPointSample() const;

  /// Verifies all internal accounting invariants (footprint, sample-size,
  /// pair count vs. the entry map).  For tests and debugging.
  Status Validate() const;

 private:
  void Select(Value value);
  void SelectPrehashed(Value value, std::uint64_t hash);
  void InsertBatchCore(std::span<const Value> values,
                       const std::uint64_t* hashes);
  void RaiseThreshold();
  /// Theorem-2 subsampling scan: retains each sample point independently
  /// with probability τ/new_threshold, then installs the new threshold and
  /// re-primes the skip counter.  Shared by RaiseThreshold and MergeFrom.
  void SubsampleTo(double new_threshold);

  Words footprint_bound_;
  bool use_skip_counting_;
  std::shared_ptr<ThresholdPolicy> policy_;
  Random random_;
  SkipSampler selector_;

  FlatHashMap<Value, Count> entries_;
  double threshold_ = 1.0;
  Words footprint_ = 0;
  std::int64_t sample_size_ = 0;
  std::int64_t pairs_ = 0;
  std::int64_t observed_ = 0;
  mutable UpdateCost cost_;
  std::vector<Count> scratch_counts_;  // reused by NeedsCounts policies
};

}  // namespace aqua

#endif  // AQUA_CORE_CONCISE_SAMPLE_H_
