#ifndef AQUA_CORE_BATCH_KERNELS_H_
#define AQUA_CORE_BATCH_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "core/value_count.h"

namespace aqua {

/// Vectorized kernels for the deterministic half of batch ingestion.
///
/// The paper's premise is that the per-update constant is the point; these
/// kernels shrink it by processing `std::span<const Value>` batches in
/// vector-width chunks.  Only *deterministic* work is vectorized — hashing
/// (the SplitMix64 finalizer every synopsis and the shard router share) and
/// shard routing — never the random stream, which is what keeps batched
/// ingestion draw-for-draw identical to per-element ingestion (the
/// equivalence the tests in tests/core/batch_kernels_test.cc pin
/// lane-for-lane against the scalar functor).
///
/// Kernel selection is at compile time: `__AVX2__` (4 × u64 lanes) when the
/// translation unit is built with -mavx2, else `__SSE2__` (2 lanes, baseline
/// on x86-64), else ARM NEON, else a portable scalar loop.  Defining
/// `AQUA_FORCE_SCALAR` (CMake -DAQUA_FORCE_SCALAR=ON) pins the scalar path
/// regardless of ISA — CI builds both legs and cross-checks them.

/// Name of the compiled-in kernel: "avx2", "sse2", "neon", or "scalar".
/// Recorded in benchmark JSON so numbers are attributable to a kernel.
std::string_view BatchKernelName();

/// hashes[i] = IntegerHash{}(values[i]) for all i — bit-identical per lane
/// to the scalar SplitMix64 finalizer in container/flat_hash_map.h.
/// `hashes` must have room for values.size() results.
void HashBatch(std::span<const Value> values, std::uint64_t* hashes);

/// routes[i] = hashes[i] % num_shards — the ShardedSynopsis kByValue route.
/// The modulo stays scalar (no 64-bit vector divide exists); the point of
/// the split is that the hash half is vector-width and the hashes are then
/// reused as map probe hashes downstream.
void RouteFromHashes(std::span<const std::uint64_t> hashes,
                     std::size_t num_shards, std::uint32_t* routes);

/// Reusable scratch for PartitionByShard: all vectors retain capacity across
/// calls so steady-state partitioning allocates nothing.
struct ShardPartitionScratch {
  std::vector<std::uint64_t> hashes;   ///< hash per input element
  std::vector<std::uint32_t> routes;   ///< shard route per input element
  std::vector<Value> values;           ///< values, grouped by shard
  std::vector<std::uint64_t> grouped_hashes;  ///< hashes, grouped like values
  std::vector<std::uint32_t> offsets;  ///< shard s owns [offsets[s], offsets[s+1])
  std::vector<std::uint32_t> cursors;  ///< scatter cursors (internal)
};

/// Stable counting-sort partition of `values` into per-shard contiguous
/// ranges: after the call, shard s's elements are
/// scratch.values[scratch.offsets[s] .. scratch.offsets[s+1]) with their
/// hashes alongside in scratch.grouped_hashes.  Stability preserves stream
/// order within each shard, so each shard's synopsis consumes its random
/// draws in exactly the order element-at-a-time routing would produce —
/// the sharded batch path stays draw-for-draw equivalent.
void PartitionByShard(std::span<const Value> values, std::size_t num_shards,
                      ShardPartitionScratch& scratch);

/// Exclusive prefix sums over entry counts: prefix[0] = 0,
/// prefix[i + 1] = prefix[i] + entries[i].count.  `prefix` must have room
/// for entries.size() + 1 results.  This is FrozenView's per-epoch prefix
/// rebuild — O(m) with the additions running vector-width (an in-register
/// scan plus a carried running total per chunk), and the dominant linear
/// cost of an incremental view patch once the sorts are amortized away.
/// Integer addition is associative, so every leg is bit-identical to the
/// scalar loop.
void ExclusivePrefixCounts(std::span<const ValueCount> entries,
                           std::int64_t* prefix);

/// Chunk size used by the samples' internal batch loops: big enough to
/// amortize the kernel call, small enough that the hash scratch stays in L1.
inline constexpr std::size_t kBatchChunk = 256;

}  // namespace aqua

#endif  // AQUA_CORE_BATCH_KERNELS_H_
