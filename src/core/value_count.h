#ifndef AQUA_CORE_VALUE_COUNT_H_
#define AQUA_CORE_VALUE_COUNT_H_

#include <vector>

#include "common/types.h"

namespace aqua {

/// A <value, count> pair — the unit of the concise representation
/// (Definition 1).  count == 1 denotes a singleton (1 word); count >= 2
/// denotes a pair (2 words).
struct ValueCount {
  Value value = 0;
  Count count = 0;

  friend bool operator==(const ValueCount& a, const ValueCount& b) {
    return a.value == b.value && a.count == b.count;
  }
};

/// Footprint of a set of entries under the paper's word model
/// (Definition 2): singletons cost 1 word, pairs cost 2.
inline Words FootprintOf(const std::vector<ValueCount>& entries) {
  Words words = 0;
  for (const ValueCount& e : entries) words += EntryWords(e.count);
  return words;
}

/// Sample-size of a set of entries (Definition 2): total represented
/// sample points.
inline std::int64_t SampleSizeOf(const std::vector<ValueCount>& entries) {
  std::int64_t total = 0;
  for (const ValueCount& e : entries) total += e.count;
  return total;
}

}  // namespace aqua

#endif  // AQUA_CORE_VALUE_COUNT_H_
