#ifndef AQUA_CORE_COUNTING_SAMPLE_H_
#define AQUA_CORE_COUNTING_SAMPLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "container/flat_hash_map.h"
#include "core/threshold_policy.h"
#include "core/value_count.h"
#include "random/random.h"
#include "sample/synopsis.h"

namespace aqua {

/// Options for a CountingSample.
struct CountingSampleOptions {
  /// Prespecified footprint bound m in memory words.
  Words footprint_bound = 1000;
  std::uint64_t seed = 0x19980531ULL;
  /// Threshold-raise policy; null selects the paper's ×1.1 default.
  std::shared_ptr<ThresholdPolicy> policy;
  /// Disable to flip per-event coins instead of geometric skips (ablation).
  bool use_skip_counting = true;
};

/// A counting sample (Definition 3): a concise-sample variant whose counts
/// track *all* occurrences of a value inserted since the value was selected
/// for the sample — "since we have set aside a memory word for a count, why
/// not count the subsequent occurrences exactly?"
///
/// Process semantics (for threshold τ): for a value occurring c > 0 times
/// in the relation, flip a coin with heads probability 1/τ per occurrence
/// until the first heads; if the i-th flip is heads the value is in the
/// sample with count c - i + 1, else it is absent.
///
/// Maintenance (§4.1):
///  - Insert: look up the value (a lookup on *every* insert — the price of
///    exact subsequent counting).  Present: increment.  Absent: admit with
///    probability 1/τ (skip counting across absent-value inserts keeps this
///    to one draw per admission).
///  - Footprint overflow: raise τ to τ'; for each sample value flip first a
///    coin with heads probability τ/τ', then coins with heads probability
///    1/τ', decrementing the count on each tails until a heads or zero
///    (zero removes the value).
///  - Delete: decrement the count if present (Theorem 5 shows correctness —
///    the key advantage over concise samples, which cannot handle deletes).
///
/// Theorem 6: a value with frequency f_v is in the sample with probability
/// 1 - (1 - 1/τ)^{f_v}, and frequent values' counts are accurate to within
/// the one-time pre-selection loss (compensated by ĉ in hotlist/).
class CountingSample final : public Synopsis {
 public:
  explicit CountingSample(const CountingSampleOptions& options);

  /// Restores a counting sample from persisted state (see persist/).  The
  /// options supply the footprint bound, policy and a fresh seed; the
  /// restored sample is statistically equivalent to the saved one.  Fails
  /// if the entries violate the footprint bound or have counts < 1.
  static Result<CountingSample> Restore(
      const CountingSampleOptions& options, double threshold,
      std::int64_t observed_inserts, const std::vector<ValueCount>& entries);

  std::string_view Name() const override { return "counting-sample"; }

  /// Observes one inserted value.  Performs exactly one lookup.
  void Insert(Value value) override;

  /// Observes a whole batch of inserted values.  A counting sample must
  /// look up *every* insert (§4.1 — the price of exact subsequent
  /// counting), so unlike ConciseSample::InsertBatch there is no
  /// skip-ahead; instead the batch path hashes each chunk with the vector
  /// kernel (core/batch_kernels.h), prefetches the probe a few elements
  /// ahead, and probes with the precomputed hash.  Only the deterministic
  /// lookup is vectorized — draw-for-draw equivalent to per-element
  /// Insert().
  void InsertBatch(std::span<const Value> values);

  /// InsertBatch with caller-supplied hashes (hashes[i] must equal
  /// IntegerHash{}(values[i]) — e.g. reused from the shard router).
  void InsertBatchPrehashed(std::span<const Value> values,
                            std::span<const std::uint64_t> hashes);

  /// Counting samples look up *every* insert, so prehashing a batch ahead
  /// of the shard lock is always profitable (see ShardedSynopsis).
  static constexpr bool kHashesEveryInsert = true;

  /// Observes one deleted value.  O(1) expected; never fails.
  Status Delete(Value value) override;

  Words Footprint() const override { return footprint_; }
  const UpdateCost& Cost() const override;
  std::int64_t ObservedInserts() const override { return observed_; }

  /// Total counted occurrences (Σ counts).  Unlike a concise sample this is
  /// *not* a uniform-sample size; use ToConciseEntries() for that.
  std::int64_t CountedOccurrences() const { return counted_; }

  std::int64_t DistinctValues() const {
    return static_cast<std::int64_t>(entries_.size());
  }
  std::int64_t PairCount() const { return pairs_; }
  double Threshold() const { return threshold_; }
  Words FootprintBound() const { return footprint_bound_; }

  Count CountOf(Value value) const {
    const Count* c = entries_.Find(value);
    return c == nullptr ? 0 : *c;
  }

  /// Snapshot of all entries (unspecified order).
  std::vector<ValueCount> Entries() const;

  /// Converts to a concise sample (§4, "Obtaining a concise sample from a
  /// counting sample") without touching base data: each pair <v, c> keeps
  /// its first (selected) occurrence and each of the other c-1 counted
  /// occurrences independently with probability 1/τ.  The result is a
  /// uniform random sample with selection probability 1/τ.
  std::vector<ValueCount> ToConciseEntries(std::uint64_t seed) const;

  /// Verifies internal accounting invariants.
  Status Validate() const;

 private:
  void InsertPrehashed(Value value, std::uint64_t hash);
  void Admit(Value value, std::uint64_t hash);
  void RaiseThreshold();

  Words footprint_bound_;
  bool use_skip_counting_;
  std::shared_ptr<ThresholdPolicy> policy_;
  Random random_;

  FlatHashMap<Value, Count> entries_;
  double threshold_ = 1.0;
  Words footprint_ = 0;
  std::int64_t counted_ = 0;
  std::int64_t pairs_ = 0;
  std::int64_t observed_ = 0;
  // Skip counter across *absent-value* inserts: number of further
  // admission trials to pass over before the next admission.
  std::int64_t admission_skip_ = 0;
  mutable UpdateCost cost_;
  std::vector<Count> scratch_counts_;
};

}  // namespace aqua

#endif  // AQUA_CORE_COUNTING_SAMPLE_H_
