#include "core/concise_sample.h"

#include <algorithm>

#include "common/check.h"
#include "core/batch_kernels.h"

namespace aqua {

namespace {

// The entry table is pre-sized to the footprint bound once, at
// construction: entries can never exceed the bound, so the table never
// rehashes mid-stream (batches never rehash mid-flight) and — critically —
// its slot layout evolves identically whether the stream arrives
// per-element or batched, which the draw-for-draw equivalence of the
// threshold-raise eviction scan depends on.  Capped so a pathological
// bound cannot pre-allocate unbounded memory (above the cap the table
// grows by doubling, still deterministically in both paths).
std::size_t PresizeEntries(Words footprint_bound) {
  return static_cast<std::size_t>(
      std::min<Words>(footprint_bound, Words{1} << 20));
}

}  // namespace

ConciseSample::ConciseSample(const ConciseSampleOptions& options)
    : footprint_bound_(options.footprint_bound),
      use_skip_counting_(options.use_skip_counting),
      policy_(options.policy ? options.policy : DefaultThresholdPolicy()),
      random_(options.seed),
      selector_(random_, 1.0),
      entries_(PresizeEntries(options.footprint_bound)) {
  AQUA_CHECK_GE(footprint_bound_, 2)
      << "a concise sample needs at least 2 words (one pair)";
}

Result<ConciseSample> ConciseSample::Restore(
    const ConciseSampleOptions& options, double threshold,
    std::int64_t observed_inserts, const std::vector<ValueCount>& entries) {
  if (threshold < 1.0) {
    return Status::InvalidArgument("restored threshold below 1");
  }
  if (observed_inserts < 0) {
    return Status::InvalidArgument("negative observed insert count");
  }
  ConciseSample sample(options);
  for (const ValueCount& e : entries) {
    if (e.count < 1) {
      return Status::InvalidArgument("restored entry with count < 1");
    }
    auto [count, inserted] = sample.entries_.TryInsert(e.value, e.count);
    if (!inserted) {
      return Status::InvalidArgument("duplicate value in restored entries");
    }
    (void)count;
    sample.footprint_ += EntryWords(e.count);
    sample.sample_size_ += e.count;
    if (e.count > 1) ++sample.pairs_;
  }
  if (sample.footprint_ > sample.footprint_bound_) {
    return Status::InvalidArgument(
        "restored entries exceed the footprint bound");
  }
  sample.threshold_ = threshold;
  sample.observed_ = observed_inserts;
  sample.selector_.Reset(sample.random_, 1.0 / threshold);
  return sample;
}

void ConciseSample::Insert(Value value) {
  ++observed_;
  if (use_skip_counting_) {
    if (!selector_.ShouldSelect(random_)) return;
  } else {
    // Naive per-element coin flip (ablation baseline).
    if (!random_.Bernoulli(1.0 / threshold_)) return;
  }
  Select(value);
  // The insertion may have grown the footprint past the bound; create room.
  // Each insertion adds at most one word, and a successful raise removes at
  // least one, so the loop re-raises only when a raise failed to shrink
  // the footprint ("if the footprint has not decreased, we raise the
  // threshold and try again").
  while (footprint_ > footprint_bound_) RaiseThreshold();
}

void ConciseSample::InsertBatch(std::span<const Value> values) {
  InsertBatchCore(values, nullptr);
}

void ConciseSample::InsertBatchPrehashed(
    std::span<const Value> values, std::span<const std::uint64_t> hashes) {
  AQUA_DCHECK_EQ(values.size(), hashes.size());
  InsertBatchCore(values, hashes.data());
}

void ConciseSample::InsertBatchCore(std::span<const Value> values,
                                    const std::uint64_t* hashes) {
  if (!use_skip_counting_) {
    // The ablation baseline flips one coin per element anyway; nothing to
    // amortize beyond the call overhead.
    for (Value v : values) Insert(v);
    return;
  }
  std::size_t i = 0;
  const std::size_t n = values.size();
  // Dense start-up regime: at τ == 1 every element is selected and the
  // selector consumes no randomness at all, so the chunk funnels straight
  // through the vector hash kernel with the probe prefetched a few
  // elements ahead.  Draw-for-draw identical to per-element Insert(),
  // which also takes no draws at τ == 1.
  while (i < n && threshold_ == 1.0) {
    std::uint64_t chunk_hashes[kBatchChunk];
    const std::size_t m = std::min(n - i, kBatchChunk);
    const std::uint64_t* h = hashes != nullptr ? hashes + i : chunk_hashes;
    if (hashes == nullptr) HashBatch(values.subspan(i, m), chunk_hashes);
    std::size_t j = 0;
    while (j < m && threshold_ == 1.0) {
      if (j + 8 < m) entries_.PrefetchHash(h[j + 8]);
      ++observed_;
      SelectPrehashed(values[i + j], h[j]);
      ++j;
      while (footprint_ > footprint_bound_) RaiseThreshold();
    }
    i += j;
  }
  while (i < n) {
    const auto left = static_cast<std::int64_t>(n - i);
    const std::int64_t pending = selector_.PendingSkip();
    if (pending >= left) {
      // No selection lands in the rest of this batch: fast-forward and done.
      selector_.SkipAhead(left);
      observed_ += left;
      return;
    }
    // Jump straight to the next selected element.
    selector_.SkipAhead(pending);
    i += static_cast<std::size_t>(pending);
    observed_ += pending + 1;
    const bool selected = selector_.ShouldSelect(random_);
    AQUA_DCHECK(selected);
    (void)selected;
    if (hashes != nullptr) {
      SelectPrehashed(values[i], hashes[i]);
    } else {
      Select(values[i]);
    }
    ++i;
    // Same per-selection overflow handling as Insert(): footprint checks
    // are already amortized to one per *selected* element.
    while (footprint_ > footprint_bound_) RaiseThreshold();
  }
}

Status ConciseSample::MergeFrom(const ConciseSample& other) {
  if (&other == this) {
    return Status::InvalidArgument("cannot merge a concise sample into itself");
  }
  // Align this side to τ' = max(τ, τ_other) (no-op when already there).
  const double target = std::max(threshold_, other.threshold_);
  if (target > threshold_) SubsampleTo(target);

  // Align the incoming side while unioning: each of an entry's count points
  // survives independently with probability τ_other/τ' (an exact binomial
  // draw — the batch counterpart of per-point coins).  The union can
  // transiently exceed the footprint bound before the overflow path trims
  // it back, so reserve its upper bound up front — the merge scan never
  // rehashes mid-flight.
  entries_.Reserve(entries_.size() + other.entries_.size());
  const double keep = other.threshold_ / target;
  for (const auto& entry : other.entries_) {
    const Count kept =
        keep >= 1.0 ? entry.value
                    : static_cast<Count>(random_.Binomial(entry.value, keep));
    if (kept == 0) continue;
    auto [count, inserted] = entries_.TryInsert(entry.key, kept);
    if (inserted) {
      footprint_ += EntryWords(kept);
      if (kept > 1) ++pairs_;
    } else {
      if (*count == 1) {
        footprint_ += 1;  // singleton -> pair: the count word materializes
        ++pairs_;
      }
      *count += kept;
    }
    sample_size_ += kept;
  }
  observed_ += other.observed_;
  // The union may overflow this sample's bound; the normal overflow path
  // restores the invariant (and keeps uniformity, Theorem 2).
  while (footprint_ > footprint_bound_) RaiseThreshold();
  return Status::OK();
}

void ConciseSample::Reseed(std::uint64_t seed) {
  random_ = Random(seed);
  // The pending skip was drawn from the old stream; redraw it so nothing
  // of the old randomness survives.
  if (use_skip_counting_) selector_.Reset(random_, 1.0 / threshold_);
}

void ConciseSample::Select(Value value) {
  SelectPrehashed(value, IntegerHash{}(value));
}

void ConciseSample::SelectPrehashed(Value value, std::uint64_t hash) {
  ++cost_.lookups;
  auto [count, inserted] = entries_.TryInsertPrehashed(value, hash, 1);
  if (inserted) {
    // New singleton: one more word, one more sample point.
    footprint_ += 1;
    sample_size_ += 1;
    return;
  }
  if (*count == 1) {
    // Singleton -> pair: the count word materializes.
    footprint_ += 1;
    ++pairs_;
  }
  *count += 1;
  sample_size_ += 1;
}

void ConciseSample::RaiseThreshold() {
  ++cost_.threshold_raises;
  ThresholdRaiseContext context;
  context.threshold = threshold_;
  context.footprint = footprint_;
  context.footprint_bound = footprint_bound_;
  context.sample_size = sample_size_;
  context.pairs = pairs_;
  context.singletons = DistinctValues() - pairs_;
  if (policy_->NeedsCounts()) {
    scratch_counts_.clear();
    scratch_counts_.reserve(entries_.size());
    for (const auto& entry : entries_) scratch_counts_.push_back(entry.value);
    context.counts = &scratch_counts_;
  }
  const double new_threshold = policy_->NextThreshold(context);
  AQUA_CHECK(new_threshold > threshold_)
      << "threshold policy must strictly increase the threshold";
  SubsampleTo(new_threshold);
}

void ConciseSample::SubsampleTo(double new_threshold) {
  AQUA_DCHECK_GT(new_threshold, threshold_);
  // Subject each of the sample-size(S) points to the stricter threshold:
  // retain independently with probability τ/τ'.  The concise representation
  // flattens to a sequence of sample points (an entry with count c spans c
  // positions); eviction positions arrive with geometric gaps so the number
  // of draws is one per evicted point, not one per point.
  const double evict_probability = 1.0 - threshold_ / new_threshold;
  std::int64_t position = 0;  // start of the current entry's point range
  std::int64_t next_evict =
      use_skip_counting_ ? random_.Geometric(evict_probability) : 0;
  entries_.RetainIf([&](Value /*key*/, Count& count) {
    const std::int64_t end = position + count;
    Count evicted = 0;
    if (use_skip_counting_) {
      while (next_evict < end) {
        ++evicted;
        next_evict += 1 + random_.Geometric(evict_probability);
        if (evicted == count) {
          // All points of this entry are gone; fast-forward is implicit.
          break;
        }
      }
      // A break above may leave next_evict inside this entry's range even
      // though no points remain; re-align it past the range.
      while (next_evict < end) {
        next_evict += 1 + random_.Geometric(evict_probability);
      }
    } else {
      for (Count i = 0; i < count; ++i) {
        if (random_.Bernoulli(evict_probability)) ++evicted;
      }
    }
    position = end;

    if (evicted == 0) return true;
    const Count new_count = count - evicted;
    sample_size_ -= evicted;
    if (new_count == 0) {
      // Entry removed: a singleton frees 1 word, a pair frees 2.
      footprint_ -= EntryWords(count);
      if (count > 1) --pairs_;
      return false;
    }
    if (count > 1 && new_count == 1) {
      // Pair reverts to singleton: the count word is freed.
      footprint_ -= 1;
      --pairs_;
    }
    count = new_count;
    return true;
  });

  threshold_ = new_threshold;
  if (use_skip_counting_) selector_.Reset(random_, 1.0 / threshold_);
}

const UpdateCost& ConciseSample::Cost() const {
  cost_.coin_flips = random_.FlipCount();
  return cost_;
}

std::vector<ValueCount> ConciseSample::Entries() const {
  std::vector<ValueCount> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(ValueCount{entry.key, entry.value});
  }
  return out;
}

std::vector<Value> ConciseSample::ToPointSample() const {
  std::vector<Value> points;
  points.reserve(static_cast<std::size_t>(sample_size_));
  for (const auto& entry : entries_) {
    for (Count i = 0; i < entry.value; ++i) points.push_back(entry.key);
  }
  return points;
}

Status ConciseSample::Validate() const {
  Words footprint = 0;
  std::int64_t sample_size = 0;
  std::int64_t pairs = 0;
  for (const auto& entry : entries_) {
    if (entry.value < 1) {
      return Status::Internal("entry with non-positive count");
    }
    footprint += EntryWords(entry.value);
    sample_size += entry.value;
    if (entry.value > 1) ++pairs;
  }
  if (footprint != footprint_) {
    return Status::Internal("footprint accounting mismatch");
  }
  if (sample_size != sample_size_) {
    return Status::Internal("sample-size accounting mismatch");
  }
  if (pairs != pairs_) {
    return Status::Internal("pair-count accounting mismatch");
  }
  if (footprint_ > footprint_bound_) {
    return Status::Internal("footprint exceeds bound");
  }
  return Status::OK();
}

}  // namespace aqua
