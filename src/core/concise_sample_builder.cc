#include "core/concise_sample_builder.h"

#include "common/check.h"
#include "container/flat_hash_map.h"
#include "random/random.h"

namespace aqua {

OfflineConciseSample BuildOfflineConciseSample(std::span<const Value> data,
                                               Words footprint_bound,
                                               std::uint64_t seed) {
  AQUA_CHECK_GE(footprint_bound, 2);
  OfflineConciseSample out;
  if (data.empty()) return out;

  Random random(seed);
  FlatHashMap<Value, Count> entries;
  Words footprint = 0;
  const auto n = static_cast<std::int64_t>(data.size());

  for (std::int64_t taken = 0; taken < n; ++taken) {
    const Value v = data[static_cast<std::size_t>(
        random.UniformU64(static_cast<std::uint64_t>(n)))];
    ++out.disk_accesses;  // one random tuple fetched from disk

    Count* count = entries.Find(v);
    // Words this sample point adds: 1 for a new singleton, 1 for the count
    // word when a singleton becomes a pair, 0 for incrementing a pair.
    const Words added = (count == nullptr) ? 1 : (*count == 1 ? 1 : 0);
    if (footprint + added > footprint_bound) {
      // "adding the sample point would increase the concise sample
      // footprint to m+1 (in which case this last attribute value is
      // ignored)."
      break;
    }
    if (count == nullptr) {
      entries.TryInsert(v, 1);
    } else {
      *count += 1;
    }
    footprint += added;
    ++out.sample_size;
  }

  out.entries.reserve(entries.size());
  for (const auto& entry : entries) {
    out.entries.push_back(ValueCount{entry.key, entry.value});
  }
  out.footprint = footprint;
  return out;
}

}  // namespace aqua
