#include "core/threshold_policy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqua {

MultiplicativeThresholdPolicy::MultiplicativeThresholdPolicy(double factor)
    : factor_(factor) {
  AQUA_CHECK(factor > 1.0) << "raise factor must exceed 1";
}

double MultiplicativeThresholdPolicy::NextThreshold(
    const ThresholdRaiseContext& context) {
  return context.threshold * factor_;
}

SingletonBoundThresholdPolicy::SingletonBoundThresholdPolicy(
    double target_decrease_fraction, double fallback_factor)
    : target_fraction_(target_decrease_fraction),
      fallback_factor_(fallback_factor) {
  AQUA_CHECK(target_decrease_fraction > 0.0 &&
             target_decrease_fraction < 1.0);
  AQUA_CHECK(fallback_factor > 1.0);
}

double SingletonBoundThresholdPolicy::NextThreshold(
    const ThresholdRaiseContext& context) {
  const double target = std::max(
      1.0, target_fraction_ * static_cast<double>(context.footprint_bound));
  const auto singletons = static_cast<double>(context.singletons);
  // Need (1 - τ/τ') · singletons >= target  =>  τ' >= τ / (1 - target/s).
  if (singletons <= target) {
    return context.threshold * fallback_factor_;
  }
  const double keep = 1.0 - target / singletons;
  const double candidate = context.threshold / keep;
  // Never raise by less than the fallback would in degenerate cases.
  return std::max(candidate, std::nextafter(context.threshold, 1e300));
}

BinarySearchThresholdPolicy::BinarySearchThresholdPolicy(
    double target_decrease_fraction, double max_factor)
    : target_fraction_(target_decrease_fraction), max_factor_(max_factor) {
  AQUA_CHECK(target_decrease_fraction > 0.0 &&
             target_decrease_fraction < 1.0);
  AQUA_CHECK(max_factor > 1.0);
}

double BinarySearchThresholdPolicy::ExpectedDecrease(
    const ThresholdRaiseContext& context, double new_threshold) {
  const double r = context.threshold / new_threshold;  // per-point retention
  double expected = 0.0;
  if (context.counts != nullptr) {
    for (Count c : *context.counts) {
      if (c <= 1) {
        expected += 1.0 - r;
      } else {
        // P[Bin(c, r) = 0] = (1-r)^c ; P[Bin(c, r) = 1] = c r (1-r)^{c-1}.
        const double p0 = std::pow(1.0 - r, static_cast<double>(c));
        const double p1 = static_cast<double>(c) * r *
                          std::pow(1.0 - r, static_cast<double>(c - 1));
        expected += 2.0 * p0 + p1;
      }
    }
  } else {
    // Without the count histogram, fall back to the singleton lower bound.
    expected = (1.0 - r) * static_cast<double>(context.singletons);
  }
  return expected;
}

double BinarySearchThresholdPolicy::NextThreshold(
    const ThresholdRaiseContext& context) {
  const double target = std::max(
      1.0, target_fraction_ * static_cast<double>(context.footprint_bound));
  double lo = context.threshold * 1.0001;
  double hi = context.threshold * max_factor_;
  if (ExpectedDecrease(context, hi) < target) return hi;
  for (int iter = 0; iter < 50; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ExpectedDecrease(context, mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::shared_ptr<ThresholdPolicy> DefaultThresholdPolicy() {
  return std::make_shared<MultiplicativeThresholdPolicy>(1.1);
}

}  // namespace aqua
