#include "core/counting_sample.h"

#include <algorithm>

#include "common/check.h"
#include "core/batch_kernels.h"

namespace aqua {

namespace {

// Pre-size the entry table to the footprint bound (capped) so it never
// rehashes mid-stream and its slot layout evolves identically in the
// per-element and batched paths — see the matching helper in
// concise_sample.cc for why that matters.
std::size_t PresizeEntries(Words footprint_bound) {
  return static_cast<std::size_t>(
      std::min<Words>(footprint_bound, Words{1} << 20));
}

}  // namespace

CountingSample::CountingSample(const CountingSampleOptions& options)
    : footprint_bound_(options.footprint_bound),
      use_skip_counting_(options.use_skip_counting),
      policy_(options.policy ? options.policy : DefaultThresholdPolicy()),
      random_(options.seed),
      entries_(PresizeEntries(options.footprint_bound)) {
  AQUA_CHECK_GE(footprint_bound_, 2)
      << "a counting sample needs at least 2 words (one pair)";
}

Result<CountingSample> CountingSample::Restore(
    const CountingSampleOptions& options, double threshold,
    std::int64_t observed_inserts, const std::vector<ValueCount>& entries) {
  if (threshold < 1.0) {
    return Status::InvalidArgument("restored threshold below 1");
  }
  if (observed_inserts < 0) {
    return Status::InvalidArgument("negative observed insert count");
  }
  CountingSample sample(options);
  for (const ValueCount& e : entries) {
    if (e.count < 1) {
      return Status::InvalidArgument("restored entry with count < 1");
    }
    auto [count, inserted] = sample.entries_.TryInsert(e.value, e.count);
    if (!inserted) {
      return Status::InvalidArgument("duplicate value in restored entries");
    }
    (void)count;
    sample.footprint_ += EntryWords(e.count);
    sample.counted_ += e.count;
    if (e.count > 1) ++sample.pairs_;
  }
  if (sample.footprint_ > sample.footprint_bound_) {
    return Status::InvalidArgument(
        "restored entries exceed the footprint bound");
  }
  sample.threshold_ = threshold;
  sample.observed_ = observed_inserts;
  if (threshold > 1.0 && sample.use_skip_counting_) {
    sample.admission_skip_ = sample.random_.Geometric(1.0 / threshold);
  }
  return sample;
}

void CountingSample::Insert(Value value) {
  InsertPrehashed(value, IntegerHash{}(value));
}

void CountingSample::InsertPrehashed(Value value, std::uint64_t hash) {
  ++observed_;
  // "unlike concise samples, they perform a look-up (into the counting
  // sample) at each update to the data warehouse."
  ++cost_.lookups;
  Count* count = entries_.FindPrehashed(value, hash);
  if (count != nullptr) {
    if (*count == 1) {
      footprint_ += 1;  // singleton -> pair
      ++pairs_;
    }
    *count += 1;
    ++counted_;
    while (footprint_ > footprint_bound_) RaiseThreshold();
    return;
  }
  // Absent value: admit with probability 1/τ.  τ == 1 admits everything
  // without randomness (the start-up phase).
  if (threshold_ <= 1.0) {
    Admit(value, hash);
    return;
  }
  if (use_skip_counting_) {
    // One geometric draw per admission, amortized over the subsequence of
    // absent-value inserts.
    if (admission_skip_ > 0) {
      --admission_skip_;
      return;
    }
    Admit(value, hash);
    admission_skip_ = random_.Geometric(1.0 / threshold_);
  } else {
    if (random_.Bernoulli(1.0 / threshold_)) Admit(value, hash);
  }
}

void CountingSample::InsertBatch(std::span<const Value> values) {
  while (!values.empty()) {
    std::uint64_t hashes[kBatchChunk];
    const std::size_t n = std::min(values.size(), kBatchChunk);
    HashBatch(values.first(n), hashes);
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 8 < n) entries_.PrefetchHash(hashes[i + 8]);
      InsertPrehashed(values[i], hashes[i]);
    }
    values = values.subspan(n);
  }
}

void CountingSample::InsertBatchPrehashed(
    std::span<const Value> values, std::span<const std::uint64_t> hashes) {
  AQUA_DCHECK_EQ(values.size(), hashes.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i + 8 < values.size()) entries_.PrefetchHash(hashes[i + 8]);
    InsertPrehashed(values[i], hashes[i]);
  }
}

void CountingSample::Admit(Value value, std::uint64_t hash) {
  entries_.TryInsertPrehashed(value, hash, 1);
  footprint_ += 1;
  ++counted_;
  while (footprint_ > footprint_bound_) RaiseThreshold();
}

Status CountingSample::Delete(Value value) {
  ++cost_.lookups;
  Count* count = entries_.Find(value);
  if (count == nullptr) {
    // Theorem 5: all of the value's admission flips to date were tails, so
    // the deleted occurrence's flip was among them; nothing to do.
    return Status::OK();
  }
  --counted_;
  if (*count == 1) {
    entries_.Erase(value);
    footprint_ -= 1;
    return Status::OK();
  }
  *count -= 1;
  if (*count == 1) {
    footprint_ -= 1;  // pair reverts to singleton
    --pairs_;
  }
  return Status::OK();
}

void CountingSample::RaiseThreshold() {
  ++cost_.threshold_raises;
  ThresholdRaiseContext context;
  context.threshold = threshold_;
  context.footprint = footprint_;
  context.footprint_bound = footprint_bound_;
  context.sample_size = counted_;
  context.pairs = pairs_;
  context.singletons = DistinctValues() - pairs_;
  if (policy_->NeedsCounts()) {
    scratch_counts_.clear();
    scratch_counts_.reserve(entries_.size());
    for (const auto& entry : entries_) scratch_counts_.push_back(entry.value);
    context.counts = &scratch_counts_;
  }
  const double new_threshold = policy_->NextThreshold(context);
  AQUA_CHECK(new_threshold > threshold_)
      << "threshold policy must strictly increase the threshold";

  // §4.1: for each value, flip a coin with heads probability τ/τ'; on
  // tails, decrement and keep flipping with heads probability 1/τ' until a
  // heads or count zero.  The first flips (probability 1 - τ/τ' of
  // affecting a value) are skip-counted across values — one draw per
  // affected value.
  const double first_tails = 1.0 - threshold_ / new_threshold;
  std::int64_t position = 0;
  std::int64_t next_affected =
      use_skip_counting_ ? random_.Geometric(first_tails) : 0;
  entries_.RetainIf([&](Value /*key*/, Count& count) {
    bool affected;
    if (use_skip_counting_) {
      affected = (next_affected == position);
      if (affected) next_affected = position + 1 + random_.Geometric(first_tails);
      ++position;
    } else {
      affected = random_.Bernoulli(first_tails);
    }
    if (!affected) return true;

    // First flip was tails: one decrement, then geometric further tails
    // with heads probability 1/τ'.
    Count decrements = 1 + random_.Geometric(1.0 / new_threshold);
    if (decrements >= count) {
      // Count reaches zero: the value leaves the sample.
      counted_ -= count;
      footprint_ -= EntryWords(count);
      if (count > 1) --pairs_;
      return false;
    }
    const Count new_count = count - decrements;
    counted_ -= decrements;
    if (count > 1 && new_count == 1) {
      footprint_ -= 1;
      --pairs_;
    }
    count = new_count;
    return true;
  });

  threshold_ = new_threshold;
  // Pending admission skips were drawn for the old 1/τ; redraw lazily by
  // clearing (the next absent insert redraws).  Clearing to zero would
  // *admit* the next absent value deterministically, which would bias
  // admissions; instead redraw now.
  if (use_skip_counting_) {
    admission_skip_ = random_.Geometric(1.0 / threshold_);
  }
}

const UpdateCost& CountingSample::Cost() const {
  cost_.coin_flips = random_.FlipCount();
  return cost_;
}

std::vector<ValueCount> CountingSample::Entries() const {
  std::vector<ValueCount> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(ValueCount{entry.key, entry.value});
  }
  return out;
}

std::vector<ValueCount> CountingSample::ToConciseEntries(
    std::uint64_t seed) const {
  Random random(seed);
  std::vector<ValueCount> out;
  out.reserve(entries_.size());
  const double keep = 1.0 / threshold_;
  for (const auto& entry : entries_) {
    // Keep the selected occurrence; each of the other count-1 occurrences
    // survives a coin with heads probability 1/τ.
    const Count kept = 1 + random.Binomial(entry.value - 1, keep);
    out.push_back(ValueCount{entry.key, kept});
  }
  return out;
}

Status CountingSample::Validate() const {
  Words footprint = 0;
  std::int64_t counted = 0;
  std::int64_t pairs = 0;
  for (const auto& entry : entries_) {
    if (entry.value < 1) {
      return Status::Internal("entry with non-positive count");
    }
    footprint += EntryWords(entry.value);
    counted += entry.value;
    if (entry.value > 1) ++pairs;
  }
  if (footprint != footprint_) {
    return Status::Internal("footprint accounting mismatch");
  }
  if (counted != counted_) {
    return Status::Internal("counted-occurrences accounting mismatch");
  }
  if (pairs != pairs_) {
    return Status::Internal("pair-count accounting mismatch");
  }
  if (footprint_ > footprint_bound_) {
    return Status::Internal("footprint exceeds bound");
  }
  return Status::OK();
}

}  // namespace aqua
