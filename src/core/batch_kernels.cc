#include "core/batch_kernels.h"

#include <cstring>

#include "common/check.h"
#include "container/flat_hash_map.h"

// Kernel selection: AQUA_FORCE_SCALAR wins, then the widest ISA the TU is
// compiled for.  Exactly one of AQUA_KERNEL_{AVX2,SSE2,NEON,SCALAR} ends up
// defined.
#if defined(AQUA_FORCE_SCALAR)
#define AQUA_KERNEL_SCALAR 1
#elif defined(__AVX2__)
#define AQUA_KERNEL_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__)
#define AQUA_KERNEL_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON)
#define AQUA_KERNEL_NEON 1
#include <arm_neon.h>
#else
#define AQUA_KERNEL_SCALAR 1
#endif

namespace aqua {
namespace {

// SplitMix64 finalizer constants — must match IntegerHash exactly.
constexpr std::uint64_t kMul1 = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kMul2 = 0x94d049bb133111ebULL;

inline std::uint64_t ScalarHash(std::uint64_t x) {
  x ^= x >> 30;
  x *= kMul1;
  x ^= x >> 27;
  x *= kMul2;
  x ^= x >> 31;
  return x;
}

#if defined(AQUA_KERNEL_AVX2)

// 64x64 -> low-64 multiply per lane.  AVX2 has no 64-bit multiply; build it
// from 32x32->64 partial products: lo*lo + ((lo*hi + hi*lo) << 32).  The
// high cross-product bits shifted past 2^64 drop out, which is exactly the
// mod-2^64 semantics of the scalar `*=`.
inline __m256i MulLo64(__m256i a, __m256i b, __m256i b_hi) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

void HashBatchImpl(const Value* values, std::size_t n, std::uint64_t* hashes) {
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(kMul1));
  const __m256i m1_hi = _mm256_srli_epi64(m1, 32);
  const __m256i m2 = _mm256_set1_epi64x(static_cast<long long>(kMul2));
  const __m256i m2_hi = _mm256_srli_epi64(m2, 32);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
    x = MulLo64(x, m1, m1_hi);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
    x = MulLo64(x, m2, m2_hi);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + i), x);
  }
  for (; i < n; ++i) {
    hashes[i] = ScalarHash(static_cast<std::uint64_t>(values[i]));
  }
}

#elif defined(AQUA_KERNEL_SSE2)

inline __m128i MulLo64(__m128i a, __m128i b, __m128i b_hi) {
  const __m128i a_hi = _mm_srli_epi64(a, 32);
  const __m128i lo_lo = _mm_mul_epu32(a, b);
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(a, b_hi), _mm_mul_epu32(a_hi, b));
  return _mm_add_epi64(lo_lo, _mm_slli_epi64(cross, 32));
}

void HashBatchImpl(const Value* values, std::size_t n, std::uint64_t* hashes) {
  const __m128i m1 = _mm_set1_epi64x(static_cast<long long>(kMul1));
  const __m128i m1_hi = _mm_srli_epi64(m1, 32);
  const __m128i m2 = _mm_set1_epi64x(static_cast<long long>(kMul2));
  const __m128i m2_hi = _mm_srli_epi64(m2, 32);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    x = _mm_xor_si128(x, _mm_srli_epi64(x, 30));
    x = MulLo64(x, m1, m1_hi);
    x = _mm_xor_si128(x, _mm_srli_epi64(x, 27));
    x = MulLo64(x, m2, m2_hi);
    x = _mm_xor_si128(x, _mm_srli_epi64(x, 31));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hashes + i), x);
  }
  for (; i < n; ++i) {
    hashes[i] = ScalarHash(static_cast<std::uint64_t>(values[i]));
  }
}

#elif defined(AQUA_KERNEL_NEON)

// NEON 64x64 -> low-64 via the same 32-bit partial products: vmull_u32 on
// the narrowed low/high halves.
inline uint64x2_t MulLo64(uint64x2_t a, std::uint64_t b) {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_lo = vdup_n_u32(static_cast<std::uint32_t>(b));
  const uint32x2_t b_hi = vdup_n_u32(static_cast<std::uint32_t>(b >> 32));
  uint64x2_t cross = vmull_u32(a_lo, b_hi);
  cross = vmlal_u32(cross, a_hi, b_lo);
  return vaddq_u64(vmull_u32(a_lo, b_lo), vshlq_n_u64(cross, 32));
}

void HashBatchImpl(const Value* values, std::size_t n, std::uint64_t* hashes) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t x =
        vld1q_u64(reinterpret_cast<const std::uint64_t*>(values + i));
    x = veorq_u64(x, vshrq_n_u64(x, 30));
    x = MulLo64(x, kMul1);
    x = veorq_u64(x, vshrq_n_u64(x, 27));
    x = MulLo64(x, kMul2);
    x = veorq_u64(x, vshrq_n_u64(x, 31));
    vst1q_u64(hashes + i, x);
  }
  for (; i < n; ++i) {
    hashes[i] = ScalarHash(static_cast<std::uint64_t>(values[i]));
  }
}

#else  // AQUA_KERNEL_SCALAR

void HashBatchImpl(const Value* values, std::size_t n, std::uint64_t* hashes) {
  for (std::size_t i = 0; i < n; ++i) {
    hashes[i] = ScalarHash(static_cast<std::uint64_t>(values[i]));
  }
}

#endif

// The prefix kernels load ValueCount pairs as raw 64-bit lanes.
static_assert(sizeof(ValueCount) == 2 * sizeof(std::int64_t),
              "ValueCount must be a packed {value, count} pair");

#if defined(AQUA_KERNEL_AVX2)

// Four counts per iteration: deinterleave counts out of the {value, count}
// pairs, run an in-register Hillis–Steele scan across the 4 lanes, add the
// running carry, store prefix[i+1 .. i+4].  Integer adds reassociate
// exactly, so the result matches the scalar loop bit-for-bit.
void ExclusivePrefixCountsImpl(const ValueCount* entries, std::size_t n,
                               std::int64_t* prefix) {
  prefix[0] = 0;
  std::size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  __m256i carry = zero;
  for (; i + 4 <= n; i += 4) {
    const __m256i e01 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(entries + i));
    const __m256i e23 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(entries + i + 2));
    // unpackhi within 128-bit halves gives [c0, c2, c1, c3]; permute to
    // stream order [c0, c1, c2, c3].
    __m256i x = _mm256_permute4x64_epi64(_mm256_unpackhi_epi64(e01, e23),
                                         _MM_SHUFFLE(3, 1, 2, 0));
    // Scan step 1: lane i += lane i-1 (lane 0 adds 0).
    __m256i s1 = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(2, 1, 0, 0));
    s1 = _mm256_blend_epi32(s1, zero, 0x03);
    x = _mm256_add_epi64(x, s1);
    // Scan step 2: lane i += lane i-2 (lanes 0,1 add 0).
    __m256i s2 = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(1, 0, 1, 0));
    s2 = _mm256_blend_epi32(s2, zero, 0x0F);
    x = _mm256_add_epi64(x, s2);
    x = _mm256_add_epi64(x, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(prefix + i + 1), x);
    carry = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  for (; i < n; ++i) prefix[i + 1] = prefix[i] + entries[i].count;
}

#elif defined(AQUA_KERNEL_SSE2)

void ExclusivePrefixCountsImpl(const ValueCount* entries, std::size_t n,
                               std::int64_t* prefix) {
  prefix[0] = 0;
  std::size_t i = 0;
  __m128i carry = _mm_setzero_si128();
  for (; i + 2 <= n; i += 2) {
    const __m128i e0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(entries + i));
    const __m128i e1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(entries + i + 1));
    __m128i x = _mm_unpackhi_epi64(e0, e1);          // [c0, c1]
    x = _mm_add_epi64(x, _mm_slli_si128(x, 8));      // [c0, c0+c1]
    x = _mm_add_epi64(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(prefix + i + 1), x);
    carry = _mm_unpackhi_epi64(x, x);                // broadcast the total
  }
  for (; i < n; ++i) prefix[i + 1] = prefix[i] + entries[i].count;
}

#elif defined(AQUA_KERNEL_NEON)

void ExclusivePrefixCountsImpl(const ValueCount* entries, std::size_t n,
                               std::int64_t* prefix) {
  prefix[0] = 0;
  std::size_t i = 0;
  int64x2_t carry = vdupq_n_s64(0);
  for (; i + 2 <= n; i += 2) {
    // vld2 deinterleaves the pairs: val[0] = values, val[1] = counts.
    const int64x2x2_t de =
        vld2q_s64(reinterpret_cast<const std::int64_t*>(entries + i));
    int64x2_t x = de.val[1];                          // [c0, c1]
    x = vaddq_s64(x, vextq_s64(vdupq_n_s64(0), x, 1));  // [c0, c0+c1]
    x = vaddq_s64(x, carry);
    vst1q_s64(prefix + i + 1, x);
    carry = vdupq_n_s64(vgetq_lane_s64(x, 1));
  }
  for (; i < n; ++i) prefix[i + 1] = prefix[i] + entries[i].count;
}

#else  // AQUA_KERNEL_SCALAR

void ExclusivePrefixCountsImpl(const ValueCount* entries, std::size_t n,
                               std::int64_t* prefix) {
  prefix[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + entries[i].count;
  }
}

#endif

}  // namespace

std::string_view BatchKernelName() {
#if defined(AQUA_KERNEL_AVX2)
  return "avx2";
#elif defined(AQUA_KERNEL_SSE2)
  return "sse2";
#elif defined(AQUA_KERNEL_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

void HashBatch(std::span<const Value> values, std::uint64_t* hashes) {
  HashBatchImpl(values.data(), values.size(), hashes);
}

void ExclusivePrefixCounts(std::span<const ValueCount> entries,
                           std::int64_t* prefix) {
  ExclusivePrefixCountsImpl(entries.data(), entries.size(), prefix);
}

void RouteFromHashes(std::span<const std::uint64_t> hashes,
                     std::size_t num_shards, std::uint32_t* routes) {
  AQUA_DCHECK_GE(num_shards, std::size_t{1});
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    routes[i] = static_cast<std::uint32_t>(hashes[i] % num_shards);
  }
}

void PartitionByShard(std::span<const Value> values, std::size_t num_shards,
                      ShardPartitionScratch& scratch) {
  const std::size_t n = values.size();
  scratch.hashes.resize(n);
  scratch.routes.resize(n);
  scratch.values.resize(n);
  scratch.grouped_hashes.resize(n);
  scratch.offsets.assign(num_shards + 1, 0);

  HashBatch(values, scratch.hashes.data());
  RouteFromHashes(scratch.hashes, num_shards, scratch.routes.data());

  // Counting sort by route: count, exclusive prefix sum, stable scatter.
  for (std::size_t i = 0; i < n; ++i) ++scratch.offsets[scratch.routes[i] + 1];
  for (std::size_t s = 1; s <= num_shards; ++s) {
    scratch.offsets[s] += scratch.offsets[s - 1];
  }
  scratch.cursors.assign(scratch.offsets.begin(), scratch.offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t at = scratch.cursors[scratch.routes[i]]++;
    scratch.values[at] = values[i];
    scratch.grouped_hashes[at] = scratch.hashes[i];
  }
}

}  // namespace aqua
