#ifndef AQUA_HOTLIST_HOT_LIST_H_
#define AQUA_HOTLIST_HOT_LIST_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace aqua {

/// One reported hot-list entry: a value and its estimated warehouse count.
struct HotListItem {
  Value value = 0;
  /// Estimated number of occurrences in the warehouse (scaled/compensated).
  double estimated_count = 0.0;
  /// The raw synopsis count the estimate was derived from.
  Count synopsis_count = 0;
};

/// Parameters of a hot list query (§5): "an ordered set of <value, count>
/// pairs for the k most frequently occurring data values".
struct HotListQuery {
  /// Number of top values requested.  k == 0 asks for *all* pairs that can
  /// be reported with confidence — the query form §5.2 analyzes ("report
  /// all pairs that can be reported with confidence").
  std::int64_t k = 0;
  /// Confidence threshold β (§5.2).  Larger β: reported counts are more
  /// accurate but fewer pairs are reported.  The paper's experiments use
  /// β = 3 for traditional and concise samples; β is built into the
  /// counting-sample reporter via the compensation ĉ (β_eff ≈ 1.582).
  double beta = 3.0;
};

/// A hot list: items in nonincreasing order of estimated count
/// (deterministic tie-break by value).
using HotList = std::vector<HotListItem>;

}  // namespace aqua

#endif  // AQUA_HOTLIST_HOT_LIST_H_
