#include "hotlist/counting_hot_list.h"

#include <algorithm>
#include <cmath>

#include "hotlist/reporting.h"

namespace aqua {

double CountingHotList::Compensation(double threshold) {
  // Exact form of the §5.2 derivation: the expected number of occurrences
  // lost before admission, conditioned on admission within f_v = τ trials,
  // is τ(1 - 2/e)/(1 - 1/e) - 1 for large τ (the paper rounds the leading
  // coefficient to 0.418).
  constexpr double kInvE = 0.36787944117144233;  // 1/e
  const double c_hat = threshold * (1.0 - 2.0 * kInvE) / (1.0 - kInvE) - 1.0;
  return std::max(0.0, c_hat);
}

HotList CountingHotList::Report(const HotListQuery& query) const {
  const std::vector<ValueCount> entries = sample_->Entries();
  const double tau = sample_->Threshold();
  const double c_hat = Compensation(tau);
  // Report all pairs with counts at least max(c_k, τ - ĉ), augmented by ĉ.
  const double floor = std::max(1.0, tau - c_hat);
  return internal_hotlist::Report(entries, query.k, floor, /*scale=*/1.0,
                                  /*offset=*/c_hat);
}

}  // namespace aqua
