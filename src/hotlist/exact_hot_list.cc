#include "hotlist/exact_hot_list.h"

#include "hotlist/reporting.h"

namespace aqua {

HotList ExactHotList::Report(const HotListQuery& query) const {
  // Exact counts: no confidence floor, no scaling.
  return internal_hotlist::Report(frequencies_, query.k, /*count_floor=*/1.0,
                                  /*scale=*/1.0, /*offset=*/0.0);
}

}  // namespace aqua
