#ifndef AQUA_HOTLIST_REPORTING_H_
#define AQUA_HOTLIST_REPORTING_H_

#include <vector>

#include "core/value_count.h"
#include "hotlist/hot_list.h"

namespace aqua {
namespace internal_hotlist {

/// Shared reporting skeleton for all sample-based hot-list algorithms
/// (§5.1): compute the k-th largest synopsis count c_k (linear-time
/// selection), keep every entry whose synopsis count is at least
/// max(c_k, count_floor), estimate each kept entry's warehouse count as
/// synopsis_count * scale + offset, and sort nonincreasing by estimate.
///
/// k == 0 disables the c_k cut (report everything above the floor).
HotList Report(const std::vector<ValueCount>& entries, std::int64_t k,
               double count_floor, double scale, double offset);

}  // namespace internal_hotlist
}  // namespace aqua

#endif  // AQUA_HOTLIST_REPORTING_H_
