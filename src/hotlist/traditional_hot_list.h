#ifndef AQUA_HOTLIST_TRADITIONAL_HOT_LIST_H_
#define AQUA_HOTLIST_TRADITIONAL_HOT_LIST_H_

#include "hotlist/hot_list.h"
#include "sample/reservoir_sample.h"

namespace aqua {

/// Hot lists from a traditional (reservoir) sample (§5.1, "Using
/// traditional samples"): semi-sort the sample points by value into
/// <value, count> pairs, compute the k-th largest count c_k, report all
/// pairs with count at least max(c_k, β), and scale the counts by n/m.
///
/// "Note that there may be fewer than k distinct values in the sample, so
/// fewer than k pairs may be reported" — and with a sample-size of only m,
/// only a handful of distinct reported counts are possible (each extra
/// sample point adds n/m to the estimate), producing the characteristic
/// horizontal rows of Figure 5.
class TraditionalHotList {
 public:
  /// `sample` must outlive this object.
  explicit TraditionalHotList(const ReservoirSample& sample)
      : sample_(&sample) {}

  /// Answers a hot list query; O(m log m) in the sample size.
  HotList Report(const HotListQuery& query) const;

 private:
  const ReservoirSample* sample_;
};

}  // namespace aqua

#endif  // AQUA_HOTLIST_TRADITIONAL_HOT_LIST_H_
