#include "hotlist/concise_hot_list.h"

#include "hotlist/reporting.h"

namespace aqua {

HotList ConciseHotList::Report(const HotListQuery& query) const {
  const std::vector<ValueCount> entries = sample_->Entries();
  const auto n = static_cast<double>(sample_->ObservedInserts());
  const auto sample_size = static_cast<double>(sample_->SampleSize());
  const double scale = sample_size > 0 ? n / sample_size : 0.0;
  return internal_hotlist::Report(entries, query.k, query.beta, scale,
                                  /*offset=*/0.0);
}

}  // namespace aqua
