#include "hotlist/traditional_hot_list.h"

#include <algorithm>

#include "core/value_count.h"
#include "hotlist/reporting.h"

namespace aqua {

HotList TraditionalHotList::Report(const HotListQuery& query) const {
  // "Semi-sort" the sample points by value and fold duplicates into
  // <value, count> pairs.
  std::vector<Value> points = sample_->Points();
  std::sort(points.begin(), points.end());
  std::vector<ValueCount> entries;
  for (std::size_t i = 0; i < points.size();) {
    std::size_t j = i;
    while (j < points.size() && points[j] == points[i]) ++j;
    entries.push_back(
        ValueCount{points[i], static_cast<Count>(j - i)});
    i = j;
  }

  const auto n = static_cast<double>(sample_->ObservedInserts());
  const auto m = static_cast<double>(sample_->SampleSize());
  const double scale = m > 0 ? n / m : 0.0;
  return internal_hotlist::Report(entries, query.k, query.beta, scale,
                                  /*offset=*/0.0);
}

}  // namespace aqua
