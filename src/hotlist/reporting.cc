#include "hotlist/reporting.h"

#include <algorithm>

#include "container/selection.h"

namespace aqua {
namespace internal_hotlist {

HotList Report(const std::vector<ValueCount>& entries, std::int64_t k,
               double count_floor, double scale, double offset) {
  double cut = count_floor;
  if (k > 0 && !entries.empty()) {
    std::vector<Count> counts;
    counts.reserve(entries.size());
    for (const ValueCount& e : entries) counts.push_back(e.count);
    const Count ck = KthLargest(std::move(counts),
                                static_cast<std::size_t>(k), Count{0});
    cut = std::max(cut, static_cast<double>(ck));
  }

  HotList out;
  for (const ValueCount& e : entries) {
    if (static_cast<double>(e.count) >= cut) {
      out.push_back(HotListItem{
          e.value, static_cast<double>(e.count) * scale + offset, e.count});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HotListItem& a, const HotListItem& b) {
              if (a.estimated_count != b.estimated_count) {
                return a.estimated_count > b.estimated_count;
              }
              return a.value < b.value;
            });
  return out;
}

}  // namespace internal_hotlist
}  // namespace aqua
