#ifndef AQUA_HOTLIST_EXACT_HOT_LIST_H_
#define AQUA_HOTLIST_EXACT_HOT_LIST_H_

#include <vector>

#include "core/value_count.h"
#include "hotlist/hot_list.h"

namespace aqua {

/// Hot lists from exact <value, count> frequencies — the paper's "full
/// histogram on disk" baseline (§5.1): exact answers, but "each update to R
/// requires a separate disk access" and the histogram's footprint can be on
/// the order of n, "so this approach is considered only as a baseline for
/// our accuracy comparisons".  The warehouse module's FullHistogram
/// maintains the frequencies and the simulated disk-access count; this
/// reporter works from any exact frequency snapshot.
class ExactHotList {
 public:
  /// `frequencies` are exact <value, count> pairs for all distinct values.
  explicit ExactHotList(std::vector<ValueCount> frequencies)
      : frequencies_(std::move(frequencies)) {}

  /// Answers a hot list query exactly.  `query.beta` is ignored.
  HotList Report(const HotListQuery& query) const;

 private:
  std::vector<ValueCount> frequencies_;
};

}  // namespace aqua

#endif  // AQUA_HOTLIST_EXACT_HOT_LIST_H_
