#ifndef AQUA_HOTLIST_CONCISE_HOT_LIST_H_
#define AQUA_HOTLIST_CONCISE_HOT_LIST_H_

#include "core/concise_sample.h"
#include "hotlist/hot_list.h"

namespace aqua {

/// Hot lists from a concise sample (§5.1, "Using concise samples"): the
/// entries are already <value, count> pairs; report all with count at least
/// max(c_k, β), scaling by n/m' where m' is the concise sample's
/// sample-size (not its footprint — the extra sample points are exactly the
/// accuracy advantage over TraditionalHotList).
///
/// Theorem 7 bounds both directions for this reporter: values with
/// frequency >= βτ/(1-δ)·2 are reported with probability >= 1-e^{-βδ/(2(1-δ))},
/// and values with frequency <= βτ/(1+δ) are (falsely) reported with
/// probability < e^{-βδ²/(3(1+δ))}.
class ConciseHotList {
 public:
  /// `sample` must outlive this object.
  explicit ConciseHotList(const ConciseSample& sample) : sample_(&sample) {}

  /// Answers a hot list query; O(m) + sorting of the reported items.
  HotList Report(const HotListQuery& query) const;

 private:
  const ConciseSample* sample_;
};

}  // namespace aqua

#endif  // AQUA_HOTLIST_CONCISE_HOT_LIST_H_
