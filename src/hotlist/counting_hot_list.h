#ifndef AQUA_HOTLIST_COUNTING_HOT_LIST_H_
#define AQUA_HOTLIST_COUNTING_HOT_LIST_H_

#include "core/counting_sample.h"
#include "hotlist/hot_list.h"

namespace aqua {

/// Hot lists from a counting sample (§5.1, "Using counting samples"):
/// instead of scaling, each reported count is augmented by a compensation
/// ĉ for the occurrences that preceded the successful admission coin toss;
/// report all pairs with count at least max(c_k, τ - ĉ).
///
/// §5.2 derives ĉ by requiring E[count + ĉ | v in S] = f_v exactly at
/// f_v = τ ("ĉ is the most accurate when it matters most: smaller f_v
/// should not be reported and the value of ĉ is less important for larger
/// f_v"), giving
///
///     ĉ = τ·(1 - 2/e)/(1 - 1/e) - 1  ≈  0.418τ - 1.
///
/// Theorem 8: (i) values with f_v < 0.582τ are never reported; (ii) values
/// with f_v >= βτ are reported with probability >= 1 - e^{-(β - 0.582)};
/// (iii) a reported value's augmented count lies in [f_v - τ, f_v + 0.418τ - 1]
/// with probability >= 1 - e^{-(γ + 0.418)}.
class CountingHotList {
 public:
  /// `sample` must outlive this object.
  explicit CountingHotList(const CountingSample& sample)
      : sample_(&sample) {}

  /// Answers a hot list query.  `query.beta` is not used — the counting
  /// reporter's confidence behaviour is fixed by ĉ (§5.1 notes this is
  /// "similar to taking β = 2 - ĉ/τ + 1/τ ≈ 1.582").
  HotList Report(const HotListQuery& query) const;

  /// The compensation ĉ for threshold τ (clamped to be non-negative).
  static double Compensation(double threshold);

 private:
  const CountingSample* sample_;
};

}  // namespace aqua

#endif  // AQUA_HOTLIST_COUNTING_HOT_LIST_H_
