#include "hotlist/maintained_hot_list.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "container/selection.h"
#include "hotlist/counting_hot_list.h"

namespace aqua {

MaintainedHotList::MaintainedHotList(const CountingSampleOptions& options,
                                     std::int64_t candidate_capacity)
    : sample_(options), capacity_(candidate_capacity) {
  AQUA_CHECK_GE(candidate_capacity, 1);
  candidates_.reserve(static_cast<std::size_t>(candidate_capacity));
}

Count MaintainedHotList::MinCandidateCount() const {
  Count min = std::numeric_limits<Count>::max();
  for (Value v : candidates_) min = std::min(min, sample_.CountOf(v));
  return candidates_.empty() ? 0 : min;
}

void MaintainedHotList::Insert(Value value) {
  sample_.Insert(value);
  if (sample_.Cost().threshold_raises != last_raises_) {
    // A raise shrank counts (and may have evicted values) behind our back.
    last_raises_ = sample_.Cost().threshold_raises;
    dirty_ = true;
  }
  if (dirty_) return;  // the next Report() rebuilds anyway

  if (candidate_index_.Contains(value)) return;  // its count just grew
  const Count count = sample_.CountOf(value);
  if (count == 0) return;  // not admitted to the counting sample

  if (static_cast<std::int64_t>(candidates_.size()) < capacity_) {
    candidates_.push_back(value);
    candidate_index_.TryInsert(value, 1);
    return;
  }
  // Fast path: candidate counts only grow between rebuilds, so the cached
  // minimum is a lower bound on the true minimum — a count at or below it
  // cannot displace anyone.
  if (count <= cached_min_count_) return;
  // Displace the minimum candidate if this value now exceeds it.
  std::size_t argmin = 0;
  Count min = std::numeric_limits<Count>::max();
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const Count c = sample_.CountOf(candidates_[i]);
    if (c < min) {
      min = c;
      argmin = i;
    }
  }
  if (count > min) {
    candidate_index_.Erase(candidates_[argmin]);
    candidates_[argmin] = value;
    candidate_index_.TryInsert(value, 1);
    // The displaced slot now holds `count`; the new minimum is at least the
    // old one, recomputed cheaply on the next slow path.
    cached_min_count_ = std::min(min, count);
  } else {
    cached_min_count_ = min;
  }
}

Status MaintainedHotList::Delete(Value value) {
  AQUA_RETURN_NOT_OK(sample_.Delete(value));
  // A shrunken count can invalidate the containment invariant.
  dirty_ = true;
  return Status::OK();
}

void MaintainedHotList::Rebuild() const {
  candidates_.clear();
  candidate_index_.Clear();
  std::vector<ValueCount> entries = sample_.Entries();
  const auto keep = static_cast<std::size_t>(
      std::min<std::int64_t>(capacity_,
                             static_cast<std::int64_t>(entries.size())));
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<std::ptrdiff_t>(keep),
                    entries.end(),
                    [](const ValueCount& a, const ValueCount& b) {
                      return a.count > b.count ||
                             (a.count == b.count && a.value < b.value);
                    });
  for (std::size_t i = 0; i < keep; ++i) {
    candidates_.push_back(entries[i].value);
    candidate_index_.TryInsert(entries[i].value, 1);
  }
  cached_min_count_ = keep > 0 ? entries[keep - 1].count : 0;
  dirty_ = false;
  ++rebuilds_;
}

HotList MaintainedHotList::Report(std::int64_t k) const {
  if (dirty_) Rebuild();
  k = std::min(k, capacity_);
  const double c_hat = CountingHotList::Compensation(sample_.Threshold());
  HotList out;
  out.reserve(candidates_.size());
  for (Value v : candidates_) {
    const Count c = sample_.CountOf(v);
    if (c == 0) continue;
    out.push_back(
        HotListItem{v, static_cast<double>(c) + c_hat, c});
  }
  std::sort(out.begin(), out.end(),
            [](const HotListItem& a, const HotListItem& b) {
              if (a.estimated_count != b.estimated_count) {
                return a.estimated_count > b.estimated_count;
              }
              return a.value < b.value;
            });
  if (static_cast<std::int64_t>(out.size()) > k) {
    out.resize(static_cast<std::size_t>(k));
  }
  return out;
}

}  // namespace aqua
