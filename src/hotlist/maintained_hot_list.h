#ifndef AQUA_HOTLIST_MAINTAINED_HOT_LIST_H_
#define AQUA_HOTLIST_MAINTAINED_HOT_LIST_H_

#include <cstdint>
#include <vector>

#include "container/flat_hash_map.h"
#include "core/counting_sample.h"
#include "hotlist/hot_list.h"

namespace aqua {

/// The §5.1 update-time/response-time trade-off, instantiated: "we can
/// trade-off update time vs. response time by keeping the concise sample
/// sorted by counts.  This allows for reporting in O(k) time."
///
/// MaintainedHotList wraps a counting sample and keeps a candidate set of
/// the highest-count values up to date on every insert, so Report() costs
/// O(K log K) in the candidate capacity K instead of a full O(m) scan and
/// selection over the synopsis.  The candidate set provably contains the
/// true top values between rebuilds: a value can only overtake a candidate
/// by being incremented, and every increment of a non-candidate is checked
/// against the current minimum candidate count.  Events that shrink counts
/// out from under the invariant — threshold raises and deletions — mark
/// the set dirty; the next Report() rebuilds it with one O(m) scan.
class MaintainedHotList {
 public:
  /// `candidate_capacity` K bounds the candidate set; queries may ask for
  /// up to K values (typically K = a few times the expected query k).
  MaintainedHotList(const CountingSampleOptions& options,
                    std::int64_t candidate_capacity);

  /// Observes one insert; O(1) amortized plus an O(K) scan only when a new
  /// value displaces the minimum candidate.
  void Insert(Value value);

  /// Observes one delete.  Marks the candidate set dirty (counts shrank).
  Status Delete(Value value);

  /// Top-k report with the counting-sample compensation ĉ; k is capped at
  /// the candidate capacity.  O(K log K); O(m) only right after a raise or
  /// delete.
  HotList Report(std::int64_t k) const;

  const CountingSample& sample() const { return sample_; }

  /// Candidate-set rebuilds performed so far (for tests/benches).
  std::int64_t rebuilds() const { return rebuilds_; }

 private:
  void Rebuild() const;
  /// Current minimum count across candidates; O(K).
  Count MinCandidateCount() const;

  CountingSample sample_;
  std::int64_t capacity_;
  // Lazily maintained candidate values (mutable: Report() may rebuild).
  mutable std::vector<Value> candidates_;
  mutable FlatHashMap<Value, Count> candidate_index_;
  mutable bool dirty_ = false;
  mutable std::int64_t rebuilds_ = 0;
  /// Lower bound on the minimum candidate count (candidate counts only
  /// grow between rebuilds); lets most non-candidate inserts skip the
  /// O(K) minimum scan.
  mutable Count cached_min_count_ = 0;
  std::int64_t last_raises_ = 0;
};

}  // namespace aqua

#endif  // AQUA_HOTLIST_MAINTAINED_HOT_LIST_H_
