#ifndef AQUA_CONCURRENCY_SNAPSHOT_CACHE_H_
#define AQUA_CONCURRENCY_SNAPSHOT_CACHE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace aqua {

/// Observability counters for one SnapshotCache (non-template so callers
/// can aggregate stats across caches of different synopsis types).
struct SnapshotCacheStats {
  /// Get() calls answered from the current epoch without refreshing.
  std::int64_t hits = 0;
  /// Snapshot rebuilds (inline or via Refresh()).
  std::int64_t refreshes = 0;
  /// Get() calls that observed staleness but served the previous epoch
  /// because another thread was already refreshing (or, in external
  /// refresh mode, because Get() never refreshes a warmed cache).
  std::int64_t stale_served = 0;
  /// Rebuilds triggered inline by a query thread's Get().
  std::int64_t inline_refreshes = 0;
  /// Rebuilds triggered by an explicit Refresh() call (maintenance
  /// threads, the epoch pump).
  std::int64_t external_refreshes = 0;
  /// Rebuild attempts whose refresher returned an error.  A failure with
  /// a previous epoch in place is survivable (the old epoch keeps
  /// serving) but was previously invisible; it now counts here and emits
  /// a rate-limited log line.
  std::int64_t refresh_failures = 0;
  /// Refresh (build + publish) latency percentiles over the most recent
  /// successful rebuilds (a fixed-size ring); 0 before the first refresh.
  std::int64_t refresh_ns_p50 = 0;
  std::int64_t refresh_ns_p99 = 0;
};

/// Epoch-cached synopsis snapshots for the query path.
///
/// ShardedSynopsis::Snapshot() merges per-shard copies on every call — a
/// per-query cost that grows with shard count and footprint, and the reason
/// a serving layer cannot sit directly on the sharded ingest structure.
/// SnapshotCache decouples the two: a *refresher* (typically a lambda
/// calling Snapshot()) rebuilds a merged snapshot only when the cached one
/// is older than a staleness bound, and query threads read the current
/// epoch's `shared_ptr<const S>` atomically — a pointer load instead of a
/// merge.  This is the standard bounded-staleness trade AQP serving systems
/// make: answers are already approximate, so serving a snapshot that trails
/// the ingest frontier by a bounded number of operations (or a bounded wall
/// interval) costs accuracy that is second-order next to the sampling error
/// itself.
///
/// Epoch swap, double-buffered: the refresher builds the next snapshot off
/// to the side while the current epoch keeps serving; the new epoch is then
/// published with one pointer swap under a dedicated pointer mutex held for
/// a few instructions (never across the merge — libstdc++'s
/// atomic<shared_ptr> would do the same internally, via a spinlock
/// ThreadSanitizer cannot model).  Readers that obtained the old epoch keep
/// it alive through their shared_ptr — no reader ever waits on a refresh,
/// and no refresh ever mutates a snapshot a reader can see.
///
/// Staleness is measured two ways, whichever trips first:
///  - ops-observed: the ingest path reports progress via OnOps(n); once
///    `max_stale_ops` operations accumulate since the last refresh, the
///    next Get() re-merges.
///  - wall-interval: once `max_stale_interval` elapses since the last
///    refresh, the next Get() re-merges (covers idle-ingest streams where
///    a trickle of ops would otherwise never trip the ops bound).
///
/// Refresh happens *inline in at most one query thread at a time*: the
/// first Get() to observe staleness takes the refresh mutex and re-merges;
/// concurrent Get() calls that lose the try_lock race serve the previous
/// epoch instead of convoying behind the merge.  Ingest threads never
/// refresh (OnOps is one relaxed fetch_add).  Callers wanting refresh
/// entirely off the query path can run a maintenance thread that calls
/// Refresh() on a timer; Get() then almost always hits.
template <typename S>
class SnapshotCache {
 public:
  /// Rebuilds a merged snapshot from the live synopsis, e.g.
  /// `[&sharded] { return sharded.Snapshot(); }`.
  using Refresher = std::function<Result<S>()>;

  struct Options {
    /// Refresh after this many OnOps-reported operations (<= 0: never
    /// triggered by ops).
    std::int64_t max_stale_ops = 8192;
    /// Refresh after this much wall time (<= zero: never triggered by
    /// time).
    std::chrono::nanoseconds max_stale_interval =
        std::chrono::milliseconds(100);
    /// When true, refresh is owned by an external maintenance thread (the
    /// epoch pump): a stale Get() on a warmed cache serves the current
    /// epoch unconditionally — a pointer copy, never a re-merge — and only
    /// Refresh() rebuilds.  The first Get() with no snapshot at all still
    /// builds inline (bootstrap), so cold callers never observe null.
    bool external_refresh = false;
  };

  using CacheStats = SnapshotCacheStats;

  SnapshotCache(Refresher refresher, const Options& options)
      : refresher_(std::move(refresher)), options_(options) {}

  SnapshotCache(const SnapshotCache&) = delete;
  SnapshotCache& operator=(const SnapshotCache&) = delete;

  /// Ingest-side progress report; one relaxed fetch_add, never refreshes.
  void OnOps(std::int64_t n) {
    ops_since_refresh_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Returns the current epoch's snapshot, refreshing first if the
  /// staleness bound is exceeded (or no snapshot exists yet).  Only the
  /// winning thread refreshes; losers serve the previous epoch.  Fails
  /// only if a needed refresh fails and no previous epoch exists.
  Result<std::shared_ptr<const S>> Get() const {
    // At most one clock read per Get(): the ops bound is checked first
    // (no clock needed when it trips), and the wall reading taken for the
    // first interval check is reused by the under-lock recheck.  Reuse is
    // conservative: a stale reading only shrinks the apparent interval, so
    // it can skip a refresh another thread just performed, never miss one.
    std::int64_t now = kClockUnread;
    std::shared_ptr<const S> current = LoadCurrent();
    if (current != nullptr && !IsStaleAt(&now)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return current;
    }
    if (current == nullptr) {
      // First snapshot: every caller must block until one exists (even in
      // external refresh mode — serving null is worse than one inline
      // bootstrap build).
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      current = LoadCurrent();
      if (current == nullptr || IsStaleAt(&now)) {
        AQUA_RETURN_NOT_OK(RefreshLocked(/*external=*/false));
      }
    } else if (options_.external_refresh) {
      // Refresh belongs to the pump; a stale warmed Get() is a pointer
      // copy of the current epoch, nothing more.
      stale_served_.fetch_add(1, std::memory_order_relaxed);
      return current;
    } else if (refresh_mutex_.try_lock()) {
      std::lock_guard<std::mutex> lock(refresh_mutex_, std::adopt_lock);
      if (IsStaleAt(&now)) {
        const Status status = RefreshLocked(/*external=*/false);
        // A failed re-merge is not fatal while a previous epoch exists:
        // serve it (still within one failed refresh of the bound).  The
        // failure is surfaced via refresh_failures and the rate-limited
        // log inside RefreshLocked.
        if (!status.ok() && LoadCurrent() == nullptr) {
          return status;
        }
      }
    } else {
      stale_served_.fetch_add(1, std::memory_order_relaxed);
    }
    return LoadCurrent();
  }

  /// Forces a rebuild and epoch swap regardless of staleness (maintenance
  /// threads, the epoch pump, tests).
  Status Refresh() const {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    return RefreshLocked(/*external=*/true);
  }

  /// Current epoch's snapshot without any refresh; null before the first
  /// successful Get()/Refresh().
  std::shared_ptr<const S> Peek() const { return LoadCurrent(); }

  /// Number of epoch swaps so far (0 before the first refresh).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// True when the next Get() would attempt a refresh.
  bool IsStale() const {
    std::int64_t now = kClockUnread;
    return IsStaleAt(&now);
  }

  CacheStats Stats() const {
    CacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.refreshes = refreshes_.load(std::memory_order_relaxed);
    stats.stale_served = stale_served_.load(std::memory_order_relaxed);
    stats.inline_refreshes =
        inline_refreshes_.load(std::memory_order_relaxed);
    stats.external_refreshes =
        external_refreshes_.load(std::memory_order_relaxed);
    stats.refresh_failures =
        refresh_failures_.load(std::memory_order_relaxed);
    // Percentiles over the ring's recorded samples; stack-only (the stats
    // path must not allocate).
    const std::uint64_t recorded =
        refresh_ns_count_.load(std::memory_order_relaxed);
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(recorded, kRefreshRingSize));
    if (n > 0) {
      std::array<std::int64_t, kRefreshRingSize> sorted;
      for (std::size_t i = 0; i < n; ++i) {
        sorted[i] = refresh_ns_ring_[i].load(std::memory_order_relaxed);
      }
      const std::size_t p50 = (n - 1) / 2;
      const std::size_t p99 = std::min(n - 1, (n * 99) / 100);
      std::nth_element(sorted.begin(), sorted.begin() + p50,
                       sorted.begin() + n);
      stats.refresh_ns_p50 = sorted[p50];
      std::nth_element(sorted.begin(), sorted.begin() + p99,
                       sorted.begin() + n);
      stats.refresh_ns_p99 = sorted[p99];
    }
    return stats;
  }

 private:
  /// Sentinel for "no wall reading taken yet" in IsStaleAt's lazy-clock
  /// protocol (the steady clock never reads as this value).
  static constexpr std::int64_t kClockUnread = -1;

  /// IsStale with a caller-scoped clock cache: the ops bound is checked
  /// first and short-circuits without touching the clock; the interval
  /// bound reads NowNs() only once per *now — repeated calls within one
  /// Get() reuse the first reading.
  bool IsStaleAt(std::int64_t* now) const {
    if (options_.max_stale_ops > 0 &&
        ops_since_refresh_.load(std::memory_order_relaxed) >=
            options_.max_stale_ops) {
      return true;
    }
    if (options_.max_stale_interval > std::chrono::nanoseconds::zero()) {
      const std::int64_t last =
          last_refresh_ns_.load(std::memory_order_relaxed);
      if (*now == kClockUnread) *now = NowNs();
      if (*now - last >= options_.max_stale_interval.count()) return true;
    }
    return false;
  }

  static std::int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::shared_ptr<const S> LoadCurrent() const {
    std::lock_guard<std::mutex> lock(ptr_mutex_);
    return current_;
  }

  /// Builds the next epoch off to the side, then publishes it with one
  /// pointer swap.  Caller holds refresh_mutex_; ptr_mutex_ is taken only
  /// around the swap itself, never across the merge.
  Status RefreshLocked(bool external) const {
    // Sampled *before* the merge: ops that land while the merge runs stay
    // in the counter and count toward the next staleness window.
    const std::int64_t ops_before =
        ops_since_refresh_.load(std::memory_order_relaxed);
    const std::int64_t build_start = NowNs();
    Result<S> merged = refresher_();
    if (!merged.ok()) {
      RecordRefreshFailure(merged.status());
      return merged.status();
    }
    auto next = std::make_shared<const S>(std::move(merged).ValueOrDie());
    {
      std::lock_guard<std::mutex> lock(ptr_mutex_);
      current_.swap(next);
    }
    next.reset();  // old epoch's last owner may be a pinned reader, not us
    const std::int64_t done = NowNs();
    ops_since_refresh_.fetch_sub(ops_before, std::memory_order_relaxed);
    last_refresh_ns_.store(done, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    refreshes_.fetch_add(1, std::memory_order_relaxed);
    if (external) {
      external_refreshes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      inline_refreshes_.fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t slot =
        refresh_ns_count_.fetch_add(1, std::memory_order_relaxed) %
        kRefreshRingSize;
    refresh_ns_ring_[slot].store(done - build_start,
                                 std::memory_order_relaxed);
    return Status::OK();
  }

  /// Counts the failure and logs it at most once per second — a refresher
  /// that fails every window must not flood stderr, but a silent
  /// always-stale cache is a production incident nobody can see.
  void RecordRefreshFailure(const Status& status) const {
    refresh_failures_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t now = NowNs();
    std::int64_t last = last_failure_log_ns_.load(std::memory_order_relaxed);
    constexpr std::int64_t kLogIntervalNs = 1'000'000'000;
    if (now - last >= kLogIntervalNs &&
        last_failure_log_ns_.compare_exchange_strong(
            last, now, std::memory_order_relaxed)) {
      std::fprintf(stderr, "aqua: snapshot refresh failed: %s\n",
                   status.message().c_str());
    }
  }

  Refresher refresher_;
  Options options_;

  /// Guards only the current_ pointer (copy in, swap out); held for a few
  /// instructions so readers and the publisher never convoy.
  mutable std::mutex ptr_mutex_;
  mutable std::shared_ptr<const S> current_;
  mutable std::mutex refresh_mutex_;
  mutable std::atomic<std::int64_t> ops_since_refresh_{0};
  mutable std::atomic<std::int64_t> last_refresh_ns_{0};
  mutable std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<std::int64_t> hits_{0};
  mutable std::atomic<std::int64_t> refreshes_{0};
  mutable std::atomic<std::int64_t> stale_served_{0};
  mutable std::atomic<std::int64_t> inline_refreshes_{0};
  mutable std::atomic<std::int64_t> external_refreshes_{0};
  mutable std::atomic<std::int64_t> refresh_failures_{0};
  mutable std::atomic<std::int64_t> last_failure_log_ns_{0};

  /// Latency ring over the most recent successful refreshes; sized so the
  /// Stats() percentile pass fits on the stack.
  static constexpr std::size_t kRefreshRingSize = 64;
  mutable std::array<std::atomic<std::int64_t>, kRefreshRingSize>
      refresh_ns_ring_{};
  mutable std::atomic<std::uint64_t> refresh_ns_count_{0};
};

}  // namespace aqua

#endif  // AQUA_CONCURRENCY_SNAPSHOT_CACHE_H_
