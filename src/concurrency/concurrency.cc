// Anchor translation unit for the (otherwise header-only) concurrency
// module.
#include "concurrency/shared_synopsis.h"
#include "concurrency/sharded_synopsis.h"
