// Anchor translation unit for the (otherwise header-only) concurrency
// module.
#include "concurrency/shared_synopsis.h"
