#ifndef AQUA_CONCURRENCY_SHARED_SYNOPSIS_H_
#define AQUA_CONCURRENCY_SHARED_SYNOPSIS_H_

#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace aqua {

/// Synopses that expose a batched insert path (one call per batch instead
/// of one virtual call per element; concise/traditional samples also skip
/// over unselected elements inside the batch).
template <typename S>
concept BatchInsertable = requires(S s, std::span<const Value> values) {
  s.InsertBatch(values);
};

/// Thread-safe wrapper around any synopsis (§6: the paper assumes
/// "batch-like processing of data warehouse inserts, in which inserts and
/// queries do not intermix … To address the more general case …, issues of
/// concurrency bottlenecks need to be addressed").
///
/// This wrapper serializes updates and queries with one mutex and exposes a
/// batch-insert path so producers can amortize the lock over many stream
/// elements (see BatchInserter).  The synopses themselves stay
/// single-threaded and allocation-light, which keeps the critical sections
/// to tens of nanoseconds per element.
template <typename S>
class SharedSynopsis {
 public:
  explicit SharedSynopsis(S synopsis) : synopsis_(std::move(synopsis)) {}

  SharedSynopsis(const SharedSynopsis&) = delete;
  SharedSynopsis& operator=(const SharedSynopsis&) = delete;

  void Insert(Value value) {
    std::lock_guard<std::mutex> lock(mutex_);
    synopsis_.Insert(value);
  }

  Status Delete(Value value) {
    std::lock_guard<std::mutex> lock(mutex_);
    return synopsis_.Delete(value);
  }

  /// Applies a whole batch under one lock acquisition.  When `S` provides a
  /// synopsis-level InsertBatch (see BatchInsertable), the batch is handed
  /// to it so the skip counter can jump over unselected elements; otherwise
  /// falls back to the per-element loop.
  void InsertBatch(std::span<const Value> values) {
    std::lock_guard<std::mutex> lock(mutex_);
    if constexpr (BatchInsertable<S>) {
      synopsis_.InsertBatch(values);
    } else {
      for (Value v : values) synopsis_.Insert(v);
    }
  }

  /// Runs `fn(const S&)` under the lock and returns its result — the query
  /// path (e.g. build a hot list from a consistent snapshot of the state).
  template <typename Fn>
  auto WithRead(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return fn(static_cast<const S&>(synopsis_));
  }

  /// Runs `fn(S&)` under the lock (maintenance hooks, validation in tests).
  template <typename Fn>
  auto WithWrite(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    return fn(synopsis_);
  }

 private:
  mutable std::mutex mutex_;
  S synopsis_;
};

/// Per-producer insert buffer: producers call Add() lock-free on their own
/// buffer; every `batch_size` elements the buffer drains into the shared
/// synopsis under a single lock.  Destruction (or Flush) drains the tail.
template <typename S>
class BatchInserter {
 public:
  BatchInserter(SharedSynopsis<S>* shared, std::size_t batch_size = 1024)
      : shared_(shared), batch_size_(batch_size) {
    buffer_.reserve(batch_size);
  }

  ~BatchInserter() { Flush(); }

  BatchInserter(const BatchInserter&) = delete;
  BatchInserter& operator=(const BatchInserter&) = delete;

  void Add(Value value) {
    buffer_.push_back(value);
    if (buffer_.size() >= batch_size_) Flush();
  }

  void Flush() {
    if (buffer_.empty()) return;
    shared_->InsertBatch(buffer_);
    buffer_.clear();
  }

 private:
  SharedSynopsis<S>* shared_;
  std::size_t batch_size_;
  std::vector<Value> buffer_;
};

}  // namespace aqua

#endif  // AQUA_CONCURRENCY_SHARED_SYNOPSIS_H_
