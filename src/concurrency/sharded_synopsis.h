#ifndef AQUA_CONCURRENCY_SHARDED_SYNOPSIS_H_
#define AQUA_CONCURRENCY_SHARDED_SYNOPSIS_H_

#include <atomic>
#include <concepts>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "concurrency/shared_synopsis.h"

namespace aqua {

/// Synopses that can absorb an independently-built synopsis of a disjoint
/// substream while staying statistically valid (Theorem-2 threshold-aligned
/// subsampling for concise samples; hypergeometric union for reservoirs).
template <typename S>
concept Mergeable = requires(S s, const S& other) {
  { s.MergeFrom(other) } -> std::same_as<Status>;
};

/// Scale-out ingestion for any mergeable synopsis (§6: "issues of
/// concurrency bottlenecks need to be addressed").
///
/// SharedSynopsis serializes all producers through one mutex; under heavy
/// multi-producer load that lock is the bottleneck no matter how cheap the
/// per-element work is.  ShardedSynopsis instead partitions the stream
/// round-robin across N independently-locked shards, each maintaining its
/// own synopsis of the substream it observes.  Because round-robin
/// interleaving makes every substream a deterministic 1/N slice of the
/// stream (and each shard's synopsis is a uniform sample of its slice),
/// merging the shards with MergeFrom yields one synopsis that is a uniform
/// sample of the whole stream — the same partition-then-merge trick modern
/// AQP systems use to scale summary construction out.
///
/// Producers should prefer InsertBatch (one lock acquisition and one
/// skip-counted scan per batch) or, better, a per-producer
/// ShardedBatchInserter.  The query path calls Snapshot() to obtain a
/// single merged synopsis.
template <typename S>
class ShardedSynopsis {
 public:
  /// Builds `num_shards >= 1` shards; `make_shard(i)` must return the
  /// synopsis for shard i, seeded independently per shard (the shards'
  /// random streams must not be correlated or the merged sample is not
  /// uniform).
  template <typename Factory>
  ShardedSynopsis(std::size_t num_shards, Factory&& make_shard) {
    AQUA_CHECK_GE(num_shards, std::size_t{1});
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(make_shard(i)));
    }
  }

  ShardedSynopsis(const ShardedSynopsis&) = delete;
  ShardedSynopsis& operator=(const ShardedSynopsis&) = delete;

  std::size_t num_shards() const { return shards_.size(); }

  /// Next shard in round-robin order (one atomic increment; no lock).
  std::size_t NextShard() {
    return ticket_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  }

  void Insert(Value value) {
    Shard& shard = *shards_[NextShard()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.synopsis.Insert(value);
  }

  /// Applies the whole batch to one round-robin-chosen shard under a single
  /// lock acquisition, through the synopsis-level fast path when available.
  void InsertBatch(std::span<const Value> values) {
    InsertBatchToShard(NextShard(), values);
  }

  /// Targets a specific shard (producers pinning shards for locality).
  void InsertBatchToShard(std::size_t index, std::span<const Value> values) {
    Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if constexpr (BatchInsertable<S>) {
      shard.synopsis.InsertBatch(values);
    } else {
      for (Value v : values) shard.synopsis.Insert(v);
    }
  }

  /// Routes a delete to the next round-robin shard.  Because inserts of any
  /// given value are spread round-robin too, each shard's synopsis is an
  /// exchangeable view of the value's occurrences; synopses that support
  /// deletes (counting samples, Theorem 5) stay valid shard-locally.
  Status Delete(Value value) {
    Shard& shard = *shards_[NextShard()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.synopsis.Delete(value);
  }

  /// Total inserts observed across all shards (locks each shard briefly).
  std::int64_t ObservedInserts() const {
    std::int64_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->synopsis.ObservedInserts();
    }
    return total;
  }

  /// Merges per-shard copies into one synopsis for the query path.  Each
  /// shard is copied under its own lock (a consistent per-shard snapshot;
  /// shards are not frozen relative to each other — under continuous
  /// ingestion the merged view may be a few in-flight batches skewed, like
  /// any sampling snapshot).  Requires S to be copyable and Mergeable.
  Result<S> Snapshot() const
    requires Mergeable<S> && std::copy_constructible<S>
  {
    S merged = CopyShard(0);
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      const S shard_copy = CopyShard(i);
      AQUA_RETURN_NOT_OK(merged.MergeFrom(shard_copy));
    }
    return merged;
  }

  /// Runs `fn(const S&)` on one shard under its lock (tests, maintenance).
  template <typename Fn>
  auto WithShard(std::size_t index, Fn&& fn) const {
    const Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return fn(static_cast<const S&>(shard.synopsis));
  }

 private:
  // One cache line per shard so neighboring locks don't false-share.
  struct alignas(64) Shard {
    explicit Shard(S s) : synopsis(std::move(s)) {}
    mutable std::mutex mutex;
    S synopsis;
  };

  S CopyShard(std::size_t index) const {
    const Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.synopsis;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> ticket_{0};
};

/// Per-producer insert buffer for a ShardedSynopsis: Add() is lock-free on
/// the producer's own buffer; every `batch_size` elements the buffer drains
/// into the next round-robin shard under one lock acquisition, through the
/// synopsis-level batch fast path.  Destruction (or Flush) drains the tail.
template <typename S>
class ShardedBatchInserter {
 public:
  explicit ShardedBatchInserter(ShardedSynopsis<S>* sharded,
                                std::size_t batch_size = 1024)
      : sharded_(sharded), batch_size_(batch_size) {
    buffer_.reserve(batch_size);
  }

  ~ShardedBatchInserter() { Flush(); }

  ShardedBatchInserter(const ShardedBatchInserter&) = delete;
  ShardedBatchInserter& operator=(const ShardedBatchInserter&) = delete;

  void Add(Value value) {
    buffer_.push_back(value);
    if (buffer_.size() >= batch_size_) Flush();
  }

  void Flush() {
    if (buffer_.empty()) return;
    sharded_->InsertBatch(buffer_);
    buffer_.clear();
  }

 private:
  ShardedSynopsis<S>* sharded_;
  std::size_t batch_size_;
  std::vector<Value> buffer_;
};

}  // namespace aqua

#endif  // AQUA_CONCURRENCY_SHARDED_SYNOPSIS_H_
