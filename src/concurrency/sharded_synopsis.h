#ifndef AQUA_CONCURRENCY_SHARDED_SYNOPSIS_H_
#define AQUA_CONCURRENCY_SHARDED_SYNOPSIS_H_

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "concurrency/shared_synopsis.h"
#include "container/flat_hash_map.h"
#include "core/batch_kernels.h"
#include "random/xoshiro256.h"

namespace aqua {

/// Synopses that can absorb an independently-built synopsis of a disjoint
/// substream while staying statistically valid (Theorem-2 threshold-aligned
/// subsampling for concise samples; hypergeometric union for reservoirs).
template <typename S>
concept Mergeable = requires(S s, const S& other) {
  { s.MergeFrom(other) } -> std::same_as<Status>;
};

/// Synopses whose private random stream can be replaced wholesale.
/// Snapshot() requires this: a merged snapshot starts as a copy of shard 0,
/// and without a reseed its merge draws would replay exactly the random
/// values shard 0 will consume for its future inserts (and successive
/// snapshots would reuse identical randomness).
template <typename S>
concept Reseedable = requires(S s, std::uint64_t seed) { s.Reseed(seed); };

/// Synopses with a prehashed batch fast path: the caller supplies
/// hashes[i] == IntegerHash{}(values[i]) so the synopsis's own lookups
/// reuse the hashes the shard router already computed.
template <typename S>
concept PrehashedBatchInsertable =
    requires(S s, std::span<const Value> v,
             std::span<const std::uint64_t> h) {
      s.InsertBatchPrehashed(v, h);
    };

/// Synopses that look up every insert regardless of the threshold (the
/// counting sample), for which prehashing a whole batch *outside* the shard
/// lock is always profitable — unlike skip-counting synopses, where most
/// batch elements never touch the table and eager hashing would be waste.
template <typename S>
concept PrehashEager =
    PrehashedBatchInsertable<S> && requires { requires S::kHashesEveryInsert; };

/// How one SnapshotDelta() call covered the shard set: how many shards were
/// served from the retained base versus merged individually, and whether
/// the base had to be discarded (a full rebuild).  Non-template so callers
/// can aggregate across synopsis types.
struct ShardedDeltaStats {
  std::size_t total_shards = 0;
  /// Dirty shards copied and merged individually this call.
  std::size_t merged_shards = 0;
  /// Quiescent shards covered by the retained base (no copy, no merge).
  std::size_t base_shards = 0;
  /// True when no valid base existed (first call, or an in-base shard
  /// mutated) and every shard was re-merged from scratch.
  bool full_rebuild = false;
  /// merged_shards / total_shards — the fraction of the shard set that had
  /// to be re-merged.
  double delta_fraction = 1.0;
};

/// How a ShardedSynopsis assigns stream operations to shards.
enum class ShardRouting {
  /// Each operation goes to the next shard in ticket order: perfectly
  /// balanced regardless of the value distribution, but *insert-only* —
  /// a delete could land on a shard that never saw the value's inserts,
  /// silently breaking the aggregate count, so Delete() is refused.
  kRoundRobin,
  /// All operations on a value go to the shard chosen by hash(value), so a
  /// delete always reaches the shard that observed every insert of that
  /// value and shard-local delete semantics (Theorem 5) stay exact.  The
  /// substreams are still disjoint, so Snapshot() merging stays valid; the
  /// cost is load skew when a few values dominate the stream.
  kByValue,
};

/// Scale-out ingestion for any mergeable synopsis (§6: "issues of
/// concurrency bottlenecks need to be addressed").
///
/// SharedSynopsis serializes all producers through one mutex; under heavy
/// multi-producer load that lock is the bottleneck no matter how cheap the
/// per-element work is.  ShardedSynopsis instead partitions the stream
/// across N independently-locked shards, each maintaining its own synopsis
/// of the disjoint substream it observes.  Because each shard's synopsis is
/// a uniform sample of its substream, merging the shards with MergeFrom
/// yields one synopsis that is a uniform sample of the whole stream — the
/// same partition-then-merge trick modern AQP systems use to scale summary
/// construction out.
///
/// The routing policy picks the partition: kRoundRobin (default) gives
/// perfectly balanced 1/N slices but supports inserts only; kByValue
/// hash-partitions by value, which additionally supports deletes (see
/// ShardRouting).  Producers should prefer InsertBatch (one lock
/// acquisition and one skip-counted scan per batch) or, better, a
/// per-producer ShardedBatchInserter.  The query path calls Snapshot() to
/// obtain a single merged synopsis.
template <typename S>
class ShardedSynopsis {
 public:
  /// Builds `num_shards >= 1` shards; `make_shard(i)` must return the
  /// synopsis for shard i, seeded independently per shard (the shards'
  /// random streams must not be correlated or the merged sample is not
  /// uniform).
  template <typename Factory>
  ShardedSynopsis(std::size_t num_shards, Factory&& make_shard,
                  ShardRouting routing = ShardRouting::kRoundRobin)
      : routing_(routing) {
    AQUA_CHECK_GE(num_shards, std::size_t{1});
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(make_shard(i)));
    }
  }

  ShardedSynopsis(const ShardedSynopsis&) = delete;
  ShardedSynopsis& operator=(const ShardedSynopsis&) = delete;

  std::size_t num_shards() const { return shards_.size(); }

  ShardRouting routing() const { return routing_; }

  /// Next shard in round-robin order (one atomic increment; no lock).
  std::size_t NextShard() {
    return ticket_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  }

  /// The shard that owns `value` under kByValue routing.
  std::size_t ShardForValue(Value value) const {
    return IntegerHash{}(value) % shards_.size();
  }

  void Insert(Value value) {
    const std::size_t index = routing_ == ShardRouting::kByValue
                                  ? ShardForValue(value)
                                  : NextShard();
    Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.version.fetch_add(1, std::memory_order_relaxed);
    shard.synopsis.Insert(value);
  }

  /// Applies the whole batch under one lock acquisition per touched shard,
  /// through the synopsis-level fast path when available.  kRoundRobin
  /// sends the whole batch to the next shard; kByValue partitions it by
  /// value hash first (stably, so each shard sees its substream in stream
  /// order — the draw streams match element-at-a-time routing exactly).
  ///
  /// All routing work — hashing (vector kernel), route computation, and
  /// the per-shard partition — happens *before* any shard lock is taken;
  /// each lock is then held only while the shard's synopsis absorbs its
  /// survivors through the (prehashed, when available) batch fast path.
  /// Uses a thread-local scratch; producers owning a ShardedBatchInserter
  /// route through their inserter's private scratch instead.
  void InsertBatch(std::span<const Value> values) {
    static thread_local ShardPartitionScratch scratch;
    InsertBatch(values, scratch);
  }

  /// InsertBatch with a caller-owned routing scratch (all scratch vectors
  /// retain capacity, so steady-state batches allocate nothing).
  void InsertBatch(std::span<const Value> values,
                   ShardPartitionScratch& scratch) {
    if (values.empty()) return;
    if (routing_ == ShardRouting::kRoundRobin) {
      const std::size_t index = NextShard();
      if constexpr (PrehashEager<S>) {
        // The synopsis hashes every insert anyway; hash the whole batch
        // with the vector kernel before touching the lock.
        scratch.hashes.resize(values.size());
        HashBatch(values, scratch.hashes.data());
        Shard& shard = *shards_[index];
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.version.fetch_add(1, std::memory_order_relaxed);
        shard.synopsis.InsertBatchPrehashed(values, scratch.hashes);
      } else {
        InsertBatchToShard(index, values);
      }
      return;
    }
    PartitionByShard(values, shards_.size(), scratch);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::size_t begin = scratch.offsets[s];
      const std::size_t end = scratch.offsets[s + 1];
      if (begin == end) continue;
      const std::span<const Value> group(scratch.values.data() + begin,
                                         end - begin);
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.version.fetch_add(1, std::memory_order_relaxed);
      if constexpr (PrehashedBatchInsertable<S>) {
        shard.synopsis.InsertBatchPrehashed(
            group, std::span<const std::uint64_t>(
                       scratch.grouped_hashes.data() + begin, end - begin));
      } else if constexpr (BatchInsertable<S>) {
        shard.synopsis.InsertBatch(group);
      } else {
        for (Value v : group) shard.synopsis.Insert(v);
      }
    }
  }

  /// Targets a specific shard (producers pinning shards for locality).
  void InsertBatchToShard(std::size_t index, std::span<const Value> values) {
    Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.version.fetch_add(1, std::memory_order_relaxed);
    if constexpr (BatchInsertable<S>) {
      shard.synopsis.InsertBatch(values);
    } else {
      for (Value v : values) shard.synopsis.Insert(v);
    }
  }

  /// Routes a delete to the shard that observed every insert of `value`.
  /// Only kByValue routing can do that — under kRoundRobin a value's
  /// inserts are spread across shards, so a delete could land on a shard
  /// that never counted the value (a silent no-op for counting samples,
  /// Theorem 5) while the counting shard keeps it, over-counting the
  /// aggregate.  Refused with FailedPrecondition in that mode.
  Status Delete(Value value) {
    if (routing_ != ShardRouting::kByValue) {
      return Status::FailedPrecondition(
          "ShardedSynopsis::Delete requires ShardRouting::kByValue; "
          "round-robin sharding is insert-only");
    }
    Shard& shard = *shards_[ShardForValue(value)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.version.fetch_add(1, std::memory_order_relaxed);
    return shard.synopsis.Delete(value);
  }

  /// Total words across all shards (locks each shard briefly).
  Words Footprint() const
    requires requires(const S s) {
      { s.Footprint() } -> std::convertible_to<Words>;
    }
  {
    Words total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->synopsis.Footprint();
    }
    return total;
  }

  /// Total inserts observed across all shards (locks each shard briefly).
  std::int64_t ObservedInserts() const {
    std::int64_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->synopsis.ObservedInserts();
    }
    return total;
  }

  /// Merges per-shard copies into one synopsis for the query path.  Each
  /// shard is copied under its own lock (a consistent per-shard snapshot;
  /// shards are not frozen relative to each other — under continuous
  /// ingestion the merged view may be a few in-flight batches skewed, like
  /// any sampling snapshot).  Requires S to be copyable, Mergeable and
  /// Reseedable.
  ///
  /// The merged copy is reseeded before merging: it starts life as a copy
  /// of shard 0, and without a fresh stream its subsampling/binomial merge
  /// draws would replay exactly the random values shard 0 will consume for
  /// its future inserts — and successive Snapshot() calls would reuse
  /// identical randomness, perfectly correlating repeated-snapshot
  /// statistics.  A per-call sequence number mixed through SplitMix64
  /// gives every snapshot its own independent stream (deterministic per
  /// ShardedSynopsis instance, so tests stay reproducible).
  Result<S> Snapshot() const
    requires Mergeable<S> && Reseedable<S> && std::copy_constructible<S>
  {
    S merged = CopyShard(0);
    std::uint64_t sm = kSnapshotSeedTag ^
                       snapshot_seq_.fetch_add(1, std::memory_order_relaxed);
    merged.Reseed(SplitMix64Next(sm));
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      const S shard_copy = CopyShard(i);
      AQUA_RETURN_NOT_OK(merged.MergeFrom(shard_copy));
    }
    return merged;
  }

  /// Caller-retained state for SnapshotDelta(): a base synopsis covering
  /// the shards that have been quiescent for at least one whole refresh
  /// window, plus the per-shard versions needed to detect quiescence and
  /// base staleness.  One DeltaState belongs to one refresher; calls
  /// sharing a state must be externally serialized (the registry handle's
  /// refresh mutex already does this).
  struct DeltaState {
    std::optional<S> base;
    std::vector<std::uint64_t> base_versions;
    std::vector<char> in_base;
    std::vector<std::uint64_t> last_versions;
    std::vector<std::uint64_t> scratch_versions;
    std::uint64_t base_seq = 0;
    bool has_last = false;
  };

  /// Snapshot() with a retained base: shards whose version did not move
  /// across a whole refresh window are folded into `state.base` once, and
  /// later calls merge only the shards that mutated since — O(dirty)
  /// shard copies + merges instead of O(N).  If an in-base shard mutates,
  /// the base is discarded and this call degrades to a full re-merge
  /// (stats->full_rebuild); hot shards therefore never enter the base and
  /// are merged fresh every call.
  ///
  /// Same consistency contract as Snapshot(): each shard copy is taken
  /// under its own lock, shards are not frozen relative to each other, and
  /// an in-base shard that mutates *between* the validity check and the
  /// merge only makes this snapshot trail by those in-flight ops — the
  /// next call observes the version change and rebuilds.  The merged
  /// result and the base each draw from their own SplitMix64-derived
  /// streams, so repeated snapshots stay statistically independent exactly
  /// as with Snapshot().
  Result<S> SnapshotDelta(DeltaState& state,
                          ShardedDeltaStats* stats = nullptr) const
    requires Mergeable<S> && Reseedable<S> && std::copy_constructible<S>
  {
    const std::size_t n = shards_.size();
    if (state.base_versions.size() != n) {
      state.base.reset();
      state.base_versions.assign(n, 0);
      state.in_base.assign(n, 0);
      state.last_versions.assign(n, 0);
      state.has_last = false;
    }
    state.scratch_versions.resize(n);
    // Conservative base validity check: any in-base shard whose version
    // moved since it was folded invalidates the whole base (a merge is not
    // reversible, so one stale contribution poisons the sum).
    bool base_valid = state.base.has_value();
    if (base_valid) {
      for (std::size_t i = 0; i < n; ++i) {
        if (state.in_base[i] != 0 &&
            shards_[i]->version.load(std::memory_order_relaxed) !=
                state.base_versions[i]) {
          base_valid = false;
          break;
        }
      }
    }
    if (!base_valid) {
      state.base.reset();
      std::fill(state.in_base.begin(), state.in_base.end(), char{0});
    }

    std::optional<S> merged;
    if (base_valid) {
      merged.emplace(*state.base);
      std::uint64_t sm =
          kSnapshotSeedTag ^
          snapshot_seq_.fetch_add(1, std::memory_order_relaxed);
      merged->Reseed(SplitMix64Next(sm));
    }
    std::size_t merged_shards = 0;
    std::size_t base_shards = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (base_valid && state.in_base[i] != 0) {
        // Covered by the base; its version cannot have moved (checked
        // above, and any later movement is the documented trailing race).
        state.scratch_versions[i] = state.base_versions[i];
        ++base_shards;
        continue;
      }
      std::uint64_t version = 0;
      const S shard_copy = CopyShardVersioned(i, &version);
      state.scratch_versions[i] = version;
      if (!merged.has_value()) {
        merged.emplace(shard_copy);
        std::uint64_t sm =
            kSnapshotSeedTag ^
            snapshot_seq_.fetch_add(1, std::memory_order_relaxed);
        merged->Reseed(SplitMix64Next(sm));
      } else {
        AQUA_RETURN_NOT_OK(merged->MergeFrom(shard_copy));
      }
      ++merged_shards;
      // Quiescent across the previous whole window: fold into the base so
      // the next call skips this shard.  A shard folds only after one full
      // window with no mutation, so hot shards never churn the base.
      if (state.has_last && version == state.last_versions[i]) {
        if (!state.base.has_value()) {
          state.base.emplace(shard_copy);
          std::uint64_t sm = kDeltaBaseSeedTag ^ state.base_seq++;
          state.base->Reseed(SplitMix64Next(sm));
        } else {
          AQUA_RETURN_NOT_OK(state.base->MergeFrom(shard_copy));
        }
        state.in_base[i] = 1;
        state.base_versions[i] = version;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      state.last_versions[i] = state.scratch_versions[i];
    }
    state.has_last = true;
    if (stats != nullptr) {
      stats->total_shards = n;
      stats->merged_shards = merged_shards;
      stats->base_shards = base_shards;
      stats->full_rebuild = !base_valid;
      stats->delta_fraction =
          n == 0 ? 0.0
                 : static_cast<double>(merged_shards) /
                       static_cast<double>(n);
    }
    return std::move(*merged);
  }

  /// Runs `fn(const S&)` on one shard under its lock (tests, maintenance).
  template <typename Fn>
  auto WithShard(std::size_t index, Fn&& fn) const {
    const Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return fn(static_cast<const S&>(shard.synopsis));
  }

  /// Runs `fn(S&)` on one shard under its lock.  The cluster merge/restore
  /// path folds external state into shard 0 this way: the shards summarize
  /// disjoint substreams, so attributing merged-in ops to one shard keeps
  /// every Snapshot() merge valid.
  template <typename Fn>
  auto WithShardMutable(std::size_t index, Fn&& fn) {
    Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.version.fetch_add(1, std::memory_order_relaxed);
    return fn(static_cast<S&>(shard.synopsis));
  }

  /// Current mutation version of one shard (tests, diagnostics).
  std::uint64_t ShardVersion(std::size_t index) const {
    return shards_[index]->version.load(std::memory_order_relaxed);
  }

 private:
  // One cache line per shard so neighboring locks don't false-share.
  struct alignas(64) Shard {
    explicit Shard(S s) : synopsis(std::move(s)) {}
    mutable std::mutex mutex;
    /// Bumped under `mutex` by every mutating entry point; SnapshotDelta
    /// compares versions across calls to find shards that went quiescent
    /// (fold into the retained base) or dirtied an in-base shard (discard
    /// the base).  Loaded without the lock only for the conservative base
    /// validity check.
    std::atomic<std::uint64_t> version{0};
    S synopsis;
  };

  static constexpr std::uint64_t kSnapshotSeedTag = 0x5a45b07c0de5eedULL;
  /// The retained base's stream must be independent of both the shards'
  /// streams (it starts as a shard copy) and the merged snapshots'.
  static constexpr std::uint64_t kDeltaBaseSeedTag = 0x9d3c0b1a5eedba5eULL;

  S CopyShard(std::size_t index) const {
    const Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.synopsis;
  }

  /// CopyShard that also captures the shard's version under the same lock,
  /// so the (copy, version) pair is consistent.
  S CopyShardVersioned(std::size_t index, std::uint64_t* version) const {
    const Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    *version = shard.version.load(std::memory_order_relaxed);
    return shard.synopsis;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  ShardRouting routing_;
  std::atomic<std::size_t> ticket_{0};
  mutable std::atomic<std::uint64_t> snapshot_seq_{0};
};

/// Per-producer insert buffer for a ShardedSynopsis: Add() is lock-free on
/// the producer's own buffer; every `batch_size` elements the buffer drains
/// into the next round-robin shard under one lock acquisition, through the
/// synopsis-level batch fast path.  Destruction (or Flush) drains the tail.
template <typename S>
class ShardedBatchInserter {
 public:
  explicit ShardedBatchInserter(ShardedSynopsis<S>* sharded,
                                std::size_t batch_size = 1024)
      : sharded_(sharded), batch_size_(batch_size) {
    buffer_.reserve(batch_size);
  }

  ~ShardedBatchInserter() { Flush(); }

  ShardedBatchInserter(const ShardedBatchInserter&) = delete;
  ShardedBatchInserter& operator=(const ShardedBatchInserter&) = delete;

  void Add(Value value) {
    buffer_.push_back(value);
    if (buffer_.size() >= batch_size_) Flush();
  }

  void Flush() {
    if (buffer_.empty()) return;
    sharded_->InsertBatch(buffer_, scratch_);
    buffer_.clear();
  }

 private:
  ShardedSynopsis<S>* sharded_;
  std::size_t batch_size_;
  std::vector<Value> buffer_;
  // Private routing scratch: hashes/routes/partitions are computed here,
  // outside any shard lock, and the vectors keep their capacity across
  // flushes so a steady-state producer allocates nothing.
  ShardPartitionScratch scratch_;
};

}  // namespace aqua

#endif  // AQUA_CONCURRENCY_SHARDED_SYNOPSIS_H_
