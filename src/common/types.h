#ifndef AQUA_COMMON_TYPES_H_
#define AQUA_COMMON_TYPES_H_

#include <cstdint>

namespace aqua {

/// An attribute value observed in the load stream.  The paper treats values
/// as opaque words; we use a 64-bit integer.  Pairs / k-itemsets are encoded
/// into a single Value by the workload layer (see workload/itemset_stream.h).
using Value = std::int64_t;

/// An occurrence count.  One memory "word" in the paper's footprint model.
using Count = std::int64_t;

/// A footprint measured in memory words (paper §1: "the number of memory
/// words to store the synopsis").  A singleton sample point costs 1 word; a
/// <value, count> pair costs 2 words (paper footnote 3 assumes values and
/// counts occupy one word each).
using Words = std::int64_t;

/// Number of words used by one represented value of a concise/counting
/// sample: 1 for a singleton, 2 for a <value, count> pair.
inline Words EntryWords(Count count) { return count > 1 ? 2 : 1; }

}  // namespace aqua

#endif  // AQUA_COMMON_TYPES_H_
