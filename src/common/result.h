#ifndef AQUA_COMMON_RESULT_H_
#define AQUA_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace aqua {

/// A value-or-error wrapper: holds either a `T` or a non-OK Status.
///
/// Modeled after arrow::Result.  Accessing the value of an errored Result is
/// a programming error and aborts (AQUA_CHECK).
///
///     aqua::Result<ConciseSample> r = ConciseSample::Make(opts);
///     if (!r.ok()) return r.status();
///     ConciseSample sample = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, so `return status;` works).
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    AQUA_CHECK(!std::get<Status>(repr_).ok())
        << "Result<T> must not be constructed from an OK Status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK if a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the held value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    AQUA_CHECK(ok()) << "ValueOrDie on errored Result: "
                     << std::get<Status>(repr_).ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    AQUA_CHECK(ok()) << "ValueOrDie on errored Result: "
                     << std::get<Status>(repr_).ToString();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    AQUA_CHECK(ok()) << "ValueOrDie on errored Result: "
                     << std::get<Status>(repr_).ToString();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller.
#define AQUA_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  AQUA_ASSIGN_OR_RETURN_IMPL_(                                 \
      AQUA_CONCAT_(_aqua_result_, __LINE__), lhs, rexpr)

#define AQUA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define AQUA_CONCAT_(a, b) AQUA_CONCAT_IMPL_(a, b)
#define AQUA_CONCAT_IMPL_(a, b) a##b

}  // namespace aqua

#endif  // AQUA_COMMON_RESULT_H_
