#ifndef AQUA_COMMON_CHECK_H_
#define AQUA_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace aqua {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used via the AQUA_CHECK family of macros only.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failed at " << file << ":" << line << ": "
            << condition;
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace aqua

/// Aborts with a message when `cond` is false.  Enabled in all build modes;
/// use for invariants whose violation would corrupt a synopsis.
#define AQUA_CHECK(cond)                                        \
  if (cond) {                                                   \
  } else /* NOLINT */                                           \
    ::aqua::internal_check::CheckFailureStream("AQUA_CHECK",    \
                                               __FILE__, __LINE__, #cond)

#define AQUA_CHECK_EQ(a, b) AQUA_CHECK((a) == (b))
#define AQUA_CHECK_NE(a, b) AQUA_CHECK((a) != (b))
#define AQUA_CHECK_LT(a, b) AQUA_CHECK((a) < (b))
#define AQUA_CHECK_LE(a, b) AQUA_CHECK((a) <= (b))
#define AQUA_CHECK_GT(a, b) AQUA_CHECK((a) > (b))
#define AQUA_CHECK_GE(a, b) AQUA_CHECK((a) >= (b))

/// Debug-only check: compiled out in NDEBUG builds.
#ifdef NDEBUG
#define AQUA_DCHECK(cond) \
  while (false) AQUA_CHECK(cond)
#else
#define AQUA_DCHECK(cond) AQUA_CHECK(cond)
#endif

#define AQUA_DCHECK_EQ(a, b) AQUA_DCHECK((a) == (b))
#define AQUA_DCHECK_NE(a, b) AQUA_DCHECK((a) != (b))
#define AQUA_DCHECK_LT(a, b) AQUA_DCHECK((a) < (b))
#define AQUA_DCHECK_LE(a, b) AQUA_DCHECK((a) <= (b))
#define AQUA_DCHECK_GT(a, b) AQUA_DCHECK((a) > (b))
#define AQUA_DCHECK_GE(a, b) AQUA_DCHECK((a) >= (b))

#endif  // AQUA_COMMON_CHECK_H_
