#ifndef AQUA_COMMON_STATUS_H_
#define AQUA_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace aqua {

/// Canonical error codes, modeled after the usual database-engine set
/// (Arrow / RocksDB style).  The library does not use exceptions; fallible
/// operations return a Status (or Result<T>, see result.h).
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

/// Returns the canonical spelling of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, movable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// human-readable message.  Usage:
///
///     aqua::Status s = synopsis.Validate();
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define AQUA_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::aqua::Status _aqua_status = (expr);        \
    if (!_aqua_status.ok()) return _aqua_status; \
  } while (false)

}  // namespace aqua

#endif  // AQUA_COMMON_STATUS_H_
