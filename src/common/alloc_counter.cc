#include "common/alloc_counter.h"

#ifdef AQUA_COUNT_GLOBAL_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::int64_t> g_alloc_count{0};
}  // namespace

// Counting replacements for the global allocation functions.  Replacing
// operator new is only legal once per program, so this file must not be
// linked into binaries that install their own counters (the zero-alloc
// test uses a TU-local pair instead of this option for exactly that
// reason).
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aqua {

std::int64_t GlobalAllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

bool GlobalAllocCountingEnabled() { return true; }

}  // namespace aqua

#else  // !AQUA_COUNT_GLOBAL_ALLOCS

namespace aqua {

std::int64_t GlobalAllocCount() { return 0; }

bool GlobalAllocCountingEnabled() { return false; }

}  // namespace aqua

#endif  // AQUA_COUNT_GLOBAL_ALLOCS
