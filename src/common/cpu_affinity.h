// Best-effort CPU pinning shared by the serving reactors (--pin-cores) and
// the bench harnesses (bench/scaling_matrix --pin-cpus): one definition of
// "pin this thread to core N" so server and load generator place threads
// with the same policy and /stats and bench JSON can record what actually
// happened.
#ifndef AQUA_COMMON_CPU_AFFINITY_H_
#define AQUA_COMMON_CPU_AFFINITY_H_

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <cstddef>

namespace aqua {

/// Pins the calling thread to CPU (cpu mod online CPUs) via
/// pthread_setaffinity_np.  Returns the CPU index actually requested, or -1
/// when the pin failed or no CPU count could be read — best effort, callers
/// record the result rather than treating failure as fatal.
inline int PinSelfToCpu(std::size_t cpu) {
  const long cpus = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (cpus <= 0) return -1;
  const std::size_t target = cpu % static_cast<std::size_t>(cpus);
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(target, &mask);
  if (::pthread_setaffinity_np(::pthread_self(), sizeof(mask), &mask) != 0) {
    return -1;
  }
  return static_cast<int>(target);
}

}  // namespace aqua

#endif  // AQUA_COMMON_CPU_AFFINITY_H_
