#ifndef AQUA_COMMON_ALLOC_COUNTER_H_
#define AQUA_COMMON_ALLOC_COUNTER_H_

#include <cstdint>

namespace aqua {

/// Process-wide count of global operator-new calls since start, when the
/// build was configured with -DAQUA_COUNT_GLOBAL_ALLOCS=ON (which makes
/// alloc_counter.cc replace the global allocation functions with counting
/// wrappers).  Always 0 in a normal build.  The serving binary exposes it
/// as /stats "allocs_total", so a smoke test can assert that a window of
/// warmed GET requests moved it by exactly zero.
std::int64_t GlobalAllocCount();

/// True when this build counts global allocations (lets consumers of
/// allocs_total distinguish "zero because nothing allocated" from "zero
/// because counting is off").
bool GlobalAllocCountingEnabled();

}  // namespace aqua

#endif  // AQUA_COMMON_ALLOC_COUNTER_H_
