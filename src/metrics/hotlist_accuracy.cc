#include "metrics/hotlist_accuracy.h"

#include <algorithm>
#include <cmath>

#include "container/flat_hash_map.h"

namespace aqua {

std::vector<ValueCount> ExactTopK(std::vector<ValueCount> exact_counts,
                                  std::int64_t k) {
  std::sort(exact_counts.begin(), exact_counts.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.count > b.count ||
                     (a.count == b.count && a.value < b.value);
            });
  if (k >= 0 && static_cast<std::int64_t>(exact_counts.size()) > k) {
    // Keep ties at the k-th count: anything with the same count as the
    // k-th entry still qualifies as a top-k member.
    const Count cutoff = exact_counts[static_cast<std::size_t>(k - 1)].count;
    std::size_t end = static_cast<std::size_t>(k);
    while (end < exact_counts.size() && exact_counts[end].count == cutoff) {
      ++end;
    }
    exact_counts.resize(end);
  }
  return exact_counts;
}

HotListAccuracy EvaluateHotList(const HotList& reported,
                                const std::vector<ValueCount>& exact_counts,
                                std::int64_t k) {
  HotListAccuracy acc;
  acc.reported = static_cast<std::int64_t>(reported.size());

  FlatHashMap<Value, Count> exact_index;
  for (const ValueCount& vc : exact_counts) {
    exact_index.TryInsert(vc.value, vc.count);
  }
  const std::vector<ValueCount> top = ExactTopK(exact_counts, k);
  FlatHashMap<Value, Count> top_index;
  for (const ValueCount& vc : top) top_index.TryInsert(vc.value, vc.count);

  FlatHashMap<Value, Count> reported_index;
  double err_sum = 0.0;
  std::int64_t err_n = 0;
  for (const HotListItem& item : reported) {
    reported_index.TryInsert(item.value, 1);
    if (top_index.Contains(item.value)) {
      ++acc.true_positives;
    } else {
      ++acc.false_positives;
    }
    const Count* exact = exact_index.Find(item.value);
    if (exact != nullptr && *exact > 0) {
      const double rel = std::abs(item.estimated_count -
                                  static_cast<double>(*exact)) /
                         static_cast<double>(*exact);
      err_sum += rel;
      acc.max_relative_count_error =
          std::max(acc.max_relative_count_error, rel);
      ++err_n;
    }
  }
  acc.mean_relative_count_error = err_n > 0 ? err_sum / err_n : 0.0;

  for (const ValueCount& vc : top) {
    if (!reported_index.Contains(vc.value)) ++acc.false_negatives;
  }
  for (const ValueCount& vc : top) {
    if (!reported_index.Contains(vc.value)) break;
    ++acc.correct_prefix;
  }
  return acc;
}

}  // namespace aqua
