#ifndef AQUA_METRICS_HOTLIST_ACCURACY_H_
#define AQUA_METRICS_HOTLIST_ACCURACY_H_

#include <cstdint>
#include <vector>

#include "core/value_count.h"
#include "hotlist/hot_list.h"

namespace aqua {

/// Accuracy of an approximate hot list against the exact frequencies — the
/// quantities discussed around Figures 4–6 (false negatives = "gaps in the
/// values reported", false positives = values "that do not belong among the
/// k most frequent", count error = "the difference between a reported count
/// and the top of the histogram box").
struct HotListAccuracy {
  std::int64_t reported = 0;
  /// Reported values that belong to the exact top-k.
  std::int64_t true_positives = 0;
  /// Reported values outside the exact top-k.
  std::int64_t false_positives = 0;
  /// Exact top-k values that were not reported.
  std::int64_t false_negatives = 0;
  /// Longest prefix of the exact top-k that is fully reported ("accurately
  /// reported the 15 most frequent values").
  std::int64_t correct_prefix = 0;
  /// Relative count error |est - exact| / exact over reported true values.
  double mean_relative_count_error = 0.0;
  double max_relative_count_error = 0.0;

  double Recall(std::int64_t k) const {
    return k > 0 ? static_cast<double>(true_positives) /
                       static_cast<double>(k)
                 : 0.0;
  }
  double Precision() const {
    return reported > 0 ? static_cast<double>(true_positives) /
                              static_cast<double>(reported)
                        : 0.0;
  }
};

/// Evaluates `reported` against the exact frequency table for the exact
/// top-k (ties at the k-th count are all treated as top-k members).
HotListAccuracy EvaluateHotList(const HotList& reported,
                                const std::vector<ValueCount>& exact_counts,
                                std::int64_t k);

/// The exact top-k <value,count> pairs, count-descending (value ascending
/// tie-break).
std::vector<ValueCount> ExactTopK(std::vector<ValueCount> exact_counts,
                                  std::int64_t k);

}  // namespace aqua

#endif  // AQUA_METRICS_HOTLIST_ACCURACY_H_
