#ifndef AQUA_METRICS_TABLE_PRINTER_H_
#define AQUA_METRICS_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace aqua {

/// Aligned fixed-column table output for the paper-style benchmark tables
/// (Tables 1–2, and the per-rank series of Figures 3–6 printed as columns).
/// Also emits CSV for downstream plotting.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  TablePrinter& AddRow(std::vector<std::string> cells);

  /// Formats helpers for cells.
  static std::string Num(std::int64_t v);
  static std::string Num(double v, int precision = 3);

  /// Pretty-prints with padded columns and a header rule.
  void Print(std::ostream& os) const;

  /// Comma-separated output (no padding).
  void PrintCsv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aqua

#endif  // AQUA_METRICS_TABLE_PRINTER_H_
