#include "metrics/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace aqua {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::AddRow(std::vector<std::string> cells) {
  AQUA_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TablePrinter::Num(std::int64_t v) { return std::to_string(v); }

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace aqua
