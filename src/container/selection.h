#ifndef AQUA_CONTAINER_SELECTION_H_
#define AQUA_CONTAINER_SELECTION_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace aqua {

/// Returns the k-th largest element (1-based k) of `values` using a linear
/// expected-time selection, as prescribed for hot-list reporting in §5.1
/// ("we first compute the k'th largest count c_k (using a linear time
/// selection algorithm)").  If k exceeds the number of elements, returns the
/// minimum element; for an empty input returns `empty_value`.
template <typename T>
T KthLargest(std::vector<T> values, std::size_t k, T empty_value = T{}) {
  if (values.empty()) return empty_value;
  if (k == 0) k = 1;
  if (k > values.size()) k = values.size();
  auto nth = values.begin() + static_cast<std::ptrdiff_t>(k - 1);
  std::nth_element(values.begin(), nth, values.end(), std::greater<T>());
  return *nth;
}

/// Sorts items by `proj(item)` descending, breaking ties by the item's
/// natural ascending order for deterministic output.
template <typename T, typename Proj>
void SortByDescending(std::vector<T>& items, Proj proj) {
  std::stable_sort(items.begin(), items.end(), [&](const T& a, const T& b) {
    return proj(a) > proj(b);
  });
}

}  // namespace aqua

#endif  // AQUA_CONTAINER_SELECTION_H_
