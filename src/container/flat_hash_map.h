#ifndef AQUA_CONTAINER_FLAT_HASH_MAP_H_
#define AQUA_CONTAINER_FLAT_HASH_MAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"

namespace aqua {

/// Strong avalanche mix for integral keys (SplitMix64 finalizer).  std::hash
/// for integers is the identity on most standard libraries, which is
/// disastrous for open addressing over skewed key sets.
struct IntegerHash {
  std::size_t operator()(std::uint64_t x) const {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
  std::size_t operator()(std::int64_t x) const {
    return (*this)(static_cast<std::uint64_t>(x));
  }
};

/// Open-addressing hash map with Robin Hood probing and backward-shift
/// deletion.
///
/// This is the "look-up hash table [that] can be constructed to enable
/// constant-time look-ups" of §3 — the lookup structure backing every
/// synopsis in the library.  Compared to std::unordered_map it stores
/// entries inline in one flat array (no per-node allocation), which both
/// matches the paper's small-footprint goal and keeps probes cache-local.
///
/// Requirements: K and V are trivially destructible value types (we store
/// 64-bit values and counts).  Not thread-safe.
template <typename K, typename V, typename Hash = IntegerHash>
class FlatHashMap {
 public:
  struct Entry {
    K key;
    V value;
  };

  FlatHashMap() { Rehash(kMinCapacity); }

  /// Pre-sizes so that `n` entries fit without rehashing.
  explicit FlatHashMap(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    Rehash(cap);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  /// The pointer is invalidated by any mutation of the map.
  V* Find(const K& key) {
    const std::size_t idx = FindIndex(key);
    return idx == kNpos ? nullptr : &slots_[idx].entry.value;
  }
  const V* Find(const K& key) const {
    const std::size_t idx = FindIndex(key);
    return idx == kNpos ? nullptr : &slots_[idx].entry.value;
  }

  bool Contains(const K& key) const { return FindIndex(key) != kNpos; }

  /// Inserts `key` with `value` if absent; returns {pointer to the mapped
  /// value, true if newly inserted}.
  std::pair<V*, bool> TryInsert(const K& key, const V& value) {
    MaybeGrow();
    return InsertInternal(key, value);
  }

  /// Returns the value for `key`, default-constructing it if absent.
  V& operator[](const K& key) {
    MaybeGrow();
    return *InsertInternal(key, V{}).first;
  }

  /// Removes `key`; returns true if it was present.
  bool Erase(const K& key) {
    const std::size_t idx = FindIndex(key);
    if (idx == kNpos) return false;
    EraseIndex(idx);
    return true;
  }

  void Clear() {
    for (Slot& s : slots_) s.distance = kEmpty;
    size_ = 0;
  }

  void Reserve(std::size_t n) {
    std::size_t cap = slots_.size();
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    if (cap != slots_.size()) Rehash(cap);
  }

  /// Forward iterator over occupied entries (unspecified order).
  class const_iterator {
   public:
    const_iterator(const FlatHashMap* map, std::size_t idx)
        : map_(map), idx_(idx) {
      SkipEmpty();
    }
    const Entry& operator*() const { return map_->slots_[idx_].entry; }
    const Entry* operator->() const { return &map_->slots_[idx_].entry; }
    const_iterator& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const const_iterator& o) const { return idx_ != o.idx_; }

   private:
    void SkipEmpty() {
      while (idx_ < map_->slots_.size() &&
             map_->slots_[idx_].distance == kEmpty) {
        ++idx_;
      }
    }
    const FlatHashMap* map_;
    std::size_t idx_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  /// Applies `fn(key, value&)` to every entry; if `fn` returns false the
  /// entry is removed.  This is the eviction-scan primitive used when a
  /// synopsis raises its threshold: removal during the scan is safe and
  /// every surviving entry is visited exactly once.
  template <typename Fn>
  void RetainIf(Fn&& fn) {
    // Backward-shift deletion moves later elements of the same cluster one
    // slot back; scanning from the end guarantees shifted-in elements at or
    // before the cursor were already visited, and a shifted wrap-around
    // element (from slot 0's cluster) was visited too.
    //
    // Simpler and obviously correct: collect keys first, then apply.
    scratch_keys_.clear();
    scratch_keys_.reserve(size_);
    for (const Slot& s : slots_) {
      if (s.distance != kEmpty) scratch_keys_.push_back(s.entry.key);
    }
    for (const K& key : scratch_keys_) {
      const std::size_t idx = FindIndex(key);
      AQUA_DCHECK(idx != kNpos);
      if (!fn(slots_[idx].entry.key, slots_[idx].entry.value)) {
        EraseIndex(idx);
      }
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::uint16_t kEmpty = 0;
  // Max load factor kMaxLoadNum / kMaxLoadDen = 7/8.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  struct Slot {
    Entry entry;
    // Probe distance + 1; kEmpty (0) marks an unoccupied slot.
    std::uint16_t distance = kEmpty;
  };

  std::size_t Bucket(const K& key) const { return hash_(key) & mask_; }

  std::size_t FindIndex(const K& key) const {
    std::size_t idx = Bucket(key);
    std::uint16_t distance = 1;
    while (true) {
      const Slot& slot = slots_[idx];
      if (slot.distance == kEmpty || slot.distance < distance) return kNpos;
      if (slot.distance == distance && slot.entry.key == key) return idx;
      idx = (idx + 1) & mask_;
      ++distance;
    }
  }

  std::pair<V*, bool> InsertInternal(const K& key, const V& value) {
    std::size_t idx = Bucket(key);
    std::uint16_t distance = 1;
    Entry carried{key, value};
    std::size_t result_idx = kNpos;
    while (true) {
      Slot& slot = slots_[idx];
      if (slot.distance == kEmpty) {
        slot.entry = carried;
        slot.distance = distance;
        ++size_;
        if (result_idx == kNpos) result_idx = idx;
        return {&slots_[result_idx].entry.value, true};
      }
      if (result_idx == kNpos && slot.distance == distance &&
          slot.entry.key == key) {
        return {&slot.entry.value, false};
      }
      if (slot.distance < distance) {
        // Robin Hood: the carried (poorer) entry takes this slot.
        std::swap(slot.entry, carried);
        std::swap(slot.distance, distance);
        if (result_idx == kNpos) result_idx = idx;
      }
      idx = (idx + 1) & mask_;
      ++distance;
      AQUA_CHECK_LT(distance, std::uint16_t(0xFFFF));
    }
  }

  void EraseIndex(std::size_t idx) {
    // Backward-shift deletion keeps probe distances tight (no tombstones).
    std::size_t cur = idx;
    while (true) {
      const std::size_t next = (cur + 1) & mask_;
      Slot& next_slot = slots_[next];
      if (next_slot.distance <= 1) break;  // empty or at its home bucket
      slots_[cur].entry = next_slot.entry;
      slots_[cur].distance = next_slot.distance - 1;
      cur = next;
    }
    slots_[cur].distance = kEmpty;
    --size_;
  }

  void MaybeGrow() {
    if ((size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(std::size_t new_capacity) {
    AQUA_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.distance != kEmpty) InsertInternal(s.entry.key, s.entry.value);
    }
  }

  Hash hash_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::vector<K> scratch_keys_;
};

}  // namespace aqua

#endif  // AQUA_CONTAINER_FLAT_HASH_MAP_H_
