#ifndef AQUA_CONTAINER_FLAT_HASH_MAP_H_
#define AQUA_CONTAINER_FLAT_HASH_MAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"

#if !defined(AQUA_FORCE_SCALAR) && defined(__SSE2__)
#define AQUA_MAP_GROUP_SSE2 1
#include <emmintrin.h>
#endif

namespace aqua {

/// Strong avalanche mix for integral keys (SplitMix64 finalizer).  std::hash
/// for integers is the identity on most standard libraries, which is
/// disastrous for open addressing over skewed key sets.
struct IntegerHash {
  std::size_t operator()(std::uint64_t x) const {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
  std::size_t operator()(std::int64_t x) const {
    return (*this)(static_cast<std::uint64_t>(x));
  }
};

namespace map_internal {

/// A 16-slot window of control bytes probed with one vector compare.
///
/// Each slot owns one control byte: 0x80 (`kEmpty`) when vacant, else the
/// low 7 bits of the slot key's hash ("H2").  Because deletion is
/// backward-shift (below) there are no tombstones, so "high bit set" means
/// exactly "empty" and a probe needs only two masks per group: which slots
/// *might* hold the key (H2 equality, verified against the actual key) and
/// whether the group contains an empty slot (which terminates the probe —
/// linear probing keeps every key reachable from its home bucket without
/// crossing an empty slot).
inline constexpr std::uint8_t kEmptyCtrl = 0x80;
inline constexpr std::size_t kGroupWidth = 16;

#if defined(AQUA_MAP_GROUP_SSE2)

class Group {
 public:
  explicit Group(const std::uint8_t* ctrl)
      : ctrl_(_mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl))) {}

  /// Bit i set iff slot i's control byte equals `h2` (branchless match
  /// mask; candidates still verify the full key).
  std::uint32_t Match(std::uint8_t h2) const {
    return static_cast<std::uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(ctrl_, _mm_set1_epi8(static_cast<char>(h2)))));
  }

  /// Bit i set iff slot i is empty.  With no tombstones the high bit alone
  /// distinguishes empty from full, so this is a single movemask.
  std::uint32_t MatchEmpty() const {
    return static_cast<std::uint32_t>(_mm_movemask_epi8(ctrl_));
  }

 private:
  __m128i ctrl_;
};

#else  // portable SWAR fallback (also the AQUA_FORCE_SCALAR leg)

class Group {
 public:
  explicit Group(const std::uint8_t* ctrl) {
    std::memcpy(&lo_, ctrl, 8);
    std::memcpy(&hi_, ctrl + 8, 8);
  }

  std::uint32_t Match(std::uint8_t h2) const {
    const std::uint64_t probe = 0x0101010101010101ULL * h2;
    return Compress(ZeroBytes(lo_ ^ probe)) |
           (Compress(ZeroBytes(hi_ ^ probe)) << 8);
  }

  std::uint32_t MatchEmpty() const {
    constexpr std::uint64_t kHigh = 0x8080808080808080ULL;
    return Compress(lo_ & kHigh) | (Compress(hi_ & kHigh) << 8);
  }

 private:
  /// 0x80 in every byte of the result whose byte in `x` is zero — the
  /// carry-free exact form ((x&0x7f..)+0x7f.. can never carry out of a
  /// byte), so unlike the classic (x-1)&~x trick there are no false
  /// positives after a matching byte.
  static std::uint64_t ZeroBytes(std::uint64_t x) {
    constexpr std::uint64_t k7f = 0x7f7f7f7f7f7f7f7fULL;
    const std::uint64_t y = (x & k7f) + k7f;
    return ~(y | x | k7f);
  }

  /// Gathers the per-byte 0x80 flags of `m` into an 8-bit mask (bit i =
  /// byte i), mirroring movemask.
  static std::uint32_t Compress(std::uint64_t m) {
    return static_cast<std::uint32_t>(((m >> 7) * 0x0102040810204080ULL) >>
                                      56);
  }

  std::uint64_t lo_;
  std::uint64_t hi_;
};

#endif  // AQUA_MAP_GROUP_SSE2

}  // namespace map_internal

/// Open-addressing hash map with SwissTable-style 16-slot control-byte
/// groups and backward-shift deletion.
///
/// This is the "look-up hash table [that] can be constructed to enable
/// constant-time look-ups" of §3 — the lookup structure backing every
/// synopsis in the library.  Entries live inline in one flat array (no
/// per-node allocation, matching the paper's small-footprint goal); a
/// separate byte-per-slot control array is probed 16 slots at a time with a
/// single vector compare (SSE2) or a SWAR equivalent, so a lookup usually
/// decides membership from one cache line of metadata before touching any
/// key.
///
/// The probe sequence is *linear* in slot order (groups are unaligned
/// windows starting at the home slot), which is what keeps classic
/// backward-shift deletion valid: erasing a slot scans the cluster behind
/// it and moves each entry back iff its home bucket is at or before the
/// hole in cyclic probe order, restoring the no-empty-slot-inside-a-chain
/// invariant without tombstones.  No tombstones means load factor == true
/// occupancy and probes never degrade after churn.
///
/// The *Prehashed variants let batch callers hash with the vector kernels
/// (core/batch_kernels.h) and reuse the same hash for shard routing and the
/// probe; PrefetchHash overlaps the memory latency of upcoming probes in
/// those loops.
///
/// Requirements: K and V are trivially destructible value types (we store
/// 64-bit values and counts).  Not thread-safe.
template <typename K, typename V, typename Hash = IntegerHash>
class FlatHashMap {
 public:
  struct Entry {
    K key;
    V value;
  };

  FlatHashMap() { Rehash(kMinCapacity); }

  /// Pre-sizes so that `n` entries fit without rehashing.
  explicit FlatHashMap(std::size_t n) { Rehash(CapacityFor(n)); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  /// The pointer is invalidated by any mutation of the map.
  V* Find(const K& key) { return FindPrehashed(key, hash_(key)); }
  const V* Find(const K& key) const { return FindPrehashed(key, hash_(key)); }

  /// Find with a caller-supplied hash (must equal Hash{}(key)).
  V* FindPrehashed(const K& key, std::size_t hash) {
    const std::size_t idx = FindIndex(key, hash);
    return idx == kNpos ? nullptr : &slots_[idx].value;
  }
  const V* FindPrehashed(const K& key, std::size_t hash) const {
    const std::size_t idx = FindIndex(key, hash);
    return idx == kNpos ? nullptr : &slots_[idx].value;
  }

  bool Contains(const K& key) const {
    return FindIndex(key, hash_(key)) != kNpos;
  }

  /// Inserts `key` with `value` if absent; returns {pointer to the mapped
  /// value, true if newly inserted}.
  std::pair<V*, bool> TryInsert(const K& key, const V& value) {
    return TryInsertPrehashed(key, hash_(key), value);
  }

  /// TryInsert with a caller-supplied hash (must equal Hash{}(key)).
  std::pair<V*, bool> TryInsertPrehashed(const K& key, std::size_t hash,
                                         const V& value) {
    MaybeGrow();
    return InsertInternal(key, hash, value);
  }

  /// Returns the value for `key`, default-constructing it if absent.
  V& operator[](const K& key) {
    MaybeGrow();
    return *InsertInternal(key, hash_(key), V{}).first;
  }

  /// Removes `key`; returns true if it was present.
  bool Erase(const K& key) {
    const std::size_t idx = FindIndex(key, hash_(key));
    if (idx == kNpos) return false;
    EraseIndex(idx);
    return true;
  }

  void Clear() {
    std::memset(ctrl_.data(), map_internal::kEmptyCtrl, ctrl_.size());
    size_ = 0;
  }

  /// Grows (never shrinks) so that `n` entries fit without rehashing —
  /// batch ingest reserves its upper bound up front so a batch never
  /// rehashes mid-flight.
  void Reserve(std::size_t n) {
    const std::size_t cap = CapacityFor(n);
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Prefetches the probe destination for `hash` — batch loops issue this a
  /// few elements ahead so probe cache misses overlap.
  void PrefetchHash(std::size_t hash) const {
    const std::size_t idx = H1(hash) & mask_;
    __builtin_prefetch(ctrl_.data() + idx);
    __builtin_prefetch(slots_.data() + idx);
  }

  /// Forward iterator over occupied entries (unspecified order).
  class const_iterator {
   public:
    const_iterator(const FlatHashMap* map, std::size_t idx)
        : map_(map), idx_(idx) {
      SkipEmpty();
    }
    const Entry& operator*() const { return map_->slots_[idx_]; }
    const Entry* operator->() const { return &map_->slots_[idx_]; }
    const_iterator& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const const_iterator& o) const { return idx_ != o.idx_; }

   private:
    void SkipEmpty() {
      while (idx_ < map_->slots_.size() &&
             map_->ctrl_[idx_] == map_internal::kEmptyCtrl) {
        ++idx_;
      }
    }
    const FlatHashMap* map_;
    std::size_t idx_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  /// Applies `fn(key, value&)` to every entry; if `fn` returns false the
  /// entry is removed.  This is the eviction-scan primitive used when a
  /// synopsis raises its threshold: removal during the scan is safe and
  /// every surviving entry is visited exactly once.
  template <typename Fn>
  void RetainIf(Fn&& fn) {
    // Backward-shift deletion moves cluster members while the scan runs;
    // collecting keys first then re-finding each is simpler and obviously
    // visits every original entry exactly once.
    scratch_keys_.clear();
    scratch_keys_.reserve(size_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i] != map_internal::kEmptyCtrl) {
        scratch_keys_.push_back(slots_[i].key);
      }
    }
    for (const K& key : scratch_keys_) {
      const std::size_t idx = FindIndex(key, hash_(key));
      AQUA_DCHECK(idx != kNpos);
      if (!fn(slots_[idx].key, slots_[idx].value)) {
        EraseIndex(idx);
      }
    }
  }

 private:
  using Group = map_internal::Group;
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  // Max load factor kMaxLoadNum / kMaxLoadDen = 7/8.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  // The hash splits into a bucket selector (H1) and the 7-bit control byte
  // (H2); keeping the H2 bits out of H1 decorrelates the match mask from
  // the probe position.
  static std::size_t H1(std::size_t hash) { return hash >> 7; }
  static std::uint8_t H2(std::size_t hash) {
    return static_cast<std::uint8_t>(hash & 0x7f);
  }

  static std::size_t CapacityFor(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    return cap;
  }

  /// Writes a control byte and its wraparound mirror: the first kGroupWidth
  /// bytes are duplicated past the end so unaligned group loads near the
  /// top of the table see the wrapped slots without masking.
  void SetCtrl(std::size_t i, std::uint8_t v) {
    ctrl_[i] = v;
    ctrl_[((i - map_internal::kGroupWidth) & mask_) +
          map_internal::kGroupWidth] = v;
  }

  std::size_t FindIndex(const K& key, std::size_t hash) const {
    const std::uint8_t h2 = H2(hash);
    std::size_t idx = H1(hash) & mask_;
    while (true) {
      const Group group(ctrl_.data() + idx);
      for (std::uint32_t m = group.Match(h2); m != 0; m &= m - 1) {
        const std::size_t slot =
            (idx + static_cast<std::size_t>(std::countr_zero(m))) & mask_;
        if (slots_[slot].key == key) return slot;
      }
      // An empty slot ends the cluster: the key, were it present, would
      // have been placed before it.
      if (group.MatchEmpty() != 0) return kNpos;
      idx = (idx + map_internal::kGroupWidth) & mask_;
    }
  }

  std::pair<V*, bool> InsertInternal(const K& key, std::size_t hash,
                                     const V& value) {
    const std::uint8_t h2 = H2(hash);
    std::size_t idx = H1(hash) & mask_;
    while (true) {
      const Group group(ctrl_.data() + idx);
      for (std::uint32_t m = group.Match(h2); m != 0; m &= m - 1) {
        const std::size_t slot =
            (idx + static_cast<std::size_t>(std::countr_zero(m))) & mask_;
        if (slots_[slot].key == key) return {&slots_[slot].value, false};
      }
      const std::uint32_t empty = group.MatchEmpty();
      if (empty != 0) {
        // First empty slot in probe order is the insertion point (no
        // tombstones to reuse).
        const std::size_t slot =
            (idx + static_cast<std::size_t>(std::countr_zero(empty))) & mask_;
        SetCtrl(slot, h2);
        slots_[slot] = Entry{key, value};
        ++size_;
        return {&slots_[slot].value, true};
      }
      idx = (idx + map_internal::kGroupWidth) & mask_;
    }
  }

  void EraseIndex(std::size_t hole) {
    // Backward-shift deletion: walk the cluster after the hole and pull
    // back every entry whose home bucket is at or before the hole in
    // cyclic probe order — ((i - home) & mask) >= ((i - hole) & mask) —
    // re-tightening the chain so no probe ever crosses an empty slot to
    // reach a live key.  Stops at the cluster's end (first empty slot).
    std::size_t pos = hole;
    std::size_t i = hole;
    while (true) {
      i = (i + 1) & mask_;
      const std::uint8_t c = ctrl_[i];
      if (c == map_internal::kEmptyCtrl) break;
      const std::size_t home = H1(hash_(slots_[i].key)) & mask_;
      if (((i - home) & mask_) >= ((i - pos) & mask_)) {
        slots_[pos] = slots_[i];
        SetCtrl(pos, c);
        pos = i;
      }
    }
    SetCtrl(pos, map_internal::kEmptyCtrl);
    --size_;
  }

  void MaybeGrow() {
    if ((size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(std::size_t new_capacity) {
    AQUA_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    AQUA_DCHECK(new_capacity >= kMinCapacity);
    std::vector<Entry> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    slots_.assign(new_capacity, Entry{});
    ctrl_.assign(new_capacity + map_internal::kGroupWidth,
                 map_internal::kEmptyCtrl);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_ctrl[i] != map_internal::kEmptyCtrl) {
        InsertKnownAbsent(old_slots[i]);
      }
    }
  }

  void InsertKnownAbsent(const Entry& entry) {
    const std::size_t hash = hash_(entry.key);
    std::size_t idx = H1(hash) & mask_;
    while (true) {
      const Group group(ctrl_.data() + idx);
      const std::uint32_t empty = group.MatchEmpty();
      if (empty != 0) {
        const std::size_t slot =
            (idx + static_cast<std::size_t>(std::countr_zero(empty))) & mask_;
        SetCtrl(slot, H2(hash));
        slots_[slot] = entry;
        ++size_;
        return;
      }
      idx = (idx + map_internal::kGroupWidth) & mask_;
    }
  }

  Hash hash_;
  std::vector<Entry> slots_;
  std::vector<std::uint8_t> ctrl_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::vector<K> scratch_keys_;
};

}  // namespace aqua

#endif  // AQUA_CONTAINER_FLAT_HASH_MAP_H_
