// Anchor translation unit for the (otherwise header-only) container module.
#include "container/flat_hash_map.h"
#include "container/selection.h"
