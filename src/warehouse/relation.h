#ifndef AQUA_WAREHOUSE_RELATION_H_
#define AQUA_WAREHOUSE_RELATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "container/flat_hash_map.h"
#include "core/value_count.h"
#include "workload/stream.h"

namespace aqua {

/// The exact contents of one warehouse attribute R.A — the ground truth the
/// synopses approximate.  Stored as an exact value→frequency table (the
/// tuple multiset projected onto A; the paper's algorithms only ever see
/// attribute values, §3 footnote 4).
class Relation {
 public:
  Relation() = default;

  void Insert(Value value) {
    ++frequencies_[value];
    ++size_;
  }

  /// Deletes one occurrence; InvalidArgument if the value is absent.
  Status Delete(Value value);

  Status Apply(const StreamOp& op);

  /// Number of tuples n.
  std::int64_t size() const { return size_; }

  /// Number of distinct values D present.
  std::int64_t distinct_values() const {
    return static_cast<std::int64_t>(frequencies_.size());
  }

  /// Exact frequency f_v (0 if absent).
  Count FrequencyOf(Value value) const {
    const Count* c = frequencies_.Find(value);
    return c == nullptr ? 0 : *c;
  }

  /// Exact <value, count> table (unspecified order).
  std::vector<ValueCount> ExactCounts() const;

  /// Materializes the multiset as a flat vector (for offline sampling and
  /// backing-sample repopulation).  O(n) space — test/bench use only.
  std::vector<Value> Materialize() const;

 private:
  FlatHashMap<Value, Count> frequencies_;
  std::int64_t size_ = 0;
};

}  // namespace aqua

#endif  // AQUA_WAREHOUSE_RELATION_H_
