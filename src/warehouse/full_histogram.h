#ifndef AQUA_WAREHOUSE_FULL_HISTOGRAM_H_
#define AQUA_WAREHOUSE_FULL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "container/flat_hash_map.h"
#include "core/value_count.h"
#include "hotlist/hot_list.h"
#include "sample/synopsis.h"

namespace aqua {

/// The paper's "full histogram on disk" baseline (§5.1): exact
/// <value, count> pairs for *all* distinct values, with a copy of the top
/// m/2 pairs as the in-engine synopsis.  "This enables exact answers to hot
/// list queries.  The main drawback … is that each update to R requires a
/// separate disk access", and the disk footprint may be on the order of n —
/// so it serves only as the accuracy baseline.
///
/// We simulate the disk residency: the histogram lives in memory, but every
/// update increments a disk-access counter, and DiskFootprint() reports the
/// words the disk copy would occupy.
class FullHistogram final : public Synopsis {
 public:
  /// `footprint_bound` = m: the in-engine synopsis keeps the top m/2 pairs.
  explicit FullHistogram(Words footprint_bound);

  std::string_view Name() const override { return "full-histogram"; }

  void Insert(Value value) override;
  Status Delete(Value value) override;

  /// The *synopsis* footprint (top m/2 pairs): at most the bound.
  Words Footprint() const override;
  const UpdateCost& Cost() const override { return cost_; }
  std::int64_t ObservedInserts() const override { return observed_; }

  /// Words of the full disk-resident histogram (2 per distinct value).
  Words DiskFootprint() const {
    return 2 * static_cast<Words>(frequencies_.size());
  }

  /// Simulated disk accesses performed so far (one per update).
  std::int64_t DiskAccesses() const { return disk_accesses_; }

  Count FrequencyOf(Value value) const {
    const Count* c = frequencies_.Find(value);
    return c == nullptr ? 0 : *c;
  }

  /// Exact hot list, correct for k <= m/2 (the synopsis copy suffices; the
  /// reporter recomputes it from the full histogram on demand, as the
  /// engine would refresh its copy).
  HotList Report(const HotListQuery& query) const;

  /// The top max_pairs pairs by count — the in-engine synopsis copy.
  std::vector<ValueCount> TopPairs(std::int64_t max_pairs) const;

 private:
  Words footprint_bound_;
  FlatHashMap<Value, Count> frequencies_;
  std::int64_t observed_ = 0;
  std::int64_t disk_accesses_ = 0;
  UpdateCost cost_;
};

}  // namespace aqua

#endif  // AQUA_WAREHOUSE_FULL_HISTOGRAM_H_
