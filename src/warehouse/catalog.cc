#include "warehouse/catalog.h"

#include <cmath>

#include "common/check.h"
#include "random/xoshiro256.h"

namespace aqua {

namespace {
// A synopsis below this many words is useless; Seal() rejects budgets that
// would starve an attribute.
constexpr Words kMinShare = 16;
}  // namespace

SynopsisCatalog::SynopsisCatalog(Words total_budget_words,
                                 std::uint64_t seed)
    : budget_(total_budget_words), seed_(seed) {
  AQUA_CHECK_GE(total_budget_words, kMinShare);
}

Status SynopsisCatalog::RegisterAttribute(const std::string& name,
                                          const AttributeOptions& options) {
  if (sealed_) {
    return Status::FailedPrecondition(
        "catalog already sealed; register attributes first");
  }
  if (name.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  if (options.weight <= 0.0) {
    return Status::InvalidArgument("attribute weight must be positive");
  }
  if (attributes_.contains(name)) {
    return Status::AlreadyExists("attribute already registered: " + name);
  }
  Attribute attribute;
  attribute.options = options;
  attributes_.emplace(name, std::move(attribute));
  return Status::OK();
}

Status SynopsisCatalog::Seal() {
  if (sealed_) return Status::FailedPrecondition("catalog already sealed");
  if (attributes_.empty()) {
    return Status::FailedPrecondition("no attributes registered");
  }
  double total_weight = 0.0;
  for (const auto& [name, attribute] : attributes_) {
    total_weight += attribute.options.weight;
  }
  // Count how many synopses each attribute maintains: the share is per
  // attribute and divided among its synopses by the engine's constructor
  // taking the same footprint bound for each enabled synopsis; to respect
  // the *global* budget we divide the attribute share by its synopsis
  // count.
  std::uint64_t seed = seed_;
  for (auto& [name, attribute] : attributes_) {
    const double fraction = attribute.options.weight / total_weight;
    const auto share = static_cast<Words>(
        std::floor(fraction * static_cast<double>(budget_)));
    int synopses = 0;
    synopses += attribute.options.maintain_traditional ? 1 : 0;
    synopses += attribute.options.maintain_concise ? 1 : 0;
    synopses += attribute.options.maintain_counting ? 1 : 0;
    if (synopses == 0) {
      return Status::InvalidArgument("attribute " + name +
                                     " maintains no synopses");
    }
    const Words per_synopsis = share / synopses;
    if (per_synopsis < kMinShare) {
      return Status::ResourceExhausted(
          "budget too small for attribute " + name + ": " +
          std::to_string(per_synopsis) + " words per synopsis");
    }
    attribute.share = share;
    EngineOptions engine_options;
    engine_options.footprint_bound = per_synopsis;
    engine_options.seed = SplitMix64Next(seed);
    engine_options.maintain_traditional =
        attribute.options.maintain_traditional;
    engine_options.maintain_concise = attribute.options.maintain_concise;
    engine_options.maintain_counting = attribute.options.maintain_counting;
    engine_options.maintain_distinct_sketch =
        attribute.options.maintain_distinct_sketch;
    engine_options.maintain_full_histogram = false;
    attribute.engine =
        std::make_unique<ApproximateAnswerEngine>(engine_options);
  }
  sealed_ = true;
  return Status::OK();
}

Status SynopsisCatalog::Observe(const std::string& attribute,
                                const StreamOp& op) {
  if (!sealed_) return Status::FailedPrecondition("catalog not sealed");
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) {
    return Status::NotFound("unknown attribute: " + attribute);
  }
  return it->second.engine->Observe(op);
}

const ApproximateAnswerEngine* SynopsisCatalog::engine(
    const std::string& attribute) const {
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) return nullptr;
  return it->second.engine.get();
}

Result<QueryResponse<HotList>> SynopsisCatalog::HotListFor(
    const std::string& attribute, const HotListQuery& query) const {
  const ApproximateAnswerEngine* e = engine(attribute);
  if (e == nullptr) {
    return Status::NotFound("unknown attribute: " + attribute);
  }
  return e->HotListAnswer(query);
}

Result<QueryResponse<Estimate>> SynopsisCatalog::FrequencyFor(
    const std::string& attribute, Value value) const {
  const ApproximateAnswerEngine* e = engine(attribute);
  if (e == nullptr) {
    return Status::NotFound("unknown attribute: " + attribute);
  }
  return e->FrequencyAnswer(value);
}

Words SynopsisCatalog::TotalFootprint() const {
  Words total = 0;
  for (const auto& [name, attribute] : attributes_) {
    if (attribute.engine) total += attribute.engine->TotalFootprint();
  }
  return total;
}

Words SynopsisCatalog::ShareOf(const std::string& attribute) const {
  auto it = attributes_.find(attribute);
  return it == attributes_.end() ? 0 : it->second.share;
}

}  // namespace aqua
