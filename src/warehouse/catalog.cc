#include "warehouse/catalog.h"

#include <cmath>

#include "common/check.h"
#include "random/xoshiro256.h"

namespace aqua {

namespace {
// A synopsis below this many words is useless; Seal() rejects budgets that
// would starve an attribute.
constexpr Words kMinShare = 16;
}  // namespace

SynopsisCatalog::SynopsisCatalog(Words total_budget_words,
                                 std::uint64_t seed)
    : SynopsisCatalog(total_budget_words, CatalogOptions{.seed = seed}) {}

SynopsisCatalog::SynopsisCatalog(Words total_budget_words,
                                 const CatalogOptions& options)
    : budget_(total_budget_words), options_(options) {
  AQUA_CHECK_GE(total_budget_words, kMinShare);
  AQUA_CHECK_GE(options.shards, std::size_t{1});
}

Status SynopsisCatalog::RegisterAttribute(const std::string& name,
                                          const AttributeOptions& options) {
  if (sealed_) {
    return Status::FailedPrecondition(
        "catalog already sealed; register attributes first");
  }
  if (name.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  if (options.weight <= 0.0) {
    return Status::InvalidArgument("attribute weight must be positive");
  }
  if (attributes_.contains(name)) {
    return Status::AlreadyExists("attribute already registered: " + name);
  }
  Attribute attribute;
  attribute.options = options;
  attributes_.emplace(name, std::move(attribute));
  return Status::OK();
}

Status SynopsisCatalog::Seal() {
  if (sealed_) return Status::FailedPrecondition("catalog already sealed");
  if (attributes_.empty()) {
    return Status::FailedPrecondition("no attributes registered");
  }
  double total_weight = 0.0;
  for (const auto& [name, attribute] : attributes_) {
    total_weight += attribute.options.weight;
  }
  // Budget carve per attribute: the weighted share is first charged the
  // fixed sketch words (the FM sketch's footprint does not scale with its
  // bound), then divided equally among the selected sample synopses;
  // sharded (mergeable) synopses split their per-synopsis slice across
  // shards so the attribute's total footprint stays within its share.
  std::uint64_t seed = options_.seed;
  for (auto& [name, attribute] : attributes_) {
    const double fraction = attribute.options.weight / total_weight;
    const auto share = static_cast<Words>(
        std::floor(fraction * static_cast<double>(budget_)));
    Words sample_words = share;
    if (attribute.options.maintain_distinct_sketch) {
      if (share < kDefaultSketchWords) {
        return Status::ResourceExhausted(
            "budget too small for attribute " + name + ": the sketch alone "
            "needs " + std::to_string(kDefaultSketchWords) + " words");
      }
      sample_words -= kDefaultSketchWords;
    }
    int synopses = 0;
    synopses += attribute.options.maintain_traditional ? 1 : 0;
    synopses += attribute.options.maintain_concise ? 1 : 0;
    synopses += attribute.options.maintain_counting ? 1 : 0;
    synopses += attribute.options.maintain_full_histogram ? 1 : 0;
    if (synopses == 0 && !attribute.options.maintain_distinct_sketch) {
      return Status::InvalidArgument("attribute " + name +
                                     " maintains no synopses");
    }
    BuiltinBounds bounds;
    if (synopses > 0) {
      const Words per_synopsis = sample_words / synopses;
      const auto shards = static_cast<Words>(options_.shards);
      const bool has_sharded = attribute.options.maintain_traditional ||
                               attribute.options.maintain_concise;
      const Words per_shard = per_synopsis / shards;
      const Words smallest = has_sharded ? per_shard : per_synopsis;
      if (smallest < kMinShare) {
        return Status::ResourceExhausted(
            "budget too small for attribute " + name + ": " +
            std::to_string(smallest) + " words per synopsis");
      }
      bounds.single = per_synopsis;
      bounds.sharded = per_shard;
    }
    attribute.share = share;
    SynopsisRegistry::Options registry_options;
    registry_options.mode = ExecutionMode::kConcurrent;
    registry_options.shards = options_.shards;
    registry_options.seed = SplitMix64Next(seed);
    registry_options.cache_max_stale_ops = options_.cache_max_stale_ops;
    registry_options.cache_max_stale_interval =
        options_.cache_max_stale_interval;
    registry_options.external_refresh = options_.external_refresh;
    attribute.registry = std::make_unique<SynopsisRegistry>(registry_options);
    AQUA_RETURN_NOT_OK(
        RegisterBuiltinSynopses(*attribute.registry, attribute.options,
                                bounds));
    if (attribute.options.maintain_full_histogram) {
      AQUA_RETURN_NOT_OK(attribute.registry->Register(
          FullHistogramDescriptor(bounds.single)));
    }
  }
  sealed_ = true;
  return Status::OK();
}

Result<const SynopsisRegistry*> SynopsisCatalog::RegistryFor(
    std::string_view attribute) const {
  if (!sealed_) return Status::FailedPrecondition("catalog not sealed");
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) {
    return Status::NotFound("unknown attribute: " + std::string(attribute));
  }
  return it->second.registry.get();
}

Result<SynopsisRegistry*> SynopsisCatalog::MutableRegistryFor(
    const std::string& attribute) {
  if (!sealed_) return Status::FailedPrecondition("catalog not sealed");
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) {
    return Status::NotFound("unknown attribute: " + attribute);
  }
  return it->second.registry.get();
}

Status SynopsisCatalog::Observe(const std::string& attribute,
                                const StreamOp& op) {
  AQUA_ASSIGN_OR_RETURN(SynopsisRegistry* r, MutableRegistryFor(attribute));
  return r->Observe(op);
}

Status SynopsisCatalog::ObserveBatch(const std::string& attribute,
                                     std::span<const StreamOp> ops) {
  AQUA_ASSIGN_OR_RETURN(SynopsisRegistry* r, MutableRegistryFor(attribute));
  return r->ObserveBatch(ops);
}

Status SynopsisCatalog::InsertBatch(const std::string& attribute,
                                    std::span<const Value> values) {
  AQUA_ASSIGN_OR_RETURN(SynopsisRegistry* r, MutableRegistryFor(attribute));
  r->InsertBatch(values);
  return Status::OK();
}

const SynopsisRegistry* SynopsisCatalog::registry(
    std::string_view attribute) const {
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) return nullptr;
  return it->second.registry.get();
}

Result<QueryResponse<HotList>> SynopsisCatalog::HotListFor(
    std::string_view attribute, const HotListQuery& query) const {
  AQUA_ASSIGN_OR_RETURN(const SynopsisRegistry* r, RegistryFor(attribute));
  return r->HotListAnswer(query);
}

Result<QueryResponse<Estimate>> SynopsisCatalog::FrequencyFor(
    std::string_view attribute, Value value) const {
  AQUA_ASSIGN_OR_RETURN(const SynopsisRegistry* r, RegistryFor(attribute));
  return r->FrequencyAnswer(value);
}

Result<QueryResponse<Estimate>> SynopsisCatalog::CountWhereFor(
    std::string_view attribute, const ValuePredicate& pred,
    double confidence) const {
  AQUA_ASSIGN_OR_RETURN(const SynopsisRegistry* r, RegistryFor(attribute));
  return r->CountWhereAnswer(pred, confidence);
}

Result<QueryResponse<Estimate>> SynopsisCatalog::CountWhereFor(
    std::string_view attribute, const ValueRange& range,
    double confidence) const {
  AQUA_ASSIGN_OR_RETURN(const SynopsisRegistry* r, RegistryFor(attribute));
  return r->CountWhereAnswer(range, confidence);
}

Result<QueryResponse<Estimate>> SynopsisCatalog::DistinctFor(
    std::string_view attribute) const {
  AQUA_ASSIGN_OR_RETURN(const SynopsisRegistry* r, RegistryFor(attribute));
  return r->DistinctValuesAnswer();
}

Result<QueryResponse<Estimate>> SynopsisCatalog::QuantileFor(
    std::string_view attribute, double q, double confidence) const {
  AQUA_ASSIGN_OR_RETURN(const SynopsisRegistry* r, RegistryFor(attribute));
  return r->QuantileAnswer(q, confidence);
}

Result<RegistryStats> SynopsisCatalog::StatsFor(
    std::string_view attribute) const {
  AQUA_ASSIGN_OR_RETURN(const SynopsisRegistry* r, RegistryFor(attribute));
  return r->GetStats();
}

Status SynopsisCatalog::HotListForInto(
    std::string_view attribute, const HotListQuery& query,
    QueryResponse<HotList>* response) const {
  AQUA_ASSIGN_OR_RETURN(const SynopsisRegistry* r, RegistryFor(attribute));
  r->HotListAnswerInto(query, response);
  return Status::OK();
}

Status SynopsisCatalog::StatsForInto(std::string_view attribute,
                                     RegistryStats* out) const {
  AQUA_ASSIGN_OR_RETURN(const SynopsisRegistry* r, RegistryFor(attribute));
  r->GetStatsInto(out);
  return Status::OK();
}

Words SynopsisCatalog::TotalFootprint() const {
  Words total = 0;
  for (const auto& [name, attribute] : attributes_) {
    if (attribute.registry) total += attribute.registry->TotalFootprint();
  }
  return total;
}

std::uint64_t SynopsisCatalog::ServingEpoch() const {
  std::uint64_t epoch = 0;
  for (const auto& [name, attribute] : attributes_) {
    if (attribute.registry) epoch += attribute.registry->ServingEpoch();
  }
  return epoch;
}

bool SynopsisCatalog::AnyCacheStale() const {
  for (const auto& [name, attribute] : attributes_) {
    if (attribute.registry && attribute.registry->AnyCacheStale()) {
      return true;
    }
  }
  return false;
}

void SynopsisCatalog::SettleCaches() const {
  for (const auto& [name, attribute] : attributes_) {
    if (attribute.registry) attribute.registry->SettleCaches();
  }
}

std::vector<std::string> SynopsisCatalog::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const auto& [name, attribute] : attributes_) names.push_back(name);
  return names;
}

Words SynopsisCatalog::ShareOf(std::string_view attribute) const {
  auto it = attributes_.find(attribute);
  return it == attributes_.end() ? 0 : it->second.share;
}

}  // namespace aqua
