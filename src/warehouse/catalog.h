#ifndef AQUA_WAREHOUSE_CATALOG_H_
#define AQUA_WAREHOUSE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "warehouse/engine.h"

namespace aqua {

/// Options for one attribute registered in the catalog.
struct AttributeOptions {
  /// Relative share of the catalog's memory budget (default equal shares).
  double weight = 1.0;
  /// Synopsis selection, forwarded to the attribute's engine.
  bool maintain_traditional = false;
  bool maintain_concise = true;
  bool maintain_counting = true;
  bool maintain_distinct_sketch = false;
};

/// A catalog of per-attribute approximate-answer engines under one global
/// memory budget (§1: "To handle many base tables and many types of
/// queries, a large number of synopses may be needed", and memory "remains
/// a precious resource" — so footprints must be budgeted, not unbounded).
///
/// Each registered attribute gets a footprint share proportional to its
/// weight; the catalog routes observed load-stream operations and queries
/// by attribute name.
class SynopsisCatalog {
 public:
  /// `total_budget_words`: memory words to divide across all attributes'
  /// synopses.  Attributes must be registered before the first Observe.
  SynopsisCatalog(Words total_budget_words, std::uint64_t seed);

  /// Registers an attribute; fails on duplicates or after observation
  /// started.  The per-attribute footprint is fixed when Seal() is called.
  Status RegisterAttribute(const std::string& name,
                           const AttributeOptions& options = {});

  /// Finalizes registration: computes each attribute's footprint share and
  /// instantiates the engines.  Must be called once before Observe.
  Status Seal();

  /// Observes one operation on the named attribute.
  Status Observe(const std::string& attribute, const StreamOp& op);

  /// The engine serving an attribute (null if unknown or not sealed).
  const ApproximateAnswerEngine* engine(const std::string& attribute) const;

  /// Hot list for one attribute.
  Result<QueryResponse<HotList>> HotListFor(const std::string& attribute,
                                         const HotListQuery& query) const;

  /// Frequency estimate for one attribute/value.
  Result<QueryResponse<Estimate>> FrequencyFor(const std::string& attribute,
                                            Value value) const;

  /// Total words currently used across all engines (<= budget in words,
  /// per-synopsis bounds permitting).
  Words TotalFootprint() const;

  Words budget() const { return budget_; }
  std::size_t attribute_count() const { return attributes_.size(); }
  bool sealed() const { return sealed_; }

  /// Footprint share assigned to an attribute (0 if unknown / unsealed).
  Words ShareOf(const std::string& attribute) const;

 private:
  struct Attribute {
    AttributeOptions options;
    Words share = 0;
    std::unique_ptr<ApproximateAnswerEngine> engine;
  };

  Words budget_;
  std::uint64_t seed_;
  bool sealed_ = false;
  std::map<std::string, Attribute> attributes_;
};

}  // namespace aqua

#endif  // AQUA_WAREHOUSE_CATALOG_H_
