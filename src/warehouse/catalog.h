#ifndef AQUA_WAREHOUSE_CATALOG_H_
#define AQUA_WAREHOUSE_CATALOG_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "registry/builtin.h"
#include "registry/registry.h"
#include "warehouse/engine.h"

namespace aqua {

/// Options for one attribute registered in the catalog.  The synopsis
/// selection shares the SynopsisSelection defaults with both engines.
struct AttributeOptions : SynopsisSelection {
  /// Relative share of the catalog's memory budget (default equal shares).
  double weight = 1.0;
};

/// Catalog-wide serving parameters.
struct CatalogOptions {
  std::uint64_t seed = 0x19980531ULL;
  /// Ingest shards per shardable synopsis per attribute.  Unlike the
  /// serving engine, the catalog *divides* each sharded synopsis's budget
  /// share across its shards, so the global budget holds regardless.
  std::size_t shards = 1;
  /// Snapshot-cache staleness bounds (see SnapshotCache).
  std::int64_t cache_max_stale_ops = 8192;
  std::chrono::nanoseconds cache_max_stale_interval =
      std::chrono::milliseconds(100);
  /// Hand refresh ownership to a background epoch pump (--refresh-mode
  /// pump): query threads never re-merge a warmed snapshot cache.
  bool external_refresh = false;
};

/// A catalog of per-attribute synopsis registries under one global memory
/// budget (§1: "To handle many base tables and many types of queries, a
/// large number of synopses may be needed", and memory "remains a precious
/// resource" — so footprints must be budgeted, not unbounded).
///
/// This is the multi-attribute serving surface: each registered attribute
/// gets a footprint share proportional to its weight, carved into
/// per-synopsis bounds at Seal(); ingest (Observe/ObserveBatch/
/// InsertBatch) routes by attribute name into concurrent registries, so
/// after Seal() the catalog is safe under concurrent ingest and queries,
/// and every query kind answers from the attribute's epoch-cached
/// snapshots exactly like ServingEngine.
class SynopsisCatalog {
 public:
  /// `total_budget_words`: memory words to divide across all attributes'
  /// synopses.  Attributes must be registered before the first Observe.
  SynopsisCatalog(Words total_budget_words, std::uint64_t seed);
  SynopsisCatalog(Words total_budget_words, const CatalogOptions& options);

  /// Registers an attribute; fails on duplicates or after observation
  /// started.  The per-attribute footprint is fixed when Seal() is called.
  Status RegisterAttribute(const std::string& name,
                           const AttributeOptions& options = {});

  /// Finalizes registration: computes each attribute's footprint share,
  /// carves out the fixed sketch words, divides the rest among the
  /// selected sample synopses (and their shards), and instantiates the
  /// registries.  Must be called once before Observe.
  Status Seal();

  /// Observes one operation on the named attribute (thread-safe after
  /// Seal).
  Status Observe(const std::string& attribute, const StreamOp& op);

  /// Observes a slice of the named attribute's load stream; insert runs
  /// take the batched fast paths.
  Status ObserveBatch(const std::string& attribute,
                      std::span<const StreamOp> ops);

  /// Ingests a batch of inserted values for one attribute.
  Status InsertBatch(const std::string& attribute,
                     std::span<const Value> values);

  /// The registry serving an attribute (null if unknown or not sealed).
  const SynopsisRegistry* registry(std::string_view attribute) const;

  /// Queries, one per kind, routed by attribute; NotFound for unknown
  /// attributes, FailedPrecondition before Seal().
  Result<QueryResponse<HotList>> HotListFor(std::string_view attribute,
                                            const HotListQuery& query) const;
  Result<QueryResponse<Estimate>> FrequencyFor(std::string_view attribute,
                                               Value value) const;
  Result<QueryResponse<Estimate>> CountWhereFor(
      std::string_view attribute, const ValuePredicate& pred,
      double confidence = 0.95) const;
  /// Range form: answered in O(log m) from the attribute's frozen view
  /// when one exists (same estimate as the predicate form).
  Result<QueryResponse<Estimate>> CountWhereFor(
      std::string_view attribute, const ValueRange& range,
      double confidence = 0.95) const;
  Result<QueryResponse<Estimate>> DistinctFor(
      std::string_view attribute) const;
  Result<QueryResponse<Estimate>> QuantileFor(std::string_view attribute,
                                              double q,
                                              double confidence = 0.95) const;

  /// Per-attribute ingest counters and per-synopsis cache/footprint stats.
  Result<RegistryStats> StatsFor(std::string_view attribute) const;

  /// Out-param forms for the serving layer's read path: the attribute is
  /// looked up heterogeneously (no temporary std::string for a name
  /// sliced out of a URL) and the caller's scratch is filled in place, so
  /// a warmed handler answers with zero allocations.  Same error contract
  /// as the by-value forms.
  Status HotListForInto(std::string_view attribute, const HotListQuery& query,
                        QueryResponse<HotList>* response) const;
  Status StatsForInto(std::string_view attribute, RegistryStats* out) const;

  /// Total words currently used across all registries (<= budget in
  /// words, per-synopsis bounds permitting).
  Words TotalFootprint() const;

  /// Catalog-wide monotonic serving epoch: the sum of every attribute
  /// registry's serving epoch (see SynopsisRegistry::ServingEpoch).  Any
  /// epoch swap or invalidation anywhere in the catalog advances it.
  /// 0 before Seal().
  std::uint64_t ServingEpoch() const;

  /// True when any attribute's snapshot cache is past a staleness bound
  /// (the serving epoch is about to advance).
  bool AnyCacheStale() const;

  /// Refreshes every attribute's stale snapshot caches (see
  /// SynopsisRegistry::SettleCaches).
  void SettleCaches() const;

  Words budget() const { return budget_; }
  std::size_t attribute_count() const { return attributes_.size(); }
  bool sealed() const { return sealed_; }

  /// Registered attribute names, sorted.
  std::vector<std::string> AttributeNames() const;

  /// Footprint share assigned to an attribute (0 if unknown / unsealed).
  Words ShareOf(std::string_view attribute) const;

 private:
  struct Attribute {
    AttributeOptions options;
    Words share = 0;
    std::unique_ptr<SynopsisRegistry> registry;
  };

  Result<const SynopsisRegistry*> RegistryFor(
      std::string_view attribute) const;
  Result<SynopsisRegistry*> MutableRegistryFor(const std::string& attribute);

  Words budget_;
  CatalogOptions options_;
  bool sealed_ = false;
  /// Transparent comparator: lookups by string_view without a temporary.
  std::map<std::string, Attribute, std::less<>> attributes_;
};

}  // namespace aqua

#endif  // AQUA_WAREHOUSE_CATALOG_H_
