#include "warehouse/full_histogram.h"

#include <algorithm>

#include "common/check.h"
#include "container/selection.h"
#include "hotlist/exact_hot_list.h"

namespace aqua {

FullHistogram::FullHistogram(Words footprint_bound)
    : footprint_bound_(footprint_bound) {
  AQUA_CHECK_GE(footprint_bound, 2);
}

void FullHistogram::Insert(Value value) {
  ++observed_;
  ++disk_accesses_;  // "each update to R requires a separate disk access"
  ++cost_.lookups;
  ++frequencies_[value];
}

Status FullHistogram::Delete(Value value) {
  ++disk_accesses_;
  ++cost_.lookups;
  Count* c = frequencies_.Find(value);
  if (c == nullptr || *c <= 0) {
    return Status::InvalidArgument("delete of absent value");
  }
  if (--*c == 0) frequencies_.Erase(value);
  return Status::OK();
}

Words FullHistogram::Footprint() const {
  const Words pairs = std::min<Words>(
      static_cast<Words>(frequencies_.size()), footprint_bound_ / 2);
  return 2 * pairs;
}

std::vector<ValueCount> FullHistogram::TopPairs(std::int64_t max_pairs) const {
  std::vector<ValueCount> all;
  all.reserve(frequencies_.size());
  for (const auto& entry : frequencies_) {
    all.push_back(ValueCount{entry.key, entry.value});
  }
  std::sort(all.begin(), all.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.count > b.count ||
                     (a.count == b.count && a.value < b.value);
            });
  if (static_cast<std::int64_t>(all.size()) > max_pairs) {
    all.resize(static_cast<std::size_t>(max_pairs));
  }
  return all;
}

HotList FullHistogram::Report(const HotListQuery& query) const {
  const std::int64_t synopsis_pairs = footprint_bound_ / 2;
  ExactHotList exact(TopPairs(synopsis_pairs));
  HotListQuery q = query;
  if (q.k == 0 || q.k > synopsis_pairs) q.k = synopsis_pairs;
  return exact.Report(q);
}

}  // namespace aqua
