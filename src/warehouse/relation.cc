#include "warehouse/relation.h"

namespace aqua {

Status Relation::Delete(Value value) {
  Count* c = frequencies_.Find(value);
  if (c == nullptr || *c <= 0) {
    return Status::InvalidArgument("delete of absent value");
  }
  if (--*c == 0) frequencies_.Erase(value);
  --size_;
  return Status::OK();
}

Status Relation::Apply(const StreamOp& op) {
  if (op.kind == StreamOp::Kind::kInsert) {
    Insert(op.value);
    return Status::OK();
  }
  return Delete(op.value);
}

std::vector<ValueCount> Relation::ExactCounts() const {
  std::vector<ValueCount> out;
  out.reserve(frequencies_.size());
  for (const auto& entry : frequencies_) {
    out.push_back(ValueCount{entry.key, entry.value});
  }
  return out;
}

std::vector<Value> Relation::Materialize() const {
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(size_));
  for (const auto& entry : frequencies_) {
    for (Count i = 0; i < entry.value; ++i) out.push_back(entry.key);
  }
  return out;
}

}  // namespace aqua
