#ifndef AQUA_WAREHOUSE_ENGINE_H_
#define AQUA_WAREHOUSE_ENGINE_H_

#include <cstdint>
#include <span>
#include <utility>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "estimate/aggregates.h"
#include "hotlist/hot_list.h"
#include "registry/builtin.h"
#include "registry/query_response.h"
#include "registry/registry.h"
#include "sample/reservoir_sample.h"
#include "sketch/flajolet_martin.h"
#include "warehouse/full_histogram.h"
#include "workload/stream.h"

namespace aqua {

/// Which synopses the engine maintains for an attribute.  The synopsis
/// selection (and its defaults) is SynopsisSelection — one documented
/// default shared with the serving engine and the catalog.
struct EngineOptions : SynopsisSelection {
  /// Footprint bound per synopsis, in words.
  Words footprint_bound = 1000;
  std::uint64_t seed = 0x19980531ULL;
};

/// Registry descriptor for the exact full-histogram baseline (declared
/// here, next to FullHistogram, so the registry module does not depend on
/// warehouse/).  Hot lists only, accuracy class kAccuracyExact with a
/// zero error estimator; deletes apply exactly and fail on absent values.
SynopsisDescriptor<FullHistogram> FullHistogramDescriptor(
    Words footprint_bound);

/// The approximate answer engine of Figure 2: observes the load stream
/// alongside the warehouse, maintains its registered synopses entirely in
/// memory, and answers queries without any access to the base data.
///
/// This is a thin single-threaded driver over a SynopsisRegistry: the
/// selected built-in synopses are registered at construction, queries go
/// through the registry's single accuracy-ordered answer path (§6's accuracy
/// ordering — hot lists prefer the counting sample, then concise, then
/// traditional), and deletions flow to each synopsis per its declared
/// DeleteBehavior (§4.1: concise/traditional samples are invalidated by
/// the first delete; counting samples and the full histogram apply it
/// exactly).
class ApproximateAnswerEngine {
 public:
  explicit ApproximateAnswerEngine(const EngineOptions& options);

  /// Registers an additional synopsis served through the same answer path
  /// (call before the first Observe).
  template <RegistrableSynopsis S>
  Status RegisterSynopsis(SynopsisDescriptor<S> descriptor) {
    return registry_.Register(std::move(descriptor));
  }

  /// Observes one load-stream operation.
  Status Observe(const StreamOp& op) { return registry_.Observe(op); }

  /// Observes a whole slice of the load stream.  Maximal runs of
  /// consecutive inserts are routed through the synopses' batched fast
  /// paths (concise/traditional samples skip over unselected elements, one
  /// geometric jump each, instead of one virtual call per element);
  /// deletes are applied individually with the same semantics as
  /// Observe().  Statistically identical to observing op-by-op.
  Status ObserveBatch(std::span<const StreamOp> ops) {
    return registry_.ObserveBatch(ops);
  }

  /// Hot list from the most accurate maintained synopsis.
  QueryResponse<HotList> HotListAnswer(const HotListQuery& query) const {
    return registry_.HotListAnswer(query);
  }

  /// Estimated frequency of one value.
  QueryResponse<Estimate> FrequencyAnswer(Value value) const {
    return registry_.FrequencyAnswer(value);
  }

  /// Estimated COUNT(*) WHERE pred, from the best available uniform sample.
  QueryResponse<Estimate> CountWhereAnswer(const ValuePredicate& pred,
                                           double confidence = 0.95) const {
    return registry_.CountWhereAnswer(pred, confidence);
  }

  /// Range form of CountWhere (identical estimate; serving-layer drivers
  /// answer it from value-ordered views in O(log m)).
  QueryResponse<Estimate> CountWhereAnswer(const ValueRange& range,
                                           double confidence = 0.95) const {
    return registry_.CountWhereAnswer(range, confidence);
  }

  /// Estimated number of distinct values.
  QueryResponse<Estimate> DistinctValuesAnswer() const {
    return registry_.DistinctValuesAnswer();
  }

  /// Estimated q-quantile of the relation's values.
  QueryResponse<Estimate> QuantileAnswer(double q,
                                         double confidence = 0.95) const {
    return registry_.QuantileAnswer(q, confidence);
  }

  /// Direct access to the maintained synopses (null when not maintained or
  /// invalidated by deletions).
  const ReservoirSample* traditional() const {
    return registry_.LiveUnsynchronized<ReservoirSample>(
        kTraditionalSynopsisName);
  }
  const ConciseSample* concise() const {
    return registry_.LiveUnsynchronized<ConciseSample>(kConciseSynopsisName);
  }
  const CountingSample* counting() const {
    return registry_.LiveUnsynchronized<CountingSample>(
        kCountingSynopsisName);
  }
  const FullHistogram* full_histogram() const {
    return registry_.LiveUnsynchronized<FullHistogram>(kFullHistogramName);
  }
  const FlajoletMartin* distinct_sketch() const {
    return registry_.LiveUnsynchronized<FlajoletMartin>(kDistinctSketchName);
  }

  /// The registry-backed core (capability introspection, stats, custom
  /// typed access).
  const SynopsisRegistry& registry() const { return registry_; }
  SynopsisRegistry& registry() { return registry_; }

  std::int64_t observed_inserts() const {
    return registry_.observed_inserts();
  }
  std::int64_t observed_deletes() const {
    return registry_.observed_deletes();
  }

  /// Total words across all maintained synopses.
  Words TotalFootprint() const { return registry_.TotalFootprint(); }

 private:
  SynopsisRegistry registry_;
};

}  // namespace aqua

#endif  // AQUA_WAREHOUSE_ENGINE_H_
