#ifndef AQUA_WAREHOUSE_ENGINE_H_
#define AQUA_WAREHOUSE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "estimate/aggregates.h"
#include "hotlist/hot_list.h"
#include "sample/reservoir_sample.h"
#include "sketch/flajolet_martin.h"
#include "warehouse/full_histogram.h"
#include "workload/stream.h"

namespace aqua {

/// Which synopses the engine maintains for an attribute.
struct EngineOptions {
  /// Footprint bound per synopsis, in words.
  Words footprint_bound = 1000;
  std::uint64_t seed = 0x19980531ULL;
  bool maintain_traditional = true;
  bool maintain_concise = true;
  bool maintain_counting = true;
  /// Distinct-value sketch ([FM85]) for distinct-count queries.
  bool maintain_distinct_sketch = true;
  /// The exact (disk-resident) baseline; off by default — it is the
  /// accuracy yardstick, not a practical synopsis.
  bool maintain_full_histogram = false;
};

/// A query response: the approximate answer plus how it was computed —
/// "a query response, consisting of an approximate answer and an accuracy
/// measure" (§1).  The user can then decide whether to have an exact answer
/// computed from the base data.
template <typename AnswerT>
struct QueryResponse {
  AnswerT answer{};
  /// Which synopsis produced the answer, e.g. "counting-sample".
  std::string method;
  /// Response time in nanoseconds (synopsis-only; no base-data access).
  std::int64_t response_ns = 0;
};

/// A read-only view over whichever synopses a caller has available.  The
/// engine builds one from its own members; the serving layer (src/server/)
/// builds one from epoch-cached snapshots merged off the ingest path.  Null
/// pointers mean "not maintained / not available"; the answer functions
/// below pick the most accurate non-null synopsis exactly as the engine
/// does (§6's accuracy ordering).
struct SynopsisView {
  const FullHistogram* full_histogram = nullptr;
  const CountingSample* counting = nullptr;
  const ConciseSample* concise = nullptr;
  const ReservoirSample* traditional = nullptr;
  const FlajoletMartin* distinct_sketch = nullptr;
  /// Size n of the observed stream (scales sample estimates to the
  /// relation).
  std::int64_t observed_inserts = 0;
};

/// Answer functions over a SynopsisView: const-safe query entry points
/// shared by ApproximateAnswerEngine and the serving layer.  Each returns
/// the approximate answer, the method that produced it ("none" when no
/// usable synopsis is in the view), and the compute-only response time.
QueryResponse<HotList> AnswerHotList(const SynopsisView& view,
                                     const HotListQuery& query);
QueryResponse<Estimate> AnswerFrequency(const SynopsisView& view, Value value);
QueryResponse<Estimate> AnswerCountWhere(const SynopsisView& view,
                                         const ValuePredicate& pred,
                                         double confidence = 0.95);
QueryResponse<Estimate> AnswerDistinctValues(const SynopsisView& view);

/// The approximate answer engine of Figure 2: observes the load stream
/// alongside the warehouse, maintains its registered synopses entirely in
/// memory, and answers queries without any access to the base data.
///
/// Hot-list answers prefer the counting sample (most accurate), then the
/// concise sample, then the traditional sample (§6's accuracy ordering);
/// deletions flow to the synopses that support them and invalidate the
/// concise/traditional samples only if a delete actually arrives (§4.1:
/// concise samples cannot be maintained under deletions).
class ApproximateAnswerEngine {
 public:
  explicit ApproximateAnswerEngine(const EngineOptions& options);

  /// Observes one load-stream operation.
  Status Observe(const StreamOp& op);

  /// Observes a whole slice of the load stream.  Maximal runs of
  /// consecutive inserts are routed through the synopses' batched fast
  /// paths (concise/traditional samples skip over unselected elements, one
  /// geometric jump each, instead of one virtual call per element);
  /// deletes are applied individually with the same semantics as
  /// Observe().  Statistically identical to observing op-by-op.
  Status ObserveBatch(std::span<const StreamOp> ops);

  /// Hot list from the most accurate maintained synopsis.
  QueryResponse<HotList> HotListAnswer(const HotListQuery& query) const;

  /// Estimated frequency of one value.
  QueryResponse<Estimate> FrequencyAnswer(Value value) const;

  /// Estimated COUNT(*) WHERE pred, from the best available uniform sample.
  QueryResponse<Estimate> CountWhereAnswer(const ValuePredicate& pred,
                                           double confidence = 0.95) const;

  /// Estimated number of distinct values.
  QueryResponse<Estimate> DistinctValuesAnswer() const;

  /// Direct access to the maintained synopses (null when not maintained or
  /// invalidated by deletions).
  const ReservoirSample* traditional() const { return traditional_.get(); }
  const ConciseSample* concise() const { return concise_.get(); }
  const CountingSample* counting() const { return counting_.get(); }
  const FullHistogram* full_histogram() const { return full_histogram_.get(); }
  const FlajoletMartin* distinct_sketch() const {
    return distinct_sketch_.get();
  }

  /// The engine's current synopses as a SynopsisView (what every query
  /// method answers from).
  SynopsisView View() const;

  std::int64_t observed_inserts() const { return inserts_; }
  std::int64_t observed_deletes() const { return deletes_; }

  /// Total words across all maintained synopses.
  Words TotalFootprint() const;

 private:
  EngineOptions options_;
  std::unique_ptr<ReservoirSample> traditional_;
  std::unique_ptr<ConciseSample> concise_;
  std::unique_ptr<CountingSample> counting_;
  std::unique_ptr<FlajoletMartin> distinct_sketch_;
  std::unique_ptr<FullHistogram> full_histogram_;
  std::int64_t inserts_ = 0;
  std::int64_t deletes_ = 0;
};

}  // namespace aqua

#endif  // AQUA_WAREHOUSE_ENGINE_H_
