#include "warehouse/engine.h"

#include <string>

#include "common/check.h"

namespace aqua {

namespace {

SynopsisRegistry::Options RegistryOptions(const EngineOptions& options) {
  SynopsisRegistry::Options registry_options;
  registry_options.mode = ExecutionMode::kUnsynchronized;
  registry_options.shards = 1;
  registry_options.seed = options.seed;
  return registry_options;
}

}  // namespace

SynopsisDescriptor<FullHistogram> FullHistogramDescriptor(
    Words footprint_bound) {
  SynopsisDescriptor<FullHistogram> descriptor;
  descriptor.name = std::string(kFullHistogramName);
  descriptor.on_delete = DeleteBehavior::kApplies;
  // The accuracy yardstick: exact answers, zero predicted error.
  descriptor.Declare(QueryKind::kHotList, kAccuracyExact,
                     [](const FullHistogram&, const QueryContext&, double) {
                       return 0.0;
                     });
  descriptor.factory = [footprint_bound](std::uint64_t) {
    return FullHistogram(footprint_bound);
  };
  descriptor.answers.hot_list = [](const FullHistogram& histogram,
                                   const HotListQuery& query,
                                   const QueryContext&) {
    return histogram.Report(query);
  };
  return descriptor;
}

ApproximateAnswerEngine::ApproximateAnswerEngine(const EngineOptions& options)
    : registry_(RegistryOptions(options)) {
  BuiltinBounds bounds;
  bounds.single = options.footprint_bound;
  bounds.sharded = options.footprint_bound;
  AQUA_CHECK(RegisterBuiltinSynopses(registry_, options, bounds).ok());
  if (options.maintain_full_histogram) {
    AQUA_CHECK(registry_
                   .Register(FullHistogramDescriptor(options.footprint_bound))
                   .ok());
  }
}

}  // namespace aqua
