#include "warehouse/engine.h"

#include <chrono>

#include "estimate/frequency_estimator.h"
#include "hotlist/concise_hot_list.h"
#include "hotlist/counting_hot_list.h"
#include "hotlist/traditional_hot_list.h"

namespace aqua {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ApproximateAnswerEngine::ApproximateAnswerEngine(const EngineOptions& options)
    : options_(options) {
  std::uint64_t seed = options.seed;
  auto next_seed = [&seed]() { return SplitMix64Next(seed); };
  if (options.maintain_traditional) {
    traditional_ = std::make_unique<ReservoirSample>(
        options.footprint_bound, next_seed());
  }
  if (options.maintain_concise) {
    ConciseSampleOptions cs;
    cs.footprint_bound = options.footprint_bound;
    cs.seed = next_seed();
    concise_ = std::make_unique<ConciseSample>(cs);
  }
  if (options.maintain_counting) {
    CountingSampleOptions ks;
    ks.footprint_bound = options.footprint_bound;
    ks.seed = next_seed();
    counting_ = std::make_unique<CountingSample>(ks);
  }
  if (options.maintain_distinct_sketch) {
    distinct_sketch_ = std::make_unique<FlajoletMartin>(64, next_seed());
  }
  if (options.maintain_full_histogram) {
    full_histogram_ =
        std::make_unique<FullHistogram>(options.footprint_bound);
  }
}

Status ApproximateAnswerEngine::Observe(const StreamOp& op) {
  if (op.kind == StreamOp::Kind::kInsert) {
    ++inserts_;
    if (traditional_) traditional_->Insert(op.value);
    if (concise_) concise_->Insert(op.value);
    if (counting_) counting_->Insert(op.value);
    if (distinct_sketch_) distinct_sketch_->Insert(op.value);
    if (full_histogram_) full_histogram_->Insert(op.value);
    return Status::OK();
  }
  ++deletes_;
  // Deletions: counting samples and the full histogram handle them
  // (Theorem 5); concise and traditional samples cannot be maintained under
  // deletions (§4.1) and are dropped the first time one arrives, so the
  // engine never serves stale uniform samples.
  if (traditional_) traditional_.reset();
  if (concise_) concise_.reset();
  Status status = Status::OK();
  if (counting_) status = counting_->Delete(op.value);
  if (full_histogram_) {
    AQUA_RETURN_NOT_OK(full_histogram_->Delete(op.value));
  }
  return status;
}

Status ApproximateAnswerEngine::ObserveBatch(std::span<const StreamOp> ops) {
  std::vector<Value> run;
  std::size_t i = 0;
  while (i < ops.size()) {
    if (ops[i].kind != StreamOp::Kind::kInsert) {
      AQUA_RETURN_NOT_OK(Observe(ops[i]));
      ++i;
      continue;
    }
    run.clear();
    while (i < ops.size() && ops[i].kind == StreamOp::Kind::kInsert) {
      run.push_back(ops[i].value);
      ++i;
    }
    inserts_ += static_cast<std::int64_t>(run.size());
    if (traditional_) traditional_->InsertBatch(run);
    if (concise_) concise_->InsertBatch(run);
    if (counting_) counting_->InsertBatch(run);
    // Sketch and histogram have per-element update rules; no batch path.
    if (distinct_sketch_) {
      for (Value v : run) distinct_sketch_->Insert(v);
    }
    if (full_histogram_) {
      for (Value v : run) full_histogram_->Insert(v);
    }
  }
  return Status::OK();
}

QueryResponse<HotList> ApproximateAnswerEngine::HotListAnswer(
    const HotListQuery& query) const {
  QueryResponse<HotList> response;
  const std::int64_t start = NowNs();
  if (full_histogram_) {
    response.answer = full_histogram_->Report(query);
    response.method = "full-histogram";
  } else if (counting_) {
    response.answer = CountingHotList(*counting_).Report(query);
    response.method = "counting-sample";
  } else if (concise_) {
    response.answer = ConciseHotList(*concise_).Report(query);
    response.method = "concise-sample";
  } else if (traditional_) {
    response.answer = TraditionalHotList(*traditional_).Report(query);
    response.method = "traditional-sample";
  } else {
    response.method = "none";
  }
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> ApproximateAnswerEngine::FrequencyAnswer(
    Value value) const {
  QueryResponse<Estimate> response;
  const std::int64_t start = NowNs();
  if (counting_) {
    response.answer = FrequencyEstimator::FromCounting(*counting_, value);
    response.method = "counting-sample";
  } else if (concise_) {
    response.answer = FrequencyEstimator::FromConcise(*concise_, value);
    response.method = "concise-sample";
  } else {
    response.method = "none";
  }
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> ApproximateAnswerEngine::CountWhereAnswer(
    const ValuePredicate& pred, double confidence) const {
  QueryResponse<Estimate> response;
  const std::int64_t start = NowNs();
  // Prefer the concise sample: it is a uniform sample with the largest
  // sample-size for the footprint (§1.1), hence the tightest interval.
  if (concise_) {
    const std::vector<Value> points = concise_->ToPointSample();
    SampleEstimator estimator(points, inserts_);
    response.answer = estimator.CountWhere(pred, confidence);
    response.method = "concise-sample";
  } else if (traditional_) {
    SampleEstimator estimator(traditional_->Points(), inserts_);
    response.answer = estimator.CountWhere(pred, confidence);
    response.method = "traditional-sample";
  } else {
    response.method = "none";
  }
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> ApproximateAnswerEngine::DistinctValuesAnswer()
    const {
  QueryResponse<Estimate> response;
  const std::int64_t start = NowNs();
  if (distinct_sketch_) {
    const double d = distinct_sketch_->Estimate();
    response.answer.value = d;
    // [FM85]'s asymptotic standard error is ≈ 0.78/sqrt(#maps) in log2
    // scale; expose a pragmatic ±2σ multiplicative band.
    const double sigma_log2 =
        0.78 / std::sqrt(static_cast<double>(distinct_sketch_->num_maps()));
    response.answer.ci_low = d * std::pow(2.0, -2.0 * sigma_log2);
    response.answer.ci_high = d * std::pow(2.0, 2.0 * sigma_log2);
    response.answer.confidence = 0.95;
    response.method = "fm-sketch";
  } else {
    response.method = "none";
  }
  response.response_ns = NowNs() - start;
  return response;
}

Words ApproximateAnswerEngine::TotalFootprint() const {
  Words total = 0;
  if (traditional_) total += traditional_->Footprint();
  if (concise_) total += concise_->Footprint();
  if (counting_) total += counting_->Footprint();
  if (full_histogram_) total += full_histogram_->Footprint();
  return total;
}

}  // namespace aqua
