#include "warehouse/engine.h"

#include <chrono>

#include "estimate/frequency_estimator.h"
#include "hotlist/concise_hot_list.h"
#include "hotlist/counting_hot_list.h"
#include "hotlist/traditional_hot_list.h"

namespace aqua {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ApproximateAnswerEngine::ApproximateAnswerEngine(const EngineOptions& options)
    : options_(options) {
  std::uint64_t seed = options.seed;
  auto next_seed = [&seed]() { return SplitMix64Next(seed); };
  if (options.maintain_traditional) {
    traditional_ = std::make_unique<ReservoirSample>(
        options.footprint_bound, next_seed());
  }
  if (options.maintain_concise) {
    ConciseSampleOptions cs;
    cs.footprint_bound = options.footprint_bound;
    cs.seed = next_seed();
    concise_ = std::make_unique<ConciseSample>(cs);
  }
  if (options.maintain_counting) {
    CountingSampleOptions ks;
    ks.footprint_bound = options.footprint_bound;
    ks.seed = next_seed();
    counting_ = std::make_unique<CountingSample>(ks);
  }
  if (options.maintain_distinct_sketch) {
    distinct_sketch_ = std::make_unique<FlajoletMartin>(64, next_seed());
  }
  if (options.maintain_full_histogram) {
    full_histogram_ =
        std::make_unique<FullHistogram>(options.footprint_bound);
  }
}

Status ApproximateAnswerEngine::Observe(const StreamOp& op) {
  if (op.kind == StreamOp::Kind::kInsert) {
    ++inserts_;
    if (traditional_) traditional_->Insert(op.value);
    if (concise_) concise_->Insert(op.value);
    if (counting_) counting_->Insert(op.value);
    if (distinct_sketch_) distinct_sketch_->Insert(op.value);
    if (full_histogram_) full_histogram_->Insert(op.value);
    return Status::OK();
  }
  ++deletes_;
  // Deletions: counting samples and the full histogram handle them
  // (Theorem 5); concise and traditional samples cannot be maintained under
  // deletions (§4.1) and are dropped the first time one arrives, so the
  // engine never serves stale uniform samples.
  if (traditional_) traditional_.reset();
  if (concise_) concise_.reset();
  Status status = Status::OK();
  if (counting_) status = counting_->Delete(op.value);
  if (full_histogram_) {
    AQUA_RETURN_NOT_OK(full_histogram_->Delete(op.value));
  }
  return status;
}

Status ApproximateAnswerEngine::ObserveBatch(std::span<const StreamOp> ops) {
  std::vector<Value> run;
  std::size_t i = 0;
  while (i < ops.size()) {
    if (ops[i].kind != StreamOp::Kind::kInsert) {
      AQUA_RETURN_NOT_OK(Observe(ops[i]));
      ++i;
      continue;
    }
    run.clear();
    while (i < ops.size() && ops[i].kind == StreamOp::Kind::kInsert) {
      run.push_back(ops[i].value);
      ++i;
    }
    inserts_ += static_cast<std::int64_t>(run.size());
    if (traditional_) traditional_->InsertBatch(run);
    if (concise_) concise_->InsertBatch(run);
    if (counting_) counting_->InsertBatch(run);
    // Sketch and histogram have per-element update rules; no batch path.
    if (distinct_sketch_) {
      for (Value v : run) distinct_sketch_->Insert(v);
    }
    if (full_histogram_) {
      for (Value v : run) full_histogram_->Insert(v);
    }
  }
  return Status::OK();
}

SynopsisView ApproximateAnswerEngine::View() const {
  SynopsisView view;
  view.full_histogram = full_histogram_.get();
  view.counting = counting_.get();
  view.concise = concise_.get();
  view.traditional = traditional_.get();
  view.distinct_sketch = distinct_sketch_.get();
  view.observed_inserts = inserts_;
  return view;
}

QueryResponse<HotList> AnswerHotList(const SynopsisView& view,
                                     const HotListQuery& query) {
  QueryResponse<HotList> response;
  const std::int64_t start = NowNs();
  if (view.full_histogram != nullptr) {
    response.answer = view.full_histogram->Report(query);
    response.method = "full-histogram";
  } else if (view.counting != nullptr) {
    response.answer = CountingHotList(*view.counting).Report(query);
    response.method = "counting-sample";
  } else if (view.concise != nullptr) {
    response.answer = ConciseHotList(*view.concise).Report(query);
    response.method = "concise-sample";
  } else if (view.traditional != nullptr) {
    response.answer = TraditionalHotList(*view.traditional).Report(query);
    response.method = "traditional-sample";
  } else {
    response.method = "none";
  }
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> AnswerFrequency(const SynopsisView& view,
                                        Value value) {
  QueryResponse<Estimate> response;
  const std::int64_t start = NowNs();
  if (view.counting != nullptr) {
    response.answer = FrequencyEstimator::FromCounting(*view.counting, value);
    response.method = "counting-sample";
  } else if (view.concise != nullptr) {
    response.answer = FrequencyEstimator::FromConcise(*view.concise, value);
    response.method = "concise-sample";
  } else {
    response.method = "none";
  }
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> AnswerCountWhere(const SynopsisView& view,
                                         const ValuePredicate& pred,
                                         double confidence) {
  QueryResponse<Estimate> response;
  const std::int64_t start = NowNs();
  // Prefer the concise sample: it is a uniform sample with the largest
  // sample-size for the footprint (§1.1), hence the tightest interval.
  if (view.concise != nullptr) {
    const std::vector<Value> points = view.concise->ToPointSample();
    SampleEstimator estimator(points, view.observed_inserts);
    response.answer = estimator.CountWhere(pred, confidence);
    response.method = "concise-sample";
  } else if (view.traditional != nullptr) {
    SampleEstimator estimator(view.traditional->Points(),
                              view.observed_inserts);
    response.answer = estimator.CountWhere(pred, confidence);
    response.method = "traditional-sample";
  } else {
    response.method = "none";
  }
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> AnswerDistinctValues(const SynopsisView& view) {
  QueryResponse<Estimate> response;
  const std::int64_t start = NowNs();
  if (view.distinct_sketch != nullptr) {
    const double d = view.distinct_sketch->Estimate();
    response.answer.value = d;
    // [FM85]'s asymptotic standard error is ≈ 0.78/sqrt(#maps) in log2
    // scale; expose a pragmatic ±2σ multiplicative band.
    const double sigma_log2 =
        0.78 /
        std::sqrt(static_cast<double>(view.distinct_sketch->num_maps()));
    response.answer.ci_low = d * std::pow(2.0, -2.0 * sigma_log2);
    response.answer.ci_high = d * std::pow(2.0, 2.0 * sigma_log2);
    response.answer.confidence = 0.95;
    response.method = "fm-sketch";
  } else {
    response.method = "none";
  }
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<HotList> ApproximateAnswerEngine::HotListAnswer(
    const HotListQuery& query) const {
  return AnswerHotList(View(), query);
}

QueryResponse<Estimate> ApproximateAnswerEngine::FrequencyAnswer(
    Value value) const {
  return AnswerFrequency(View(), value);
}

QueryResponse<Estimate> ApproximateAnswerEngine::CountWhereAnswer(
    const ValuePredicate& pred, double confidence) const {
  return AnswerCountWhere(View(), pred, confidence);
}

QueryResponse<Estimate> ApproximateAnswerEngine::DistinctValuesAnswer()
    const {
  return AnswerDistinctValues(View());
}

Words ApproximateAnswerEngine::TotalFootprint() const {
  Words total = 0;
  if (traditional_) total += traditional_->Footprint();
  if (concise_) total += concise_->Footprint();
  if (counting_) total += counting_->Footprint();
  if (full_histogram_) total += full_histogram_->Footprint();
  return total;
}

}  // namespace aqua
