#include "random/zipf.h"

#include <cmath>

#include "common/check.h"

namespace aqua {

std::vector<double> ZipfDistribution::Pmf(std::int64_t domain_size,
                                          double alpha) {
  AQUA_CHECK_GE(domain_size, 1);
  AQUA_CHECK_GE(alpha, 0.0);
  std::vector<double> pmf(static_cast<std::size_t>(domain_size));
  double total = 0.0;
  for (std::int64_t i = 1; i <= domain_size; ++i) {
    const double w = std::pow(static_cast<double>(i), -alpha);
    pmf[static_cast<std::size_t>(i - 1)] = w;
    total += w;
  }
  for (double& p : pmf) p /= total;
  return pmf;
}

ZipfDistribution::ZipfDistribution(std::int64_t domain_size, double alpha)
    : alpha_(alpha), table_(Pmf(domain_size, alpha)) {}

}  // namespace aqua
