#ifndef AQUA_RANDOM_RANDOM_H_
#define AQUA_RANDOM_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "random/xoshiro256.h"

namespace aqua {

/// Façade over the PRNG engine providing every primitive draw the library
/// needs: uniform words, unbiased bounded integers (Lemire's method),
/// doubles in [0,1), Bernoulli trials, exact geometric and binomial
/// variates, and unit exponentials.
///
/// Every public draw method increments a "coin flip" counter exactly once
/// per logical draw (a geometric skip is one draw; an exact binomial counts
/// its internal geometric draws).  This is the paper's abstract update-cost
/// measure: "the number of instructions executed by the algorithm is
/// directly proportional to the number of coin flips and lookups" (§3.3,
/// Table 1).
///
/// One Random instance is single-threaded; components that need independent
/// streams should derive child seeds via Fork().
class Random {
 public:
  explicit Random(std::uint64_t seed = kDefaultSeed) : engine_(seed) {}

  /// Next raw 64 random bits.
  std::uint64_t NextU64() {
    ++flips_;
    return engine_();
  }

  /// Uniform double in [0, 1), 53 bits of precision.
  double NextDouble() {
    ++flips_;
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as an argument to log().
  double NextDoublePositive() {
    ++flips_;
    return (static_cast<double>(engine_() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire 2019).
  /// `bound` must be positive.  Counts as one draw.
  std::uint64_t UniformU64(std::uint64_t bound) {
    AQUA_DCHECK_GT(bound, 0u);
    ++flips_;
    unsigned __int128 m = static_cast<unsigned __int128>(engine_()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(engine_()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.  Counts as one draw.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    AQUA_DCHECK_LE(lo, hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(NextU64());
    return lo + static_cast<std::int64_t>(UniformU64(span));
  }

  /// One coin flip with heads probability `p` (clamped to [0,1]).
  /// Degenerate probabilities consume no randomness and count no draw.
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Number of failures before the first success in independent trials with
  /// success probability `p` — the "skip count" of Vitter's Algorithm X:
  /// P(G = i) = (1-p)^i p.  Requires 0 < p <= 1.  Counts as one draw.
  std::int64_t Geometric(double p) {
    AQUA_DCHECK_GT(p, 0.0);
    if (p >= 1.0) return 0;
    // Inversion: floor(log(U) / log(1-p)) with U in (0,1].
    const double g =
        std::floor(std::log(NextDoublePositive()) / std::log1p(-p));
    // Guard against rare floating pathologies producing a negative value.
    return g < 0 ? 0 : static_cast<std::int64_t>(g);
  }

  /// Exact binomial variate: number of successes in n trials with success
  /// probability p.
  ///
  /// Strategy: reflect so that the counted outcome is the rarer one, then
  /// count successes by summing geometric inter-arrival gaps — exact for all
  /// n, p, with O(n·min(p,1-p) + 1) draws.
  std::int64_t Binomial(std::int64_t n, double p);

  /// Unit-rate exponential variate.
  double Exponential() { return -std::log(NextDoublePositive()); }

  /// Standard normal variate (Marsaglia polar method).
  double Normal();

  /// Derives an independent child seed; deterministic given this stream.
  std::uint64_t Fork() { return NextU64(); }

  /// Total logical draws made so far (the paper's coin-flip count).
  std::int64_t FlipCount() const { return flips_; }
  void ResetFlipCount() { flips_ = 0; }

  Xoshiro256& engine() { return engine_; }

 private:
  static constexpr std::uint64_t kDefaultSeed = 0x19980531ULL;  // SIGMOD'98

  Xoshiro256 engine_;
  std::int64_t flips_ = 0;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace aqua

#endif  // AQUA_RANDOM_RANDOM_H_
