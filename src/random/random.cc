#include "random/random.h"

namespace aqua {

std::int64_t Random::Binomial(std::int64_t n, double p) {
  AQUA_DCHECK_GE(n, 0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;

  // Count the rarer outcome so the expected work is min(np, n(1-p)) + 1.
  const bool reflected = p > 0.5;
  const double q = reflected ? 1.0 - p : p;

  // Sum geometric gaps: positions of successes are separated by
  // Geometric(q) failures.  Stops once the positions pass n.
  std::int64_t successes = 0;
  std::int64_t position = 0;
  while (true) {
    position += Geometric(q) + 1;  // position of the next success (1-based)
    if (position > n) break;
    ++successes;
  }
  return reflected ? n - successes : successes;
}

double Random::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: two independent normals per accepted pair.
  while (true) {
    const double u = 2.0 * NextDouble() - 1.0;
    const double v = 2.0 * NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double scale = std::sqrt(-2.0 * std::log(s) / s);
      cached_normal_ = v * scale;
      have_cached_normal_ = true;
      return u * scale;
    }
  }
}

}  // namespace aqua
