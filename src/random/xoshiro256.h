#ifndef AQUA_RANDOM_XOSHIRO256_H_
#define AQUA_RANDOM_XOSHIRO256_H_

#include <array>
#include <cstdint>

namespace aqua {

/// SplitMix64 step: used to expand a single 64-bit seed into engine state
/// (the recommended seeding procedure for the xoshiro family).
inline std::uint64_t SplitMix64Next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ 1.0 — a fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can also
/// feed <random> distributions where convenient.
///
/// All randomized components of the library take an explicit seed and route
/// their draws through one engine instance, so every experiment is
/// reproducible bit-for-bit.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Next(sm);
    // An all-zero state is invalid for the xoshiro family (it is a fixed
    // point); SplitMix64 cannot produce four zero outputs from any seed, so
    // no further handling is required, but we keep a defensive fixup.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Advances the engine 2^128 steps; yields non-overlapping subsequences
  /// for parallel trials that share a seed.
  void Jump() {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace aqua

#endif  // AQUA_RANDOM_XOSHIRO256_H_
