#ifndef AQUA_RANDOM_DISCRETE_DISTRIBUTION_H_
#define AQUA_RANDOM_DISCRETE_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "random/random.h"

namespace aqua {

/// Walker's alias method: O(K) construction, O(1) sampling from an arbitrary
/// finite discrete distribution (cf. Matias, Vitter & Ni [MVN93], which the
/// paper cites for dynamic discrete variate generation; our workloads are
/// static per experiment, so the static alias table suffices).
class DiscreteDistribution {
 public:
  /// Builds the alias table from non-negative weights (need not be
  /// normalized).  At least one weight must be positive.
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight, using exactly one uniform draw.
  std::size_t Sample(Random& random) const {
    const std::size_t k =
        static_cast<std::size_t>(random.UniformU64(probability_.size()));
    return random.NextDouble() < probability_[k] ? k : alias_[k];
  }

  std::size_t size() const { return probability_.size(); }

  /// Normalized probability of outcome `i` (for tests and analysis).
  double ProbabilityOf(std::size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> probability_;   // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;  // alternative outcome per bucket
  std::vector<double> normalized_;    // exact normalized pmf
};

}  // namespace aqua

#endif  // AQUA_RANDOM_DISCRETE_DISTRIBUTION_H_
