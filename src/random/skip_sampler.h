#ifndef AQUA_RANDOM_SKIP_SAMPLER_H_
#define AQUA_RANDOM_SKIP_SAMPLER_H_

#include <cstdint>

#include "common/check.h"
#include "random/random.h"

namespace aqua {

/// Geometric skip counting (the coin-flip economization of §3.1, following
/// Vitter's reservoir Algorithm X [Vit85]).
///
/// Instead of flipping a coin with heads probability 1/τ for every stream
/// element, one random draw determines how many elements to skip before the
/// next heads: P(skip exactly i) = (1 - 1/τ)^i · (1/τ).  "As τ gets large,
/// this results in a significant savings in the number of coin flips and
/// hence the update time."
///
/// The sampler exposes a countdown interface: ShouldSelect() is called once
/// per stream element and returns true only on the elements a per-element
/// Bernoulli(1/τ) process would have selected.  Changing the selection
/// probability (a threshold raise) discards the pending skip and redraws,
/// which preserves correctness because the pending skip was drawn for the
/// old probability.
///
/// The sampler holds no reference to the Random engine — the caller passes
/// it per call — so objects embedding both a Random and a SkipSampler stay
/// trivially movable.
///
/// DrawCount() counts the random draws taken — the paper's "coin flips"
/// overhead measure (Table 1): "the number of coin flips is a good measure
/// of the update time overheads."
class SkipSampler {
 public:
  /// `probability` in (0, 1].  Draws the initial skip from `random`.
  SkipSampler(Random& random, double probability) {
    Reset(random, probability);
  }

  /// Replaces the selection probability and redraws the pending skip.
  void Reset(Random& random, double probability) {
    AQUA_CHECK(probability > 0.0 && probability <= 1.0)
        << "selection probability out of range:" << probability;
    probability_ = probability;
    Redraw(random);
  }

  /// Consumes one stream element; true iff this element is selected.
  bool ShouldSelect(Random& random) {
    if (remaining_ > 0) {
      --remaining_;
      return false;
    }
    Redraw(random);
    return true;
  }

  /// Number of further stream elements that are guaranteed unselected (the
  /// pending geometric skip).  The element *after* these is selected.
  std::int64_t PendingSkip() const { return remaining_; }

  /// Fast-forwards past `n <= PendingSkip()` unselected stream elements in
  /// O(1) — the batch counterpart of n ShouldSelect() calls returning false.
  /// State evolution (and hence the random stream) is identical to the
  /// per-element path, which is what makes batched and per-element
  /// ingestion draw-for-draw equivalent.
  void SkipAhead(std::int64_t n) {
    AQUA_DCHECK_GE(n, 0);
    AQUA_DCHECK_LE(n, remaining_);
    remaining_ -= n;
  }

  double probability() const { return probability_; }

  /// Random draws taken so far (one per geometric redraw).
  std::int64_t DrawCount() const { return draws_; }

  void ResetDrawCount() { draws_ = 0; }

 private:
  void Redraw(Random& random) {
    if (probability_ >= 1.0) {
      remaining_ = 0;
      return;  // Selecting everything needs no randomness at all.
    }
    remaining_ = random.Geometric(probability_);
    ++draws_;
  }

  double probability_ = 1.0;
  std::int64_t remaining_ = 0;
  std::int64_t draws_ = 0;
};

}  // namespace aqua

#endif  // AQUA_RANDOM_SKIP_SAMPLER_H_
