#ifndef AQUA_RANDOM_EXPONENTIAL_VALUES_H_
#define AQUA_RANDOM_EXPONENTIAL_VALUES_H_

#include <cstdint>

#include "common/check.h"
#include "random/random.h"

namespace aqua {

/// The family of exponential value distributions of Theorem 3:
/// P(v = i) = α^{-i} (α - 1) for i = 1, 2, …, with α > 1.
///
/// This is exactly a shifted geometric distribution with success probability
/// (α - 1)/α, so draws are exact and O(1).  Theorem 3: a concise sample of
/// footprint m over such data has expected sample-size ≥ α^{m/2}.
class ExponentialValueDistribution {
 public:
  explicit ExponentialValueDistribution(double alpha) : alpha_(alpha) {
    AQUA_CHECK(alpha > 1.0) << "Theorem 3 requires alpha > 1";
  }

  /// Draws a value in {1, 2, …}.
  std::int64_t Sample(Random& random) const {
    return 1 + random.Geometric((alpha_ - 1.0) / alpha_);
  }

  /// P(v = i).
  double ProbabilityOf(std::int64_t i) const {
    AQUA_DCHECK_GE(i, 1);
    return std::pow(alpha_, static_cast<double>(-i)) * (alpha_ - 1.0);
  }

  double alpha() const { return alpha_; }

 private:
  double alpha_;
};

}  // namespace aqua

#endif  // AQUA_RANDOM_EXPONENTIAL_VALUES_H_
