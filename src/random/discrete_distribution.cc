#include "random/discrete_distribution.h"

#include <numeric>

#include "common/check.h"

namespace aqua {

DiscreteDistribution::DiscreteDistribution(
    const std::vector<double>& weights) {
  AQUA_CHECK(!weights.empty()) << "empty weight vector";
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  AQUA_CHECK(total > 0.0) << "weights must have positive total";

  const std::size_t k = weights.size();
  normalized_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    AQUA_CHECK(weights[i] >= 0.0) << "negative weight at index" << i;
    normalized_[i] = weights[i] / total;
  }

  // Vose's stable construction of the alias table.
  probability_.assign(k, 0.0);
  alias_.assign(k, 0);
  std::vector<double> scaled(k);
  for (std::size_t i = 0; i < k; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(k);
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly 1 up to rounding.
  for (std::uint32_t i : large) probability_[i] = 1.0;
  for (std::uint32_t i : small) probability_[i] = 1.0;
}

}  // namespace aqua
