#ifndef AQUA_RANDOM_ZIPF_H_
#define AQUA_RANDOM_ZIPF_H_

#include <cstdint>
#include <vector>

#include "random/discrete_distribution.h"
#include "random/random.h"

namespace aqua {

/// Zipf(α) distribution over the integer domain [1, D]:
/// P(v = i) ∝ i^{-α}.  α = 0 is the uniform distribution; the paper sweeps
/// α from 0 to 3 in increments of 0.25 (§3.3, §5.3).
///
/// Sampling is O(1) via an alias table built in O(D).
class ZipfDistribution {
 public:
  /// `domain_size` = D ≥ 1; `alpha` = the zipf parameter ≥ 0.
  ZipfDistribution(std::int64_t domain_size, double alpha);

  /// Draws a value in [1, D] (rank 1 is the most frequent value).
  std::int64_t Sample(Random& random) const {
    return static_cast<std::int64_t>(table_.Sample(random)) + 1;
  }

  /// Exact probability of value i (1-based).
  double ProbabilityOf(std::int64_t i) const {
    return table_.ProbabilityOf(static_cast<std::size_t>(i - 1));
  }

  std::int64_t domain_size() const {
    return static_cast<std::int64_t>(table_.size());
  }
  double alpha() const { return alpha_; }

  /// The normalized pmf p_1 ≥ p_2 ≥ … ≥ p_D (useful for analytic
  /// expectations, e.g. Theorem 4 evaluation).
  static std::vector<double> Pmf(std::int64_t domain_size, double alpha);

 private:
  double alpha_;
  DiscreteDistribution table_;
};

}  // namespace aqua

#endif  // AQUA_RANDOM_ZIPF_H_
