#ifndef AQUA_REGISTRY_ANSWER_SOURCE_H_
#define AQUA_REGISTRY_ANSWER_SOURCE_H_

#include <cstddef>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>

#include "estimate/aggregates.h"
#include "hotlist/hot_list.h"
#include "sample/capabilities.h"

namespace aqua {

/// A pinned, read-only answer computation surface over one synopsis.
///
/// SynopsisHandle::Pin() returns one of these over whatever state the
/// handle serves from — the live synopsis in unsynchronized mode, the
/// epoch-cached snapshot in concurrent mode — and keeps that state alive
/// for the duration of the computation.  Callers must check Answers(kind)
/// before calling the corresponding answer method; the defaults return
/// empty answers so a mis-routed call degrades rather than crashes.
class AnswerSource {
 public:
  virtual ~AnswerSource() = default;

  /// The method tag reported in QueryResponse ("counting-sample", ...).
  virtual std::string_view Method() const = 0;

  virtual bool Answers(QueryKind kind) const = 0;

  /// True when this source answers `kind` from an epoch-frozen view (the
  /// fast path).  The registry's latency profiles split on this.
  virtual bool AnswersFromView(QueryKind /*kind*/) const { return false; }

  virtual HotList HotListAnswer(const HotListQuery& query,
                                const QueryContext& ctx) const {
    (void)query;
    (void)ctx;
    return {};
  }
  /// Out-param form of HotListAnswer: fills `*out` (cleared first) so a
  /// caller reusing a warmed vector answers without allocating.  The
  /// default routes through the by-value form; sources with an
  /// epoch-frozen view override it to walk the view's O(k) prefix straight
  /// into `out`.
  virtual void HotListAnswerInto(const HotListQuery& query,
                                 const QueryContext& ctx,
                                 HotList* out) const {
    *out = HotListAnswer(query, ctx);
  }
  virtual Estimate FrequencyAnswer(Value value, const QueryContext& ctx) const {
    (void)value;
    (void)ctx;
    return {};
  }
  virtual Estimate CountWhereAnswer(const ValuePredicate& pred,
                                    double confidence,
                                    const QueryContext& ctx) const {
    (void)pred;
    (void)confidence;
    (void)ctx;
    return {};
  }
  /// Structured-range form of CountWhere.  The default folds the range
  /// into a predicate, so every source answers ranges; sources with a
  /// value-ordered view override this with an O(log m) prefix-sum count
  /// (producing the identical hit total, hence the identical estimate).
  virtual Estimate CountWhereRangeAnswer(const ValueRange& range,
                                         double confidence,
                                         const QueryContext& ctx) const {
    return CountWhereAnswer(range.AsPredicate(), confidence, ctx);
  }
  virtual Estimate DistinctAnswer(const QueryContext& ctx) const {
    (void)ctx;
    return {};
  }
  virtual Estimate QuantileAnswer(double q, double confidence,
                                  const QueryContext& ctx) const {
    (void)q;
    (void)confidence;
    (void)ctx;
    return {};
  }
};

/// Caller-provided inline storage for one pinned AnswerSource.
///
/// SynopsisHandle::Pin() heap-allocates a control block plus the source
/// object on every query; on the serving read path that is the last
/// per-request allocation.  PinInto() instead placement-constructs the
/// source into this fixed buffer, so a reactor that keeps one of these as
/// scratch pins and answers with zero allocator traffic.  Non-copyable;
/// the pinned source lives until the next Emplace()/Clear() or the
/// holder's destruction, and must not outlive the holder.
class PinnedAnswerSource {
 public:
  /// Generous upper bound on any concrete source: a vtable pointer, two
  /// shared_ptr pins (descriptor + epoch state) and a raw view pointer —
  /// 48 bytes today; 64 keeps the buffer cache-line-sized with slack.
  static constexpr std::size_t kStorageBytes = 64;

  PinnedAnswerSource() = default;
  ~PinnedAnswerSource() { Clear(); }

  PinnedAnswerSource(const PinnedAnswerSource&) = delete;
  PinnedAnswerSource& operator=(const PinnedAnswerSource&) = delete;

  /// Destroys any current occupant and constructs a T in place, returning
  /// the pinned source.  T must derive from AnswerSource (its virtual
  /// destructor is how Clear() tears the occupant down).
  template <typename T, typename... Args>
  const T* Emplace(Args&&... args) {
    static_assert(std::is_base_of_v<AnswerSource, T>,
                  "PinnedAnswerSource holds AnswerSource implementations");
    static_assert(sizeof(T) <= kStorageBytes,
                  "AnswerSource implementation outgrew the inline buffer; "
                  "raise kStorageBytes");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    Clear();
    T* source = ::new (static_cast<void*>(storage_)) T(
        std::forward<Args>(args)...);
    active_ = source;
    return source;
  }

  void Clear() {
    if (active_ != nullptr) {
      active_->~AnswerSource();
      active_ = nullptr;
    }
  }

  /// The current occupant; null when empty.
  const AnswerSource* get() const { return active_; }

 private:
  alignas(std::max_align_t) unsigned char storage_[kStorageBytes];
  AnswerSource* active_ = nullptr;
};

}  // namespace aqua

#endif  // AQUA_REGISTRY_ANSWER_SOURCE_H_
