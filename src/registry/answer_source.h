#ifndef AQUA_REGISTRY_ANSWER_SOURCE_H_
#define AQUA_REGISTRY_ANSWER_SOURCE_H_

#include <string_view>

#include "estimate/aggregates.h"
#include "hotlist/hot_list.h"
#include "sample/capabilities.h"

namespace aqua {

/// A pinned, read-only answer computation surface over one synopsis.
///
/// SynopsisHandle::Pin() returns one of these over whatever state the
/// handle serves from — the live synopsis in unsynchronized mode, the
/// epoch-cached snapshot in concurrent mode — and keeps that state alive
/// for the duration of the computation.  Callers must check Answers(kind)
/// before calling the corresponding answer method; the defaults return
/// empty answers so a mis-routed call degrades rather than crashes.
class AnswerSource {
 public:
  virtual ~AnswerSource() = default;

  /// The method tag reported in QueryResponse ("counting-sample", ...).
  virtual std::string_view Method() const = 0;

  virtual bool Answers(QueryKind kind) const = 0;

  virtual HotList HotListAnswer(const HotListQuery& query,
                                const QueryContext& ctx) const {
    (void)query;
    (void)ctx;
    return {};
  }
  virtual Estimate FrequencyAnswer(Value value, const QueryContext& ctx) const {
    (void)value;
    (void)ctx;
    return {};
  }
  virtual Estimate CountWhereAnswer(const ValuePredicate& pred,
                                    double confidence,
                                    const QueryContext& ctx) const {
    (void)pred;
    (void)confidence;
    (void)ctx;
    return {};
  }
  /// Structured-range form of CountWhere.  The default folds the range
  /// into a predicate, so every source answers ranges; sources with a
  /// value-ordered view override this with an O(log m) prefix-sum count
  /// (producing the identical hit total, hence the identical estimate).
  virtual Estimate CountWhereRangeAnswer(const ValueRange& range,
                                         double confidence,
                                         const QueryContext& ctx) const {
    return CountWhereAnswer(range.AsPredicate(), confidence, ctx);
  }
  virtual Estimate DistinctAnswer(const QueryContext& ctx) const {
    (void)ctx;
    return {};
  }
  virtual Estimate QuantileAnswer(double q, double confidence,
                                  const QueryContext& ctx) const {
    (void)q;
    (void)confidence;
    (void)ctx;
    return {};
  }
};

}  // namespace aqua

#endif  // AQUA_REGISTRY_ANSWER_SOURCE_H_
