#include "registry/registry.h"

#include <algorithm>
#include <chrono>

namespace aqua {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kHotList:
      return "hotlist";
    case QueryKind::kFrequency:
      return "frequency";
    case QueryKind::kCountWhere:
      return "count_where";
    case QueryKind::kDistinct:
      return "distinct";
    case QueryKind::kQuantile:
      return "quantile";
  }
  return "unknown";
}

Status SynopsisRegistry::ValidateModel(
    const std::string& name,
    const std::array<int, kNumQueryKinds>& accuracy_class,
    const std::array<bool, kNumQueryKinds>& has_error,
    const std::array<bool, kNumQueryKinds>& has_answerer) {
  for (int kind = 0; kind < kNumQueryKinds; ++kind) {
    const bool declared = accuracy_class[kind] != kCannotAnswer;
    if (declared && !has_answerer[kind]) {
      return Status::InvalidArgument(
          name + ": cost/error model declared for a query kind without an "
                 "answer function");
    }
    if (!declared && has_answerer[kind]) {
      return Status::InvalidArgument(
          name + ": answer function provided for a query kind without a "
                 "cost/error model entry");
    }
    if (declared && !has_error[kind]) {
      return Status::InvalidArgument(
          name + ": cost/error model entry without an error estimator (the "
                 "planner cannot score what it cannot predict)");
    }
  }
  return Status::OK();
}

void SynopsisRegistry::IndexHandle(SynopsisHandle* handle) {
  for (int kind = 0; kind < kNumQueryKinds; ++kind) {
    const int accuracy = handle->Capabilities().model[kind].accuracy_class;
    if (accuracy == kCannotAnswer) continue;
    auto& list = by_kind_[kind];
    auto it = list.begin();
    while (it != list.end() &&
           (*it)->Capabilities().model[kind].accuracy_class <= accuracy) {
      ++it;
    }
    list.insert(it, handle);
  }
}

Status SynopsisRegistry::Observe(const StreamOp& op) {
  if (op.kind == StreamOp::Kind::kInsert) {
    const Value value = op.value;
    InsertBatch(std::span<const Value>(&value, 1));
    return Status::OK();
  }
  return Delete(op.value);
}

Status SynopsisRegistry::ObserveBatch(std::span<const StreamOp> ops) {
  std::vector<Value> run;
  std::size_t i = 0;
  while (i < ops.size()) {
    if (ops[i].kind != StreamOp::Kind::kInsert) {
      AQUA_RETURN_NOT_OK(Observe(ops[i]));
      ++i;
      continue;
    }
    run.clear();
    while (i < ops.size() && ops[i].kind == StreamOp::Kind::kInsert) {
      run.push_back(ops[i].value);
      ++i;
    }
    InsertBatch(run);
  }
  return Status::OK();
}

void SynopsisRegistry::InsertBatch(std::span<const Value> values) {
  if (values.empty()) return;
  for (const auto& handle : handles_) handle->InsertBatch(values);
  const auto n = static_cast<std::int64_t>(values.size());
  inserts_.fetch_add(n, std::memory_order_relaxed);
  for (const auto& handle : handles_) handle->OnIngest(n);
}

Status SynopsisRegistry::Delete(Value value) {
  deletes_.fetch_add(1, std::memory_order_relaxed);
  Status status = Status::OK();
  for (const auto& handle : handles_) {
    const Status handle_status = handle->Delete(value);
    if (!handle_status.ok() && status.ok()) status = handle_status;
  }
  for (const auto& handle : handles_) handle->OnIngest(1);
  return status;
}

QueryResponse<HotList> SynopsisRegistry::HotListAnswer(
    const HotListQuery& query) const {
  const std::int64_t start = NowNs();
  QueryResponse<HotList> response = AnswerFromBest<HotList>(
      QueryKind::kHotList,
      [&query](const AnswerSource& source, const QueryContext& ctx) {
        return source.HotListAnswer(query, ctx);
      });
  response.response_ns = NowNs() - start;  // includes any cache access
  return response;
}

void SynopsisRegistry::HotListAnswerInto(
    const HotListQuery& query, QueryResponse<HotList>* response) const {
  const std::int64_t start = NowNs();
  response->method = "none";
  response->answer.clear();
  const QueryContext ctx{observed_inserts()};
  PinnedAnswerSource pinned;
  for (const SynopsisHandle* candidate :
       by_kind_[static_cast<int>(QueryKind::kHotList)]) {
    const AnswerSource* source = candidate->PinInto(pinned);
    if (source == nullptr) continue;
    const std::int64_t compute_start = NowNs();
    source->HotListAnswerInto(query, ctx, &response->answer);
    response->method = source->Method();
    candidate->RecordLatency(QueryKind::kHotList,
                             source->AnswersFromView(QueryKind::kHotList),
                             NowNs() - compute_start);
    break;
  }
  response->response_ns = NowNs() - start;
}

QueryResponse<Estimate> SynopsisRegistry::FrequencyAnswer(Value value) const {
  const std::int64_t start = NowNs();
  QueryResponse<Estimate> response = AnswerFromBest<Estimate>(
      QueryKind::kFrequency,
      [value](const AnswerSource& source, const QueryContext& ctx) {
        return source.FrequencyAnswer(value, ctx);
      });
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> SynopsisRegistry::CountWhereAnswer(
    const ValuePredicate& pred, double confidence) const {
  const std::int64_t start = NowNs();
  QueryResponse<Estimate> response = AnswerFromBest<Estimate>(
      QueryKind::kCountWhere,
      [&pred, confidence](const AnswerSource& source,
                          const QueryContext& ctx) {
        return source.CountWhereAnswer(pred, confidence, ctx);
      });
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> SynopsisRegistry::CountWhereAnswer(
    const ValueRange& range, double confidence) const {
  const std::int64_t start = NowNs();
  QueryResponse<Estimate> response = AnswerFromBest<Estimate>(
      QueryKind::kCountWhere,
      [&range, confidence](const AnswerSource& source,
                           const QueryContext& ctx) {
        return source.CountWhereRangeAnswer(range, confidence, ctx);
      });
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> SynopsisRegistry::DistinctValuesAnswer() const {
  const std::int64_t start = NowNs();
  QueryResponse<Estimate> response = AnswerFromBest<Estimate>(
      QueryKind::kDistinct,
      [](const AnswerSource& source, const QueryContext& ctx) {
        return source.DistinctAnswer(ctx);
      });
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> SynopsisRegistry::QuantileAnswer(
    double q, double confidence) const {
  const std::int64_t start = NowNs();
  QueryResponse<Estimate> response = AnswerFromBest<Estimate>(
      QueryKind::kQuantile,
      [q, confidence](const AnswerSource& source, const QueryContext& ctx) {
        return source.QuantileAnswer(q, confidence, ctx);
      });
  response.response_ns = NowNs() - start;
  return response;
}

bool SynopsisRegistry::HasDeletable() const {
  for (const auto& handle : handles_) {
    if (handle->valid() &&
        handle->Capabilities().on_delete == DeleteBehavior::kApplies) {
      return true;
    }
  }
  return false;
}

std::uint64_t SynopsisRegistry::ServingEpoch() const {
  std::uint64_t epoch = merge_rounds_.load(std::memory_order_relaxed);
  for (const auto& handle : handles_) {
    epoch += handle->CacheEpoch();
    if (!handle->valid()) ++epoch;  // invalidation changes answers too
  }
  return epoch;
}

Result<std::function<Status()>> SynopsisRegistry::PrepareDeltaMerge(
    std::string_view name, const std::vector<std::uint8_t>& bytes) {
  SynopsisHandle* target = mutable_handle(name);
  if (target == nullptr) {
    return Status::NotFound("no synopsis named " + std::string(name));
  }
  return target->PrepareDeltaMerge(bytes);
}

void SynopsisRegistry::CompleteMergeRound() {
  merge_rounds_.fetch_add(1, std::memory_order_relaxed);
  // Enough reported ingest progress to trip any ops staleness bound: the
  // next SettleCaches() refreshes every handle's snapshot cache, so the
  // whole round becomes visible under one settled epoch.
  const std::int64_t force = std::max<std::int64_t>(
      options_.cache_max_stale_ops, 1);
  for (const auto& handle : handles_) handle->OnIngest(force);
}

bool SynopsisRegistry::AnyCacheStale() const {
  for (const auto& handle : handles_) {
    if (handle->CacheIsStale()) return true;
  }
  return false;
}

void SynopsisRegistry::SettleCaches() const {
  for (const auto& handle : handles_) handle->SettleCache();
}

Words SynopsisRegistry::TotalFootprint() const {
  Words total = 0;
  for (const auto& handle : handles_) total += handle->Footprint();
  return total;
}

const SynopsisHandle* SynopsisRegistry::handle(std::string_view name) const {
  for (const auto& candidate : handles_) {
    if (candidate->Name() == name) return candidate.get();
  }
  return nullptr;
}

SynopsisHandle* SynopsisRegistry::mutable_handle(std::string_view name) {
  for (const auto& candidate : handles_) {
    if (candidate->Name() == name) return candidate.get();
  }
  return nullptr;
}

RegistryStats SynopsisRegistry::GetStats() const {
  RegistryStats stats;
  GetStatsInto(&stats);
  return stats;
}

void SynopsisRegistry::GetStatsInto(RegistryStats* out) const {
  out->inserts = observed_inserts();
  out->deletes = observed_deletes();
  out->synopses.resize(handles_.size());
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    const auto& handle = handles_[i];
    SynopsisHandleStats& s = out->synopses[i];
    // assign() reuses the string's capacity, so a warmed RegistryStats
    // reports without touching the allocator.
    const std::string_view name = handle->Name();
    s.name.assign(name.data(), name.size());
    s.valid = handle->valid();
    s.cached = handle->Cached();
    s.sharded = handle->Capabilities().sharded;
    s.footprint = handle->Footprint();
    s.epoch = handle->CacheEpoch();
    s.cache = handle->CacheStats();
    s.has_view = handle->HasView();
    s.view_build_ns = handle->ViewBuildNs();
    s.refresh = handle->GetRefreshProfile();
  }
  for (int kind = 0; kind < kNumQueryKinds; ++kind) {
    PlannerKindStats& p = out->planner[kind];
    const QueryKind qk = static_cast<QueryKind>(kind);
    p.kind = QueryKindName(qk);
    p.synopsis = "none";
    p.available = false;
    p.latency_ewma_ns = 0.0;
    p.last_achieved_error = LastAchievedError(qk);
    for (const SynopsisHandle* candidate : by_kind_[kind]) {
      if (!candidate->valid()) continue;
      p.synopsis = candidate->Name();
      p.available = true;
      // Report the path an unbounded query would take: the frozen view
      // when the current epoch carries one, the direct path otherwise.
      const LatencyProfile profile = candidate->LatencyFor(qk);
      const bool via_view =
          candidate->ViewAnswers(qk) && profile.view_observations > 0;
      p.latency_ewma_ns = via_view ? profile.view_ns : profile.direct_ns;
      break;
    }
  }
}

}  // namespace aqua
