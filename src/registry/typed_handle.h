#ifndef AQUA_REGISTRY_TYPED_HANDLE_H_
#define AQUA_REGISTRY_TYPED_HANDLE_H_

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "concurrency/shared_synopsis.h"
#include "concurrency/sharded_synopsis.h"
#include "concurrency/snapshot_cache.h"
#include "random/xoshiro256.h"
#include "registry/synopsis_handle.h"
#include "view/frozen_view.h"

namespace aqua {

/// Minimum contract for a registrable synopsis type: per-element insert, a
/// word footprint, and copyability (snapshots are copies).
template <typename S>
concept RegistrableSynopsis =
    std::copy_constructible<S> && requires(S s, const S cs, Value v) {
      s.Insert(v);
      { cs.Footprint() } -> std::convertible_to<Words>;
    };

/// Synopses with an exact delete operation (counting sample Theorem 5,
/// full histogram).  Required when a descriptor declares
/// DeleteBehavior::kApplies.
template <typename S>
concept DeletableSynopsis = requires(S s, Value v) {
  { s.Delete(v) } -> std::same_as<Status>;
};

/// Synopses whose independently-built copies merge back into one valid
/// synopsis.  This is what gates sharded ingest: a concurrent handle for a
/// shardable type spreads inserts over a ShardedSynopsis and re-merges on
/// snapshot; everything else stays single-instance behind a SharedSynopsis.
template <typename S>
concept ShardableSynopsis = Mergeable<S> && Reseedable<S>;

/// How answers are computed from a pinned snapshot of `S`.  Null entries
/// mean the synopsis does not answer that kind; each non-null entry must
/// have a matching model entry in the descriptor (Register validates).
template <typename S>
struct AnswerFunctions {
  std::function<HotList(const S&, const HotListQuery&, const QueryContext&)>
      hot_list;
  std::function<Estimate(const S&, Value, const QueryContext&)> frequency;
  std::function<Estimate(const S&, const ValuePredicate&, double,
                         const QueryContext&)>
      count_where;
  std::function<Estimate(const S&, const QueryContext&)> distinct;
  std::function<Estimate(const S&, double q, double confidence,
                         const QueryContext&)>
      quantile;
};

/// One query kind's cost/error model entry, declared by a descriptor: the
/// §6 accuracy class (the static ordering unbounded queries follow) plus an
/// error estimator evaluated on the live synopsis state.  The estimator
/// returns the kind's error metric (DESIGN.md §13: a relative bound such as
/// z(c)/(2·sqrt(m)) for uniform samples) predicted for answering from
/// `state` at `confidence`; +infinity means "cannot bound the error" (e.g.
/// an empty sample).  Register() requires an estimator for every declared
/// kind — the planner refuses to score a handle it cannot predict.
template <typename S>
struct KindCostModel {
  int accuracy_class = kCannotAnswer;
  std::function<double(const S& state, const QueryContext&,
                       double confidence)>
      error;
};

/// The full per-kind model of one synopsis (indexed by QueryKind).
template <typename S>
using CostErrorModel = std::array<KindCostModel<S>, kNumQueryKinds>;

/// Everything the registry needs to own and serve one synopsis type:
/// construction, delete semantics, the per-kind cost/error model, answer
/// computation, and (optionally) a persist codec.  A descriptor is
/// registered once and serves both engines — there is no per-engine fork.
template <typename S>
struct SynopsisDescriptor {
  /// Stable id; doubles as the response `method` tag.
  std::string name;
  DeleteBehavior on_delete = DeleteBehavior::kIgnores;
  /// Per-QueryKind cost/error model; kCannotAnswer where not served.
  CostErrorModel<S> model = {};
  /// Builds one instance (one shard, in sharded mode) from a seed.
  std::function<S(std::uint64_t seed)> factory;
  AnswerFunctions<S> answers;
  /// Optional freeze-time view constructor (view_builders.h).  When set,
  /// concurrent handles build a FrozenView from every merged snapshot and
  /// publish {snapshot, view} under one epoch swap; query kinds the view
  /// serves answer from it instead of the answer functions.
  /// Unsynchronized handles ignore it (no epoch to amortize over).
  std::function<FrozenView(const S&)> view_builder;
  /// Optional Spec-producing half of the view builder (the Build*ViewSpec
  /// functions).  When set it takes precedence over `view_builder`: the
  /// handle hands the Spec to FrozenView's delta-patch constructor
  /// together with the previous epoch's view, so successive epochs reuse
  /// the previous orderings instead of re-sorting — O(m + d log d) per
  /// refresh, bit-identical to the full build.
  std::function<FrozenView::Spec(const S&)> spec_builder;
  /// Optional persist codec (persist/snapshot.h-style byte format).
  std::function<std::vector<std::uint8_t>(const S&)> encode;
  std::function<Result<S>(const std::vector<std::uint8_t>&, std::uint64_t)>
      decode;

  /// Declares one answered kind: its accuracy class and error estimator.
  void Declare(QueryKind kind, int accuracy_class,
               std::function<double(const S&, const QueryContext&, double)>
                   error_estimator) {
    KindCostModel<S>& entry = model[static_cast<int>(kind)];
    entry.accuracy_class = accuracy_class;
    entry.error = std::move(error_estimator);
  }
};

/// How a handle arbitrates between ingest and queries.
enum class ExecutionMode {
  /// Single-threaded driver (ApproximateAnswerEngine): the synopsis is
  /// held directly, queries read it in place.
  kUnsynchronized,
  /// Concurrent driver (ServingEngine, SynopsisCatalog): sharded or locked
  /// ingest, queries from epoch-cached snapshots.
  kConcurrent,
};

/// Per-handle construction parameters, chosen by the registry.
struct HandleOptions {
  ExecutionMode mode = ExecutionMode::kUnsynchronized;
  /// Ingest shards for shardable synopses in concurrent mode.
  std::size_t shards = 1;
  std::uint64_t seed = 0;
  /// Snapshot-cache staleness bounds (see SnapshotCache).
  std::int64_t cache_max_stale_ops = 8192;
  std::chrono::nanoseconds cache_max_stale_interval =
      std::chrono::milliseconds(100);
  /// Hand refresh ownership to an external epoch pump: query-thread Get()
  /// never re-merges a warmed cache (see SnapshotCache::Options).
  bool external_refresh = false;
};

/// One epoch's published state: the merged snapshot plus the read-optimized
/// view frozen from it (when the descriptor declares a view builder).  The
/// SnapshotCache publishes the whole struct under one `shared_ptr` swap, so
/// a reader that pins an epoch gets a {snapshot, view} pair that is
/// mutually consistent by construction — no extra synchronization.
template <typename S>
struct EpochState {
  S snapshot;
  std::optional<FrozenView> view;
  /// Wall time the view build added to this epoch's refresh (0: no view).
  std::int64_t view_build_ns = 0;
  /// True when the view was patched from the previous epoch's orderings
  /// instead of fully rebuilt.
  bool view_patched = false;
};

/// The AnswerSource a TypedSynopsisHandle pins: a snapshot (or live
/// reference) of `S`, the epoch's frozen view when one exists, and the
/// descriptor's answer functions as the direct path.  Each answer method
/// prefers the view (O(k)/O(log m)) and falls back to the descriptor's
/// per-query computation — the fallback covers unsynchronized handles,
/// synopses without a view builder, and query kinds a view doesn't serve.
template <RegistrableSynopsis S>
class TypedAnswerSource final : public AnswerSource {
 public:
  /// `view` must stay valid while `snapshot` is held (the handle passes a
  /// pointer into the EpochState that `snapshot` aliases, so the pinned
  /// epoch keeps both alive).
  TypedAnswerSource(std::shared_ptr<const SynopsisDescriptor<S>> descriptor,
                    std::shared_ptr<const S> snapshot,
                    const FrozenView* view = nullptr)
      : descriptor_(std::move(descriptor)),
        snapshot_(std::move(snapshot)),
        view_(view) {}

  std::string_view Method() const override { return descriptor_->name; }

  bool Answers(QueryKind kind) const override {
    return descriptor_->model[static_cast<int>(kind)].accuracy_class !=
           kCannotAnswer;
  }

  /// True when this source would answer the kind from the frozen view
  /// (planner path accounting, bench/stats introspection).
  bool AnswersFromView(QueryKind kind) const override {
    return view_ != nullptr && view_->Answers(kind);
  }

  HotList HotListAnswer(const HotListQuery& query,
                        const QueryContext& ctx) const override {
    if (AnswersFromView(QueryKind::kHotList)) {
      return view_->HotListAnswer(query);
    }
    return descriptor_->answers.hot_list(*snapshot_, query, ctx);
  }
  void HotListAnswerInto(const HotListQuery& query, const QueryContext& ctx,
                         HotList* out) const override {
    if (AnswersFromView(QueryKind::kHotList)) {
      view_->HotListAnswerInto(query, out);
      return;
    }
    *out = descriptor_->answers.hot_list(*snapshot_, query, ctx);
  }
  Estimate FrequencyAnswer(Value value,
                           const QueryContext& ctx) const override {
    if (AnswersFromView(QueryKind::kFrequency)) {
      return view_->FrequencyAnswer(value);
    }
    return descriptor_->answers.frequency(*snapshot_, value, ctx);
  }
  Estimate CountWhereAnswer(const ValuePredicate& pred, double confidence,
                            const QueryContext& ctx) const override {
    if (AnswersFromView(QueryKind::kCountWhere)) {
      return view_->CountWhereAnswer(pred, confidence, ctx);
    }
    return descriptor_->answers.count_where(*snapshot_, pred, confidence,
                                            ctx);
  }
  Estimate CountWhereRangeAnswer(const ValueRange& range, double confidence,
                                 const QueryContext& ctx) const override {
    if (AnswersFromView(QueryKind::kCountWhere)) {
      return view_->CountWhereRangeAnswer(range, confidence, ctx);
    }
    return descriptor_->answers.count_where(*snapshot_, range.AsPredicate(),
                                            confidence, ctx);
  }
  Estimate DistinctAnswer(const QueryContext& ctx) const override {
    if (AnswersFromView(QueryKind::kDistinct)) {
      return view_->DistinctAnswer();
    }
    return descriptor_->answers.distinct(*snapshot_, ctx);
  }
  Estimate QuantileAnswer(double q, double confidence,
                          const QueryContext& ctx) const override {
    if (AnswersFromView(QueryKind::kQuantile)) {
      return view_->QuantileAnswer(q, confidence);
    }
    return descriptor_->answers.quantile(*snapshot_, q, confidence, ctx);
  }

 private:
  std::shared_ptr<const SynopsisDescriptor<S>> descriptor_;
  std::shared_ptr<const S> snapshot_;
  const FrozenView* view_;
};

/// The one concrete SynopsisHandle implementation: binds a synopsis type to
/// its descriptor and instantiates the execution-mode machinery that the
/// type's capabilities permit —
///   unsynchronized: the synopsis inline, answers read it in place;
///   concurrent + shardable: ShardedSynopsis ingest, merge-on-refresh
///     SnapshotCache (kByValue routing when deletes must apply exactly);
///   concurrent + unmergeable: SharedSynopsis ingest, copy-under-lock
///     SnapshotCache.
template <RegistrableSynopsis S>
class TypedSynopsisHandle final : public SynopsisHandle {
 public:
  TypedSynopsisHandle(SynopsisDescriptor<S> descriptor,
                      const HandleOptions& options)
      : descriptor_(std::make_shared<const SynopsisDescriptor<S>>(
            std::move(descriptor))),
        mode_(options.mode),
        seed_(options.seed) {
    caps_.on_delete = descriptor_->on_delete;
    for (int kind = 0; kind < kNumQueryKinds; ++kind) {
      caps_.model[kind].accuracy_class =
          descriptor_->model[kind].accuracy_class;
    }
    caps_.mergeable = Mergeable<S>;
    caps_.reseedable = Reseedable<S>;
    caps_.batch_insertable = BatchInsertable<S>;
    caps_.persistable =
        descriptor_->encode != nullptr && descriptor_->decode != nullptr;
    if (mode_ == ExecutionMode::kUnsynchronized) {
      live_.emplace(descriptor_->factory(ShardSeed(0)));
      return;
    }
    const typename SnapshotCache<EpochState<S>>::Options cache_options{
        .max_stale_ops = options.cache_max_stale_ops,
        .max_stale_interval = options.cache_max_stale_interval,
        .external_refresh = options.external_refresh};
    if constexpr (ShardableSynopsis<S>) {
      caps_.sharded = true;
      // Deletes that must apply exactly need every op on a value to reach
      // one shard (Theorem 5 stays shard-local); insert-only and
      // invalidating synopses take the perfectly-balanced routing.
      const ShardRouting routing =
          caps_.on_delete == DeleteBehavior::kApplies
              ? ShardRouting::kByValue
              : ShardRouting::kRoundRobin;
      sharded_ = std::make_unique<ShardedSynopsis<S>>(
          options.shards,
          [this](std::size_t i) { return descriptor_->factory(ShardSeed(i)); },
          routing);
      cache_ = std::make_unique<SnapshotCache<EpochState<S>>>(
          [this]() -> Result<EpochState<S>> {
            // Dirty-shard delta merge: quiescent shards fold into a
            // retained base so successive refreshes copy+merge only the
            // shards that actually mutated.  The refresher runs under the
            // cache's refresh mutex, which is what makes the mutable
            // delta_state_ safe without extra locking.
            ShardedDeltaStats delta_stats;
            AQUA_ASSIGN_OR_RETURN(
                S merged, sharded_->SnapshotDelta(delta_state_, &delta_stats));
            NoteDeltaStats(delta_stats);
            return FreezeEpoch(std::move(merged));
          },
          cache_options);
    } else {
      shared_ = std::make_unique<SharedSynopsis<S>>(
          descriptor_->factory(ShardSeed(0)));
      cache_ = std::make_unique<SnapshotCache<EpochState<S>>>(
          [this]() -> Result<EpochState<S>> {
            // Unmergeable: the "snapshot" is a copy taken under the shared
            // lock — still O(footprint), still off the per-query path
            // thanks to the epoch cache.  The view is built *outside* the
            // lock, from the copy.
            return FreezeEpoch(
                shared_->WithRead([](const S& s) { return s; }));
          },
          cache_options);
    }
  }

  TypedSynopsisHandle(const TypedSynopsisHandle&) = delete;
  TypedSynopsisHandle& operator=(const TypedSynopsisHandle&) = delete;

  std::string_view Name() const override { return descriptor_->name; }

  const SynopsisCapabilities& Capabilities() const override { return caps_; }

  bool valid() const override {
    return valid_.load(std::memory_order_acquire);
  }

  void InsertBatch(std::span<const Value> values) override {
    if (values.empty() || !valid()) return;
    if (live_.has_value()) {
      if constexpr (BatchInsertable<S>) {
        live_->InsertBatch(values);
      } else {
        for (Value v : values) live_->Insert(v);
      }
    } else if (sharded_ != nullptr) {
      sharded_->InsertBatch(values);
    } else if (shared_ != nullptr) {
      shared_->InsertBatch(values);
    }
  }

  Status Delete(Value value) override {
    switch (caps_.on_delete) {
      case DeleteBehavior::kIgnores:
        return Status::OK();
      case DeleteBehavior::kInvalidates:
        // §4.1: cannot be maintained under deletions.  Unsynchronized
        // handles reclaim the memory immediately; concurrent handles keep
        // the storage intact (an in-flight refresh may still read it) and
        // just stop serving.
        valid_.store(false, std::memory_order_release);
        if (live_.has_value()) live_.reset();
        return Status::OK();
      case DeleteBehavior::kApplies:
        if constexpr (DeletableSynopsis<S>) {
          if (live_.has_value()) return live_->Delete(value);
          if (sharded_ != nullptr) return sharded_->Delete(value);
          if (shared_ != nullptr) return shared_->Delete(value);
        }
        return Status::Internal(std::string(Name()) +
                                ": kApplies without a Delete member");
    }
    return Status::Internal("unreachable");
  }

  void OnIngest(std::int64_t n) override {
    if (cache_ != nullptr) cache_->OnOps(n);
  }

  Words Footprint() const override {
    if (!valid()) return 0;
    if (live_.has_value()) return live_->Footprint();
    if (sharded_ != nullptr) return sharded_->Footprint();
    if (shared_ != nullptr) {
      return shared_->WithRead([](const S& s) { return s.Footprint(); });
    }
    return 0;
  }

  std::shared_ptr<const AnswerSource> Pin() const override {
    std::shared_ptr<const S> snapshot;
    const FrozenView* view = nullptr;
    if (!PinState(snapshot, view)) return nullptr;
    return std::make_shared<TypedAnswerSource<S>>(descriptor_,
                                                  std::move(snapshot), view);
  }

  using SynopsisHandle::PinInto;
  const AnswerSource* PinInto(PinnedAnswerSource& pinned,
                              bool allow_view) const override {
    std::shared_ptr<const S> snapshot;
    const FrozenView* view = nullptr;
    if (!PinState(snapshot, view)) return nullptr;
    // Placement-constructs into the caller's buffer: the epoch stays
    // pinned by the shared_ptr members, but no control block or source
    // object is heap-allocated.  A planner that chose the direct path
    // drops the view pointer, so every kind answers via the descriptor's
    // computation (the view stays alive inside the pinned epoch either
    // way).
    return pinned.Emplace<TypedAnswerSource<S>>(
        descriptor_, std::move(snapshot), allow_view ? view : nullptr);
  }

  double PredictedError(QueryKind kind, const QueryContext& ctx,
                        double confidence) const override {
    const KindCostModel<S>& entry = descriptor_->model[static_cast<int>(kind)];
    if (entry.accuracy_class == kCannotAnswer || entry.error == nullptr ||
        !valid()) {
      return std::numeric_limits<double>::infinity();
    }
    if (live_.has_value()) return entry.error(*live_, ctx, confidence);
    if (cache_ != nullptr) {
      // Peek, never Get: prediction must not force a refresh (the serving
      // path settles caches through the epoch source; an epoch that was
      // never published predicts +inf until the first query refreshes it).
      const std::shared_ptr<const EpochState<S>> state = cache_->Peek();
      if (state != nullptr) return entry.error(state->snapshot, ctx, confidence);
    }
    return std::numeric_limits<double>::infinity();
  }

  LatencyProfile LatencyFor(QueryKind kind) const override {
    const int i = static_cast<int>(kind);
    LatencyProfile profile;
    profile.view_ns = view_ewma_ns_[i].load(std::memory_order_relaxed);
    profile.direct_ns = direct_ewma_ns_[i].load(std::memory_order_relaxed);
    profile.view_observations =
        view_observations_[i].load(std::memory_order_relaxed);
    profile.direct_observations =
        direct_observations_[i].load(std::memory_order_relaxed);
    return profile;
  }

  void RecordLatency(QueryKind kind, bool via_view,
                     std::int64_t ns) const override {
    const int i = static_cast<int>(kind);
    std::atomic<double>& ewma = via_view ? view_ewma_ns_[i]
                                         : direct_ewma_ns_[i];
    std::atomic<std::int64_t>& observations =
        via_view ? view_observations_[i] : direct_observations_[i];
    const double x = static_cast<double>(ns);
    // Racing recorders may lose an update; the EWMA is a profile, not an
    // accounting invariant, so relaxed load/store beats a CAS loop here.
    if (observations.fetch_add(1, std::memory_order_relaxed) == 0) {
      ewma.store(x, std::memory_order_relaxed);
      return;
    }
    const double previous = ewma.load(std::memory_order_relaxed);
    ewma.store(previous + (x - previous) * kLatencyEwmaAlpha,
               std::memory_order_relaxed);
  }

  bool ViewAnswers(QueryKind kind) const override {
    if (cache_ == nullptr) return false;
    const std::shared_ptr<const EpochState<S>> state = cache_->Peek();
    return state != nullptr && state->view.has_value() &&
           state->view->Answers(kind);
  }

  /// A consistent copy of the current state: the live synopsis, the merged
  /// shard snapshot, or a copy under the shared lock (tests, persistence).
  Result<S> StateCopy() const {
    if (!valid()) {
      return Status::FailedPrecondition(std::string(Name()) +
                                        " invalidated by deletions");
    }
    if (live_.has_value()) return S(*live_);
    if constexpr (ShardableSynopsis<S>) {
      if (sharded_ != nullptr) return sharded_->Snapshot();
    }
    if (shared_ != nullptr) {
      return shared_->WithRead([](const S& s) { return s; });
    }
    return Status::Internal("handle has no storage");
  }

  /// The live synopsis in unsynchronized mode; null otherwise (including
  /// after invalidation).
  const S* LiveUnsynchronized() const {
    return live_.has_value() ? std::addressof(*live_) : nullptr;
  }

  Result<std::vector<std::uint8_t>> EncodeState() const override {
    if (descriptor_->encode == nullptr) {
      return Status::Unimplemented(std::string(Name()) +
                                   " has no persist codec");
    }
    AQUA_ASSIGN_OR_RETURN(const S copy, StateCopy());
    return descriptor_->encode(copy);
  }

  Status RestoreState(const std::vector<std::uint8_t>& bytes) override {
    if (descriptor_->decode == nullptr) {
      return Status::Unimplemented(std::string(Name()) +
                                   " has no persist codec");
    }
    std::uint64_t chain = seed_ ^ kRestoreSeedTag;
    AQUA_ASSIGN_OR_RETURN(S restored,
                          descriptor_->decode(bytes, SplitMix64Next(chain)));
    if (mode_ == ExecutionMode::kUnsynchronized) {
      live_.emplace(std::move(restored));
      valid_.store(true, std::memory_order_release);
      return Status::OK();
    }
    // Concurrent mode: recovery runs before serving traffic, so the other
    // shards are empty and assigning the restored state into shard 0
    // reconstitutes the whole synopsis (Snapshot() merges empty shards
    // trivially).  The cache's next refresh — forced by the ingest-ops
    // report below — publishes it.
    if constexpr (std::is_move_assignable_v<S>) {
      if constexpr (ShardableSynopsis<S>) {
        if (sharded_ != nullptr) {
          sharded_->WithShardMutable(
              0, [&restored](S& s) { s = std::move(restored); });
          valid_.store(true, std::memory_order_release);
          OnIngest(std::numeric_limits<std::int64_t>::max() / 2);
          return Status::OK();
        }
      }
      if (shared_ != nullptr) {
        shared_->WithWrite([&restored](S& s) -> Status {
          s = std::move(restored);
          return Status::OK();
        });
        valid_.store(true, std::memory_order_release);
        OnIngest(std::numeric_limits<std::int64_t>::max() / 2);
        return Status::OK();
      }
    }
    return Status::Unimplemented(std::string(Name()) +
                                 ": state is not assignable in this mode");
  }

  Result<std::function<Status()>> PrepareDeltaMerge(
      const std::vector<std::uint8_t>& bytes) override {
    if constexpr (!Mergeable<S>) {
      return Status::Unimplemented(std::string(Name()) + " is not mergeable");
    } else {
      if (descriptor_->decode == nullptr) {
        return Status::Unimplemented(std::string(Name()) +
                                     " has no persist codec");
      }
      // Per-merge seed: decoded deltas draw from streams that never repeat
      // across merge rounds (repeating would correlate successive rounds'
      // subsampling draws), derived deterministically from the handle seed
      // and a merge counter so recovery tests stay reproducible.
      const std::uint64_t n = merge_seq_.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t chain = seed_ ^ kMergeSeedTag ^ ((n + 1) * 0x9e3779b97f4a7c15ULL);
      AQUA_ASSIGN_OR_RETURN(S decoded,
                            descriptor_->decode(bytes, SplitMix64Next(chain)));
      auto delta = std::make_shared<S>(std::move(decoded));
      return std::function<Status()>([this, delta]() -> Status {
        if (!valid()) {
          return Status::FailedPrecondition(std::string(Name()) +
                                            " invalidated by deletions");
        }
        if (live_.has_value()) return live_->MergeFrom(*delta);
        if constexpr (ShardableSynopsis<S>) {
          if (sharded_ != nullptr) {
            return sharded_->WithShardMutable(
                0, [&delta](S& s) { return s.MergeFrom(*delta); });
          }
        }
        if (shared_ != nullptr) {
          return shared_->WithWrite(
              [&delta](S& s) { return s.MergeFrom(*delta); });
        }
        return Status::Internal("handle has no storage");
      });
    }
  }

  std::uint64_t CacheEpoch() const override {
    return cache_ != nullptr ? cache_->epoch() : 0;
  }

  SnapshotCacheStats CacheStats() const override {
    return cache_ != nullptr ? cache_->Stats() : SnapshotCacheStats{};
  }

  bool Cached() const override { return cache_ != nullptr; }

  bool CacheIsStale() const override {
    return valid() && cache_ != nullptr && cache_->IsStale();
  }

  void SettleCache() const override {
    if (valid() && cache_ != nullptr && cache_->IsStale()) {
      // Explicit Refresh (not Get): settles are driven by the epoch
      // source or the pump, never a query thread, so they count as
      // external refreshes — inline_refreshes stays the precise count of
      // Get()-triggered re-merges.  Failures leave the cache stale.
      (void)cache_->Refresh();
    }
  }

  bool HasView() const override {
    if (cache_ == nullptr) return false;
    const std::shared_ptr<const EpochState<S>> state = cache_->Peek();
    return state != nullptr && state->view.has_value();
  }

  std::int64_t ViewBuildNs() const override {
    if (cache_ == nullptr) return 0;
    const std::shared_ptr<const EpochState<S>> state = cache_->Peek();
    return state != nullptr ? state->view_build_ns : 0;
  }

  RefreshProfile GetRefreshProfile() const override {
    RefreshProfile profile;
    profile.full_rebuilds = full_rebuilds_.load(std::memory_order_relaxed);
    profile.incremental_rebuilds =
        incremental_rebuilds_.load(std::memory_order_relaxed);
    profile.last_delta_fraction =
        last_delta_fraction_.load(std::memory_order_relaxed);
    profile.view_full_builds =
        view_full_builds_.load(std::memory_order_relaxed);
    profile.view_patched_builds =
        view_patched_builds_.load(std::memory_order_relaxed);
    profile.last_view_delta_fraction =
        last_view_delta_fraction_.load(std::memory_order_relaxed);
    return profile;
  }

 private:
  static constexpr std::uint64_t kRestoreSeedTag = 0x7e57a7edc0dec0deULL;
  static constexpr std::uint64_t kMergeSeedTag = 0xc1a57e55de17a5edULL;
  /// EWMA smoothing for the latency profiles: 1/8 weighs a new observation
  /// enough to track epoch-scale shifts without letting one outlier
  /// repaint the profile.
  static constexpr double kLatencyEwmaAlpha = 0.125;

  /// Shared pinning logic for Pin()/PinInto(): resolves the state both
  /// source forms wrap.  False when invalidated or no snapshot can be
  /// built.
  bool PinState(std::shared_ptr<const S>& snapshot,
                const FrozenView*& view) const {
    if (!valid()) return false;
    if (live_.has_value()) {
      // Non-owning alias: the unsynchronized driver guarantees the handle
      // outlives the answer computation.  No view — nothing to amortize
      // a freeze over without epochs.
      snapshot = std::shared_ptr<const S>(std::shared_ptr<const S>(),
                                          std::addressof(*live_));
      return true;
    }
    Result<std::shared_ptr<const EpochState<S>>> cached = cache_->Get();
    if (!cached.ok()) return false;
    std::shared_ptr<const EpochState<S>> state =
        std::move(cached).ValueOrDie();
    if (state->view.has_value()) view = std::addressof(*state->view);
    // Aliasing ptr: owns the whole EpochState, points at the snapshot —
    // so the pinned source keeps the view alive too.
    const S* snapshot_ptr = std::addressof(state->snapshot);
    snapshot = std::shared_ptr<const S>(std::move(state), snapshot_ptr);
    return true;
  }

  static std::int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Records one delta-merge outcome into the refresh profile.
  void NoteDeltaStats(const ShardedDeltaStats& stats) const {
    if (stats.full_rebuild) {
      full_rebuilds_.fetch_add(1, std::memory_order_relaxed);
    } else {
      incremental_rebuilds_.fetch_add(1, std::memory_order_relaxed);
    }
    last_delta_fraction_.store(stats.delta_fraction,
                               std::memory_order_relaxed);
  }

  /// Turns a freshly built snapshot into the epoch's published state,
  /// freezing the read-optimized view (and timing the build) when the
  /// descriptor declares a builder.  With a spec_builder, the view is
  /// patched from the previous epoch's orderings (FrozenView's incremental
  /// constructor) instead of fully re-sorted.  Runs only inside the
  /// cache's refresher — the refresh mutex serializes view_patch_scratch_.
  EpochState<S> FreezeEpoch(S&& snapshot) const {
    EpochState<S> state{std::move(snapshot), std::nullopt, 0};
    if (descriptor_->spec_builder != nullptr) {
      const std::int64_t start = NowNs();
      FrozenView::Spec spec = descriptor_->spec_builder(state.snapshot);
      const std::shared_ptr<const EpochState<S>> previous = cache_->Peek();
      if (previous != nullptr && previous->view.has_value()) {
        ViewPatchStats patch_stats;
        state.view.emplace(std::move(spec), *previous->view,
                           view_patch_scratch_, &patch_stats);
        state.view_patched = !patch_stats.full_sort;
        last_view_delta_fraction_.store(patch_stats.delta_fraction,
                                        std::memory_order_relaxed);
      } else {
        state.view.emplace(std::move(spec));
        last_view_delta_fraction_.store(1.0, std::memory_order_relaxed);
      }
      if (state.view_patched) {
        view_patched_builds_.fetch_add(1, std::memory_order_relaxed);
      } else {
        view_full_builds_.fetch_add(1, std::memory_order_relaxed);
      }
      state.view_build_ns = NowNs() - start;
    } else if (descriptor_->view_builder != nullptr) {
      const std::int64_t start = NowNs();
      state.view = descriptor_->view_builder(state.snapshot);
      state.view_build_ns = NowNs() - start;
      view_full_builds_.fetch_add(1, std::memory_order_relaxed);
      last_view_delta_fraction_.store(1.0, std::memory_order_relaxed);
    }
    return state;
  }

  /// Independent per-shard streams (correlated shards would break merge
  /// uniformity); SplitMix64 over seed + shard index.
  std::uint64_t ShardSeed(std::size_t i) const {
    std::uint64_t s = seed_ + 0x9e3779b97f4a7c15ULL * (i + 1);
    return SplitMix64Next(s);
  }

  std::shared_ptr<const SynopsisDescriptor<S>> descriptor_;
  SynopsisCapabilities caps_;
  ExecutionMode mode_;
  std::uint64_t seed_;

  std::optional<S> live_;
  std::unique_ptr<ShardedSynopsis<S>> sharded_;
  std::unique_ptr<SharedSynopsis<S>> shared_;
  std::unique_ptr<SnapshotCache<EpochState<S>>> cache_;

  std::atomic<bool> valid_{true};
  /// Counts PrepareDeltaMerge calls — each decode gets its own seed.
  std::atomic<std::uint64_t> merge_seq_{0};

  /// Refresher-retained state for the incremental refresh path, both
  /// touched only inside the cache's refresher (serialized by its refresh
  /// mutex): the dirty-shard delta base + per-shard versions, and the
  /// previous view's mirror for FrozenView's delta-patch build.
  mutable typename ShardedSynopsis<S>::DeltaState delta_state_;
  mutable FrozenView::PatchScratch view_patch_scratch_;

  /// Incremental-refresh profile (see RefreshProfile).  Mutable + relaxed
  /// atomics: written from the (const) refresher, read from /stats.
  mutable std::atomic<std::int64_t> full_rebuilds_{0};
  mutable std::atomic<std::int64_t> incremental_rebuilds_{0};
  mutable std::atomic<double> last_delta_fraction_{1.0};
  mutable std::atomic<std::int64_t> view_full_builds_{0};
  mutable std::atomic<std::int64_t> view_patched_builds_{0};
  mutable std::atomic<double> last_view_delta_fraction_{1.0};

  /// Measured latency profiles (see LatencyProfile): per kind, per serving
  /// path.  Mutable + relaxed atomics — recorded from const answer paths
  /// on any thread.
  mutable std::array<std::atomic<double>, kNumQueryKinds> view_ewma_ns_{};
  mutable std::array<std::atomic<double>, kNumQueryKinds> direct_ewma_ns_{};
  mutable std::array<std::atomic<std::int64_t>, kNumQueryKinds>
      view_observations_{};
  mutable std::array<std::atomic<std::int64_t>, kNumQueryKinds>
      direct_observations_{};
};

}  // namespace aqua

#endif  // AQUA_REGISTRY_TYPED_HANDLE_H_
