#include "registry/builtin.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "estimate/frequency_estimator.h"
#include "estimate/quantiles.h"
#include "hotlist/concise_hot_list.h"
#include "hotlist/counting_hot_list.h"
#include "hotlist/traditional_hot_list.h"
#include "persist/snapshot.h"
#include "view/view_builders.h"

namespace aqua {

namespace {

/// Worst-case relative error of a uniform m-point sample at `confidence`:
/// z(c) / (2 sqrt(m)) — the Hoeffding-style half-width the paper's §6
/// experiments measure against.  An empty sample predicts nothing.
double UniformSampleError(std::int64_t m, double confidence) {
  if (m <= 0) return std::numeric_limits<double>::infinity();
  return SampleEstimator::NormalQuantile(confidence) /
         (2.0 * std::sqrt(static_cast<double>(m)));
}

}  // namespace

SynopsisDescriptor<ReservoirSample> TraditionalSampleDescriptor(
    Words footprint_bound) {
  SynopsisDescriptor<ReservoirSample> descriptor;
  descriptor.name = std::string(kTraditionalSynopsisName);
  descriptor.on_delete = DeleteBehavior::kInvalidates;
  const auto uniform_error = [](const ReservoirSample& sample,
                                const QueryContext&, double confidence) {
    return UniformSampleError(sample.SampleSize(), confidence);
  };
  descriptor.Declare(QueryKind::kHotList, kAccuracyTraditional,
                     uniform_error);
  descriptor.Declare(QueryKind::kCountWhere, kAccuracyTraditional,
                     uniform_error);
  descriptor.Declare(QueryKind::kQuantile, kAccuracyTraditional,
                     uniform_error);
  descriptor.factory = [footprint_bound](std::uint64_t seed) {
    return ReservoirSample(footprint_bound, seed);
  };
  descriptor.answers.hot_list = [](const ReservoirSample& sample,
                                   const HotListQuery& query,
                                   const QueryContext&) {
    return TraditionalHotList(sample).Report(query);
  };
  descriptor.answers.count_where =
      [](const ReservoirSample& sample, const ValuePredicate& pred,
         double confidence, const QueryContext& ctx) {
        SampleEstimator estimator(sample.Points(), ctx.observed_inserts);
        return estimator.CountWhere(pred, confidence);
      };
  descriptor.answers.quantile = [](const ReservoirSample& sample, double q,
                                   double confidence, const QueryContext&) {
    return QuantileEstimator(sample.Points())
        .QuantileWithBounds(q, confidence);
  };
  descriptor.view_builder = [](const ReservoirSample& sample) {
    return BuildTraditionalView(sample);
  };
  descriptor.spec_builder = [](const ReservoirSample& sample) {
    return BuildTraditionalViewSpec(sample);
  };
  descriptor.encode = [](const ReservoirSample& sample) {
    return EncodeSnapshot(sample);
  };
  descriptor.decode = [](const std::vector<std::uint8_t>& bytes,
                         std::uint64_t seed) {
    return DecodeReservoirSnapshot(bytes, seed);
  };
  return descriptor;
}

SynopsisDescriptor<ConciseSample> ConciseSampleDescriptor(
    Words footprint_bound) {
  SynopsisDescriptor<ConciseSample> descriptor;
  descriptor.name = std::string(kConciseSynopsisName);
  descriptor.on_delete = DeleteBehavior::kInvalidates;
  const auto concise_error = [](const ConciseSample& sample,
                                const QueryContext&, double confidence) {
    return UniformSampleError(sample.SampleSize(), confidence);
  };
  descriptor.Declare(QueryKind::kHotList, kAccuracyConcise, concise_error);
  descriptor.Declare(QueryKind::kFrequency, kAccuracyConcise, concise_error);
  // Preferred uniform sample for predicate counts and quantiles: largest
  // sample-size for the footprint (§1.1), hence the tightest interval.
  descriptor.Declare(QueryKind::kCountWhere, kAccuracyConcise,
                     concise_error);
  descriptor.Declare(QueryKind::kQuantile, kAccuracyConcise, concise_error);
  descriptor.factory = [footprint_bound](std::uint64_t seed) {
    ConciseSampleOptions options;
    options.footprint_bound = footprint_bound;
    options.seed = seed;
    return ConciseSample(options);
  };
  descriptor.answers.hot_list = [](const ConciseSample& sample,
                                   const HotListQuery& query,
                                   const QueryContext&) {
    return ConciseHotList(sample).Report(query);
  };
  descriptor.answers.frequency = [](const ConciseSample& sample, Value value,
                                    const QueryContext&) {
    return FrequencyEstimator::FromConcise(sample, value);
  };
  descriptor.answers.count_where =
      [](const ConciseSample& sample, const ValuePredicate& pred,
         double confidence, const QueryContext& ctx) {
        const std::vector<Value> points = sample.ToPointSample();
        SampleEstimator estimator(points, ctx.observed_inserts);
        return estimator.CountWhere(pred, confidence);
      };
  descriptor.answers.quantile = [](const ConciseSample& sample, double q,
                                   double confidence, const QueryContext&) {
    return QuantileEstimator(sample.ToPointSample())
        .QuantileWithBounds(q, confidence);
  };
  descriptor.view_builder = [](const ConciseSample& sample) {
    return BuildConciseView(sample);
  };
  descriptor.spec_builder = [](const ConciseSample& sample) {
    return BuildConciseViewSpec(sample);
  };
  descriptor.encode = [](const ConciseSample& sample) {
    return EncodeSnapshot(sample);
  };
  descriptor.decode = [](const std::vector<std::uint8_t>& bytes,
                         std::uint64_t seed) {
    return DecodeConciseSnapshot(bytes, seed);
  };
  return descriptor;
}

SynopsisDescriptor<CountingSample> CountingSampleDescriptor(
    Words footprint_bound) {
  SynopsisDescriptor<CountingSample> descriptor;
  descriptor.name = std::string(kCountingSynopsisName);
  // Theorem 5: counting samples apply deletes exactly.
  descriptor.on_delete = DeleteBehavior::kApplies;
  // A counting sample's answers aggregate every counted occurrence, so its
  // effective sample size is the count total, not the footprint (§5.2's
  // "considerably more accurate" in live numbers).
  const auto counting_error = [](const CountingSample& sample,
                                 const QueryContext&, double confidence) {
    return UniformSampleError(sample.CountedOccurrences(), confidence);
  };
  descriptor.Declare(QueryKind::kHotList, kAccuracyCounting, counting_error);
  descriptor.Declare(QueryKind::kFrequency, kAccuracyCounting,
                     counting_error);
  descriptor.factory = [footprint_bound](std::uint64_t seed) {
    CountingSampleOptions options;
    options.footprint_bound = footprint_bound;
    options.seed = seed;
    return CountingSample(options);
  };
  descriptor.answers.hot_list = [](const CountingSample& sample,
                                   const HotListQuery& query,
                                   const QueryContext&) {
    return CountingHotList(sample).Report(query);
  };
  descriptor.answers.frequency = [](const CountingSample& sample,
                                    Value value, const QueryContext&) {
    return FrequencyEstimator::FromCounting(sample, value);
  };
  descriptor.view_builder = [](const CountingSample& sample) {
    return BuildCountingView(sample);
  };
  descriptor.spec_builder = [](const CountingSample& sample) {
    return BuildCountingViewSpec(sample);
  };
  descriptor.encode = [](const CountingSample& sample) {
    return EncodeSnapshot(sample);
  };
  descriptor.decode = [](const std::vector<std::uint8_t>& bytes,
                         std::uint64_t seed) {
    return DecodeCountingSnapshot(bytes, seed);
  };
  return descriptor;
}

SynopsisDescriptor<FlajoletMartin> DistinctSketchDescriptor(int num_maps) {
  SynopsisDescriptor<FlajoletMartin> descriptor;
  descriptor.name = std::string(kDistinctSketchName);
  // Removing a value cannot clear a shared bitmap bit; deletes pass by.
  descriptor.on_delete = DeleteBehavior::kIgnores;
  // [FM85]'s standard error with stochastic averaging: ~0.78 / sqrt(maps),
  // independent of confidence (the sketch reports a point estimate).
  descriptor.Declare(QueryKind::kDistinct, kAccuracyCounting,
                     [](const FlajoletMartin& sketch, const QueryContext&,
                        double) {
                       return 0.78 /
                              std::sqrt(static_cast<double>(
                                  sketch.num_maps() > 0 ? sketch.num_maps()
                                                        : 1));
                     });
  descriptor.factory = [num_maps](std::uint64_t seed) {
    return FlajoletMartin(num_maps, seed);
  };
  descriptor.answers.distinct = [](const FlajoletMartin& sketch,
                                   const QueryContext&) {
    // The arithmetic lives in FmDistinctEstimate (view/view_builders.h) so
    // the frozen view's precomputed estimate is bit-identical.
    return FmDistinctEstimate(sketch);
  };
  descriptor.view_builder = [](const FlajoletMartin& sketch) {
    return BuildDistinctSketchView(sketch);
  };
  descriptor.spec_builder = [](const FlajoletMartin& sketch) {
    return BuildDistinctSketchViewSpec(sketch);
  };
  return descriptor;
}

Status RegisterBuiltinSynopses(SynopsisRegistry& registry,
                               const SynopsisSelection& selection,
                               const BuiltinBounds& bounds) {
  if (selection.maintain_traditional) {
    AQUA_RETURN_NOT_OK(
        registry.Register(TraditionalSampleDescriptor(bounds.sharded)));
  }
  if (selection.maintain_concise) {
    AQUA_RETURN_NOT_OK(
        registry.Register(ConciseSampleDescriptor(bounds.sharded)));
  }
  if (selection.maintain_counting) {
    AQUA_RETURN_NOT_OK(
        registry.Register(CountingSampleDescriptor(bounds.single)));
  }
  if (selection.maintain_distinct_sketch) {
    AQUA_RETURN_NOT_OK(
        registry.Register(DistinctSketchDescriptor(bounds.sketch_maps)));
  }
  return Status::OK();
}

}  // namespace aqua
