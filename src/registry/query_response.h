#ifndef AQUA_REGISTRY_QUERY_RESPONSE_H_
#define AQUA_REGISTRY_QUERY_RESPONSE_H_

#include <cstdint>
#include <string_view>

namespace aqua {

/// A query response: the approximate answer plus how it was computed —
/// "a query response, consisting of an approximate answer and an accuracy
/// measure" (§1).  The user can then decide whether to have an exact answer
/// computed from the base data.
template <typename AnswerT>
struct QueryResponse {
  AnswerT answer{};
  /// Which synopsis produced the answer, e.g. "counting-sample".  A view of
  /// storage that outlives the response — the registered descriptor's name
  /// (or a string literal) — so filling a response never copies the tag.
  std::string_view method = "none";
  /// Response time in nanoseconds (synopsis-only; no base-data access).
  std::int64_t response_ns = 0;
};

}  // namespace aqua

#endif  // AQUA_REGISTRY_QUERY_RESPONSE_H_
