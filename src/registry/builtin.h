#ifndef AQUA_REGISTRY_BUILTIN_H_
#define AQUA_REGISTRY_BUILTIN_H_

#include <string_view>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "registry/registry.h"
#include "sample/reservoir_sample.h"
#include "sketch/flajolet_martin.h"

namespace aqua {

/// Which of the paper's synopses a driver maintains.  This is the one
/// documented default, shared by EngineOptions, ServingEngineOptions and
/// AttributeOptions (which previously each hardcoded diverging defaults):
/// maintain every sampling synopsis plus the distinct sketch; the full
/// histogram stays off because it is the accuracy yardstick, not a
/// practical synopsis.
struct SynopsisSelection {
  bool maintain_traditional = true;
  bool maintain_concise = true;
  bool maintain_counting = true;
  /// Distinct-value sketch ([FM85]) for distinct-count queries.
  bool maintain_distinct_sketch = true;
  /// The exact (disk-resident) baseline; off by default.
  bool maintain_full_histogram = false;
};

/// Canonical registration names (and response `method` tags).
inline constexpr std::string_view kTraditionalSynopsisName =
    "traditional-sample";
inline constexpr std::string_view kConciseSynopsisName = "concise-sample";
inline constexpr std::string_view kCountingSynopsisName = "counting-sample";
inline constexpr std::string_view kDistinctSketchName = "fm-sketch";
inline constexpr std::string_view kFullHistogramName = "full-histogram";

/// §6 accuracy classes (lower answers first when no bound is requested):
/// the full histogram is exact, counting samples beat concise samples
/// ("considerably more accurate", §5.2), which beat traditional samples
/// (§1.1's sample-size argument).  These seed the static half of each
/// descriptor's cost/error model; the live half (error estimators and
/// measured latency profiles) is what the planner scores bounded queries
/// against.
inline constexpr int kAccuracyExact = 0;
inline constexpr int kAccuracyCounting = 10;
inline constexpr int kAccuracyConcise = 20;
inline constexpr int kAccuracyTraditional = 30;

/// The FM sketch word cost with the default 64 stochastic-averaging maps
/// (one bitmap word + one salt word per map); budgeters carve this out
/// before dividing sample shares.
inline constexpr int kDefaultSketchMaps = 64;
inline constexpr Words kDefaultSketchWords = 2 * kDefaultSketchMaps;

/// Descriptors for the paper's synopses; the bound parameters are baked
/// into the returned factory.  (The full-histogram descriptor lives in
/// warehouse/, next to the FullHistogram itself.)
SynopsisDescriptor<ReservoirSample> TraditionalSampleDescriptor(
    Words footprint_bound);
SynopsisDescriptor<ConciseSample> ConciseSampleDescriptor(
    Words footprint_bound);
SynopsisDescriptor<CountingSample> CountingSampleDescriptor(
    Words footprint_bound);
SynopsisDescriptor<FlajoletMartin> DistinctSketchDescriptor(
    int num_maps = kDefaultSketchMaps);

/// Footprint bounds for RegisterBuiltinSynopses.  `sharded` applies per
/// shard to shardable synopses (concise/traditional) in concurrent
/// registries; drivers that deliberately over-provision shards (the
/// serving engine) pass the same value for both, budgeted drivers (the
/// catalog) divide.
struct BuiltinBounds {
  Words single = 1000;
  Words sharded = 1000;
  int sketch_maps = kDefaultSketchMaps;
};

/// Registers the selected built-in synopses in canonical order
/// (traditional, concise, counting, sketch) — the seed chain depends on
/// registration order, so every driver registering the same selection gets
/// the same synopses.  The full histogram is warehouse-level and is
/// registered by the drivers that maintain it.
Status RegisterBuiltinSynopses(SynopsisRegistry& registry,
                               const SynopsisSelection& selection,
                               const BuiltinBounds& bounds);

}  // namespace aqua

#endif  // AQUA_REGISTRY_BUILTIN_H_
