#ifndef AQUA_REGISTRY_SYNOPSIS_HANDLE_H_
#define AQUA_REGISTRY_SYNOPSIS_HANDLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "concurrency/snapshot_cache.h"
#include "registry/answer_source.h"
#include "sample/capabilities.h"

namespace aqua {

/// Incremental-refresh observability for one handle: how the dirty-shard
/// delta merges and the view patch builds have been going.  All zeros /
/// defaults for unsynchronized handles.
struct RefreshProfile {
  /// Snapshot re-merges that could not reuse the retained base (first
  /// refresh, or an in-base shard mutated).
  std::int64_t full_rebuilds = 0;
  /// Snapshot re-merges served from the retained base + dirty deltas.
  std::int64_t incremental_rebuilds = 0;
  /// Dirty-shard fraction of the most recent re-merge (1.0 = everything).
  double last_delta_fraction = 1.0;
  /// View builds that sorted the full entry set vs patched the previous
  /// epoch's orderings.
  std::int64_t view_full_builds = 0;
  std::int64_t view_patched_builds = 0;
  /// Entry-churn fraction the most recent view build absorbed.
  double last_view_delta_fraction = 1.0;
};

/// Type-erased ownership of one synopsis inside a SynopsisRegistry.
///
/// A handle wraps a concrete synopsis type together with its declared
/// capabilities (delete semantics, mergeability, persistence, the per-kind
/// cost/error model) and the machinery its execution mode needs: unsynchronized
/// handles hold the synopsis directly; concurrent handles instantiate
/// ShardedSynopsis (mergeable types) or SharedSynopsis (unmergeable types)
/// for ingest plus a SnapshotCache for the query path.  The registry only
/// ever talks to this interface — adding a synopsis type is a registration,
/// not an engine fork.
class SynopsisHandle {
 public:
  virtual ~SynopsisHandle() = default;

  /// Stable identifier; doubles as the response `method` tag.
  virtual std::string_view Name() const = 0;

  virtual const SynopsisCapabilities& Capabilities() const = 0;

  /// False once invalidated (DeleteBehavior::kInvalidates + a delete
  /// arrived, §4.1); an invalid handle ignores ingest and answers nothing.
  virtual bool valid() const = 0;

  /// Ingests a batch of inserted values (thread-safe in concurrent mode).
  virtual void InsertBatch(std::span<const Value> values) = 0;

  /// Applies one delete per the declared DeleteBehavior: applies it
  /// exactly, invalidates the handle, or ignores it.
  virtual Status Delete(Value value) = 0;

  /// Ingest-progress report for the handle's snapshot cache (no-op for
  /// unsynchronized handles).
  virtual void OnIngest(std::int64_t n) = 0;

  /// Current words of memory; 0 once invalidated.
  virtual Words Footprint() const = 0;

  /// Pins an answer source over the handle's current state — the live
  /// synopsis (unsynchronized mode) or the epoch-cached snapshot
  /// (concurrent mode).  Null when invalidated or no snapshot can be
  /// built.
  virtual std::shared_ptr<const AnswerSource> Pin() const = 0;

  /// Allocation-free form of Pin(): constructs the source into the
  /// caller's inline buffer and returns it (null exactly when Pin() would
  /// be).  The returned pointer is invalidated by the next Emplace() on
  /// `pinned` — the serving path keeps one PinnedAnswerSource as scratch
  /// per query.  `allow_view` false forces the direct computation path
  /// (the planner's view-vs-direct choice); answers are bit-identical on
  /// both paths, only the cost differs.
  virtual const AnswerSource* PinInto(PinnedAnswerSource& pinned,
                                      bool allow_view) const = 0;
  const AnswerSource* PinInto(PinnedAnswerSource& pinned) const {
    return PinInto(pinned, /*allow_view=*/true);
  }

  /// The live half of the cost/error model (the static half — accuracy
  /// classes — is in Capabilities().model): the error the descriptor's
  /// estimator predicts for answering `kind` from the current state at
  /// `confidence`.  +infinity when the kind is not answered, the handle is
  /// invalidated, or no state has been published yet.  Never forces a
  /// snapshot refresh.
  virtual double PredictedError(QueryKind kind, const QueryContext& ctx,
                                double confidence) const = 0;

  /// Measured per-path answer latency for `kind` (EWMA of observed ns).
  virtual LatencyProfile LatencyFor(QueryKind kind) const = 0;

  /// Feeds one observed answer latency into the profile.  Const — called
  /// from the (const) answer paths; thread-safe.
  virtual void RecordLatency(QueryKind kind, bool via_view,
                             std::int64_t ns) const = 0;

  /// True when the current epoch's frozen view answers `kind` (the
  /// planner's view-path option exists).  False for unsynchronized
  /// handles and unpublished epochs.
  virtual bool ViewAnswers(QueryKind kind) const = 0;

  /// Serialized state via the descriptor's persist codec; Unimplemented
  /// when the synopsis declared none.
  virtual Result<std::vector<std::uint8_t>> EncodeState() const = 0;

  /// Replaces the handle's state from serialized bytes.  Unsynchronized
  /// handles swap the live synopsis; concurrent handles assign the restored
  /// state into their storage (shard 0 for sharded handles — recovery runs
  /// before serving traffic, when the other shards are empty).
  virtual Status RestoreState(const std::vector<std::uint8_t>& bytes) = 0;

  /// Stages a serialized delta (another node's EncodeState bytes) for
  /// merging into this handle's state: the bytes are decoded and validated
  /// NOW; the returned closure applies the MergeFrom when called.  The
  /// two-phase split lets the aggregator validate every blob in a frame
  /// before mutating anything — a half-applied frame could never be
  /// retried safely under (node, seq) dedup.  Unimplemented when the
  /// synopsis is unmergeable or has no persist codec.
  virtual Result<std::function<Status()>> PrepareDeltaMerge(
      const std::vector<std::uint8_t>& bytes) = 0;

  /// Epoch-cache observability (zeros for unsynchronized handles).
  virtual std::uint64_t CacheEpoch() const = 0;
  virtual SnapshotCacheStats CacheStats() const = 0;
  virtual bool Cached() const = 0;
  /// True when the snapshot cache is past a staleness bound — the next
  /// query would refresh it and advance the epoch.  Always false for
  /// unsynchronized handles (no epoch to advance).
  virtual bool CacheIsStale() const = 0;
  /// Refreshes the snapshot cache now if it is past a staleness bound, so
  /// the serving epoch can settle without waiting for a query to touch
  /// this particular synopsis.  No-op for uncached handles; refresh
  /// failures are ignored (the cache simply stays stale).
  virtual void SettleCache() const = 0;

  /// Frozen-view observability: whether the current epoch carries a
  /// read-optimized view, and what it cost to build (ns).  Zeros for
  /// unsynchronized handles and synopses without a view builder.
  virtual bool HasView() const = 0;
  virtual std::int64_t ViewBuildNs() const = 0;

  /// Incremental-refresh observability (see RefreshProfile).
  virtual RefreshProfile GetRefreshProfile() const = 0;
};

}  // namespace aqua

#endif  // AQUA_REGISTRY_SYNOPSIS_HANDLE_H_
