#ifndef AQUA_REGISTRY_REGISTRY_H_
#define AQUA_REGISTRY_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "registry/query_response.h"
#include "registry/typed_handle.h"
#include "workload/stream.h"

namespace aqua {

/// Per-handle observability snapshot (see SynopsisRegistry::GetStats).
struct SynopsisHandleStats {
  std::string name;
  bool valid = true;
  bool cached = false;
  bool sharded = false;
  Words footprint = 0;
  std::uint64_t epoch = 0;
  SnapshotCacheStats cache;
  /// Whether the current epoch carries a frozen view, and the wall time
  /// its build added to the refresh.
  bool has_view = false;
  std::int64_t view_build_ns = 0;
  /// Incremental-refresh observability: delta merges, view patches, and
  /// the most recent delta fractions (see RefreshProfile).
  RefreshProfile refresh;
};

/// Per-kind planner observability: what an unbounded query of this kind
/// would currently choose, the chosen handle's measured latency profile,
/// and the error bound the planner last reported for the kind (-1 until a
/// planned query ran).
struct PlannerKindStats {
  /// Static kind name ("hotlist", "frequency", ...).
  std::string_view kind;
  /// Chosen synopsis name; "none" when nothing valid answers the kind.
  std::string_view synopsis = "none";
  bool available = false;
  /// EWMA answer latency of the chosen synopsis on the path an unbounded
  /// query would take (view when the epoch carries one); 0 until observed.
  double latency_ewma_ns = 0.0;
  double last_achieved_error = -1.0;
};

struct RegistryStats {
  std::int64_t inserts = 0;
  std::int64_t deletes = 0;
  std::vector<SynopsisHandleStats> synopses;
  std::array<PlannerKindStats, kNumQueryKinds> planner = {};
};

/// Static kind names, indexed by QueryKind (the /query and /stats wire
/// vocabulary).
std::string_view QueryKindName(QueryKind kind);

/// The registry-backed core both engines drive: owns any number of
/// type-erased synopsis handles, routes the load stream to all of them, and
/// answers each query kind from the most accurate valid synopsis (§6's
/// accuracy ordering, expressed as per-kind cost/error models declared at
/// registration — never hand-maintained per engine again).  Bounded
/// queries go through the planner (plan/planner.h), which scores the same
/// per-kind candidate lists against each handle's predicted error and
/// measured latency instead of taking the first entry.
///
/// Thread-safety follows the execution mode: kConcurrent registries accept
/// ingest and queries from any thread (handles shard or lock internally;
/// counters are atomic); kUnsynchronized registries are single-threaded
/// like ApproximateAnswerEngine.  Register() itself is never thread-safe —
/// register every synopsis before ingest/queries begin, which is what both
/// engine constructors do.
class SynopsisRegistry {
 public:
  struct Options {
    ExecutionMode mode = ExecutionMode::kUnsynchronized;
    /// Ingest shards per shardable synopsis (concurrent mode).
    std::size_t shards = 1;
    /// Base of the per-handle seed chain (deterministic per registration
    /// order).
    std::uint64_t seed = 0x19980531ULL;
    /// Snapshot-cache staleness bounds (concurrent mode).
    std::int64_t cache_max_stale_ops = 8192;
    std::chrono::nanoseconds cache_max_stale_interval =
        std::chrono::milliseconds(100);
    /// Hand refresh ownership to an external epoch pump (--refresh-mode
    /// pump): query-thread Get() never re-merges a warmed cache; the pump
    /// calls SettleCaches() on its own thread instead.
    bool external_refresh = false;
  };

  explicit SynopsisRegistry(const Options& options) : options_(options) {
    seed_chain_ = options.seed;
  }

  SynopsisRegistry(const SynopsisRegistry&) = delete;
  SynopsisRegistry& operator=(const SynopsisRegistry&) = delete;

  /// Registers a synopsis type under its descriptor.  Validates that the
  /// declared capabilities are coherent (kApplies needs a Delete member;
  /// every declared rank needs an answer function and vice versa) and
  /// instantiates the handle for this registry's execution mode.
  template <RegistrableSynopsis S>
  Status Register(SynopsisDescriptor<S> descriptor) {
    if (descriptor.name.empty()) {
      return Status::InvalidArgument("synopsis name must be non-empty");
    }
    if (handle(descriptor.name) != nullptr) {
      return Status::AlreadyExists("synopsis already registered: " +
                                   descriptor.name);
    }
    if (descriptor.factory == nullptr) {
      return Status::InvalidArgument(descriptor.name +
                                     ": descriptor needs a factory");
    }
    if (descriptor.on_delete == DeleteBehavior::kApplies &&
        !DeletableSynopsis<S>) {
      return Status::InvalidArgument(
          descriptor.name +
          ": DeleteBehavior::kApplies requires a Delete(Value) member");
    }
    std::array<int, kNumQueryKinds> accuracy_class;
    std::array<bool, kNumQueryKinds> has_error;
    for (int kind = 0; kind < kNumQueryKinds; ++kind) {
      accuracy_class[kind] = descriptor.model[kind].accuracy_class;
      has_error[kind] = descriptor.model[kind].error != nullptr;
    }
    AQUA_RETURN_NOT_OK(ValidateModel(
        descriptor.name, accuracy_class, has_error,
        {descriptor.answers.hot_list != nullptr,
         descriptor.answers.frequency != nullptr,
         descriptor.answers.count_where != nullptr,
         descriptor.answers.distinct != nullptr,
         descriptor.answers.quantile != nullptr}));
    HandleOptions handle_options;
    handle_options.mode = options_.mode;
    handle_options.shards = options_.shards;
    handle_options.seed = SplitMix64Next(seed_chain_);
    handle_options.cache_max_stale_ops = options_.cache_max_stale_ops;
    handle_options.cache_max_stale_interval =
        options_.cache_max_stale_interval;
    handle_options.external_refresh = options_.external_refresh;
    auto typed = std::make_unique<TypedSynopsisHandle<S>>(
        std::move(descriptor), handle_options);
    IndexHandle(typed.get());
    handles_.push_back(std::move(typed));
    return Status::OK();
  }

  /// Observes one load-stream operation (insert or delete).
  Status Observe(const StreamOp& op);

  /// Observes a whole slice of the load stream.  Maximal runs of
  /// consecutive inserts are routed through the handles' batched fast
  /// paths; deletes are applied individually with the same semantics as
  /// Observe().  Statistically identical to observing op-by-op.
  Status ObserveBatch(std::span<const StreamOp> ops);

  /// Ingests a batch of inserted values into every valid handle.
  void InsertBatch(std::span<const Value> values);

  /// Routes one delete to every handle per its DeleteBehavior; returns the
  /// first error (invalidations and exact applications still happen for
  /// the other handles).
  Status Delete(Value value);

  /// Queries: one answer path for both engines.  Handles that answer the
  /// kind are tried in ascending accuracy-class order; the first valid
  /// handle that can pin a snapshot answers.  Method is "none" when
  /// nothing can.
  QueryResponse<HotList> HotListAnswer(const HotListQuery& query) const;
  /// Out-param form: fills `response->answer` in place (cleared first), so
  /// a serving thread reusing one QueryResponse<HotList> as scratch
  /// answers hot-list queries with zero allocations once the vector's
  /// capacity is warm.
  void HotListAnswerInto(const HotListQuery& query,
                         QueryResponse<HotList>* response) const;
  QueryResponse<Estimate> FrequencyAnswer(Value value) const;
  QueryResponse<Estimate> CountWhereAnswer(const ValuePredicate& pred,
                                           double confidence = 0.95) const;
  /// Structured-range COUNT(*) WHERE low <= v <= high.  Same estimate as
  /// the predicate form, but sources with a frozen view count the range in
  /// O(log m) instead of scanning.
  QueryResponse<Estimate> CountWhereAnswer(const ValueRange& range,
                                           double confidence = 0.95) const;
  QueryResponse<Estimate> DistinctValuesAnswer() const;
  /// Estimated q-quantile (0 <= q <= 1) of the relation's values, from the
  /// best-ranked uniform sample.
  QueryResponse<Estimate> QuantileAnswer(double q,
                                         double confidence = 0.95) const;

  /// True when some valid handle applies deletes exactly (drivers that
  /// refuse deletes otherwise, like ServingEngine, check this).
  bool HasDeletable() const;

  /// Stages a shipped delta for merging into the named handle (see
  /// SynopsisHandle::PrepareDeltaMerge — decode/validate now, apply via
  /// the returned closure).  NotFound for unknown names.
  Result<std::function<Status()>> PrepareDeltaMerge(
      std::string_view name, const std::vector<std::uint8_t>& bytes);

  /// Folds `n` externally-observed inserts into the insert counter — ops
  /// summarized by merged deltas or restored checkpoints that never passed
  /// through InsertBatch here.  Without this, count_where scaling on an
  /// aggregator (which observes no raw stream) would treat the relation as
  /// empty.
  void NoteExternalInserts(std::int64_t n) {
    inserts_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Closes one cluster merge round: bumps the merge-round epoch (a term
  /// of ServingEpoch, so HTTP response caches keyed on it invalidate
  /// immediately) and reports enough ingest progress to every handle that
  /// the next settle refreshes its snapshot cache — one logical epoch per
  /// merge round.
  void CompleteMergeRound();

  std::uint64_t merge_rounds() const {
    return merge_rounds_.load(std::memory_order_relaxed);
  }

  /// Monotonic serving epoch: the sum of every handle's snapshot-cache
  /// epoch plus the count of invalidated handles.  Any event that can
  /// change a served answer — an epoch swap publishing a fresh snapshot,
  /// or a delete invalidating a handle — strictly increases it, and
  /// per-handle epochs never decrease, so two equal reads bracketing a
  /// computation prove every snapshot it pinned belonged to one epoch.
  /// This is what the HTTP response cache keys on.
  std::uint64_t ServingEpoch() const;

  /// True when any valid handle's snapshot cache is past a staleness
  /// bound: the next query would refresh it, so the serving epoch is about
  /// to advance and cached responses must not be served ahead of it.
  bool AnyCacheStale() const;

  /// Refreshes every stale snapshot cache now (queries only refresh the
  /// synopsis they touch, so without this the epoch would stay unsettled
  /// until every synopsis happened to be queried).  Thread-safe; the cost
  /// is bounded by the staleness interval per handle.
  void SettleCaches() const;

  /// Total words across all valid handles.
  Words TotalFootprint() const;

  std::int64_t observed_inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }
  std::int64_t observed_deletes() const {
    return deletes_.load(std::memory_order_relaxed);
  }

  /// The handles answering `kind`, ascending accuracy class (ties in
  /// registration order) — the candidate list both the unbounded answer
  /// path and the planner walk.  Pointers stay valid for the registry's
  /// lifetime (registration precedes serving).
  std::span<const SynopsisHandle* const> HandlesFor(QueryKind kind) const {
    const auto& list = by_kind_[static_cast<int>(kind)];
    return std::span<const SynopsisHandle* const>(list.data(), list.size());
  }

  /// Records / reads the error bound the planner last reported for a kind
  /// (-1 until a planned query of the kind ran).  Const: observability
  /// from the const answer path, relaxed atomics.
  void NoteAchievedError(QueryKind kind, double error) const {
    last_achieved_error_[static_cast<int>(kind)].store(
        error, std::memory_order_relaxed);
  }
  double LastAchievedError(QueryKind kind) const {
    return last_achieved_error_[static_cast<int>(kind)].load(
        std::memory_order_relaxed);
  }

  /// The handle registered under `name`; null when unknown.
  const SynopsisHandle* handle(std::string_view name) const;

  /// Mutable handle access for restore-before-serving flows (persistence).
  SynopsisHandle* mutable_handle(std::string_view name);

  std::size_t size() const { return handles_.size(); }

  /// Indexed handle access for persistence sweeps (checkpoint/export walk
  /// every handle; registration order is stable).
  SynopsisHandle* handle_at(std::size_t i) { return handles_[i].get(); }
  const SynopsisHandle* handle_at(std::size_t i) const {
    return handles_[i].get();
  }

  const Options& options() const { return options_; }

  RegistryStats GetStats() const;

  /// Out-param form of GetStats(): resizes `out->synopses` in place and
  /// assigns into the existing elements, so a stats endpoint reusing one
  /// RegistryStats as scratch reports without allocating (the per-entry
  /// name strings keep their capacity — every registered name is stable).
  void GetStatsInto(RegistryStats* out) const;

  /// Typed read access to the live synopsis of an unsynchronized handle
  /// (the engine's direct accessors); null when unknown, invalidated, the
  /// wrong type, or a concurrent handle.
  template <RegistrableSynopsis S>
  const S* LiveUnsynchronized(std::string_view name) const {
    const auto* typed = TypedHandle<S>(name);
    return typed != nullptr ? typed->LiveUnsynchronized() : nullptr;
  }

  /// Typed consistent copy of a handle's current state, in any mode
  /// (tests, persistence).
  template <RegistrableSynopsis S>
  Result<S> StateCopy(std::string_view name) const {
    const auto* typed = TypedHandle<S>(name);
    if (typed == nullptr) {
      return Status::NotFound("no synopsis of that name and type: " +
                              std::string(name));
    }
    return typed->StateCopy();
  }

 private:
  Status ValidateModel(const std::string& name,
                       const std::array<int, kNumQueryKinds>& accuracy_class,
                       const std::array<bool, kNumQueryKinds>& has_error,
                       const std::array<bool, kNumQueryKinds>& has_answerer);

  /// Inserts the handle into each per-kind list it answers, keeping the
  /// lists sorted by ascending accuracy class (ties: registration order).
  void IndexHandle(SynopsisHandle* handle);

  template <RegistrableSynopsis S>
  const TypedSynopsisHandle<S>* TypedHandle(std::string_view name) const {
    return dynamic_cast<const TypedSynopsisHandle<S>*>(handle(name));
  }

  /// The single method-selection path: tries the kind's handles in rank
  /// order and computes the answer from the first pinnable one.
  template <typename AnswerT, typename ComputeFn>
  QueryResponse<AnswerT> AnswerFromBest(QueryKind kind,
                                        ComputeFn&& compute) const;

  Options options_;
  std::uint64_t seed_chain_ = 0;
  std::vector<std::unique_ptr<SynopsisHandle>> handles_;
  /// Per query kind, the handles that answer it, ascending rank.
  std::array<std::vector<SynopsisHandle*>, kNumQueryKinds> by_kind_;
  std::atomic<std::int64_t> inserts_{0};
  std::atomic<std::int64_t> deletes_{0};
  std::atomic<std::uint64_t> merge_rounds_{0};
  /// Per kind, the planner's last reported error bound (-1: none yet).
  mutable std::array<std::atomic<double>, kNumQueryKinds>
      last_achieved_error_ = {-1.0, -1.0, -1.0, -1.0, -1.0};
};

template <typename AnswerT, typename ComputeFn>
QueryResponse<AnswerT> SynopsisRegistry::AnswerFromBest(
    QueryKind kind, ComputeFn&& compute) const {
  QueryResponse<AnswerT> response;
  response.method = "none";
  const QueryContext ctx{observed_inserts()};
  // Stack-pinned source: the epoch stays alive through the shared_ptrs
  // inside the source object, but pinning itself never allocates.  The
  // method tag views the descriptor's name, which the handle (and thus the
  // registry) keeps alive for the response's consumers.
  PinnedAnswerSource pinned;
  for (const SynopsisHandle* candidate :
       by_kind_[static_cast<int>(kind)]) {
    const AnswerSource* source = candidate->PinInto(pinned);
    if (source == nullptr) continue;  // invalidated or snapshot unavailable
    const std::int64_t start =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    response.answer = compute(*source, ctx);
    response.method = source->Method();
    // Feed the measured latency profile the planner scores against —
    // every answered query is an observation, bounded or not.
    const std::int64_t end =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    candidate->RecordLatency(kind, source->AnswersFromView(kind),
                             end - start);
    break;
  }
  return response;
}

}  // namespace aqua

#endif  // AQUA_REGISTRY_REGISTRY_H_
