#ifndef AQUA_VIEW_VIEW_BUILDERS_H_
#define AQUA_VIEW_VIEW_BUILDERS_H_

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "estimate/aggregates.h"
#include "sample/reservoir_sample.h"
#include "sketch/flajolet_martin.h"
#include "view/frozen_view.h"

namespace aqua {

/// Freeze-time view constructors, one per built-in synopsis.  Each runs
/// once per epoch inside the snapshot refresh (O(m log m) for the sorts)
/// and captures everything the answer paths need, so queries against the
/// epoch never touch the synopsis again.  Coverage mirrors each synopsis's
/// declared query kinds:
///   concise      hot list, frequency, count_where, quantile
///   counting     hot list, frequency (not a uniform sample — no
///                count_where/quantile)
///   traditional  hot list, count_where, quantile
///   FM sketch    distinct only (the estimate itself is precomputed)
FrozenView BuildConciseView(const ConciseSample& sample);
FrozenView BuildCountingView(const CountingSample& sample);
FrozenView BuildTraditionalView(const ReservoirSample& sample);
FrozenView BuildDistinctSketchView(const FlajoletMartin& sketch);

/// [FM85] distinct-count estimate with the ±2σ multiplicative band
/// (σ ≈ 0.78/sqrt(#maps) in log2 scale).  The single source of truth for
/// the arithmetic: the registry's direct answer path and
/// BuildDistinctSketchView both call it, which is what makes view answers
/// bit-identical to direct answers.
Estimate FmDistinctEstimate(const FlajoletMartin& sketch);

}  // namespace aqua

#endif  // AQUA_VIEW_VIEW_BUILDERS_H_
