#ifndef AQUA_VIEW_VIEW_BUILDERS_H_
#define AQUA_VIEW_VIEW_BUILDERS_H_

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "estimate/aggregates.h"
#include "sample/reservoir_sample.h"
#include "sketch/flajolet_martin.h"
#include "view/frozen_view.h"

namespace aqua {

/// Freeze-time view constructors, one per built-in synopsis.  Each runs
/// once per epoch inside the snapshot refresh (O(m log m) for the sorts)
/// and captures everything the answer paths need, so queries against the
/// epoch never touch the synopsis again.  Coverage mirrors each synopsis's
/// declared query kinds:
///   concise      hot list, frequency, count_where, quantile
///   counting     hot list, frequency (not a uniform sample — no
///                count_where/quantile)
///   traditional  hot list, count_where, quantile
///   FM sketch    distinct only (the estimate itself is precomputed)
FrozenView BuildConciseView(const ConciseSample& sample);
FrozenView BuildCountingView(const CountingSample& sample);
FrozenView BuildTraditionalView(const ReservoirSample& sample);
FrozenView BuildDistinctSketchView(const FlajoletMartin& sketch);

/// Spec-producing halves of the builders above: everything up to (but not
/// including) the sorts.  The incremental refresh path needs the raw Spec
/// so it can hand the entries to FrozenView's delta-patch constructor
/// together with the previous epoch's view; the Build*View wrappers are
/// Spec + full construction.
FrozenView::Spec BuildConciseViewSpec(const ConciseSample& sample);
FrozenView::Spec BuildCountingViewSpec(const CountingSample& sample);
FrozenView::Spec BuildTraditionalViewSpec(const ReservoirSample& sample);
FrozenView::Spec BuildDistinctSketchViewSpec(const FlajoletMartin& sketch);

/// [FM85] distinct-count estimate with the ±2σ multiplicative band
/// (σ ≈ 0.78/sqrt(#maps) in log2 scale).  The single source of truth for
/// the arithmetic: the registry's direct answer path and
/// BuildDistinctSketchView both call it, which is what makes view answers
/// bit-identical to direct answers.
Estimate FmDistinctEstimate(const FlajoletMartin& sketch);

}  // namespace aqua

#endif  // AQUA_VIEW_VIEW_BUILDERS_H_
