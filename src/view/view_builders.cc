#include "view/view_builders.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "estimate/frequency_estimator.h"
#include "hotlist/counting_hot_list.h"

namespace aqua {

FrozenView::Spec BuildConciseViewSpec(const ConciseSample& sample) {
  FrozenView::Spec spec;
  spec.entries = sample.Entries();
  spec.sample_size = sample.SampleSize();
  spec.observed_inserts = sample.ObservedInserts();
  // ConciseHotList: scale = n / sample-size, floor = the query's β.
  const auto n = static_cast<double>(sample.ObservedInserts());
  const auto m = static_cast<double>(sample.SampleSize());
  FrozenView::HotListParams hot;
  hot.scale = m > 0 ? n / m : 0.0;
  hot.offset = 0.0;
  hot.floor_is_beta = true;
  spec.hot_list = hot;
  spec.frequency = [sample_size = sample.SampleSize(),
                    observed = sample.ObservedInserts()](Count count,
                                                         double confidence) {
    return FrequencyEstimator::FromConciseCounts(count, sample_size, observed,
                                                 confidence);
  };
  spec.count_where = true;
  spec.quantile = true;
  return spec;
}

FrozenView::Spec BuildCountingViewSpec(const CountingSample& sample) {
  FrozenView::Spec spec;
  spec.entries = sample.Entries();
  // Not a uniform sample: Σ counts is the counted-occurrences total, and
  // count_where/quantile stay off, so no expanded-sample consistency is
  // implied.
  std::int64_t total = 0;
  for (const ValueCount& e : spec.entries) total += e.count;
  spec.sample_size = total;
  spec.observed_inserts = sample.ObservedInserts();
  // CountingHotList: all pairs with counts at least max(c_k, τ - ĉ),
  // augmented by ĉ (the §5.2 compensation); β is ignored.
  const double tau = sample.Threshold();
  const double c_hat = CountingHotList::Compensation(tau);
  FrozenView::HotListParams hot;
  hot.scale = 1.0;
  hot.offset = c_hat;
  hot.floor_is_beta = false;
  hot.fixed_floor = std::max(1.0, tau - c_hat);
  spec.hot_list = hot;
  spec.frequency = [tau, counted = sample.CountedOccurrences()](
                       Count count, double confidence) {
    return FrequencyEstimator::FromCountingCounts(count, tau, counted,
                                                  confidence);
  };
  return spec;
}

FrozenView::Spec BuildTraditionalViewSpec(const ReservoirSample& sample) {
  FrozenView::Spec spec;
  // Fold the reservoir's points into <value, count> entries — the same
  // semi-sort TraditionalHotList::Report does per query, now once per
  // epoch.
  std::vector<Value> points = sample.Points();
  std::sort(points.begin(), points.end());
  for (std::size_t i = 0; i < points.size();) {
    std::size_t j = i;
    while (j < points.size() && points[j] == points[i]) ++j;
    spec.entries.push_back(ValueCount{points[i], static_cast<Count>(j - i)});
    i = j;
  }
  spec.sample_size = sample.SampleSize();
  spec.observed_inserts = sample.ObservedInserts();
  const auto n = static_cast<double>(sample.ObservedInserts());
  const auto m = static_cast<double>(sample.SampleSize());
  FrozenView::HotListParams hot;
  hot.scale = m > 0 ? n / m : 0.0;
  hot.offset = 0.0;
  hot.floor_is_beta = true;
  spec.hot_list = hot;
  spec.count_where = true;
  spec.quantile = true;
  return spec;
}

FrozenView::Spec BuildDistinctSketchViewSpec(const FlajoletMartin& sketch) {
  FrozenView::Spec spec;
  spec.distinct = FmDistinctEstimate(sketch);
  return spec;
}

FrozenView BuildConciseView(const ConciseSample& sample) {
  return FrozenView(BuildConciseViewSpec(sample));
}

FrozenView BuildCountingView(const CountingSample& sample) {
  return FrozenView(BuildCountingViewSpec(sample));
}

FrozenView BuildTraditionalView(const ReservoirSample& sample) {
  return FrozenView(BuildTraditionalViewSpec(sample));
}

FrozenView BuildDistinctSketchView(const FlajoletMartin& sketch) {
  return FrozenView(BuildDistinctSketchViewSpec(sketch));
}

Estimate FmDistinctEstimate(const FlajoletMartin& sketch) {
  Estimate estimate;
  const double d = sketch.Estimate();
  estimate.value = d;
  // [FM85]'s asymptotic standard error is ≈ 0.78/sqrt(#maps) in log2
  // scale; expose a pragmatic ±2σ multiplicative band.
  const double sigma_log2 =
      0.78 / std::sqrt(static_cast<double>(sketch.num_maps()));
  estimate.ci_low = d * std::pow(2.0, -2.0 * sigma_log2);
  estimate.ci_high = d * std::pow(2.0, 2.0 * sigma_log2);
  estimate.confidence = 0.95;
  return estimate;
}

}  // namespace aqua
