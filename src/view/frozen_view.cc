#include "view/frozen_view.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/batch_kernels.h"
#include "estimate/quantiles.h"

namespace aqua {

namespace {

bool ValueLess(const ValueCount& a, const ValueCount& b) {
  return a.value < b.value;
}

// The count-descending order with value as the tiebreak — a total order
// over unique values, which is what makes a merged sequence unique and
// hence bit-identical to a full sort.
bool CountDescLess(const ValueCount& a, const ValueCount& b) {
  if (a.count != b.count) return a.count > b.count;
  return a.value < b.value;
}

}  // namespace

FrozenView::FrozenView(Spec spec) {
  by_value_ = std::move(spec.entries);
  std::sort(by_value_.begin(), by_value_.end(), ValueLess);
  by_count_desc_ = by_value_;
  std::sort(by_count_desc_.begin(), by_count_desc_.end(), CountDescLess);
  Finish(std::move(spec));
}

FrozenView::FrozenView(Spec spec, const FrozenView& previous,
                       PatchScratch& scratch, ViewPatchStats* stats) {
  const std::size_t new_n = spec.entries.size();
  // The previous epoch's entries in *snapshot* order, retained by the
  // scratch.  Valid only when this scratch produced `previous`; otherwise
  // (first patch after a full build, restore, …) fall back to the sorted
  // by-value order, which simply makes the positional prefix below empty
  // and routes everything through the hash phase.
  const bool have_prev_order =
      previous.build_id_ != 0 && previous.build_id_ == scratch.last_build_id;
  const std::vector<ValueCount>& old_entries =
      have_prev_order ? scratch.prev_entries : previous.by_value_;
  const std::size_t old_n = old_entries.size();

  scratch.delta.clear();
  scratch.stale_old.clear();

  // Positional fast path.  A snapshot's entry map iterates in a stable
  // order across epochs — a count bump never moves an entry, only
  // inserts and evictions perturb the sequence — so the aligned prefix
  // of the old and new entry sequences covers everything up to the first
  // structural change.  Diffing that prefix is a sequential two-stream
  // compare with no hash work at all; changed values record their old
  // incarnation for the merges' skip list.
  std::size_t i = 0;
  while (i < new_n && i < old_n &&
         spec.entries[i].value == old_entries[i].value) {
    if (spec.entries[i].count != old_entries[i].count) {
      scratch.stale_old.push_back(old_entries[i]);
      scratch.delta.push_back(spec.entries[i]);
    }
    ++i;
  }

  // Hash phase for the divergent suffixes: mirror the remaining old
  // entries (gen 0), probe the remaining new ones (marking visits), then
  // sweep the unvisited — those are the removals.  Cost is proportional
  // to the divergence, not to m.  Value uniqueness keeps the phases
  // independent: a value in the new suffix cannot also sit in the old
  // prefix (it would be a duplicate in the old sequence), and vice versa.
  std::size_t removed = 0;
  if (i < new_n || i < old_n) {
    scratch.mirror.Clear();
    scratch.mirror.Reserve(old_n - i);
    for (std::size_t j = i; j < old_n; ++j) {
      scratch.mirror.TryInsert(old_entries[j].value,
                               PatchScratch::Slot{old_entries[j].count, 0});
    }
    // Hash once per entry: the ring holds the hashes issued to the
    // prefetcher kPrefetchAhead iterations ago, so the probe reuses them
    // instead of re-mixing the key.
    constexpr std::size_t kPrefetchAhead = 8;
    std::size_t hash_ring[kPrefetchAhead];
    const std::size_t warm = std::min(i + kPrefetchAhead, new_n);
    for (std::size_t k = i; k < warm; ++k) {
      hash_ring[k % kPrefetchAhead] = IntegerHash{}(spec.entries[k].value);
      scratch.mirror.PrefetchHash(hash_ring[k % kPrefetchAhead]);
    }
    for (; i < new_n; ++i) {
      const std::size_t hash = hash_ring[i % kPrefetchAhead];
      if (i + kPrefetchAhead < new_n) {
        const std::size_t ahead =
            IntegerHash{}(spec.entries[i + kPrefetchAhead].value);
        hash_ring[i % kPrefetchAhead] = ahead;
        scratch.mirror.PrefetchHash(ahead);
      }
      const ValueCount& e = spec.entries[i];
      PatchScratch::Slot* slot = scratch.mirror.FindPrehashed(e.value, hash);
      if (slot == nullptr) {
        scratch.delta.push_back(e);  // added
      } else {
        if (slot->count != e.count) {
          scratch.stale_old.push_back({e.value, slot->count});
          scratch.delta.push_back(e);  // changed
        }
        slot->gen = 1;  // visited
      }
    }
    for (const auto& entry : scratch.mirror) {
      if (entry.value.gen == 0) {
        scratch.stale_old.push_back({entry.key, entry.value.count});
        ++removed;
      }
    }
  }

  const std::size_t d = scratch.delta.size();
  const bool full_sort = d * 2 > new_n || previous.by_value_.empty();
  if (full_sort) {
    // Churn beyond half the entry set: two full sorts beat a merge that
    // touches everything anyway.  Still bit-identical — it *is* the full
    // build.
    scratch.prev_entries = spec.entries;  // keep the snapshot order
    by_value_ = std::move(spec.entries);
    std::sort(by_value_.begin(), by_value_.end(), ValueLess);
    by_count_desc_ = by_value_;
    std::sort(by_count_desc_.begin(), by_count_desc_.end(), CountDescLess);
  } else {
    // Sort only the delta, then linear-merge it into the previous
    // orderings.  The stale-skip list holds the previous incarnation of
    // every changed/removed entry; it is a subset of each previous
    // ordering under that ordering's comparator, so a two-pointer walk
    // drops exactly the old incarnations — no per-entry mirror probe.
    // Each comparator is a total order over unique values, so each merged
    // sequence is the unique sorted sequence of the new entry set.
    // Both merges are event-driven: the only positions where the output
    // deviates from the previous ordering are the O(churn) events (a
    // stale incarnation to skip, a delta entry to insert); everything
    // between consecutive events is a bulk range-copy of the previous
    // ordering, so the merge cost is memcpy-bound, not branch-bound.
    std::sort(scratch.delta.begin(), scratch.delta.end(), ValueLess);
    std::sort(scratch.stale_old.begin(), scratch.stale_old.end(), ValueLess);
    const std::size_t ns = scratch.stale_old.size();
    const std::vector<ValueCount>& prev_v = previous.by_value_;
    by_value_.reserve(new_n);
    std::size_t pi = 0;
    std::size_t di = 0;
    std::size_t si = 0;
    while (di < d || si < ns) {
      Value ev;
      if (si >= ns) {
        ev = scratch.delta[di].value;
      } else if (di >= d) {
        ev = scratch.stale_old[si].value;
      } else {
        ev = std::min(scratch.delta[di].value, scratch.stale_old[si].value);
      }
      const auto run_end = std::lower_bound(
          prev_v.begin() + static_cast<std::ptrdiff_t>(pi), prev_v.end(), ev,
          [](const ValueCount& e, Value v) { return e.value < v; });
      by_value_.insert(by_value_.end(),
                       prev_v.begin() + static_cast<std::ptrdiff_t>(pi),
                       run_end);
      pi = static_cast<std::size_t>(run_end - prev_v.begin());
      // A changed value fires both arms: its stale incarnation is skipped
      // and the delta's new incarnation takes the same position.
      if (si < ns && scratch.stale_old[si].value == ev) {
        AQUA_DCHECK(pi < prev_v.size() && prev_v[pi].value == ev);
        ++pi;
        ++si;
      }
      if (di < d && scratch.delta[di].value == ev) {
        by_value_.push_back(scratch.delta[di++]);
      }
    }
    by_value_.insert(by_value_.end(),
                     prev_v.begin() + static_cast<std::ptrdiff_t>(pi),
                     prev_v.end());
    AQUA_CHECK_EQ(by_value_.size(), new_n);

    std::sort(scratch.delta.begin(), scratch.delta.end(), CountDescLess);
    std::sort(scratch.stale_old.begin(), scratch.stale_old.end(),
              CountDescLess);
    const std::vector<ValueCount>& prev_c = previous.by_count_desc_;
    by_count_desc_.reserve(new_n);
    pi = 0;
    di = 0;
    si = 0;
    while (di < d || si < ns) {
      // Next event under the count-desc order.  A stale and a delta entry
      // can never compare equal (same value implies a changed count), so
      // the order is strict.
      const bool take_stale =
          si < ns && (di >= d || CountDescLess(scratch.stale_old[si],
                                               scratch.delta[di]));
      const ValueCount& ev =
          take_stale ? scratch.stale_old[si] : scratch.delta[di];
      const auto run_end =
          std::lower_bound(prev_c.begin() + static_cast<std::ptrdiff_t>(pi),
                           prev_c.end(), ev, CountDescLess);
      by_count_desc_.insert(by_count_desc_.end(),
                            prev_c.begin() + static_cast<std::ptrdiff_t>(pi),
                            run_end);
      pi = static_cast<std::size_t>(run_end - prev_c.begin());
      if (take_stale) {
        // Stale entries carry exactly their previous (value, count), so
        // the skipped previous entry is the event itself.
        AQUA_DCHECK(pi < prev_c.size() && prev_c[pi].value == ev.value &&
                    prev_c[pi].count == ev.count);
        ++pi;
        ++si;
      } else {
        by_count_desc_.push_back(scratch.delta[di++]);
      }
    }
    by_count_desc_.insert(by_count_desc_.end(),
                          prev_c.begin() + static_cast<std::ptrdiff_t>(pi),
                          prev_c.end());
    AQUA_CHECK_EQ(by_count_desc_.size(), new_n);
  }

  if (!full_sort) {
    // The next patch diffs against this build's snapshot order.
    scratch.prev_entries = std::move(spec.entries);
  }
  build_id_ = scratch.next_build_id++;
  scratch.last_build_id = build_id_;
  if (stats != nullptr) {
    stats->total_entries = new_n;
    stats->delta_entries = d;
    stats->removed_entries = removed;
    stats->full_sort = full_sort;
    stats->delta_fraction =
        static_cast<double>(d + removed) /
        static_cast<double>(new_n > 0 ? new_n : std::size_t{1});
  }
  Finish(std::move(spec));
}

void FrozenView::Finish(Spec&& spec) {
  frequency_ = std::move(spec.frequency);
  sample_size_ = spec.sample_size;
  observed_inserts_ = spec.observed_inserts;
  prefix_.resize(by_value_.size() + 1);
  ExclusivePrefixCounts(by_value_, prefix_.data());
  double f2 = 0.0;
  for (const ValueCount& e : by_value_) {
    const auto c = static_cast<double>(e.count);
    f2 += c * c;
  }
  moments_ = {static_cast<double>(by_value_.size()),
              static_cast<double>(prefix_.back()), f2};

  if (spec.hot_list.has_value()) {
    hot_ = *spec.hot_list;
    answers_[static_cast<int>(QueryKind::kHotList)] = true;
  }
  if (frequency_ != nullptr) {
    answers_[static_cast<int>(QueryKind::kFrequency)] = true;
  }
  if (spec.count_where || spec.quantile) {
    // The direct paths scale by the expanded point-sample size; the view
    // scales by the frozen sample_size.  They must be the same number or
    // the bit-equality contract breaks.
    AQUA_CHECK_EQ(prefix_.back(), sample_size_);
  }
  answers_[static_cast<int>(QueryKind::kCountWhere)] = spec.count_where;
  answers_[static_cast<int>(QueryKind::kQuantile)] = spec.quantile;
  if (spec.distinct.has_value()) {
    distinct_ = *spec.distinct;
    answers_[static_cast<int>(QueryKind::kDistinct)] = true;
  }
}

HotList FrozenView::HotListAnswer(const HotListQuery& query) const {
  HotList out;
  HotListAnswerInto(query, &out);
  return out;
}

void FrozenView::HotListAnswerInto(const HotListQuery& query,
                                   HotList* out) const {
  out->clear();
  // Same cut as internal_hotlist::Report: max(floor, c_k), where c_k is the
  // k-th largest count — here a direct index into the count-descending
  // order (KthLargest clamps k to the entry count, so k > size selects the
  // minimum).
  double cut = hot_.floor_is_beta ? query.beta : hot_.fixed_floor;
  if (query.k > 0 && !by_count_desc_.empty()) {
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(query.k), by_count_desc_.size());
    cut = std::max(cut, static_cast<double>(by_count_desc_[k - 1].count));
  }
  for (const ValueCount& e : by_count_desc_) {
    // Counts only decrease along this order, so the first miss ends the
    // report — this is the O(k) prefix walk.
    if (static_cast<double>(e.count) < cut) break;
    out->push_back(HotListItem{
        e.value, static_cast<double>(e.count) * hot_.scale + hot_.offset,
        e.count});
  }
}

Estimate FrozenView::FrequencyAnswer(Value value, double confidence) const {
  return frequency_(CountOfValue(value), confidence);
}

Estimate FrozenView::CountWhereAnswer(const ValuePredicate& pred,
                                      double confidence,
                                      const QueryContext& ctx) const {
  std::int64_t hits = 0;
  for (const ValueCount& e : by_value_) {
    if (pred(e.value)) hits += e.count;
  }
  return SampleEstimator::CountWhereFromHits(hits, sample_size_,
                                             ctx.observed_inserts,
                                             confidence);
}

Estimate FrozenView::CountWhereRangeAnswer(const ValueRange& range,
                                           double confidence,
                                           const QueryContext& ctx) const {
  std::int64_t hits = 0;
  if (range.low <= range.high) {
    const auto lo = std::lower_bound(
        by_value_.begin(), by_value_.end(), range.low,
        [](const ValueCount& e, Value v) { return e.value < v; });
    const auto hi = std::upper_bound(
        by_value_.begin(), by_value_.end(), range.high,
        [](Value v, const ValueCount& e) { return v < e.value; });
    hits = prefix_[hi - by_value_.begin()] - prefix_[lo - by_value_.begin()];
  }
  return SampleEstimator::CountWhereFromHits(hits, sample_size_,
                                             ctx.observed_inserts,
                                             confidence);
}

Estimate FrozenView::QuantileAnswer(double q, double confidence) const {
  AQUA_CHECK(q >= 0.0 && q <= 1.0);
  return internal_quantile::WithBounds(
      [this](double qq) {
        return PointAt(static_cast<std::int64_t>(internal_quantile::IndexFor(
            qq, static_cast<std::size_t>(sample_size_))));
      },
      sample_size_, q, confidence);
}

Estimate FrozenView::DistinctAnswer() const { return distinct_; }

double FrozenView::MomentF(int k) const {
  AQUA_CHECK(k >= 0 && k <= 2);
  return moments_[static_cast<std::size_t>(k)];
}

Value FrozenView::PointAt(std::int64_t index) const {
  // Entry j holds the expanded points with indices [prefix_[j],
  // prefix_[j+1]); upper_bound lands one past the owning entry.
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), index);
  const auto j = static_cast<std::size_t>(it - prefix_.begin()) - 1;
  return by_value_[j].value;
}

Count FrozenView::CountOfValue(Value value) const {
  const auto it = std::lower_bound(
      by_value_.begin(), by_value_.end(), value,
      [](const ValueCount& e, Value v) { return e.value < v; });
  if (it == by_value_.end() || it->value != value) return 0;
  return it->count;
}

}  // namespace aqua
