#include "view/frozen_view.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "estimate/quantiles.h"

namespace aqua {

FrozenView::FrozenView(Spec spec)
    : frequency_(std::move(spec.frequency)),
      sample_size_(spec.sample_size),
      observed_inserts_(spec.observed_inserts) {
  by_value_ = std::move(spec.entries);
  std::sort(by_value_.begin(), by_value_.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.value < b.value;
            });
  by_count_desc_ = by_value_;
  std::sort(by_count_desc_.begin(), by_count_desc_.end(),
            [](const ValueCount& a, const ValueCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  prefix_.reserve(by_value_.size() + 1);
  prefix_.push_back(0);
  double f2 = 0.0;
  for (const ValueCount& e : by_value_) {
    prefix_.push_back(prefix_.back() + e.count);
    const auto c = static_cast<double>(e.count);
    f2 += c * c;
  }
  moments_ = {static_cast<double>(by_value_.size()),
              static_cast<double>(prefix_.back()), f2};

  if (spec.hot_list.has_value()) {
    hot_ = *spec.hot_list;
    answers_[static_cast<int>(QueryKind::kHotList)] = true;
  }
  if (frequency_ != nullptr) {
    answers_[static_cast<int>(QueryKind::kFrequency)] = true;
  }
  if (spec.count_where || spec.quantile) {
    // The direct paths scale by the expanded point-sample size; the view
    // scales by the frozen sample_size.  They must be the same number or
    // the bit-equality contract breaks.
    AQUA_CHECK_EQ(prefix_.back(), sample_size_);
  }
  answers_[static_cast<int>(QueryKind::kCountWhere)] = spec.count_where;
  answers_[static_cast<int>(QueryKind::kQuantile)] = spec.quantile;
  if (spec.distinct.has_value()) {
    distinct_ = *spec.distinct;
    answers_[static_cast<int>(QueryKind::kDistinct)] = true;
  }
}

HotList FrozenView::HotListAnswer(const HotListQuery& query) const {
  HotList out;
  HotListAnswerInto(query, &out);
  return out;
}

void FrozenView::HotListAnswerInto(const HotListQuery& query,
                                   HotList* out) const {
  out->clear();
  // Same cut as internal_hotlist::Report: max(floor, c_k), where c_k is the
  // k-th largest count — here a direct index into the count-descending
  // order (KthLargest clamps k to the entry count, so k > size selects the
  // minimum).
  double cut = hot_.floor_is_beta ? query.beta : hot_.fixed_floor;
  if (query.k > 0 && !by_count_desc_.empty()) {
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(query.k), by_count_desc_.size());
    cut = std::max(cut, static_cast<double>(by_count_desc_[k - 1].count));
  }
  for (const ValueCount& e : by_count_desc_) {
    // Counts only decrease along this order, so the first miss ends the
    // report — this is the O(k) prefix walk.
    if (static_cast<double>(e.count) < cut) break;
    out->push_back(HotListItem{
        e.value, static_cast<double>(e.count) * hot_.scale + hot_.offset,
        e.count});
  }
}

Estimate FrozenView::FrequencyAnswer(Value value, double confidence) const {
  return frequency_(CountOfValue(value), confidence);
}

Estimate FrozenView::CountWhereAnswer(const ValuePredicate& pred,
                                      double confidence,
                                      const QueryContext& ctx) const {
  std::int64_t hits = 0;
  for (const ValueCount& e : by_value_) {
    if (pred(e.value)) hits += e.count;
  }
  return SampleEstimator::CountWhereFromHits(hits, sample_size_,
                                             ctx.observed_inserts,
                                             confidence);
}

Estimate FrozenView::CountWhereRangeAnswer(const ValueRange& range,
                                           double confidence,
                                           const QueryContext& ctx) const {
  std::int64_t hits = 0;
  if (range.low <= range.high) {
    const auto lo = std::lower_bound(
        by_value_.begin(), by_value_.end(), range.low,
        [](const ValueCount& e, Value v) { return e.value < v; });
    const auto hi = std::upper_bound(
        by_value_.begin(), by_value_.end(), range.high,
        [](Value v, const ValueCount& e) { return v < e.value; });
    hits = prefix_[hi - by_value_.begin()] - prefix_[lo - by_value_.begin()];
  }
  return SampleEstimator::CountWhereFromHits(hits, sample_size_,
                                             ctx.observed_inserts,
                                             confidence);
}

Estimate FrozenView::QuantileAnswer(double q, double confidence) const {
  AQUA_CHECK(q >= 0.0 && q <= 1.0);
  return internal_quantile::WithBounds(
      [this](double qq) {
        return PointAt(static_cast<std::int64_t>(internal_quantile::IndexFor(
            qq, static_cast<std::size_t>(sample_size_))));
      },
      sample_size_, q, confidence);
}

Estimate FrozenView::DistinctAnswer() const { return distinct_; }

double FrozenView::MomentF(int k) const {
  AQUA_CHECK(k >= 0 && k <= 2);
  return moments_[static_cast<std::size_t>(k)];
}

Value FrozenView::PointAt(std::int64_t index) const {
  // Entry j holds the expanded points with indices [prefix_[j],
  // prefix_[j+1]); upper_bound lands one past the owning entry.
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), index);
  const auto j = static_cast<std::size_t>(it - prefix_.begin()) - 1;
  return by_value_[j].value;
}

Count FrozenView::CountOfValue(Value value) const {
  const auto it = std::lower_bound(
      by_value_.begin(), by_value_.end(), value,
      [](const ValueCount& e, Value v) { return e.value < v; });
  if (it == by_value_.end() || it->value != value) return 0;
  return it->count;
}

}  // namespace aqua
