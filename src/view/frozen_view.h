#ifndef AQUA_VIEW_FROZEN_VIEW_H_
#define AQUA_VIEW_FROZEN_VIEW_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "container/flat_hash_map.h"
#include "core/value_count.h"
#include "estimate/aggregates.h"
#include "hotlist/hot_list.h"
#include "sample/capabilities.h"

namespace aqua {

/// How one incremental view build went: how much of the entry set moved
/// and whether the build fell back to full sorts.  Non-template and
/// aggregatable, like the other *Stats structs.
struct ViewPatchStats {
  std::size_t total_entries = 0;
  /// Entries added or whose count changed since the previous epoch (these
  /// are the sorted-and-merged delta).
  std::size_t delta_entries = 0;
  /// Previous-epoch entries absent from the new snapshot.
  std::size_t removed_entries = 0;
  /// True when the delta was too large (or the previous view was empty)
  /// and the build sorted everything from scratch.
  bool full_sort = false;
  /// (delta + removed) / max(1, total) — the churn this patch absorbed.
  double delta_fraction = 1.0;
};

/// A read-optimized answer structure built once per snapshot epoch.
///
/// The paper's §5 observation — entries "sorted by counts … allows for
/// reporting in O(k) time" — holds only if somebody pays the sort.  Since
/// PR 2 made snapshots immutable per epoch, the direct answer paths were
/// paying it per *query*: every hot list re-sorted all entries, every
/// quantile re-sorted the expanded point sample, every predicate count
/// re-scanned the entry map.  A FrozenView moves that work to the epoch
/// refresh: it is built exactly once from a freshly merged snapshot (see
/// TypedSynopsisHandle::FreezeEpoch) and published under the same
/// `shared_ptr` swap, so readers get a consistent {snapshot, view} pair
/// with no extra synchronization, and each query costs
///   hot list   O(k)        (prefix of the count-descending order),
///   frequency  O(log m)    (binary search of the value order),
///   count_where over a [low, high] range
///              O(log m)    (two binary searches + a prefix-sum diff),
///   quantile   O(log m)    (binary search of the count prefix sums),
///   distinct   O(1)        (estimate precomputed at freeze).
///
/// Answers are bit-identical to the direct paths: the view stores the
/// *parameters* of each estimator (scale/offset/floor for hot lists, the
/// frozen frequency scalars) and calls the same shared arithmetic helpers
/// (`internal_hotlist::Report` semantics, `FrequencyEstimator::From*Counts`,
/// `SampleEstimator::CountWhereFromHits`, `internal_quantile::WithBounds`)
/// the per-query paths call — proved by
/// tests/view/view_equivalence_property_test.cc.
class FrozenView {
 public:
  /// Hot-list reporting parameters frozen from the source synopsis
  /// (estimated count = synopsis count * scale + offset; see
  /// internal_hotlist::Report).
  struct HotListParams {
    double scale = 0.0;
    double offset = 0.0;
    /// When true the report floor is the query's β (concise/traditional);
    /// otherwise `fixed_floor` (the counting sample's max(1, τ - ĉ)).
    bool floor_is_beta = true;
    double fixed_floor = 0.0;
  };

  /// Frequency estimate from a synopsis count, with all other estimator
  /// inputs (sample-size, observed inserts, τ, …) frozen into the closure.
  using FrequencyFn = std::function<Estimate(Count synopsis_count,
                                             double confidence)>;

  /// What a view builder (view_builders.h) hands over; FrozenView sorts
  /// and prefix-sums once at construction.
  struct Spec {
    /// The snapshot's <value, count> entries, any order.
    std::vector<ValueCount> entries;
    /// Σ counts — the uniform sample-size m for count_where/quantile;
    /// captured from the synopsis so the view and the direct path scale by
    /// the same m.
    std::int64_t sample_size = 0;
    std::int64_t observed_inserts = 0;
    std::optional<HotListParams> hot_list;
    FrequencyFn frequency;  // null: frequency not served from this view
    bool count_where = false;
    bool quantile = false;
    /// Precomputed at freeze (distinct sketch); nullopt: not served.
    std::optional<Estimate> distinct;
  };

  /// Refresher-retained scratch for the incremental build: the previous
  /// epoch's entries in snapshot order (for the positional diff), a
  /// mirror for the divergent suffix, and the delta vectors — all
  /// retaining capacity across epochs.  One scratch belongs to one build
  /// sequence (the registry handle's refresh path); concurrent use is not
  /// supported — the handle's refresh mutex already serializes it.
  struct PatchScratch {
    struct Slot {
      Count count = 0;
      /// 0 = not yet seen in the new entry set, 1 = visited; unvisited
      /// slots after the classify are the removals.
      std::uint64_t gen = 0;
    };
    /// The last build's spec.entries, unsorted — snapshot iteration order
    /// is stable across epochs, so the next diff is mostly positional.
    std::vector<ValueCount> prev_entries;
    /// Divergent-suffix mirror (value → {count, visited}); rebuilt per
    /// patch, sized by the divergence, not by m.
    FlatHashMap<Value, Slot> mirror;
    std::vector<ValueCount> delta;
    /// Previous incarnations of changed/removed entries — the merges skip
    /// these by sorted two-pointer walk; O(churn) long.
    std::vector<ValueCount> stale_old;
    std::uint64_t last_build_id = 0;
    std::uint64_t next_build_id = 1;
  };

  explicit FrozenView(Spec spec);

  /// Incremental build: diffs `spec.entries` against `previous` (a
  /// positional scan of the stable snapshot order, plus a hash pass over
  /// the divergent suffix), sorts only the delta, and linear-merges it
  /// into the previous epoch's orderings — O(m + d log d) instead of
  /// O(m log m), with the O(m) part a sequential compare, not hashing.  Values are unique keys and both comparators are total
  /// orders, so the merged orderings are bit-identical to the full
  /// rebuild's by construction; prefix sums and moments are recomputed in
  /// value order exactly as the full constructor does.  Falls back to
  /// full sorts (still bit-identical, trivially) when the delta exceeds
  /// half the entry set, and reseeds the mirror when `previous` is not
  /// the view this scratch last produced.
  FrozenView(Spec spec, const FrozenView& previous, PatchScratch& scratch,
             ViewPatchStats* stats = nullptr);

  bool Answers(QueryKind kind) const {
    return answers_[static_cast<int>(kind)];
  }

  /// O(k): the count-descending prefix above max(floor, c_k).
  HotList HotListAnswer(const HotListQuery& query) const;

  /// Out-param form: fills `*out` (cleared first), so a caller reusing a
  /// warmed vector gets the O(k) report with zero allocations.
  void HotListAnswerInto(const HotListQuery& query, HotList* out) const;

  /// O(log m): binary search of the value order, then the frozen
  /// estimator.
  Estimate FrequencyAnswer(Value value, double confidence = 0.95) const;

  /// O(#entries): folded-entry scan for arbitrary predicates (still never
  /// expands the point sample).
  Estimate CountWhereAnswer(const ValuePredicate& pred, double confidence,
                            const QueryContext& ctx) const;

  /// O(log m): prefix-sum difference over the inclusive [low, high] range.
  Estimate CountWhereRangeAnswer(const ValueRange& range, double confidence,
                                 const QueryContext& ctx) const;

  /// O(log m): rank lookup via the count prefix sums.
  Estimate QuantileAnswer(double q, double confidence = 0.95) const;

  /// O(1): the estimate precomputed at freeze time.
  Estimate DistinctAnswer() const;

  /// Frozen scalars (stats, tests).
  std::int64_t entry_count() const {
    return static_cast<std::int64_t>(by_value_.size());
  }
  std::int64_t sample_size() const { return sample_size_; }
  std::int64_t observed_inserts() const { return observed_inserts_; }
  /// Frequency moment F_k of the synopsis counts, k ∈ {0, 1, 2}
  /// (F_0 = #entries, F_1 = Σc, F_2 = Σc² — the self-join proxy).
  double MomentF(int k) const;

  /// Internal orderings, exposed so the incremental-build property tests
  /// can pin bit-identity against a full rebuild.
  std::span<const ValueCount> ByValueOrder() const { return by_value_; }
  std::span<const ValueCount> ByCountDescOrder() const {
    return by_count_desc_;
  }
  std::span<const std::int64_t> PrefixSums() const { return prefix_; }

  /// Nonzero iff this view was produced through a PatchScratch (the
  /// scratch uses it to detect a stale mirror).
  std::uint64_t build_id() const { return build_id_; }

 private:
  /// Shared tail of both constructors: prefix sums (vector kernel),
  /// moments, capability flags, and the sample-size consistency check —
  /// one code path so full and incremental builds cannot drift.
  void Finish(Spec&& spec);
  /// The i-th point (0-based) of the value-sorted expanded sample.
  Value PointAt(std::int64_t index) const;
  /// Synopsis count of `value`; 0 when absent.
  Count CountOfValue(Value value) const;

  std::array<bool, kNumQueryKinds> answers_{};

  /// (count desc, value asc): identical order to the direct reporters'
  /// (estimate desc, value asc) sort because estimate is strictly
  /// increasing in count (scale > 0 whenever entries exist).
  std::vector<ValueCount> by_count_desc_;
  /// Value-ascending entries with exclusive prefix sums over counts:
  /// prefix_[0] = 0, prefix_[i + 1] = prefix_[i] + by_value_[i].count.
  std::vector<ValueCount> by_value_;
  std::vector<std::int64_t> prefix_;

  HotListParams hot_;
  FrequencyFn frequency_;
  Estimate distinct_;

  std::int64_t sample_size_ = 0;
  std::int64_t observed_inserts_ = 0;
  std::array<double, 3> moments_{};
  std::uint64_t build_id_ = 0;
};

}  // namespace aqua

#endif  // AQUA_VIEW_FROZEN_VIEW_H_
