#ifndef AQUA_SERVER_PUSH_CLIENT_H_
#define AQUA_SERVER_PUSH_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace aqua {

/// Minimal blocking HTTP/1.1 POST for the cluster push path: one request,
/// `Connection: close`, read to EOF.  This is deliberately not a general
/// HTTP client — an ingest node pushes one delta frame at a time and the
/// frame protocol carries its own idempotency (node, seq), so the
/// simplest possible transport is the correct one.
///
/// `host` must be a numeric IPv4 address or "localhost".  Send/receive
/// time out after a few seconds so a wedged aggregator surfaces as a
/// retryable push failure instead of a hung pusher thread.
///
/// Maps the outcome onto Status: 2xx is OK; a connect/IO failure is
/// FailedPrecondition (retryable — the aggregator may be restarting); any
/// other HTTP status is InvalidArgument carrying the response body.
Status HttpPostBlocking(const std::string& host, std::uint16_t port,
                        const std::string& path,
                        const std::vector<std::uint8_t>& body);

}  // namespace aqua

#endif  // AQUA_SERVER_PUSH_CLIENT_H_
