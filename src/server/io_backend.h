// The reactor's readiness/IO surface, extracted so one HTTP serving core
// can run over two transports: the classic epoll readiness loop and an
// io_uring completion ring (raw syscalls, no liburing).  See DESIGN.md §14.
//
// The interface is completion-style — the server asks the backend to
// accept, receive and send, and the backend reports what finished — because
// that is the shape io_uring natively has; the epoll backend emulates it by
// doing the read()/writev() calls itself at readiness time.  All calls and
// callbacks happen on the owning reactor thread (backends are single-issuer
// by construction); only GetStats() may be called from other threads.
#ifndef AQUA_SERVER_IO_BACKEND_H_
#define AQUA_SERVER_IO_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace aqua {

/// Which transport a reactor runs on.
enum class IoBackendKind {
  kEpoll,
  kIoUring,
};

/// Parses "epoll" / "io_uring"; returns false on anything else.
bool ParseIoBackendKind(std::string_view name, IoBackendKind* kind);
std::string_view IoBackendKindName(IoBackendKind kind);

/// One reactor's transport.  Lifecycle: Init() once, Poll() in a loop,
/// Shutdown() after the loop exits.  Connections are registered with Add()
/// (returning an opaque per-connection handle), written to with Send(), and
/// released with Close().
class IoBackend {
 public:
  /// What the serving core must handle.  Every method is invoked from
  /// inside Poll(), on the reactor thread.
  class Events {
   public:
    virtual ~Events() = default;
    /// A new connection was accepted; the core Add()s it (or closes fd).
    virtual void OnAccept(int fd) = 0;
    /// Bytes arrived on a connection.  `data` is only valid for the call —
    /// consume or copy it (the HTTP parser copies into its own buffer).
    /// Return false to stop delivery for now: the core either Close()d the
    /// connection, handed it to a worker, or parked a send — in every case
    /// it already told the backend via Close()/SuspendRecv()/Send(), and
    /// the backend must not touch per-connection state after a false
    /// return (the handle may be gone).
    virtual bool OnRecv(void* token, std::string_view data) = 0;
    /// Orderly EOF or a receive error; the core should Close().
    virtual void OnRecvClosed(void* token) = 0;
    /// A Send() that returned kPending finished writing every byte.
    virtual void OnSendDrained(void* token) = 0;
    /// A pending send failed; the connection is dead, the core Close()s.
    virtual void OnSendError(void* token) = 0;
    /// The wake fd fired (worker rearm handoffs, shutdown).
    virtual void OnWake() = 0;
  };

  /// What one Send() call did.
  enum class SendResult {
    /// Every byte was written; the connection is idle again.
    kDone,
    /// Bytes remain in flight (parked tail or queued submission); the
    /// backend owns finishing them and will fire OnSendDrained/OnSendError.
    /// The core must not Send() again on this connection until drained.
    kPending,
    /// The connection is dead (write error); the core should Close().
    kError,
  };

  /// Transport counters, aggregated into /stats and the bench reports so
  /// the zero-copy / zero-syscall claims are measured numbers.  Relaxed
  /// atomics underneath; safe to read from any thread.
  struct Stats {
    /// Every syscall the backend issued (epoll_wait/ctl, accept4, read,
    /// write, writev, eventfd reads, io_uring_enter, ...).
    std::int64_t syscalls = 0;
    /// Send() calls whose bytes left user space without any intermediate
    /// user-space copy (written straight from the caller's buffers, or
    /// submitted to the ring pinned in place).
    std::int64_t zero_copy_sends = 0;
    /// Send() calls that copied some tail into backend-owned storage
    /// before the bytes could leave (parked slow-reader tails, volatile
    /// scratch submitted to the ring).
    std::int64_t copied_sends = 0;
    /// Bytes that went through such a copy.
    std::int64_t copied_bytes = 0;
    std::int64_t bytes_sent = 0;
    std::int64_t bytes_received = 0;
  };

  virtual ~IoBackend() = default;

  /// Takes the reactor's listener and wake eventfd (both owned by the
  /// caller) and builds the transport (epoll instance / io_uring ring).
  virtual Status Init(int listen_fd, int wake_fd, Events* events) = 0;

  /// Runs one loop iteration: waits up to timeout_ms for completions and
  /// dispatches them into Events.  Returns a non-OK status only for
  /// unrecoverable transport failures (the reactor exits).
  virtual Status Poll(int timeout_ms) = 0;

  /// Registers an accepted connection and arms its receive path.  Returns
  /// an opaque handle for Send/Suspend/Resume/Close, or nullptr on failure
  /// (the caller closes fd itself).
  virtual void* Add(int fd, void* token) = 0;

  /// Stops receive delivery for a connection (worker handoff, send
  /// backpressure).  Idempotent.
  virtual void SuspendRecv(void* handle) = 0;
  /// Re-arms the receive path after SuspendRecv.  Idempotent.
  virtual void ResumeRecv(void* handle) = 0;

  /// Writes head then body on the connection, never blocking the reactor:
  /// whatever cannot be written now is finished asynchronously (kPending).
  /// `pin`, when non-null, keeps the underlying buffer alive until the
  /// send completes — the cached-response path passes the cache entry so
  /// its bytes go to the socket with no copy even if the epoch advances
  /// mid-send.  Without a pin the buffers are treated as volatile (reactor
  /// scratch): any unsent tail is copied into backend-owned storage before
  /// Send returns.
  virtual SendResult Send(void* handle, std::string_view head,
                          std::string_view body,
                          const std::shared_ptr<const std::string>* pin) = 0;

  /// True while a kPending send has not yet drained.
  virtual bool HasPendingSend(const void* handle) const = 0;

  /// Stops accepting new connections (graceful drain).
  virtual void StopAccepting() = 0;

  /// Closes the connection's fd and releases the handle.  No Events
  /// callback fires for this connection afterwards.  The token may be
  /// freed by the caller immediately after this returns.
  virtual void Close(void* handle) = 0;

  /// Releases the transport (after the reactor loop exited).
  virtual void Shutdown() = 0;

  virtual IoBackendKind kind() const = 0;
  virtual Stats GetStats() const = 0;
};

/// Builds an epoll backend (always available).
std::unique_ptr<IoBackend> MakeEpollBackend();

/// True when this kernel supports everything the io_uring backend needs
/// (io_uring_setup + send/recv/accept opcodes + provided-buffer rings +
/// EXT_ARG timeouts) and the build carried AQUA_WITH_IOURING.  On false,
/// *reason (optional) names what was missing.
bool IoUringAvailable(std::string* reason);

/// Builds an io_uring backend; call only when IoUringAvailable().
std::unique_ptr<IoBackend> MakeIoUringBackend();

/// Resolves the requested kind against what the host supports: io_uring
/// falls back to epoll with a warning on stderr when unavailable.
/// Returns the kind actually built.
std::unique_ptr<IoBackend> MakeIoBackend(IoBackendKind requested,
                                         IoBackendKind* actual);

}  // namespace aqua

#endif  // AQUA_SERVER_IO_BACKEND_H_
