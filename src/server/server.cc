#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/cpu_affinity.h"

namespace aqua {

namespace {

enum class WriteNow { kDone, kTail, kError };

/// Nonblocking vectored write used by worker threads: sends what the
/// socket accepts right now and collects any unsent remainder into *tail
/// for the owning reactor's backend to finish — the worker never blocks on
/// a slow reader (the old WritevAll poll() loop is gone).
WriteNow WritevNonblock(int fd, std::string_view head, std::string_view body,
                        std::string* tail) {
  const std::size_t total = head.size() + body.size();
  std::size_t written = 0;
  while (written < total) {
    iovec iov[2];
    int iovcnt = 0;
    if (written < head.size()) {
      iov[iovcnt].iov_base = const_cast<char*>(head.data()) + written;
      iov[iovcnt].iov_len = head.size() - written;
      ++iovcnt;
    }
    const std::size_t body_done =
        written > head.size() ? written - head.size() : 0;
    if (body_done < body.size()) {
      iov[iovcnt].iov_base = const_cast<char*>(body.data()) + body_done;
      iov[iovcnt].iov_len = body.size() - body_done;
      ++iovcnt;
    }
    const ssize_t n = ::writev(fd, iov, iovcnt);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      tail->clear();
      if (written < head.size()) tail->append(head.substr(written));
      const std::size_t body_done2 =
          written > head.size() ? written - head.size() : 0;
      if (body_done2 < body.size()) tail->append(body.substr(body_done2));
      return WriteNow::kTail;
    }
    return WriteNow::kError;
  }
  return WriteNow::kDone;
}

}  // namespace

HttpServer::HttpServer(const HttpServerOptions& options) : options_(options) {
  if (options_.reactors < 1) options_.reactors = 1;
  if (options_.workers < 1) options_.workers = 1;
  limits_.max_header_bytes = options_.max_header_bytes;
  limits_.max_body_bytes = options_.max_body_bytes;
}

HttpServer::~HttpServer() {
  if (started_.load()) Shutdown();
}

void HttpServer::Route(std::string method, std::string path, Handler handler,
                       RouteOptions route_options) {
  RouteEntry entry;
  entry.run_inline =
      route_options.dispatch == RouteOptions::Dispatch::kInline ||
      (route_options.dispatch == RouteOptions::Dispatch::kAuto &&
       method == "GET");
  entry.method = std::move(method);
  entry.path = std::move(path);
  entry.handler = std::move(handler);
  entry.cacheable = route_options.cacheable;
  entry.cacheable_if = std::move(route_options.cacheable_if);
  entry.canonical_key = std::move(route_options.canonical_key);
  entry.scoped_epoch = std::move(route_options.scoped_epoch);
  routes_.push_back(std::move(entry));
}

void HttpServer::RoutePrefix(std::string method, std::string prefix,
                             Handler handler, RouteOptions route_options) {
  RouteEntry entry;
  entry.run_inline =
      route_options.dispatch == RouteOptions::Dispatch::kInline ||
      (route_options.dispatch == RouteOptions::Dispatch::kAuto &&
       method == "GET");
  entry.method = std::move(method);
  entry.path = std::move(prefix);
  entry.handler = std::move(handler);
  entry.cacheable = route_options.cacheable;
  entry.cacheable_if = std::move(route_options.cacheable_if);
  entry.canonical_key = std::move(route_options.canonical_key);
  entry.scoped_epoch = std::move(route_options.scoped_epoch);
  prefix_routes_.push_back(std::move(entry));
}

void HttpServer::Route(std::string method, std::string path,
                       SimpleHandler handler, RouteOptions route_options) {
  Route(std::move(method), std::move(path),
        [h = std::move(handler)](const HttpRequest& request,
                                 HttpResponse* response) {
          *response = h(request);
        },
        std::move(route_options));
}

void HttpServer::RoutePrefix(std::string method, std::string prefix,
                             SimpleHandler handler,
                             RouteOptions route_options) {
  RoutePrefix(std::move(method), std::move(prefix),
              [h = std::move(handler)](const HttpRequest& request,
                                       HttpResponse* response) {
                *response = h(request);
              },
              std::move(route_options));
}

Status HttpServer::StartListener(Reactor& reactor) {
  reactor.listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (reactor.listen_fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  ::setsockopt(reactor.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  // Every reactor binds the same port; the kernel load-balances incoming
  // connections across the listeners by flow hash.
  if (::setsockopt(reactor.listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                   sizeof(one)) < 0) {
    return Status::Internal(std::string("setsockopt(SO_REUSEPORT): ") +
                            strerror(errno));
  }
  if (options_.sndbuf > 0) {
    // Accepted sockets inherit the listener's SO_SNDBUF; the slow-reader
    // tests shrink it to force partial writes.
    ::setsockopt(reactor.listen_fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf,
                 sizeof(options_.sndbuf));
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  // The first listener resolves an ephemeral options_.port == 0; the rest
  // join the port it got.
  addr.sin_port = htons(port_ != 0 ? port_ : options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(reactor.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Status::Internal(std::string("bind: ") + strerror(errno));
  }
  if (::listen(reactor.listen_fd, 256) < 0) {
    return Status::Internal(std::string("listen: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(reactor.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &len) < 0) {
    return Status::Internal(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  reactor.event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (reactor.event_fd < 0) {
    return Status::Internal("eventfd failed");
  }
  return Status::OK();
}

Status HttpServer::Start() {
  // Resolve the transport once: every reactor runs the same backend, and
  // an io_uring request on a kernel (or build) without support falls back
  // to epoll with a single logged warning.
  io_backend_actual_ = options_.io_backend;
  if (io_backend_actual_ == IoBackendKind::kIoUring) {
    std::string reason;
    if (!IoUringAvailable(&reason)) {
      std::fprintf(stderr,
                   "aqua: io_uring backend unavailable (%s); "
                   "falling back to epoll\n",
                   reason.c_str());
      io_backend_actual_ = IoBackendKind::kEpoll;
    }
  }

  reactors_.reserve(static_cast<std::size_t>(options_.reactors));
  for (int i = 0; i < options_.reactors; ++i) {
    auto reactor = std::make_unique<Reactor>(options_.cache);
    reactor->server = this;
    reactor->index = static_cast<std::size_t>(i);
    reactor->backend = io_backend_actual_ == IoBackendKind::kIoUring
                           ? MakeIoUringBackend()
                           : MakeEpollBackend();
    Status status = StartListener(*reactor);
    if (!status.ok()) return status;
    reactors_.push_back(std::move(reactor));
  }

  started_.store(true);
  for (auto& reactor : reactors_) {
    Reactor* r = reactor.get();
    r->thread = std::thread([this, r] { IoLoop(*r); });
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    Wait();
    return;
  }
  // Wake every reactor; each begins its drain.
  const std::uint64_t one = 1;
  for (auto& reactor : reactors_) {
    [[maybe_unused]] ssize_t n =
        ::write(reactor->event_fd, &one, sizeof(one));
  }
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
  }
  // Normally the reactors close the queue as they drain; do it here too so
  // a reactor that died early cannot strand the workers.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_done_ = true;
  }
  shutdown_cv_.notify_all();
  for (auto& reactor : reactors_) {
    if (reactor->listen_fd >= 0) ::close(reactor->listen_fd);
    if (reactor->event_fd >= 0) ::close(reactor->event_fd);
    reactor->listen_fd = reactor->event_fd = -1;
  }
}

void HttpServer::Wait() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_done_; });
}

HttpServer::ServerStats HttpServer::Stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses_503 = responses_503_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  stats.reactors = reactors_.size();
  stats.io_backend = IoBackendKindName(io_backend_actual_);
  for (const auto& reactor : reactors_) {
    const ResponseCache::Stats cache = reactor->cache.GetStats();
    stats.cache_hits += cache.hits;
    stats.cache_misses += cache.misses;
    stats.cache_bypass += cache.bypass;
    stats.cache_invalidations += cache.invalidations;
    stats.cache_stale_evictions += cache.stale_evictions;
    if (reactor->pinned_cpu.load(std::memory_order_relaxed) >= 0) {
      ++stats.reactors_pinned;
    }
    // rearm_mutex also guards the rare in-thread backend fallback swap.
    std::lock_guard<std::mutex> lock(reactor->rearm_mutex);
    if (reactor->backend != nullptr) {
      const IoBackend::Stats io = reactor->backend->GetStats();
      stats.io.syscalls += io.syscalls;
      stats.io.zero_copy_sends += io.zero_copy_sends;
      stats.io.copied_sends += io.copied_sends;
      stats.io.copied_bytes += io.copied_bytes;
      stats.io.bytes_sent += io.bytes_sent;
      stats.io.bytes_received += io.bytes_received;
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stats.queue_depth = queue_.size();
  }
  return stats;
}

void HttpServer::IoLoop(Reactor& reactor) {
  if (options_.pin_reactors) {
    reactor.pinned_cpu.store(PinSelfToCpu(reactor.index),
                             std::memory_order_relaxed);
  }
  // The backend is initialized on the reactor thread (io_uring rings are
  // single-issuer: the creating task is the submitting task).
  Status init =
      reactor.backend->Init(reactor.listen_fd, reactor.event_fd, &reactor);
  if (!init.ok() && reactor.backend->kind() == IoBackendKind::kIoUring) {
    std::fprintf(stderr,
                 "aqua: reactor %zu io_uring init failed (%s); "
                 "falling back to epoll\n",
                 reactor.index, init.message().c_str());
    auto epoll = MakeEpollBackend();
    {
      std::lock_guard<std::mutex> lock(reactor.rearm_mutex);
      reactor.backend.swap(epoll);
    }
    epoll.reset();
    init = reactor.backend->Init(reactor.listen_fd, reactor.event_fd,
                                 &reactor);
  }
  if (!init.ok()) {
    std::fprintf(stderr, "aqua: reactor %zu failed to start: %s\n",
                 reactor.index, init.message().c_str());
    return;
  }

  bool draining = false;
  int drain_spins = 0;
  for (;;) {
    const Status status = reactor.backend->Poll(100);
    if (!status.ok()) {
      std::fprintf(stderr, "aqua: reactor %zu poll failed: %s\n",
                   reactor.index, status.message().c_str());
      break;
    }
    ProcessRearms(reactor);
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      reactor.backend->StopAccepting();
    }
    // in_flight_ and the queue are global: every reactor waits for the
    // whole server to drain so no reactor exits while a worker still owes
    // one of its connections a rearm.
    if (draining && in_flight_.load(std::memory_order_acquire) == 0) {
      bool queue_empty;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_empty = queue_.empty();
        if (queue_empty) queue_closed_ = true;
      }
      if (queue_empty) {
        queue_cv_.notify_all();
        // Give parked sends a bounded grace period (~5s of poll ticks) to
        // reach their slow readers before cutting them off.
        if (!AnyPendingSend(reactor) || ++drain_spins >= 50) break;
      }
    }
  }
  // Close whatever is still registered (idle keep-alive connections).
  std::vector<Connection*> remaining(reactor.connections.begin(),
                                     reactor.connections.end());
  for (Connection* conn : remaining) CloseConnection(reactor, conn);
  reactor.backend->Shutdown();
}

bool HttpServer::AnyPendingSend(Reactor& reactor) const {
  for (Connection* conn : reactor.connections) {
    if (conn->io != nullptr && reactor.backend->HasPendingSend(conn->io)) {
      return true;
    }
  }
  return false;
}

void HttpServer::OnAccept(Reactor& reactor, int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto* conn = new Connection(fd, limits_, &reactor);
  conn->io = reactor.backend->Add(fd, conn);
  if (conn->io == nullptr) {
    ::close(fd);
    delete conn;
    return;
  }
  reactor.connections.insert(conn);
  accepted_.fetch_add(1, std::memory_order_relaxed);
}

bool HttpServer::OnRecv(Reactor& reactor, Connection* conn,
                        std::string_view data) {
  const auto state = conn->parser.Feed(data);
  if (state == HttpRequestParser::State::kComplete) {
    return DrainParsed(reactor, conn);
  }
  if (state == HttpRequestParser::State::kError) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.status_code = 400;
    response.keep_alive = false;
    response.body = "{\"error\":\"" + conn->parser.error() + "\"}";
    SendControl(reactor, conn, response);
    return false;
  }
  return true;  // need more bytes
}

void HttpServer::OnSendDrained(Reactor& reactor, Connection* conn) {
  if (conn->close_after_send ||
      stopping_.load(std::memory_order_acquire)) {
    CloseConnection(reactor, conn);
    return;
  }
  // Serve any pipelined requests buffered while the send was in flight;
  // only then re-open the receive path.
  if (!DrainParsed(reactor, conn)) return;
  reactor.backend->ResumeRecv(conn->io);
}

bool HttpServer::DrainParsed(Reactor& reactor, Connection* conn) {
  for (;;) {
    const auto state = conn->parser.Reparse();
    if (state == HttpRequestParser::State::kError) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response;
      response.status_code = 400;
      response.keep_alive = false;
      response.body = "{\"error\":\"" + conn->parser.error() + "\"}";
      SendControl(reactor, conn, response);
      return false;
    }
    if (state != HttpRequestParser::State::kComplete) return true;
    if (!HandleParsedRequest(reactor, conn, conn->parser.TakeRequest())) {
      return false;
    }
  }
}

void HttpServer::FindRoute(std::string_view method, std::string_view path,
                           const RouteEntry** route, bool* path_known) const {
  *route = nullptr;
  *path_known = false;
  for (const RouteEntry& entry : routes_) {
    if (entry.path == path) {
      *path_known = true;
      if (entry.method == method) {
        *route = &entry;
        return;
      }
    }
  }
  // Exact routes miss: longest matching prefix wins.
  std::size_t best_len = 0;
  for (const RouteEntry& entry : prefix_routes_) {
    if (!path.starts_with(entry.path)) continue;
    *path_known = true;
    if (entry.method == method && entry.path.size() >= best_len) {
      best_len = entry.path.size();
      *route = &entry;
    }
  }
}

bool HttpServer::HandleParsedRequest(Reactor& reactor, Connection* conn,
                                     HttpRequest request) {
  const RouteEntry* route = nullptr;
  bool path_known = false;
  FindRoute(request.method, request.path, &route, &path_known);

  // Read path (and 404/405): run to completion on this reactor — no queue
  // hop, no shedding (inline work is bounded by the synopsis, not the
  // base data).
  if (route == nullptr || route->run_inline) {
    return ServeInline(reactor, conn, route, path_known, request);
  }

  // Mutating route: hand the connection to the worker pool, or shed.  The
  // WorkItem carries a fixed-size copy of the request views; the parser
  // storage they point into stays untouched (receive delivery is
  // suspended) until the worker pushes its rearm.
  reactor.backend->SuspendRecv(conn->io);
  WorkItem item;
  item.conn = conn;
  item.request = request;
  item.route = route;
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_closed_ || queue_.size() >= options_.queue_capacity) {
      shed = true;
    } else {
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      // Count before the push: once a worker can see the item it may
      // write the response, and stats read after a received response
      // must already include it.
      requests_.fetch_add(1, std::memory_order_relaxed);
      queue_.push_back(std::move(item));
    }
  }
  if (shed) {
    responses_503_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.status_code = 503;
    response.keep_alive = false;
    response.body = "{\"error\":\"request queue full; retry with backoff\"}";
    SendControl(reactor, conn, response);
    return false;
  }
  queue_cv_.notify_one();
  return false;  // connection now owned by the worker until rearmed
}

bool HttpServer::FinishSend(Reactor& reactor, Connection* conn,
                            IoBackend::SendResult result, bool keep_alive) {
  if (result == IoBackend::SendResult::kError) {
    CloseConnection(reactor, conn);
    return false;
  }
  if (result == IoBackend::SendResult::kPending) {
    // Backpressure: no new request is read for this connection while its
    // response is still leaving — the parser cannot grow unboundedly
    // behind a reader that never drains.
    conn->close_after_send = !keep_alive;
    reactor.backend->SuspendRecv(conn->io);
    return false;
  }
  if (!keep_alive) {
    CloseConnection(reactor, conn);
    return false;
  }
  return true;
}

bool HttpServer::ServeInline(Reactor& reactor, Connection* conn,
                             const RouteEntry* route, bool path_known,
                             const HttpRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  const bool scoped = route != nullptr && route->scoped_epoch != nullptr;
  bool cacheable = route != nullptr && route->cacheable &&
                   (scoped || static_cast<bool>(epoch_source_)) &&
                   (!route->cacheable_if || route->cacheable_if(request));
  if (cacheable && request.NoCache()) {
    reactor.cache.CountBypass();
    cacheable = false;
  }
  std::optional<std::uint64_t> epoch_before;
  // The owning scope when the route installs a scoped epoch source ("" =
  // the server-wide epoch domain): cached under that scope's own epoch,
  // so advances elsewhere never touch this entry.
  std::string_view scope;
  std::string_view key;
  if (cacheable) {
    if (scoped) {
      const std::optional<RouteOptions::ScopedEpoch> se =
          route->scoped_epoch(request);
      if (se.has_value()) {
        scope = se->scope;
        epoch_before = se->epoch;
      }
    } else {
      epoch_before = epoch_source_();
    }
    if (!epoch_before.has_value()) {
      // Epoch unsettled (a snapshot cache is stale): the handler must run
      // so the refresh happens and the epoch advances.
      reactor.cache.CountMiss();
      cacheable = false;
    }
  }
  if (cacheable && route->canonical_key) {
    // The canonical key replaces the raw query string, so every spelling
    // of one query shares one entry; an unparseable request serves
    // uncached (the handler's 400 would never be stored anyway).
    cacheable = reactor.cache.BuildKeyWith(request, route->canonical_key,
                                           &key);
  } else if (cacheable) {
    key = reactor.cache.BuildKey(request);
  }
  if (cacheable) {
    if (const std::shared_ptr<const std::string>* pinned =
            reactor.cache.LookupPinned(scope, *epoch_before, key)) {
      // Hit: replay the stored bytes verbatim — no handler, no snapshot
      // pin, no allocation.  The entry itself is handed to the backend:
      // epoll writes from it in place (pinning it only if a tail parks);
      // io_uring submits it to the ring as-is, so the bytes go from cache
      // to NIC with zero copies even if the epoch advances mid-send.
      const std::string& wire = **pinned;
      return FinishSend(reactor, conn,
                        reactor.backend->Send(conn->io, wire, {}, pinned),
                        request.keep_alive);
    }
  }

  // Render into the reactor's scratch response and serialize the head into
  // the reactor's scratch head buffer: both keep their capacity across
  // requests, so the warmed cold path never allocates.
  HttpResponse& response = reactor.response_scratch;
  response.Reset();
  if (route != nullptr) {
    route->handler(request, &response);
  } else {
    response.status_code = path_known ? 405 : 404;
    response.body = path_known ? "{\"error\":\"method not allowed\"}"
                               : "{\"error\":\"no such endpoint\"}";
  }
  response.keep_alive = response.keep_alive && request.keep_alive;

  std::string& head = reactor.head_scratch;
  head.clear();
  response.SerializeHeadInto(&head);
  // The scratch buffers are volatile: if the socket cannot take every
  // byte now, the backend copies the tail before returning (the scratch
  // is reused by the very next request).
  const IoBackend::SendResult sent =
      reactor.backend->Send(conn->io, head, response.body, nullptr);

  if (cacheable && response.status_code == 200 &&
      response.keep_alive == request.keep_alive) {
    // Store only when the epoch did not move while the handler ran: equal
    // bracketing reads of the (scope's) monotonic serving epoch prove
    // every snapshot the handler saw belonged to epoch_before, so the
    // bytes are valid for the whole epoch (byte-identical replay).
    // Pinning the entry builds the contiguous wire string — the one
    // deliberate allocation on this path, paid once per (scope, epoch,
    // key), amortized across every later hit.
    std::optional<std::uint64_t> epoch_after;
    if (scoped) {
      const std::optional<RouteOptions::ScopedEpoch> se =
          route->scoped_epoch(request);
      if (se.has_value() && se->scope == scope) epoch_after = se->epoch;
    } else {
      epoch_after = epoch_source_();
    }
    if (epoch_after.has_value() && *epoch_after == *epoch_before) {
      std::string wire;
      wire.reserve(head.size() + response.body.size());
      wire.append(head);
      wire.append(response.body);
      reactor.cache.Store(scope, *epoch_before, key, std::move(wire));
    }
  }

  return FinishSend(reactor, conn, sent, response.keep_alive);
}

void HttpServer::ProcessRearms(Reactor& reactor) {
  std::vector<RearmItem> items;
  {
    std::lock_guard<std::mutex> lock(reactor.rearm_mutex);
    items.swap(reactor.rearms);
  }
  for (RearmItem& item : items) {
    Connection* conn = item.conn;
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (item.has_pending) {
      // The worker's nonblocking write left a tail; finish it through the
      // backend (still delivering the response even when draining).
      const IoBackend::SendResult sent =
          reactor.backend->Send(conn->io, item.pending_wire, {}, nullptr);
      if (sent == IoBackend::SendResult::kError) {
        CloseConnection(reactor, conn);
        continue;
      }
      if (sent == IoBackend::SendResult::kPending) {
        conn->close_after_send =
            item.close || stopping_.load(std::memory_order_acquire);
        continue;  // receive stays suspended until the send drains
      }
    }
    if (item.close || stopping_.load(std::memory_order_acquire)) {
      CloseConnection(reactor, conn);
      continue;
    }
    // Pipelined requests already buffered are served without a read (and
    // may bounce the connection straight back to the worker pool).
    if (!DrainParsed(reactor, conn)) continue;
    reactor.backend->ResumeRecv(conn->io);
  }
}

void HttpServer::CloseConnection(Reactor& reactor, Connection* conn) {
  if (conn->io != nullptr) {
    reactor.backend->Close(conn->io);
  } else if (conn->fd >= 0) {
    ::close(conn->fd);
  }
  reactor.connections.erase(conn);
  delete conn;
}

void HttpServer::SendControl(Reactor& reactor, Connection* conn,
                             const HttpResponse& response) {
  const std::string wire = response.Serialize();
  const IoBackend::SendResult sent =
      reactor.backend->Send(conn->io, wire, {}, nullptr);
  if (sent == IoBackend::SendResult::kPending) {
    conn->close_after_send = true;
    reactor.backend->SuspendRecv(conn->io);
    return;
  }
  // Control responses (400/503) always close, drained or failed alike.
  CloseConnection(reactor, conn);
}

void HttpServer::WorkerLoop() {
  // Per-worker render scratch, reused across every request this thread
  // serves (same capacity-retention discipline as the reactor scratch).
  HttpResponse response;
  std::string head;
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }

    response.Reset();
    item.route->handler(item.request, &response);
    response.keep_alive = response.keep_alive && item.request.keep_alive;

    head.clear();
    response.SerializeHeadInto(&head);
    // Write what the socket takes right now; an unsent tail rides the
    // rearm back to the owning reactor, whose backend finishes it.
    RearmItem rearm;
    rearm.conn = item.conn;
    const WriteNow wrote =
        WritevNonblock(item.conn->fd, head, response.body,
                       &rearm.pending_wire);
    rearm.has_pending = wrote == WriteNow::kTail;
    rearm.close = wrote == WriteNow::kError || !response.keep_alive;

    // Hand the connection back to its owning reactor for re-arming.
    Reactor* owner = item.conn->owner;
    {
      std::lock_guard<std::mutex> lock(owner->rearm_mutex);
      owner->rearms.push_back(std::move(rearm));
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(owner->event_fd, &one, sizeof(one));
  }
}

}  // namespace aqua
