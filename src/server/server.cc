#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace aqua {

namespace {

/// Writes the whole buffer on a nonblocking socket, waiting with poll() on
/// EAGAIN.  Returns false on error or timeout (the connection is dead).
bool WriteAll(int fd, const char* data, std::size_t size,
              int timeout_ms = 5000) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(const HttpServerOptions& options) : options_(options) {
  limits_.max_header_bytes = options.max_header_bytes;
  limits_.max_body_bytes = options.max_body_bytes;
}

HttpServer::~HttpServer() {
  if (started_.load()) Shutdown();
}

void HttpServer::Route(std::string method, std::string path,
                       Handler handler) {
  routes_.emplace_back(
      std::make_pair(std::move(method), std::move(path)),
      std::move(handler));
}

void HttpServer::RoutePrefix(std::string method, std::string prefix,
                             Handler handler) {
  prefix_routes_.emplace_back(
      std::make_pair(std::move(method), std::move(prefix)),
      std::move(handler));
}

Status HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind: ") + strerror(errno));
  }
  if (::listen(listen_fd_, 256) < 0) {
    return Status::Internal(std::string("listen: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    return Status::Internal("epoll_create1/eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = event_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  started_.store(true);
  io_thread_ = std::thread([this] { IoLoop(); });
  const int workers = options_.workers > 0 ? options_.workers : 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    Wait();
    return;
  }
  // Wake the IO thread; it begins the drain.
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));

  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_done_ = true;
  }
  shutdown_cv_.notify_all();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  listen_fd_ = epoll_fd_ = event_fd_ = -1;
}

void HttpServer::Wait() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_done_; });
}

HttpServer::ServerStats HttpServer::Stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses_503 = responses_503_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stats.queue_depth = queue_.size();
  }
  return stats;
}

void HttpServer::IoLoop() {
  bool draining = false;
  epoll_event events[64];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, 100);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptAll();
      } else if (fd == event_fd_) {
        std::uint64_t drain;
        while (::read(event_fd_, &drain, sizeof(drain)) > 0) {
        }
        ProcessRearms();
      } else {
        const auto it = connections_.find(fd);
        if (it != connections_.end()) HandleReadable(it->second);
      }
    }
    ProcessRearms();
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      BeginDrain();
    }
    if (draining && in_flight_.load(std::memory_order_acquire) == 0) {
      bool queue_empty;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_empty = queue_.empty();
        if (queue_empty) queue_closed_ = true;
      }
      if (queue_empty) {
        queue_cv_.notify_all();
        break;
      }
    }
  }
  // Close whatever is still registered (idle keep-alive connections).
  for (auto& [fd, conn] : connections_) {
    ::close(fd);
    delete conn;
  }
  connections_.clear();
}

void HttpServer::BeginDrain() {
  // Stop accepting; queued and in-flight requests still complete.
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  }
}

void HttpServer::AcceptAll() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: epoll will re-fire
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto* conn = new Connection(fd, limits_);
    connections_[fd] = conn;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      CloseConnection(conn);
    }
  }
}

void HttpServer::HandleReadable(Connection* conn) {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      const auto state =
          conn->parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
      if (state == HttpRequestParser::State::kComplete) {
        // One request at a time per connection; pipelined bytes stay
        // buffered until the response is written and the fd re-armed.
        DispatchOrShed(conn);
        return;
      }
      if (state == HttpRequestParser::State::kError) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        HttpResponse response;
        response.status_code = 400;
        response.keep_alive = false;
        response.body = "{\"error\":\"" + conn->parser.error() + "\"}";
        WriteDirect(conn, response);
        return;
      }
      continue;
    }
    if (n == 0) {
      CloseConnection(conn);  // peer closed
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(conn);
    return;
  }
}

void HttpServer::DispatchOrShed(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  WorkItem item;
  item.conn = conn;
  item.request = conn->parser.TakeRequest();
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_closed_ || queue_.size() >= options_.queue_capacity) {
      shed = true;
    } else {
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      queue_.push_back(std::move(item));
    }
  }
  if (shed) {
    responses_503_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.status_code = 503;
    response.keep_alive = false;
    response.body =
        "{\"error\":\"request queue full; retry with backoff\"}";
    WriteDirect(conn, response);
    return;
  }
  queue_cv_.notify_one();
  requests_.fetch_add(1, std::memory_order_relaxed);
}

void HttpServer::ProcessRearms() {
  std::vector<RearmItem> items;
  {
    std::lock_guard<std::mutex> lock(rearm_mutex_);
    items.swap(rearms_);
  }
  for (const RearmItem& item : items) {
    Connection* conn = item.conn;
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (item.close || stopping_.load(std::memory_order_acquire)) {
      CloseConnection(conn);
      continue;
    }
    // Pipelined request already buffered?  Serve it without a read.
    if (conn->parser.Reparse() == HttpRequestParser::State::kComplete) {
      // Re-register momentarily so DispatchOrShed's DEL is balanced.
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev);
      DispatchOrShed(conn);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
      CloseConnection(conn);
    }
  }
}

void HttpServer::CloseConnection(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  connections_.erase(conn->fd);
  ::close(conn->fd);
  delete conn;
}

void HttpServer::WriteDirect(Connection* conn, const HttpResponse& response) {
  const std::string wire = response.Serialize();
  WriteAll(conn->fd, wire.data(), wire.size(), /*timeout_ms=*/1000);
  CloseConnection(conn);
}

void HttpServer::WorkerLoop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }

    HttpResponse response;
    const Handler* handler = nullptr;
    bool path_known = false;
    for (const auto& [key, h] : routes_) {
      if (key.second == item.request.path) {
        path_known = true;
        if (key.first == item.request.method) {
          handler = &h;
          break;
        }
      }
    }
    if (handler == nullptr) {
      // Exact routes miss: longest matching prefix wins.
      std::size_t best_len = 0;
      for (const auto& [key, h] : prefix_routes_) {
        if (!item.request.path.starts_with(key.second)) continue;
        path_known = true;
        if (key.first == item.request.method &&
            key.second.size() >= best_len) {
          best_len = key.second.size();
          handler = &h;
        }
      }
    }
    if (handler != nullptr) {
      response = (*handler)(item.request);
    } else {
      response.status_code = path_known ? 405 : 404;
      response.body = path_known ? "{\"error\":\"method not allowed\"}"
                                 : "{\"error\":\"no such endpoint\"}";
    }
    response.keep_alive = response.keep_alive && item.request.keep_alive;

    const std::string wire = response.Serialize();
    const bool write_ok =
        WriteAll(item.conn->fd, wire.data(), wire.size());

    RearmItem rearm;
    rearm.conn = item.conn;
    rearm.close = !write_ok || !response.keep_alive;
    {
      std::lock_guard<std::mutex> lock(rearm_mutex_);
      rearms_.push_back(rearm);
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  }
}

}  // namespace aqua
