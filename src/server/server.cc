#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sched.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstring>

namespace aqua {

namespace {

/// Writes the whole buffer on a nonblocking socket, waiting with poll() on
/// EAGAIN.  Returns false on error or timeout (the connection is dead).
bool WriteAll(int fd, const char* data, std::size_t size,
              int timeout_ms = 5000) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Vectored form of WriteAll: sends head then body as two iovecs, so the
/// serving path never concatenates them into a wire string.  Same EAGAIN
/// poll and timeout semantics.
bool WritevAll(int fd, std::string_view head, std::string_view body,
               int timeout_ms = 5000) {
  const std::size_t total = head.size() + body.size();
  std::size_t written = 0;
  while (written < total) {
    iovec iov[2];
    int iovcnt = 0;
    if (written < head.size()) {
      iov[iovcnt].iov_base = const_cast<char*>(head.data()) + written;
      iov[iovcnt].iov_len = head.size() - written;
      ++iovcnt;
      if (!body.empty()) {
        iov[iovcnt].iov_base = const_cast<char*>(body.data());
        iov[iovcnt].iov_len = body.size();
        ++iovcnt;
      }
    } else {
      const std::size_t off = written - head.size();
      iov[iovcnt].iov_base = const_cast<char*>(body.data()) + off;
      iov[iovcnt].iov_len = body.size() - off;
      ++iovcnt;
    }
    const ssize_t n = ::writev(fd, iov, iovcnt);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(const HttpServerOptions& options) : options_(options) {
  if (options_.reactors < 1) options_.reactors = 1;
  if (options_.workers < 1) options_.workers = 1;
  limits_.max_header_bytes = options_.max_header_bytes;
  limits_.max_body_bytes = options_.max_body_bytes;
}

HttpServer::~HttpServer() {
  if (started_.load()) Shutdown();
}

void HttpServer::Route(std::string method, std::string path, Handler handler,
                       RouteOptions route_options) {
  RouteEntry entry;
  entry.run_inline =
      route_options.dispatch == RouteOptions::Dispatch::kInline ||
      (route_options.dispatch == RouteOptions::Dispatch::kAuto &&
       method == "GET");
  entry.method = std::move(method);
  entry.path = std::move(path);
  entry.handler = std::move(handler);
  entry.cacheable = route_options.cacheable;
  entry.cacheable_if = std::move(route_options.cacheable_if);
  entry.canonical_key = std::move(route_options.canonical_key);
  routes_.push_back(std::move(entry));
}

void HttpServer::RoutePrefix(std::string method, std::string prefix,
                             Handler handler, RouteOptions route_options) {
  RouteEntry entry;
  entry.run_inline =
      route_options.dispatch == RouteOptions::Dispatch::kInline ||
      (route_options.dispatch == RouteOptions::Dispatch::kAuto &&
       method == "GET");
  entry.method = std::move(method);
  entry.path = std::move(prefix);
  entry.handler = std::move(handler);
  entry.cacheable = route_options.cacheable;
  entry.cacheable_if = std::move(route_options.cacheable_if);
  entry.canonical_key = std::move(route_options.canonical_key);
  prefix_routes_.push_back(std::move(entry));
}

void HttpServer::Route(std::string method, std::string path,
                       SimpleHandler handler, RouteOptions route_options) {
  Route(std::move(method), std::move(path),
        [h = std::move(handler)](const HttpRequest& request,
                                 HttpResponse* response) {
          *response = h(request);
        },
        std::move(route_options));
}

void HttpServer::RoutePrefix(std::string method, std::string prefix,
                             SimpleHandler handler,
                             RouteOptions route_options) {
  RoutePrefix(std::move(method), std::move(prefix),
              [h = std::move(handler)](const HttpRequest& request,
                                       HttpResponse* response) {
                *response = h(request);
              },
              std::move(route_options));
}

Status HttpServer::StartListener(Reactor& reactor) {
  reactor.listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (reactor.listen_fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  ::setsockopt(reactor.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  // Every reactor binds the same port; the kernel load-balances incoming
  // connections across the listeners by flow hash.
  if (::setsockopt(reactor.listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                   sizeof(one)) < 0) {
    return Status::Internal(std::string("setsockopt(SO_REUSEPORT): ") +
                            strerror(errno));
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  // The first listener resolves an ephemeral options_.port == 0; the rest
  // join the port it got.
  addr.sin_port = htons(port_ != 0 ? port_ : options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(reactor.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Status::Internal(std::string("bind: ") + strerror(errno));
  }
  if (::listen(reactor.listen_fd, 256) < 0) {
    return Status::Internal(std::string("listen: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(reactor.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &len) < 0) {
    return Status::Internal(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  reactor.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  reactor.event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (reactor.epoll_fd < 0 || reactor.event_fd < 0) {
    return Status::Internal("epoll_create1/eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = reactor.listen_fd;
  ::epoll_ctl(reactor.epoll_fd, EPOLL_CTL_ADD, reactor.listen_fd, &ev);
  ev.data.fd = reactor.event_fd;
  ::epoll_ctl(reactor.epoll_fd, EPOLL_CTL_ADD, reactor.event_fd, &ev);
  return Status::OK();
}

Status HttpServer::Start() {
  reactors_.reserve(static_cast<std::size_t>(options_.reactors));
  for (int i = 0; i < options_.reactors; ++i) {
    auto reactor = std::make_unique<Reactor>(options_.cache);
    reactor->server = this;
    reactor->index = static_cast<std::size_t>(i);
    Status status = StartListener(*reactor);
    if (!status.ok()) return status;
    reactors_.push_back(std::move(reactor));
  }

  started_.store(true);
  for (auto& reactor : reactors_) {
    Reactor* r = reactor.get();
    r->thread = std::thread([this, r] { IoLoop(*r); });
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    Wait();
    return;
  }
  // Wake every reactor; each begins its drain.
  const std::uint64_t one = 1;
  for (auto& reactor : reactors_) {
    [[maybe_unused]] ssize_t n =
        ::write(reactor->event_fd, &one, sizeof(one));
  }
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_done_ = true;
  }
  shutdown_cv_.notify_all();
  for (auto& reactor : reactors_) {
    if (reactor->listen_fd >= 0) ::close(reactor->listen_fd);
    if (reactor->epoll_fd >= 0) ::close(reactor->epoll_fd);
    if (reactor->event_fd >= 0) ::close(reactor->event_fd);
    reactor->listen_fd = reactor->epoll_fd = reactor->event_fd = -1;
  }
}

void HttpServer::Wait() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_done_; });
}

HttpServer::ServerStats HttpServer::Stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses_503 = responses_503_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  stats.reactors = reactors_.size();
  for (const auto& reactor : reactors_) {
    const ResponseCache::Stats cache = reactor->cache.GetStats();
    stats.cache_hits += cache.hits;
    stats.cache_misses += cache.misses;
    stats.cache_bypass += cache.bypass;
    stats.cache_invalidations += cache.invalidations;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stats.queue_depth = queue_.size();
  }
  return stats;
}

void HttpServer::IoLoop(Reactor& reactor) {
  if (options_.pin_reactors) {
    // Best effort: pin this reactor to CPU (index mod online CPUs).
    const long cpus = ::sysconf(_SC_NPROCESSORS_ONLN);
    if (cpus > 0) {
      cpu_set_t mask;
      CPU_ZERO(&mask);
      CPU_SET(reactor.index % static_cast<std::size_t>(cpus), &mask);
      (void)::sched_setaffinity(0, sizeof(mask), &mask);
    }
  }
  bool draining = false;
  epoll_event events[64];
  for (;;) {
    const int n = ::epoll_wait(reactor.epoll_fd, events, 64, 100);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == reactor.listen_fd) {
        AcceptAll(reactor);
      } else if (fd == reactor.event_fd) {
        std::uint64_t drain;
        while (::read(reactor.event_fd, &drain, sizeof(drain)) > 0) {
        }
        ProcessRearms(reactor);
      } else {
        const auto it = reactor.connections.find(fd);
        if (it != reactor.connections.end()) {
          HandleReadable(reactor, it->second);
        }
      }
    }
    ProcessRearms(reactor);
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      BeginDrain(reactor);
    }
    // in_flight_ and the queue are global: every reactor waits for the
    // whole server to drain so no reactor exits while a worker still owes
    // one of its connections a rearm.
    if (draining && in_flight_.load(std::memory_order_acquire) == 0) {
      bool queue_empty;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_empty = queue_.empty();
        if (queue_empty) queue_closed_ = true;
      }
      if (queue_empty) {
        queue_cv_.notify_all();
        break;
      }
    }
  }
  // Close whatever is still registered (idle keep-alive connections).
  for (auto& [fd, conn] : reactor.connections) {
    ::close(fd);
    delete conn;
  }
  reactor.connections.clear();
}

void HttpServer::BeginDrain(Reactor& reactor) {
  // Stop accepting; queued and in-flight requests still complete.
  if (reactor.listen_fd >= 0) {
    ::epoll_ctl(reactor.epoll_fd, EPOLL_CTL_DEL, reactor.listen_fd, nullptr);
  }
}

void HttpServer::AcceptAll(Reactor& reactor) {
  for (;;) {
    const int fd = ::accept4(reactor.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: epoll will re-fire
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto* conn = new Connection(fd, limits_, &reactor);
    reactor.connections[fd] = conn;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(reactor.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      CloseConnection(reactor, conn);
    }
  }
}

void HttpServer::HandleReadable(Reactor& reactor, Connection* conn) {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      const auto state =
          conn->parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
      if (state == HttpRequestParser::State::kComplete) {
        if (!DrainParsed(reactor, conn)) return;
        continue;  // connection still ours: keep reading
      }
      if (state == HttpRequestParser::State::kError) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        HttpResponse response;
        response.status_code = 400;
        response.keep_alive = false;
        response.body = "{\"error\":\"" + conn->parser.error() + "\"}";
        WriteDirect(reactor, conn, response);
        return;
      }
      continue;
    }
    if (n == 0) {
      CloseConnection(reactor, conn);  // peer closed
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(reactor, conn);
    return;
  }
}

bool HttpServer::DrainParsed(Reactor& reactor, Connection* conn) {
  for (;;) {
    const auto state = conn->parser.Reparse();
    if (state == HttpRequestParser::State::kError) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response;
      response.status_code = 400;
      response.keep_alive = false;
      response.body = "{\"error\":\"" + conn->parser.error() + "\"}";
      WriteDirect(reactor, conn, response);
      return false;
    }
    if (state != HttpRequestParser::State::kComplete) return true;
    if (!HandleParsedRequest(reactor, conn, conn->parser.TakeRequest())) {
      return false;
    }
  }
}

void HttpServer::FindRoute(std::string_view method, std::string_view path,
                           const RouteEntry** route, bool* path_known) const {
  *route = nullptr;
  *path_known = false;
  for (const RouteEntry& entry : routes_) {
    if (entry.path == path) {
      *path_known = true;
      if (entry.method == method) {
        *route = &entry;
        return;
      }
    }
  }
  // Exact routes miss: longest matching prefix wins.
  std::size_t best_len = 0;
  for (const RouteEntry& entry : prefix_routes_) {
    if (!path.starts_with(entry.path)) continue;
    *path_known = true;
    if (entry.method == method && entry.path.size() >= best_len) {
      best_len = entry.path.size();
      *route = &entry;
    }
  }
}

bool HttpServer::HandleParsedRequest(Reactor& reactor, Connection* conn,
                                     HttpRequest request) {
  const RouteEntry* route = nullptr;
  bool path_known = false;
  FindRoute(request.method, request.path, &route, &path_known);

  // Read path (and 404/405): run to completion on this reactor — no queue
  // hop, no shedding (inline work is bounded by the synopsis, not the
  // base data).
  if (route == nullptr || route->run_inline) {
    return ServeInline(reactor, conn, route, path_known, request);
  }

  // Mutating route: hand the connection to the worker pool, or shed.  The
  // WorkItem carries a fixed-size copy of the request views; the parser
  // storage they point into stays untouched (the connection just left
  // epoll) until the worker pushes its rearm.
  ::epoll_ctl(reactor.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  WorkItem item;
  item.conn = conn;
  item.request = request;
  item.route = route;
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_closed_ || queue_.size() >= options_.queue_capacity) {
      shed = true;
    } else {
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      // Count before the push: once a worker can see the item it may
      // write the response, and stats read after a received response
      // must already include it.
      requests_.fetch_add(1, std::memory_order_relaxed);
      queue_.push_back(std::move(item));
    }
  }
  if (shed) {
    responses_503_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.status_code = 503;
    response.keep_alive = false;
    response.body = "{\"error\":\"request queue full; retry with backoff\"}";
    WriteDirect(reactor, conn, response);
    return false;
  }
  queue_cv_.notify_one();
  return false;  // connection now owned by the worker until rearmed
}

bool HttpServer::ServeInline(Reactor& reactor, Connection* conn,
                             const RouteEntry* route, bool path_known,
                             const HttpRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  bool cacheable = route != nullptr && route->cacheable &&
                   static_cast<bool>(epoch_source_) &&
                   (!route->cacheable_if || route->cacheable_if(request));
  if (cacheable && request.NoCache()) {
    reactor.cache.CountBypass();
    cacheable = false;
  }
  std::optional<std::uint64_t> epoch_before;
  std::string_view key;
  if (cacheable) {
    epoch_before = epoch_source_();
    if (!epoch_before.has_value()) {
      // Epoch unsettled (a snapshot cache is stale): the handler must run
      // so the refresh happens and the epoch advances.
      reactor.cache.CountMiss();
      cacheable = false;
    }
  }
  if (cacheable && route->canonical_key) {
    // The canonical key replaces the raw query string, so every spelling
    // of one query shares one entry; an unparseable request serves
    // uncached (the handler's 400 would never be stored anyway).
    cacheable = reactor.cache.BuildKeyWith(request, route->canonical_key,
                                           &key);
  } else if (cacheable) {
    key = reactor.cache.BuildKey(request);
  }
  if (cacheable) {
    if (const std::string* wire = reactor.cache.Lookup(*epoch_before, key)) {
      // Hit: replay the stored bytes verbatim — no handler, no snapshot
      // pin, no allocation.
      const bool write_ok = WriteAll(conn->fd, wire->data(), wire->size());
      if (!write_ok || !request.keep_alive) {
        CloseConnection(reactor, conn);
        return false;
      }
      return true;
    }
  }

  // Render into the reactor's scratch response and serialize the head into
  // the reactor's scratch head buffer: both keep their capacity across
  // requests, so the warmed cold path never allocates.
  HttpResponse& response = reactor.response_scratch;
  response.Reset();
  if (route != nullptr) {
    route->handler(request, &response);
  } else {
    response.status_code = path_known ? 405 : 404;
    response.body = path_known ? "{\"error\":\"method not allowed\"}"
                               : "{\"error\":\"no such endpoint\"}";
  }
  response.keep_alive = response.keep_alive && request.keep_alive;

  std::string& head = reactor.head_scratch;
  head.clear();
  response.SerializeHeadInto(&head);
  const bool write_ok = WritevAll(conn->fd, head, response.body);

  if (cacheable && response.status_code == 200 &&
      response.keep_alive == request.keep_alive) {
    // Store only when the epoch did not move while the handler ran: equal
    // bracketing reads of the monotonic serving epoch prove every snapshot
    // the handler saw belonged to epoch_before, so the bytes are valid for
    // the whole epoch (byte-identical replay).  Pinning the entry builds
    // the contiguous wire string — the one deliberate allocation on this
    // path, paid once per (epoch, key), amortized across every later hit.
    const std::optional<std::uint64_t> epoch_after = epoch_source_();
    if (epoch_after.has_value() && *epoch_after == *epoch_before) {
      std::string wire;
      wire.reserve(head.size() + response.body.size());
      wire.append(head);
      wire.append(response.body);
      reactor.cache.Store(*epoch_before, key, std::move(wire));
    }
  }

  if (!write_ok || !response.keep_alive) {
    CloseConnection(reactor, conn);
    return false;
  }
  return true;
}

void HttpServer::ProcessRearms(Reactor& reactor) {
  std::vector<RearmItem> items;
  {
    std::lock_guard<std::mutex> lock(reactor.rearm_mutex);
    items.swap(reactor.rearms);
  }
  for (const RearmItem& item : items) {
    Connection* conn = item.conn;
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (item.close || stopping_.load(std::memory_order_acquire)) {
      CloseConnection(reactor, conn);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(reactor.epoll_fd, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
      CloseConnection(reactor, conn);
      continue;
    }
    // Pipelined requests already buffered are served without a read (and
    // may bounce the connection straight back to the worker pool).
    DrainParsed(reactor, conn);
  }
}

void HttpServer::CloseConnection(Reactor& reactor, Connection* conn) {
  ::epoll_ctl(reactor.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  reactor.connections.erase(conn->fd);
  ::close(conn->fd);
  delete conn;
}

void HttpServer::WriteDirect(Reactor& reactor, Connection* conn,
                             const HttpResponse& response) {
  const std::string wire = response.Serialize();
  WriteAll(conn->fd, wire.data(), wire.size(), /*timeout_ms=*/1000);
  CloseConnection(reactor, conn);
}

void HttpServer::WorkerLoop() {
  // Per-worker render scratch, reused across every request this thread
  // serves (same capacity-retention discipline as the reactor scratch).
  HttpResponse response;
  std::string head;
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }

    response.Reset();
    item.route->handler(item.request, &response);
    response.keep_alive = response.keep_alive && item.request.keep_alive;

    head.clear();
    response.SerializeHeadInto(&head);
    const bool write_ok = WritevAll(item.conn->fd, head, response.body);

    // Hand the connection back to its owning reactor for re-arming.
    Reactor* owner = item.conn->owner;
    RearmItem rearm;
    rearm.conn = item.conn;
    rearm.close = !write_ok || !response.keep_alive;
    {
      std::lock_guard<std::mutex> lock(owner->rearm_mutex);
      owner->rearms.push_back(rearm);
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(owner->event_fd, &one, sizeof(one));
  }
}

}  // namespace aqua
