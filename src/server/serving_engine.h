#ifndef AQUA_SERVER_SERVING_ENGINE_H_
#define AQUA_SERVER_SERVING_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "registry/builtin.h"
#include "registry/query_response.h"
#include "registry/registry.h"
#include "warehouse/engine.h"

namespace aqua {

/// Configuration of a ServingEngine.  The synopsis selection shares the
/// SynopsisSelection defaults with the warehouse engine; the serving
/// footprint bound applies per synopsis *per shard* (serving deliberately
/// over-provisions shards — the budget-enforcing path is SynopsisCatalog).
struct ServingEngineOptions : SynopsisSelection {
  /// Ingest shards per shardable synopsis.
  std::size_t shards = 8;
  /// Footprint bound per synopsis, in words.
  Words footprint_bound = 4096;
  std::uint64_t seed = 0x19980531ULL;
  /// Snapshot-cache staleness bounds (see SnapshotCache).
  std::int64_t cache_max_stale_ops = 8192;
  std::chrono::nanoseconds cache_max_stale_interval =
      std::chrono::milliseconds(100);
  /// Hand refresh ownership to a background epoch pump (--refresh-mode
  /// pump): query threads never re-merge a warmed snapshot cache; the
  /// pump's thread calls SettleCaches() on its own cadence instead.
  bool external_refresh = false;
};

/// The serving-layer counterpart of ApproximateAnswerEngine: the same query
/// API, but safe under concurrent ingest and queries, and with per-query
/// cost independent of the shard count.
///
/// Like the warehouse engine, this is now a thin driver over one
/// SynopsisRegistry — in concurrent mode, so each handle instantiates the
/// machinery its capabilities permit: mergeable synopses
/// (concise/traditional) shard their ingest across per-lock shards and
/// re-merge on snapshot refresh; unmergeable ones (counting sample, FM
/// sketch) stay single-instance behind one mutex with copy-on-refresh
/// snapshots.  Every query kind answers from epoch-cached snapshots
/// (SnapshotCache) through the registry's single rank-ordered answer path;
/// deletes follow §4.1 per-synopsis semantics and are refused entirely
/// when no delete-capable synopsis is maintained.
class ServingEngine {
 public:
  explicit ServingEngine(const ServingEngineOptions& options);

  /// Registers an additional synopsis served through the same answer path
  /// (call before ingest begins).
  template <RegistrableSynopsis S>
  Status RegisterSynopsis(SynopsisDescriptor<S> descriptor) {
    return registry_.Register(std::move(descriptor));
  }

  /// Ingests a batch of inserted values (thread-safe).
  void InsertBatch(std::span<const Value> values) {
    registry_.InsertBatch(values);
  }

  /// Ingests one delete (thread-safe).  Requires a delete-capable synopsis
  /// (the counting sample); invalidates concise-sample answers from this
  /// point on.
  Status Delete(Value value);

  /// Queries, served from cached snapshots.  Method selection follows the
  /// registry's accuracy ordering; "none" when no usable synopsis remains.
  QueryResponse<HotList> HotListAnswer(const HotListQuery& query) const {
    return registry_.HotListAnswer(query);
  }
  /// Out-param form: fills a caller-owned response in place so a serving
  /// thread reusing one QueryResponse<HotList> answers without allocating
  /// (see SynopsisRegistry::HotListAnswerInto).
  void HotListAnswerInto(const HotListQuery& query,
                         QueryResponse<HotList>* response) const {
    registry_.HotListAnswerInto(query, response);
  }
  QueryResponse<Estimate> FrequencyAnswer(Value value) const {
    return registry_.FrequencyAnswer(value);
  }
  QueryResponse<Estimate> CountWhereAnswer(const ValuePredicate& pred,
                                           double confidence = 0.95) const {
    return registry_.CountWhereAnswer(pred, confidence);
  }
  /// Range form: answered in O(log m) from the epoch's frozen view when
  /// one exists (same estimate as the predicate form).
  QueryResponse<Estimate> CountWhereAnswer(const ValueRange& range,
                                           double confidence = 0.95) const {
    return registry_.CountWhereAnswer(range, confidence);
  }
  QueryResponse<Estimate> DistinctValuesAnswer() const {
    return registry_.DistinctValuesAnswer();
  }
  QueryResponse<Estimate> QuantileAnswer(double q,
                                         double confidence = 0.95) const {
    return registry_.QuantileAnswer(q, confidence);
  }

  struct Stats {
    std::int64_t inserts = 0;
    std::int64_t deletes = 0;
    bool concise_valid = true;
    std::size_t shards = 0;
    Words footprint_bound = 0;
    /// The registry's monotonic serving epoch (see
    /// SynopsisRegistry::ServingEpoch).
    std::uint64_t epoch = 0;
    std::vector<SynopsisHandleStats> synopses;
    /// Per-kind planner observability (chosen synopsis, latency EWMA,
    /// last achieved error) — see PlannerKindStats.
    std::array<PlannerKindStats, kNumQueryKinds> planner = {};
  };
  Stats GetStats() const;

  /// Out-param form of GetStats(): reuses `out`'s vectors and strings, so
  /// a warmed stats endpoint reports without allocating.
  void GetStatsInto(Stats* out) const;

  /// Forwards of the registry's serving-epoch surface (what the HTTP
  /// response cache keys on).
  std::uint64_t ServingEpoch() const { return registry_.ServingEpoch(); }
  bool AnyCacheStale() const { return registry_.AnyCacheStale(); }
  void SettleCaches() const { registry_.SettleCaches(); }

  const SynopsisRegistry& registry() const { return registry_; }
  /// Mutable access for the cluster layer: the aggregator role stages and
  /// applies shipped deltas against the serving registry (PrepareDeltaMerge
  /// / CompleteMergeRound), which need non-const handles.
  SynopsisRegistry* mutable_registry() { return &registry_; }

  std::int64_t observed_inserts() const {
    return registry_.observed_inserts();
  }
  std::int64_t observed_deletes() const {
    return registry_.observed_deletes();
  }

 private:
  ServingEngineOptions options_;
  SynopsisRegistry registry_;
};

}  // namespace aqua

#endif  // AQUA_SERVER_SERVING_ENGINE_H_
