#ifndef AQUA_SERVER_SERVING_ENGINE_H_
#define AQUA_SERVER_SERVING_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "concurrency/sharded_synopsis.h"
#include "concurrency/snapshot_cache.h"
#include "concurrency/shared_synopsis.h"
#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "sketch/flajolet_martin.h"
#include "warehouse/engine.h"

namespace aqua {

/// Configuration of a ServingEngine.
struct ServingEngineOptions {
  /// Ingest shards for the concise sample (kRoundRobin routing).
  std::size_t shards = 8;
  /// Footprint bound per synopsis, in words.
  Words footprint_bound = 4096;
  std::uint64_t seed = 0x19980531ULL;
  /// Counting sample (most accurate hot lists; exact delete handling).
  bool maintain_counting = true;
  /// [FM85] sketch for /distinct.
  bool maintain_distinct_sketch = true;
  /// Snapshot-cache staleness bounds (see SnapshotCache).
  std::int64_t cache_max_stale_ops = 8192;
  std::chrono::nanoseconds cache_max_stale_interval =
      std::chrono::milliseconds(100);
};

/// The serving-layer counterpart of ApproximateAnswerEngine: the same query
/// API, but safe under concurrent ingest and queries, and with per-query
/// cost independent of the shard count.
///
/// Ingest side: inserts land in a ShardedSynopsis<ConciseSample>
/// (round-robin, one lock per shard) and a SharedSynopsis<CountingSample>
/// (counting samples are deliberately unmergeable — DESIGN.md §6 — so they
/// stay single-instance behind one mutex); the FM sketch takes its own
/// short lock.  Deletes go to the counting sample (exact, Theorem 5) and
/// permanently invalidate the concise sample, mirroring the engine's §4.1
/// semantics.
///
/// Query side: answers are computed over *epoch-cached snapshots*
/// (SnapshotCache) instead of merging shards or locking the ingest
/// structures per request — a query costs a pointer load plus the answer
/// computation, and snapshots trail ingest by at most the configured
/// staleness bound.  Responses' response_ns includes the cache access, so
/// serving-latency benchmarks measure the path clients actually see.
class ServingEngine {
 public:
  explicit ServingEngine(const ServingEngineOptions& options);

  /// Ingests a batch of inserted values (thread-safe).
  void InsertBatch(std::span<const Value> values);

  /// Ingests one delete (thread-safe).  Requires the counting sample;
  /// invalidates concise-sample answers from this point on.
  Status Delete(Value value);

  /// Queries, served from cached snapshots.  Method selection follows the
  /// engine's accuracy ordering; "none" when no usable synopsis remains.
  QueryResponse<HotList> HotListAnswer(const HotListQuery& query) const;
  QueryResponse<Estimate> FrequencyAnswer(Value value) const;
  QueryResponse<Estimate> CountWhereAnswer(const ValuePredicate& pred,
                                           double confidence = 0.95) const;
  QueryResponse<Estimate> DistinctValuesAnswer() const;

  struct Stats {
    std::int64_t inserts = 0;
    std::int64_t deletes = 0;
    bool concise_valid = true;
    std::size_t shards = 0;
    Words footprint_bound = 0;
    std::uint64_t concise_epoch = 0;
    std::uint64_t counting_epoch = 0;
    SnapshotCache<ConciseSample>::CacheStats concise_cache;
    SnapshotCache<CountingSample>::CacheStats counting_cache;
  };
  Stats GetStats() const;

  std::int64_t observed_inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }
  std::int64_t observed_deletes() const {
    return deletes_.load(std::memory_order_relaxed);
  }

 private:
  /// Cached snapshots pinned for the duration of one answer computation.
  struct PinnedSnapshots {
    std::shared_ptr<const CountingSample> counting;
    std::shared_ptr<const ConciseSample> concise;
  };
  PinnedSnapshots Pin(bool need_counting, bool need_concise) const;

  ServingEngineOptions options_;
  ShardedSynopsis<ConciseSample> concise_;
  std::unique_ptr<SharedSynopsis<CountingSample>> counting_;
  mutable std::mutex sketch_mutex_;
  std::unique_ptr<FlajoletMartin> distinct_sketch_;

  SnapshotCache<ConciseSample> concise_cache_;
  std::unique_ptr<SnapshotCache<CountingSample>> counting_cache_;

  std::atomic<std::int64_t> inserts_{0};
  std::atomic<std::int64_t> deletes_{0};
  /// Cleared by the first delete: concise samples cannot be maintained
  /// under deletions (§4.1), so concise-based answers stop being served.
  std::atomic<bool> concise_valid_{true};
};

}  // namespace aqua

#endif  // AQUA_SERVER_SERVING_ENGINE_H_
