#include "server/epoch_pump.h"

#include <algorithm>
#include <utility>

namespace aqua {

EpochPump::EpochPump(const EpochPumpOptions& options) : options_(options) {}

EpochPump::~EpochPump() { Stop(); }

void EpochPump::AddDomain(std::string name, std::function<bool()> stale,
                          std::function<void()> settle) {
  auto domain = std::make_unique<Domain>();
  domain->name = std::move(name);
  domain->stale = std::move(stale);
  domain->settle = std::move(settle);
  domains_.push_back(std::move(domain));
}

void EpochPump::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_release);
  for (auto& domain : domains_) {
    domain->thread = std::thread([this, d = domain.get()] { PumpLoop(*d); });
  }
}

void EpochPump::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& domain : domains_) {
    if (domain->thread.joinable()) domain->thread.join();
  }
}

void EpochPump::PumpLoop(Domain& domain) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, options_.interval,
                   [this] { return stop_.load(std::memory_order_acquire); });
      if (stop_.load(std::memory_order_acquire)) return;
    }
    domain.ticks.fetch_add(1, std::memory_order_relaxed);
    if (!domain.stale()) {
      domain.behind.store(0, std::memory_order_relaxed);
      continue;
    }
    // Mark the domain behind before the settle so a concurrent Stats()
    // read during a long merge reports the backlog truthfully.
    domain.behind.store(1, std::memory_order_relaxed);
    std::int64_t backlog = 0;
    for (const auto& other : domains_) {
      backlog += other->behind.load(std::memory_order_relaxed);
    }
    std::int64_t seen = max_backlog_.load(std::memory_order_relaxed);
    while (backlog > seen &&
           !max_backlog_.compare_exchange_weak(seen, backlog,
                                               std::memory_order_relaxed)) {
    }
    domain.settle();
    domain.refreshes.fetch_add(1, std::memory_order_relaxed);
    domain.behind.store(domain.stale() ? 1 : 0, std::memory_order_relaxed);
  }
}

EpochPump::Stats EpochPump::GetStats() const {
  Stats stats;
  stats.domains = domains_.size();
  stats.max_backlog = max_backlog_.load(std::memory_order_relaxed);
  for (const auto& domain : domains_) {
    stats.ticks += domain->ticks.load(std::memory_order_relaxed);
    stats.refreshes += domain->refreshes.load(std::memory_order_relaxed);
    stats.backlog += domain->behind.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace aqua
