#ifndef AQUA_SERVER_HTTP_H_
#define AQUA_SERVER_HTTP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aqua {

/// One decoded key=value pair viewed inside parser-owned storage.
struct QueryParamView {
  std::string_view key;
  std::string_view value;
};

/// One header field viewed inside parser-owned storage.
struct HeaderView {
  std::string_view key;
  std::string_view value;
};

/// One parsed HTTP/1.1 request.
///
/// Every field is a view into storage owned by the HttpRequestParser that
/// produced it: the raw connection buffer (method, header fields, body) and
/// the parser's percent-decode arena (path, query pairs).  Copying an
/// HttpRequest copies the views, never the bytes, so handing a request to a
/// worker thread is a fixed-size memcpy with zero allocations.  The views
/// stay valid until the parser's next Feed or Reparse call — examine or
/// deep-copy the request before pumping the parser again.
struct HttpRequest {
  /// Fixed slot counts: requests carrying more query parameters or header
  /// fields than this are rejected as malformed (kError) rather than
  /// spilling to the heap.  Generous for an AQP endpoint whose busiest
  /// route takes three parameters.
  static constexpr std::size_t kMaxQueryParams = 16;
  static constexpr std::size_t kMaxHeaders = 32;

  std::string_view method;
  /// Path component of the request target (before '?'), percent-decoded.
  std::string_view path;
  /// Decoded key=value pairs from the query string, in request order.
  /// The parser is the ONE place the query string is split and
  /// percent-decoded, so every route handler sees the same decode;
  /// duplicate keys are kept in order and QueryParam returns the first
  /// (first-wins, matching the typed accessors below).
  QueryParamView query[kMaxQueryParams];
  std::size_t query_count = 0;
  HeaderView headers[kMaxHeaders];
  std::size_t header_count = 0;
  std::string_view body;
  bool keep_alive = true;

  /// First query parameter named `name` (decoded), if present.
  std::optional<std::string_view> QueryParam(std::string_view name) const;
  /// Typed accessors: the fallback is returned when the parameter is
  /// absent; std::nullopt is returned when it is present but malformed
  /// (callers turn that into a 400).
  std::optional<std::int64_t> QueryInt(std::string_view name,
                                       std::int64_t fallback) const;
  std::optional<double> QueryDouble(std::string_view name,
                                    double fallback) const;
  /// First header named `name` (case-insensitive), if present.
  std::optional<std::string_view> Header(std::string_view name) const;

  /// True when a Cache-Control header lists the no-cache directive — the
  /// client is asking for a freshly computed answer, so the response cache
  /// must be bypassed for this request.
  bool NoCache() const;

  /// Appends the canonical query-string form to *out: pairs sorted by key
  /// (stable, so duplicate keys keep their request order and first-wins
  /// semantics survive the reordering), each key and value re-encoded with
  /// a fixed percent-escape alphabet.  Two requests canonicalize equal iff
  /// every handler observes them identically through QueryParam/QueryInt/
  /// QueryDouble — this is the form the response cache keys on.  `scratch`
  /// holds sort indices and keeps its capacity across calls so a warmed
  /// caller appends without allocating.
  void AppendCanonicalQuery(std::string* out,
                            std::vector<std::uint32_t>* scratch) const;

  /// Allocating convenience form of AppendCanonicalQuery.
  std::string CanonicalQuery() const;
};

/// One HTTP response about to be serialized.
///
/// Designed for reuse: a reactor keeps one HttpResponse as scratch and
/// Reset()s it per request, so body/content_type keep their capacity and a
/// warmed serving loop renders without touching the allocator.
struct HttpResponse {
  int status_code = 200;
  std::string content_type = "application/json";
  std::string body;
  bool keep_alive = true;

  /// Restores defaults while keeping string capacity (clear, not shrink).
  void Reset();

  /// Appends the head (status line + headers + blank line, no body) to
  /// *out.  The caller sends head and body as two iovecs — the wire bytes
  /// are identical to Serialize() without ever concatenating them.
  void SerializeHeadInto(std::string* out) const;

  /// Full wire form: status line, headers (Content-Length, Content-Type,
  /// Connection), blank line, body.  Allocating convenience used by the
  /// response cache when pinning an entry and by tests.
  std::string Serialize() const;
};

/// Canonical reason phrase for the status codes the server emits.
std::string_view HttpStatusText(int code);

/// Incremental HTTP/1.1 request parser: feed raw bytes as they arrive on
/// the socket; when a full request (headers + declared body) is buffered,
/// state() turns kComplete and TakeRequest() yields it, retaining any
/// pipelined leftover bytes for the next request.  Malformed or oversized
/// input turns the state kError with a human-readable reason; the
/// connection should answer 400 and close.
///
/// Allocation discipline: the connection buffer and the percent-decode
/// arena are the only storage, and both retain capacity across requests.
/// Completed-request bytes are consumed lazily — TakeRequest just records
/// the prefix length, and the next TryParse compacts the buffer in place —
/// so a warmed keep-alive connection parses every subsequent request with
/// zero allocations.  The produced HttpRequest views that storage (see
/// HttpRequest), valid until the next Feed/Reparse.
///
/// Scope (what an AQP serving endpoint needs, nothing more): GET/POST with
/// Content-Length bodies.  No chunked transfer-encoding (411 upstream), no
/// multiline header folding (rejected), no trailers.
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  struct Limits {
    std::size_t max_header_bytes = 16 * 1024;
    std::size_t max_body_bytes = 8 * 1024 * 1024;
  };

  HttpRequestParser() = default;
  explicit HttpRequestParser(const Limits& limits) : limits_(limits) {}

  /// Appends bytes and attempts to complete a request.  Returns the state
  /// after consuming them (kComplete leaves further pipelined bytes
  /// buffered).  Invalidates views of any previously returned request.
  State Feed(std::string_view bytes);

  /// Attempts to parse a complete request out of already-buffered bytes
  /// (used after TakeRequest to surface pipelined requests without a read).
  /// Invalidates views of any previously returned request.
  State Reparse();

  State state() const { return state_; }
  const std::string& error() const { return error_; }

  /// Returns the completed request (a fixed-size copy of the views) and
  /// resets to parse the next one.  Only valid in kComplete.  The views
  /// stay valid until the next Feed/Reparse on this parser.
  HttpRequest TakeRequest();

  /// Bytes buffered but not yet consumed by a completed request.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  /// Percent-decodes `in` (+ is *not* treated as space; targets only), or
  /// returns std::nullopt on malformed escapes.
  static std::optional<std::string> PercentDecode(std::string_view in);

 private:
  State Fail(std::string reason);
  State TryParse();
  /// Percent-decodes `in` by appending to arena_; returns a view of the
  /// appended region, or std::nullopt on malformed escapes.  arena_ is
  /// reserved to max_header_bytes up front and decoding never expands its
  /// input, so appends never reallocate and earlier views stay valid.
  std::optional<std::string_view> DecodeIntoArena(std::string_view in);

  Limits limits_;
  std::string buffer_;
  /// Prefix of buffer_ already consumed by completed requests; compacted
  /// away at the start of the next TryParse (views are dead by then).
  std::size_t consumed_ = 0;
  /// Decoded path and query bytes for the current request.
  std::string arena_;
  HttpRequest request_;
  State state_ = State::kNeedMore;
  std::string error_;
};

}  // namespace aqua

#endif  // AQUA_SERVER_HTTP_H_
