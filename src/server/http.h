#ifndef AQUA_SERVER_HTTP_H_
#define AQUA_SERVER_HTTP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aqua {

/// One parsed HTTP/1.1 request.
struct HttpRequest {
  std::string method;
  /// Path component of the request target (before '?'), percent-decoded.
  std::string path;
  /// Decoded key=value pairs from the query string, in request order.
  /// The parser is the ONE place the query string is split and
  /// percent-decoded, so every route handler sees the same decode;
  /// duplicate keys are kept in order and QueryParam returns the first
  /// (first-wins, matching the typed accessors below).
  std::vector<std::pair<std::string, std::string>> query;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  /// First query parameter named `name` (decoded), if present.
  std::optional<std::string_view> QueryParam(std::string_view name) const;
  /// Typed accessors: the fallback is returned when the parameter is
  /// absent; std::nullopt is returned when it is present but malformed
  /// (callers turn that into a 400).
  std::optional<std::int64_t> QueryInt(std::string_view name,
                                       std::int64_t fallback) const;
  std::optional<double> QueryDouble(std::string_view name,
                                    double fallback) const;
  /// First header named `name` (case-insensitive), if present.
  std::optional<std::string_view> Header(std::string_view name) const;

  /// True when a Cache-Control header lists the no-cache directive — the
  /// client is asking for a freshly computed answer, so the response cache
  /// must be bypassed for this request.
  bool NoCache() const;

  /// Appends the canonical query-string form to *out: pairs sorted by key
  /// (stable, so duplicate keys keep their request order and first-wins
  /// semantics survive the reordering), each key and value re-encoded with
  /// a fixed percent-escape alphabet.  Two requests canonicalize equal iff
  /// every handler observes them identically through QueryParam/QueryInt/
  /// QueryDouble — this is the form the response cache keys on.  `scratch`
  /// holds sort indices and keeps its capacity across calls so a warmed
  /// caller appends without allocating.
  void AppendCanonicalQuery(std::string* out,
                            std::vector<std::uint32_t>* scratch) const;

  /// Allocating convenience form of AppendCanonicalQuery.
  std::string CanonicalQuery() const;
};

/// One HTTP response about to be serialized.
struct HttpResponse {
  int status_code = 200;
  std::string content_type = "application/json";
  std::string body;
  bool keep_alive = true;

  /// Full wire form: status line, headers (Content-Length, Content-Type,
  /// Connection), blank line, body.
  std::string Serialize() const;
};

/// Canonical reason phrase for the status codes the server emits.
std::string_view HttpStatusText(int code);

/// Incremental HTTP/1.1 request parser: feed raw bytes as they arrive on
/// the socket; when a full request (headers + declared body) is buffered,
/// state() turns kComplete and TakeRequest() yields it, retaining any
/// pipelined leftover bytes for the next request.  Malformed or oversized
/// input turns the state kError with a human-readable reason; the
/// connection should answer 400 and close.
///
/// Scope (what an AQP serving endpoint needs, nothing more): GET/POST with
/// Content-Length bodies.  No chunked transfer-encoding (411 upstream), no
/// multiline header folding (rejected), no trailers.
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  struct Limits {
    std::size_t max_header_bytes = 16 * 1024;
    std::size_t max_body_bytes = 8 * 1024 * 1024;
  };

  HttpRequestParser() = default;
  explicit HttpRequestParser(const Limits& limits) : limits_(limits) {}

  /// Appends bytes and attempts to complete a request.  Returns the state
  /// after consuming them (kComplete leaves further pipelined bytes
  /// buffered).
  State Feed(std::string_view bytes);

  /// Attempts to parse a complete request out of already-buffered bytes
  /// (used after TakeRequest to surface pipelined requests without a read).
  State Reparse();

  State state() const { return state_; }
  const std::string& error() const { return error_; }

  /// Moves the completed request out and resets to parse the next one.
  /// Only valid in kComplete.
  HttpRequest TakeRequest();

  /// Bytes buffered but not yet consumed by a completed request.
  std::size_t buffered_bytes() const { return buffer_.size(); }

  /// Percent-decodes `in` (+ is *not* treated as space; targets only), or
  /// returns std::nullopt on malformed escapes.
  static std::optional<std::string> PercentDecode(std::string_view in);

 private:
  State Fail(std::string reason);
  State TryParse();

  Limits limits_;
  std::string buffer_;
  HttpRequest request_;
  State state_ = State::kNeedMore;
  std::string error_;
};

}  // namespace aqua

#endif  // AQUA_SERVER_HTTP_H_
