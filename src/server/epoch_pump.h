#ifndef AQUA_SERVER_EPOCH_PUMP_H_
#define AQUA_SERVER_EPOCH_PUMP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace aqua {

/// Configuration of an EpochPump.
struct EpochPumpOptions {
  /// Pacing: each domain's thread wakes at this cadence to check its
  /// staleness bounds.  Epoch freshness is already bounded by the snapshot
  /// caches' max_stale_interval; the pump interval only needs to be
  /// comfortably below it.
  std::chrono::milliseconds interval{20};
};

/// The background owner of epoch refreshes (--refresh-mode pump).
///
/// In inline refresh mode, the query thread that first trips a staleness
/// bound pays the re-merge + view build inside its request — the epoch
/// boundary shows up as a latency spike at the tail.  The pump moves that
/// work off-path: each registered *domain* (the serving engine's registry,
/// a catalog) gets a dedicated thread that wakes on a fixed cadence,
/// checks the domain's staleness bounds, and runs its SettleCaches() —
/// which, with SnapshotCache::Options::external_refresh set, is the ONLY
/// place re-merges happen.  Query-thread Get() on a warmed cache is then
/// always a constant-time pointer copy, epoch boundary or not.
///
/// One thread per domain keeps a slow attribute's merge from delaying the
/// engine's cadence.  Threads start at Start() and stop (cv-interrupted,
/// no lingering sleep) at Stop()/destruction; Add*() must happen before
/// Start().
class EpochPump {
 public:
  explicit EpochPump(const EpochPumpOptions& options = {});
  ~EpochPump();

  EpochPump(const EpochPump&) = delete;
  EpochPump& operator=(const EpochPump&) = delete;

  /// Registers one refresh domain: `stale` reports whether any of its
  /// snapshot caches is past a staleness bound, `settle` refreshes them.
  /// Both are called from the domain's pump thread only (they must be
  /// thread-safe against ingest/queries, which SettleCaches already is).
  void AddDomain(std::string name, std::function<bool()> stale,
                 std::function<void()> settle);

  /// Spawns one pump thread per registered domain.  Idempotent.
  void Start();

  /// Stops and joins every pump thread.  Idempotent; called by the
  /// destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  struct Stats {
    /// Wakeups across all domain threads.
    std::int64_t ticks = 0;
    /// Settle passes that found a stale cache and ran a refresh.
    std::int64_t refreshes = 0;
    /// Domains whose caches were stale at their most recent tick — work
    /// the pump is behind on right now.
    std::int64_t backlog = 0;
    std::int64_t max_backlog = 0;
    std::size_t domains = 0;
  };
  /// Safe from any thread (relaxed counters).
  Stats GetStats() const;

 private:
  struct Domain {
    std::string name;
    std::function<bool()> stale;
    std::function<void()> settle;
    std::thread thread;
    /// 1 while the domain's last tick saw a stale cache.
    std::atomic<int> behind{0};
    std::atomic<std::int64_t> ticks{0};
    std::atomic<std::int64_t> refreshes{0};
  };

  void PumpLoop(Domain& domain);

  EpochPumpOptions options_;
  std::vector<std::unique_ptr<Domain>> domains_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::int64_t> max_backlog_{0};
};

}  // namespace aqua

#endif  // AQUA_SERVER_EPOCH_PUMP_H_
