#include "server/cluster.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "common/check.h"
#include "persist/checkpoint.h"
#include "random/xoshiro256.h"
#include "server/json.h"

namespace aqua {

namespace {

/// {"error": message} with the given status code (mirrors routes.cc's
/// helper; the cluster surface keeps the same error shape).
void JsonErrorInto(int code, std::string_view message,
                   HttpResponse* response) {
  response->status_code = code;
  response->body.clear();
  JsonWriter w(&response->body);
  w.BeginObject().Key("error").String(message).EndObject();
}

}  // namespace

SynopsisSelection ClusterSelection() {
  SynopsisSelection selection;
  selection.maintain_counting = false;
  selection.maintain_distinct_sketch = false;
  return selection;
}

std::uint64_t DeltaSeed(std::uint64_t node_seed, std::uint64_t seq) {
  std::uint64_t state = node_seed + 0x9e3779b97f4a7c15ULL * seq;
  return SplitMix64Next(state);
}

DeltaRegistryFactory MakeClusterDeltaFactory(Words footprint_bound) {
  return [footprint_bound](std::uint64_t seed) {
    SynopsisRegistry::Options options;
    options.mode = ExecutionMode::kUnsynchronized;
    options.shards = 1;
    options.seed = seed;
    auto registry = std::make_unique<SynopsisRegistry>(options);
    BuiltinBounds bounds;
    bounds.single = footprint_bound;
    bounds.sharded = footprint_bound;
    AQUA_CHECK(
        RegisterBuiltinSynopses(*registry, ClusterSelection(), bounds).ok());
    return registry;
  };
}

const char* ClusterRoleName(ClusterRole role) {
  switch (role) {
    case ClusterRole::kSingle:
      return "single";
    case ClusterRole::kIngest:
      return "ingest";
    case ClusterRole::kAggregator:
      return "aggregator";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// DeltaAcceptor

Result<DeltaAcceptor::AcceptOutcome> DeltaAcceptor::Accept(
    const DeltaFrame& frame) {
  if (frame.covers_ops < 0) {
    return Status::InvalidArgument("delta frame covers a negative op count");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = last_seq_.find(frame.node_id);
  if (it != last_seq_.end() && frame.seq <= it->second) {
    ++frames_deduped_;
    AcceptOutcome outcome;
    outcome.duplicate = true;
    return outcome;
  }
  // Phase 1: decode + validate every blob before mutating anything, so a
  // frame that cannot apply stays retryable.
  std::vector<std::function<Status()>> appliers;
  appliers.reserve(frame.synopses.size());
  for (const auto& [name, bytes] : frame.synopses) {
    AQUA_ASSIGN_OR_RETURN(std::function<Status()> apply,
                          registry_->PrepareDeltaMerge(name, bytes));
    appliers.push_back(std::move(apply));
  }
  // Record the seq before phase 2: once any merge lands, a retried frame
  // must dedupe — double-applying a delta is worse than dropping the tail
  // of one (a mid-apply failure here means a config mismatch between the
  // node and the aggregator, not a transient).
  last_seq_[frame.node_id] = frame.seq;
  for (const auto& apply : appliers) {
    AQUA_RETURN_NOT_OK(apply());
  }
  registry_->NoteExternalInserts(frame.covers_ops);
  registry_->CompleteMergeRound();
  ops_applied_ += frame.covers_ops;
  ++frames_accepted_;
  return AcceptOutcome{};
}

DeltaAcceptor::Stats DeltaAcceptor::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.merge_rounds = registry_->merge_rounds();
  stats.ops_applied = ops_applied_;
  stats.frames_accepted = frames_accepted_;
  stats.frames_deduped = frames_deduped_;
  stats.nodes.assign(last_seq_.begin(), last_seq_.end());
  return stats;
}

// ---------------------------------------------------------------------------
// IngestReplicator

IngestReplicator::IngestReplicator(SynopsisRegistry* main_registry,
                                   DeltaRegistryFactory delta_factory,
                                   IngestReplicatorOptions options)
    : main_(main_registry),
      delta_factory_(std::move(delta_factory)),
      options_(std::move(options)) {}

IngestReplicator::~IngestReplicator() { StopPusher(); }

std::string IngestReplicator::WalPath() const {
  return options_.data_dir + "/wal.log";
}

std::string IngestReplicator::CheckpointPath() const {
  return options_.data_dir + "/checkpoint.bin";
}

Result<std::vector<std::pair<std::string, std::vector<std::uint8_t>>>>
IngestReplicator::EncodeRegistryState(const SynopsisRegistry& registry) const {
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> out;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const SynopsisHandle* handle = registry.handle_at(i);
    if (!handle->Capabilities().persistable || !handle->valid()) continue;
    AQUA_ASSIGN_OR_RETURN(std::vector<std::uint8_t> state,
                          handle->EncodeState());
    out.emplace_back(std::string(handle->Name()), std::move(state));
  }
  return out;
}

Result<std::vector<std::uint8_t>> IngestReplicator::EncodeDeltaRound(
    std::uint64_t seq, std::int64_t covers) {
  DeltaFrame frame;
  frame.node_id = options_.node_id;
  frame.seq = seq;
  frame.covers_ops = covers;
  AQUA_ASSIGN_OR_RETURN(frame.synopses, EncodeRegistryState(*delta_));
  return EncodeDeltaFrame(frame);
}

Status IngestReplicator::Init() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (initialized_) {
    return Status::FailedPrecondition("replicator already initialized");
  }
  if (options_.data_dir.empty()) {
    return Status::InvalidArgument("ingest role requires a data dir");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.data_dir, ec);
  if (ec) {
    return Status::Internal("cannot create data dir " + options_.data_dir +
                            ": " + ec.message());
  }

  // 1. Checkpoint: the full state at a known op count, plus the delta
  //    round in progress when it was written.
  Result<NodeCheckpoint> checkpoint = ReadNodeCheckpointFile(CheckpointPath());
  if (checkpoint.ok()) {
    const NodeCheckpoint& cp = checkpoint.ValueOrDie();
    op_count_ = cp.op_count;
    next_seq_ = cp.next_seq;
    exported_up_to_ = cp.exported_up_to;
    last_checkpoint_ops_ = cp.op_count;
    for (const CheckpointBlob& blob : cp.full) {
      SynopsisHandle* handle = main_->mutable_handle(blob.name);
      if (handle == nullptr) {
        return Status::InvalidArgument("checkpoint names unknown synopsis " +
                                       blob.name);
      }
      AQUA_RETURN_NOT_OK(handle->RestoreState(blob.state));
    }
    main_->NoteExternalInserts(op_count_);
    delta_ = delta_factory_(DeltaSeed(options_.node_seed, next_seq_));
    for (const CheckpointBlob& blob : cp.delta) {
      SynopsisHandle* handle = delta_->mutable_handle(blob.name);
      if (handle == nullptr) {
        return Status::InvalidArgument("checkpoint names unknown synopsis " +
                                       blob.name);
      }
      AQUA_RETURN_NOT_OK(handle->RestoreState(blob.state));
    }
    delta_->NoteExternalInserts(op_count_ - exported_up_to_);
    recovered_checkpoint_ = true;
  } else if (checkpoint.status().code() == StatusCode::kNotFound) {
    delta_ = delta_factory_(DeltaSeed(options_.node_seed, next_seq_));
  } else {
    return checkpoint.status();
  }

  // 2. WAL suffix: replay the ops written after the checkpoint, tolerating
  //    (and truncating) a tail torn by SIGKILL mid-append.
  Result<WalContents> wal_read = ReadWalFile(WalPath(), WalReadMode::kTolerateTornTail);
  if (!wal_read.ok()) {
    if (wal_read.status().code() != StatusCode::kNotFound) {
      return wal_read.status();
    }
    wal_ = std::make_unique<WalWriter>(WalPath(), op_count_,
                                       WalWriter::OpenMode::kTruncate);
    AQUA_RETURN_NOT_OK(wal_->status());
    initialized_ = true;
    return Status::OK();
  }
  const WalContents& wal = wal_read.ValueOrDie();
  // Skip-prefix rule: a crash between the checkpoint rename and the WAL
  // rotation leaves a WAL whose base predates the checkpoint; the first
  // (op_count - base) op records are already folded into the checkpoint.
  std::int64_t skip = op_count_ - wal.base_op_count;
  if (skip < 0) {
    return Status::Internal(
        "WAL base is newer than the checkpoint — the checkpoint file was "
        "lost; cannot recover");
  }
  for (const WalRecord& record : wal.records) {
    switch (record.type) {
      case WalRecordType::kOp: {
        if (skip > 0) {
          --skip;
          break;
        }
        AQUA_RETURN_NOT_OK(main_->Observe(record.op));
        AQUA_RETURN_NOT_OK(delta_->Observe(record.op));
        ++op_count_;
        ++recovered_ops_;
        break;
      }
      case WalRecordType::kExport: {
        if (record.seq < next_seq_) break;  // committed before checkpoint
        if (pending_.has_value()) {
          return Status::Internal("WAL has overlapping export markers");
        }
        if (record.up_to != op_count_) {
          return Status::Internal(
              "WAL export marker disagrees with the replayed op count");
        }
        PendingFrame frame;
        frame.seq = record.seq;
        frame.up_to = record.up_to;
        frame.covers_ops = record.up_to - exported_up_to_;
        // Re-derive the frame the crash interrupted: the delta registry's
        // state is a pure function of (seed, op sequence), both replayed,
        // so these bytes match the ones originally pushed and the
        // aggregator's (node, seq) dedupe handles the re-push.
        AQUA_ASSIGN_OR_RETURN(frame.bytes,
                              EncodeDeltaRound(frame.seq, frame.covers_ops));
        pending_ = std::move(frame);
        next_seq_ = record.seq + 1;
        delta_ = delta_factory_(DeltaSeed(options_.node_seed, next_seq_));
        break;
      }
      case WalRecordType::kCommit: {
        if (pending_.has_value() && pending_->seq == record.seq) {
          exported_up_to_ = pending_->up_to;
          pending_.reset();
        }
        break;
      }
    }
  }
  if (!wal.clean) {
    std::filesystem::resize_file(WalPath(), wal.valid_bytes, ec);
    if (ec) {
      return Status::Internal("cannot truncate torn WAL tail: " +
                              ec.message());
    }
  }
  wal_ = std::make_unique<WalWriter>(WalPath(), wal.base_op_count,
                                     WalWriter::OpenMode::kAppend);
  AQUA_RETURN_NOT_OK(wal_->status());
  initialized_ = true;
  return Status::OK();
}

Status IngestReplicator::Ingest(std::span<const Value> values) {
  if (values.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!initialized_) {
    return Status::FailedPrecondition("replicator not initialized");
  }
  // WAL first, flushed, then the synopses — the durability order that
  // makes recovered state identical to pre-crash state: an op is either
  // on disk or was never observed.
  for (const Value value : values) {
    wal_->AppendOp(StreamOp::Insert(value));
  }
  AQUA_RETURN_NOT_OK(wal_->Flush());
  main_->InsertBatch(values);
  delta_->InsertBatch(values);
  op_count_ += static_cast<std::int64_t>(values.size());
  return Status::OK();
}

Status IngestReplicator::PushAndCommitLocked(PendingFrame& frame) {
  Status pushed = Status::FailedPrecondition("no push transport configured");
  for (int attempt = 0; attempt < std::max(options_.push_attempts, 1);
       ++attempt) {
    if (attempt > 0) std::this_thread::sleep_for(options_.push_backoff);
    pushed = options_.push_transport ? options_.push_transport(frame.bytes)
                                     : pushed;
    if (pushed.ok()) break;
    ++pushes_failed_;
  }
  if (!pushed.ok()) return pushed;
  ++pushes_ok_;
  if (options_.debug_commit_hold.count() > 0) {
    // Fault-injection window: the frame is acked but not yet committed; a
    // SIGKILL landing here forces the re-push/dedupe path on restart.
    std::this_thread::sleep_for(options_.debug_commit_hold);
  }
  wal_->AppendCommitMarker(frame.seq);
  AQUA_RETURN_NOT_OK(wal_->Flush());
  exported_up_to_ = frame.up_to;
  return Status::OK();
}

Status IngestReplicator::PushNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!initialized_) {
    return Status::FailedPrecondition("replicator not initialized");
  }
  if (pending_.has_value()) {
    AQUA_RETURN_NOT_OK(PushAndCommitLocked(*pending_));
    pending_.reset();
  }
  if (op_count_ <= exported_up_to_) return Status::OK();
  const std::uint64_t seq = next_seq_;
  const std::int64_t covers = op_count_ - exported_up_to_;
  PendingFrame frame;
  frame.seq = seq;
  frame.up_to = op_count_;
  frame.covers_ops = covers;
  AQUA_ASSIGN_OR_RETURN(frame.bytes, EncodeDeltaRound(seq, covers));
  // The export marker durably claims (seq, up_to) before the frame leaves
  // the node; recovery re-derives and re-pushes anything exported but
  // uncommitted.
  wal_->AppendExportMarker(seq, op_count_);
  AQUA_RETURN_NOT_OK(wal_->Flush());
  pending_ = std::move(frame);
  next_seq_ = seq + 1;
  delta_ = delta_factory_(DeltaSeed(options_.node_seed, next_seq_));
  AQUA_RETURN_NOT_OK(PushAndCommitLocked(*pending_));
  pending_.reset();
  return Status::OK();
}

Status IngestReplicator::CheckpointNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!initialized_) {
    return Status::FailedPrecondition("replicator not initialized");
  }
  if (pending_.has_value()) {
    return Status::FailedPrecondition(
        "cannot checkpoint with an uncommitted export pending");
  }
  NodeCheckpoint cp;
  cp.op_count = op_count_;
  cp.next_seq = next_seq_;
  cp.exported_up_to = exported_up_to_;
  AQUA_ASSIGN_OR_RETURN(auto full, EncodeRegistryState(*main_));
  for (auto& [name, state] : full) {
    cp.full.push_back(CheckpointBlob{std::move(name), std::move(state)});
  }
  AQUA_ASSIGN_OR_RETURN(auto delta, EncodeRegistryState(*delta_));
  for (auto& [name, state] : delta) {
    cp.delta.push_back(CheckpointBlob{std::move(name), std::move(state)});
  }
  AQUA_RETURN_NOT_OK(WriteNodeCheckpointFile(cp, CheckpointPath()));
  // Rotate the WAL under the new base.  A crash before this line leaves a
  // WAL older than the checkpoint — the skip-prefix rule in Init() covers
  // exactly that window.
  wal_ = std::make_unique<WalWriter>(WalPath(), op_count_,
                                     WalWriter::OpenMode::kTruncate);
  AQUA_RETURN_NOT_OK(wal_->status());
  ++checkpoints_;
  last_checkpoint_ops_ = op_count_;
  return Status::OK();
}

void IngestReplicator::StartPusher(std::chrono::milliseconds interval,
                                   std::int64_t checkpoint_every_ops) {
  StopPusher();
  {
    std::lock_guard<std::mutex> lock(pusher_mutex_);
    pusher_stop_ = false;
  }
  pusher_ = std::thread([this, interval, checkpoint_every_ops]() {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(pusher_mutex_);
        pusher_cv_.wait_for(lock, interval, [this] { return pusher_stop_; });
        if (pusher_stop_) return;
      }
      (void)PushNow();
      if (checkpoint_every_ops > 0) {
        bool due = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          due = !pending_.has_value() &&
                op_count_ - last_checkpoint_ops_ >= checkpoint_every_ops;
        }
        if (due) (void)CheckpointNow();
      }
    }
  });
}

void IngestReplicator::StopPusher() {
  {
    std::lock_guard<std::mutex> lock(pusher_mutex_);
    pusher_stop_ = true;
  }
  pusher_cv_.notify_all();
  if (pusher_.joinable()) pusher_.join();
}

IngestReplicator::Stats IngestReplicator::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.op_count = op_count_;
  stats.next_seq = next_seq_;
  stats.exported_up_to = exported_up_to_;
  stats.pending = pending_.has_value();
  stats.pending_seq = pending_.has_value() ? pending_->seq : 0;
  stats.pushes_ok = pushes_ok_;
  stats.pushes_failed = pushes_failed_;
  stats.checkpoints = checkpoints_;
  stats.recovered_checkpoint = recovered_checkpoint_;
  stats.recovered_ops = recovered_ops_;
  return stats;
}

// ---------------------------------------------------------------------------
// Routes

void RegisterClusterRoutes(HttpServer& server, ServingEngine& engine,
                           const ClusterRouteConfig& config) {
  if (config.acceptor != nullptr) {
    // POST → worker dispatch under kAuto: merges run off the reactors.
    server.Route(
        "POST", "/cluster/push",
        [acceptor = config.acceptor](const HttpRequest& request,
                                     HttpResponse* response) {
          Result<DeltaFrame> frame = DecodeDeltaFrame(
              reinterpret_cast<const std::uint8_t*>(request.body.data()),
              request.body.size());
          if (!frame.ok()) {
            return JsonErrorInto(400, frame.status().message(), response);
          }
          Result<DeltaAcceptor::AcceptOutcome> outcome =
              acceptor->Accept(frame.ValueOrDie());
          if (!outcome.ok()) {
            const int code =
                outcome.status().code() == StatusCode::kNotFound ? 404 : 409;
            return JsonErrorInto(code, outcome.status().message(), response);
          }
          JsonWriter w(&response->body);
          w.BeginObject();
          w.Key("accepted").Bool(true);
          w.Key("duplicate").Bool(outcome.ValueOrDie().duplicate);
          w.Key("node").String(frame.ValueOrDie().node_id);
          w.Key("seq").UInt(frame.ValueOrDie().seq);
          w.EndObject();
        });
  }

  if (config.replicator != nullptr) {
    server.Route("POST", "/cluster/push_now",
                 [replicator = config.replicator](const HttpRequest&,
                                                  HttpResponse* response) {
                   const Status status = replicator->PushNow();
                   if (!status.ok()) {
                     return JsonErrorInto(409, status.message(), response);
                   }
                   JsonWriter w(&response->body);
                   w.BeginObject().Key("pushed").Bool(true).EndObject();
                 });
    server.Route("POST", "/cluster/checkpoint_now",
                 [replicator = config.replicator](const HttpRequest&,
                                                  HttpResponse* response) {
                   const Status status = replicator->CheckpointNow();
                   if (!status.ok()) {
                     return JsonErrorInto(409, status.message(), response);
                   }
                   JsonWriter w(&response->body);
                   w.BeginObject().Key("checkpointed").Bool(true).EndObject();
                 });
  }

  // Live replication counters; never cached.
  server.Route(
      "GET", "/cluster/status",
      [role = config.role, acceptor = config.acceptor,
       replicator = config.replicator](const HttpRequest&,
                                       HttpResponse* response) {
        JsonWriter w(&response->body);
        w.BeginObject();
        w.Key("role").String(ClusterRoleName(role));
        if (acceptor != nullptr) {
          const DeltaAcceptor::Stats stats = acceptor->GetStats();
          w.Key("merge_rounds").UInt(stats.merge_rounds);
          w.Key("ops_applied").Int(stats.ops_applied);
          w.Key("frames_accepted").Int(stats.frames_accepted);
          w.Key("frames_deduped").Int(stats.frames_deduped);
          w.Key("nodes").BeginArray();
          for (const auto& [node, seq] : stats.nodes) {
            w.BeginObject();
            w.Key("node").String(node);
            w.Key("last_seq").UInt(seq);
            w.EndObject();
          }
          w.EndArray();
        }
        if (replicator != nullptr) {
          const IngestReplicator::Stats stats = replicator->GetStats();
          w.Key("node").String(replicator->node_id());
          w.Key("op_count").Int(stats.op_count);
          w.Key("next_seq").UInt(stats.next_seq);
          w.Key("exported_up_to").Int(stats.exported_up_to);
          w.Key("pending").Bool(stats.pending);
          w.Key("pushes_ok").Int(stats.pushes_ok);
          w.Key("pushes_failed").Int(stats.pushes_failed);
          w.Key("checkpoints").Int(stats.checkpoints);
          w.Key("recovered_checkpoint").Bool(stats.recovered_checkpoint);
          w.Key("recovered_ops").Int(stats.recovered_ops);
        }
        w.EndObject();
      });

  // Serialized synopsis state, for cross-process state comparison (the
  // fault harness byte-compares a recovered node against an oracle).
  // Worker-dispatched: EncodeState snapshots under shard locks.
  RouteOptions on_worker;
  on_worker.dispatch = RouteOptions::Dispatch::kWorker;
  server.Route(
      "GET", "/cluster/state",
      [&engine](const HttpRequest& request, HttpResponse* response) {
        const auto name = request.QueryParam("synopsis");
        if (!name.has_value() || name->empty()) {
          return JsonErrorInto(400, "missing ?synopsis=", response);
        }
        const SynopsisHandle* handle = engine.registry().handle(*name);
        if (handle == nullptr) {
          return JsonErrorInto(404, "no such synopsis", response);
        }
        Result<std::vector<std::uint8_t>> state = handle->EncodeState();
        if (!state.ok()) {
          return JsonErrorInto(409, state.status().message(), response);
        }
        response->content_type = "application/octet-stream";
        response->body.assign(
            reinterpret_cast<const char*>(state.ValueOrDie().data()),
            state.ValueOrDie().size());
      },
      on_worker);
}

}  // namespace aqua
