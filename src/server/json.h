#ifndef AQUA_SERVER_JSON_H_
#define AQUA_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace aqua {

/// Minimal streaming JSON writer for the serving layer's responses.  Scope:
/// objects, arrays, strings (escaped), 64-bit integers, doubles
/// (shortest-round-trip via to_chars; non-finite values emit null, since
/// JSON has no NaN/Inf), booleans and null.  Comma placement is handled by
/// a small nesting stack; misuse (e.g. a value where a key is required)
/// trips an AQUA_CHECK in debug use rather than emitting invalid JSON.
class JsonWriter {
 public:
  /// Deepest container nesting the writer supports; exceeding it trips an
  /// AQUA_CHECK.  Fixed so the nesting stack never allocates (the serving
  /// layer's documents nest 4 deep).
  static constexpr std::size_t kMaxDepth = 32;

  JsonWriter();
  /// External-buffer form: appends to *out (which is NOT cleared first), so
  /// a caller reusing a scratch string emits documents with zero
  /// allocations once the buffer's capacity is warm.  `out` must outlive
  /// the writer; TakeString() is invalid in this mode (the caller already
  /// owns the bytes).
  explicit JsonWriter(std::string* out);

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document built so far.
  const std::string& str() const { return *out_; }
  std::string TakeString() { return std::move(*out_); }

  /// Appends `value` JSON-escaped (without surrounding quotes) to `out`.
  static void Escape(std::string_view value, std::string& out);

 private:
  void BeforeValue();

  std::string owned_;
  /// &owned_, or the caller's buffer in external-buffer mode.
  std::string* out_;
  // One frame per open container: 'O' object, 'A' array; paired with
  // whether a value has been written at this level (comma needed).
  struct Frame {
    char kind;
    bool has_value;
    bool key_pending;
  };
  Frame stack_[kMaxDepth];
  std::size_t depth_ = 0;
};

/// Parses a request body holding a list of attribute values for the ingest
/// endpoints.  Accepts a JSON array of integers (`[1, 2, 3]`) and, as a
/// convenience for curl/scripting, bare whitespace- or comma-separated
/// integers (`1 2 3`).  Fails with InvalidArgument on anything else —
/// including trailing garbage, non-integer tokens, and out-of-range
/// values — and never throws.
Result<std::vector<Value>> ParseValueArray(std::string_view body);

}  // namespace aqua

#endif  // AQUA_SERVER_JSON_H_
