// io_uring implementation of the IoBackend interface, raw syscalls only
// (no liburing).  Gated on AQUA_WITH_IOURING; when the option is off this
// translation unit compiles down to the "unavailable" stubs so the fallback
// factory keeps working.
//
// Shape of the implementation (DESIGN.md §14):
//   - one ring per reactor (IORING_SETUP_SINGLE_ISSUER when the kernel
//     takes it), one io_uring_enter per Poll() that both submits every SQE
//     queued since the last call and waits for completions with an
//     EXT_ARG timeout — so the per-request syscall count amortizes toward
//     zero as connections batch;
//   - multishot accept on the listener, re-armed when the kernel drops
//     IORING_CQE_F_MORE;
//   - receives use a provided buffer ring (IORING_REGISTER_PBUF_RING):
//     the kernel picks a buffer at completion time, the HTTP parser copies
//     out, and the buffer is recycled before the next dispatch;
//   - pinned sends (cached responses) submit IORING_OP_SEND straight from
//     the cache entry's bytes — no copy, no write syscall — with the
//     shared_ptr held until the CQE lands; short sends resubmit the
//     remainder (deliberately NOT IOSQE_IO_LINK chains: a short-but-
//     successful linked send would let its successor run and interleave
//     bytes);
//   - volatile sends (reactor/worker scratch) try one nonblocking writev
//     first and park only the unsent tail, copied into a registered fixed
//     buffer (IORING_OP_WRITE_FIXED) when it fits, else into an owned
//     string sent with IORING_OP_SEND.
#include "server/io_backend.h"

#if defined(AQUA_WITH_IOURING) && defined(__linux__)

#include <errno.h>
#include <stdio.h>
#include <stdlib.h>
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

#ifndef IO_URING_OP_SUPPORTED
#define IO_URING_OP_SUPPORTED (1U << 0)
#endif

namespace aqua {
namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

int SysIoUringRegister(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg,
                                    nr_args));
}

// user_data encoding: connection ops carry the UringConn pointer with a tag
// in the low three bits (heap pointers are >= 8-aligned); ring-level ops use
// small odd sentinels no pointer can equal.
constexpr __u64 kTagMask = 0x7;
constexpr __u64 kTagRecv = 0x1;
constexpr __u64 kTagSend = 0x2;
constexpr __u64 kAcceptData = 0x3;
constexpr __u64 kWakeData = 0x5;
constexpr __u64 kCancelData = 0x7;

constexpr unsigned kSqEntries = 256;
constexpr unsigned kRecvBufCount = 64;  // power of two (pbuf ring rule)
constexpr std::size_t kRecvBufSize = 16384;
constexpr unsigned kFixedSlotCount = 8;
constexpr std::size_t kFixedSlotSize = 65536;
constexpr __u16 kRecvGroupId = 0;

class IoUringBackend final : public IoBackend {
 public:
  IoUringBackend() = default;
  ~IoUringBackend() override { Shutdown(); }

  Status Init(int listen_fd, int wake_fd, Events* events) override {
    listen_fd_ = listen_fd;
    wake_fd_ = wake_fd;
    events_ = events;

    io_uring_params params;
    ::memset(&params, 0, sizeof(params));
    params.flags = IORING_SETUP_SINGLE_ISSUER | IORING_SETUP_COOP_TASKRUN;
    CountSyscall();
    ring_fd_ = SysIoUringSetup(kSqEntries, &params);
    if (ring_fd_ < 0 && (errno == EINVAL || errno == EPERM)) {
      // Older kernel: retry without the newer setup flags.
      ::memset(&params, 0, sizeof(params));
      CountSyscall();
      ring_fd_ = SysIoUringSetup(kSqEntries, &params);
    }
    if (ring_fd_ < 0) {
      return Status::Internal("io_uring_setup failed: " +
                              std::string(::strerror(errno)));
    }
    if (!(params.features & IORING_FEAT_SINGLE_MMAP) ||
        !(params.features & IORING_FEAT_EXT_ARG)) {
      Shutdown();
      return Status::FailedPrecondition(
          "kernel io_uring lacks SINGLE_MMAP/EXT_ARG features");
    }

    const std::size_t sq_size =
        params.sq_off.array + params.sq_entries * sizeof(__u32);
    const std::size_t cq_size =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    ring_map_size_ = sq_size > cq_size ? sq_size : cq_size;
    ring_map_ = ::mmap(nullptr, ring_map_size_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (ring_map_ == MAP_FAILED) {
      ring_map_ = nullptr;
      Shutdown();
      return Status::Internal("io_uring ring mmap failed");
    }
    sqes_map_size_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_map_size_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      Shutdown();
      return Status::Internal("io_uring sqe mmap failed");
    }
    char* ring = static_cast<char*>(ring_map_);
    sq_head_ = reinterpret_cast<std::atomic<unsigned>*>(ring + params.sq_off.head);
    sq_tail_ = reinterpret_cast<std::atomic<unsigned>*>(ring + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(ring + params.sq_off.ring_mask);
    sq_entries_ = params.sq_entries;
    sq_array_ = reinterpret_cast<unsigned*>(ring + params.sq_off.array);
    cq_head_ = reinterpret_cast<std::atomic<unsigned>*>(ring + params.cq_off.head);
    cq_tail_ = reinterpret_cast<std::atomic<unsigned>*>(ring + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(ring + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(ring + params.cq_off.cqes);

    // Provided buffer ring for receives: one page of io_uring_buf entries
    // plus the backing buffer pool, both anonymous mmaps.
    buf_ring_map_size_ = kRecvBufCount * sizeof(io_uring_buf);
    if (buf_ring_map_size_ < 4096) buf_ring_map_size_ = 4096;
    buf_ring_ = static_cast<io_uring_buf_ring*>(
        ::mmap(nullptr, buf_ring_map_size_, PROT_READ | PROT_WRITE,
               MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
    if (buf_ring_ == MAP_FAILED) {
      buf_ring_ = nullptr;
      Shutdown();
      return Status::Internal("io_uring buffer ring mmap failed");
    }
    recv_pool_size_ = static_cast<std::size_t>(kRecvBufCount) * kRecvBufSize;
    recv_pool_ = static_cast<char*>(::mmap(nullptr, recv_pool_size_,
                                           PROT_READ | PROT_WRITE,
                                           MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
    if (recv_pool_ == MAP_FAILED) {
      recv_pool_ = nullptr;
      Shutdown();
      return Status::Internal("io_uring recv pool mmap failed");
    }
    io_uring_buf_reg reg;
    ::memset(&reg, 0, sizeof(reg));
    reg.ring_addr = reinterpret_cast<__u64>(buf_ring_);
    reg.ring_entries = kRecvBufCount;
    reg.bgid = kRecvGroupId;
    CountSyscall();
    if (SysIoUringRegister(ring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
      Shutdown();
      return Status::FailedPrecondition(
          "IORING_REGISTER_PBUF_RING failed: " +
          std::string(::strerror(errno)));
    }
    buf_ring_registered_ = true;
    for (unsigned i = 0; i < kRecvBufCount; ++i) RecycleRecvBuf(i);

    // Registered fixed buffers for parked volatile tails.
    fixed_pool_size_ = static_cast<std::size_t>(kFixedSlotCount) * kFixedSlotSize;
    fixed_pool_ = static_cast<char*>(::mmap(nullptr, fixed_pool_size_,
                                            PROT_READ | PROT_WRITE,
                                            MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
    if (fixed_pool_ == MAP_FAILED) {
      fixed_pool_ = nullptr;
      Shutdown();
      return Status::Internal("io_uring fixed pool mmap failed");
    }
    iovec fixed_iov[kFixedSlotCount];
    for (unsigned i = 0; i < kFixedSlotCount; ++i) {
      fixed_iov[i].iov_base = fixed_pool_ + i * kFixedSlotSize;
      fixed_iov[i].iov_len = kFixedSlotSize;
    }
    CountSyscall();
    if (SysIoUringRegister(ring_fd_, IORING_REGISTER_BUFFERS, fixed_iov,
                           kFixedSlotCount) < 0) {
      // Not fatal: fixed-slot sends just fall back to owned OP_SEND.
      fixed_slots_usable_ = false;
    }
    free_fixed_slots_ = (1u << kFixedSlotCount) - 1;

    ArmAccept();
    ArmWake();
    return Status::OK();
  }

  Status Poll(int timeout_ms) override {
    DeliverDeferred();

    __kernel_timespec ts;
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
    io_uring_getevents_arg arg;
    ::memset(&arg, 0, sizeof(arg));
    arg.ts = reinterpret_cast<__u64>(&ts);
    CountSyscall();
    const int submitted = SysIoUringEnter(
        ring_fd_, unsubmitted_, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
        &arg, sizeof(arg));
    if (trace_) {
      ::fprintf(stderr, "[uring] enter to_submit=%u -> %d errno=%d\n",
                unsubmitted_, submitted, submitted < 0 ? errno : 0);
    }
    if (submitted >= 0) {
      unsubmitted_ -= static_cast<unsigned>(submitted) <= unsubmitted_
                          ? static_cast<unsigned>(submitted)
                          : unsubmitted_;
    } else if (errno != ETIME && errno != EINTR && errno != EBUSY &&
               errno != EAGAIN) {
      return Status::Internal("io_uring_enter failed: " +
                              std::string(::strerror(errno)));
    }

    unsigned head = cq_head_->load(std::memory_order_relaxed);
    for (;;) {
      const unsigned tail = cq_tail_->load(std::memory_order_acquire);
      if (head == tail) break;
      while (head != tail) {
        // Copy the CQE out before releasing the slot back to the kernel.
        const io_uring_cqe cqe = cqes_[head & cq_mask_];
        ++head;
        cq_head_->store(head, std::memory_order_release);
        if (trace_) {
          ::fprintf(stderr, "[uring] cqe ud=%llu res=%d flags=%#x\n",
                    (unsigned long long)cqe.user_data, cqe.res, cqe.flags);
        }
        Dispatch(cqe);
      }
    }
    RearmStarved();
    return Status::OK();
  }

  void* Add(int fd, void* token) override {
    auto* conn = new UringConn();
    conn->fd = fd;
    conn->token = token;
    conn->want_recv = true;
    conns_.insert(conn);
    ArmRecv(conn);
    return conn;
  }

  void SuspendRecv(void* handle) override {
    static_cast<UringConn*>(handle)->want_recv = false;
  }

  void ResumeRecv(void* handle) override {
    auto* conn = static_cast<UringConn*>(handle);
    if (conn->want_recv) return;
    conn->want_recv = true;
    if (conn->recv_armed) return;
    if (!conn->stash.empty() || conn->peer_closed) {
      Defer(conn);
      return;
    }
    ArmRecv(conn);
  }

  SendResult Send(void* handle, std::string_view head, std::string_view body,
                  const std::shared_ptr<const std::string>* pin) override {
    auto* conn = static_cast<UringConn*>(handle);
    // Pinned path: the cache entry outlives the submission, so the bytes
    // go to the ring exactly where they sit — zero copies, zero write
    // syscalls.  Contract: head (+ contiguous body) is one span in *pin.
    if (pin != nullptr && *pin != nullptr &&
        (body.empty() || head.data() + head.size() == body.data())) {
      conn->pin = *pin;
      conn->send_data = head.data();
      conn->send_len = head.size() + body.size();
      conn->send_kind = SendKind::kPinned;
      SubmitSend(conn);
      zero_copy_sends_.fetch_add(1, std::memory_order_relaxed);
      return SendResult::kPending;
    }

    // Volatile path: one nonblocking writev now, park only the tail.
    const std::size_t total = head.size() + body.size();
    std::size_t written = 0;
    while (written < total) {
      iovec iov[2];
      int iovcnt = 0;
      if (written < head.size()) {
        iov[iovcnt].iov_base = const_cast<char*>(head.data()) + written;
        iov[iovcnt].iov_len = head.size() - written;
        ++iovcnt;
      }
      const std::size_t body_done =
          written > head.size() ? written - head.size() : 0;
      if (body_done < body.size()) {
        iov[iovcnt].iov_base = const_cast<char*>(body.data()) + body_done;
        iov[iovcnt].iov_len = body.size() - body_done;
        ++iovcnt;
      }
      CountSyscall();
      const ssize_t n = ::writev(conn->fd, iov, iovcnt);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
        bytes_sent_.fetch_add(n, std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        ParkVolatileTail(conn, head, body, written);
        return SendResult::kPending;
      }
      return SendResult::kError;
    }
    zero_copy_sends_.fetch_add(1, std::memory_order_relaxed);
    return SendResult::kDone;
  }

  bool HasPendingSend(const void* handle) const override {
    return static_cast<const UringConn*>(handle)->send_inflight;
  }

  void StopAccepting() override {
    if (!accepting_) return;
    accepting_ = false;
    io_uring_sqe* sqe = GetSqe();
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->fd = -1;
    sqe->addr = kAcceptData;
    sqe->user_data = kCancelData;
  }

  void Close(void* handle) override {
    auto* conn = static_cast<UringConn*>(handle);
    if (conn->closed) return;
    conn->closed = true;
    if (conn->inflight > 0) {
      // Force any armed recv/send to complete promptly so the deferred
      // free (inflight -> 0) happens instead of waiting on the peer.
      CountSyscall();
      ::shutdown(conn->fd, SHUT_RDWR);
    }
    CountSyscall();
    ::close(conn->fd);
    conn->fd = -1;
    if (conn->inflight == 0) FreeConn(conn);
  }

  void Shutdown() override {
    if (ring_fd_ >= 0) {
      CountSyscall();
      ::close(ring_fd_);  // cancels and reaps every in-flight op
      ring_fd_ = -1;
    }
    for (UringConn* conn : conns_) delete conn;
    conns_.clear();
    deferred_.clear();
    starved_.clear();
    if (sqes_ != nullptr) {
      ::munmap(sqes_, sqes_map_size_);
      sqes_ = nullptr;
    }
    if (ring_map_ != nullptr) {
      ::munmap(ring_map_, ring_map_size_);
      ring_map_ = nullptr;
    }
    if (buf_ring_ != nullptr) {
      ::munmap(buf_ring_, buf_ring_map_size_);
      buf_ring_ = nullptr;
    }
    if (recv_pool_ != nullptr) {
      ::munmap(recv_pool_, recv_pool_size_);
      recv_pool_ = nullptr;
    }
    if (fixed_pool_ != nullptr) {
      ::munmap(fixed_pool_, fixed_pool_size_);
      fixed_pool_ = nullptr;
    }
  }

  IoBackendKind kind() const override { return IoBackendKind::kIoUring; }

  Stats GetStats() const override {
    Stats s;
    s.syscalls = syscalls_.load(std::memory_order_relaxed);
    s.zero_copy_sends = zero_copy_sends_.load(std::memory_order_relaxed);
    s.copied_sends = copied_sends_.load(std::memory_order_relaxed);
    s.copied_bytes = copied_bytes_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  enum class SendKind : std::uint8_t { kNone, kPinned, kFixed, kOwned };

  struct UringConn {
    int fd = -1;
    void* token = nullptr;
    bool want_recv = false;   // core wants delivery
    bool recv_armed = false;  // an OP_RECV SQE/CQE is outstanding
    bool send_inflight = false;
    bool closed = false;
    bool peer_closed = false;  // EOF seen while suspended; delivered later
    bool deferred = false;     // queued on deferred_
    bool starved = false;      // recv hit ENOBUFS; re-armed after reap
    int inflight = 0;          // outstanding ring ops carrying this pointer
    // Send bookkeeping: what SubmitSend is working through.
    SendKind send_kind = SendKind::kNone;
    const char* send_data = nullptr;
    std::size_t send_len = 0;
    std::size_t send_off = 0;
    int fixed_slot = -1;
    std::shared_ptr<const std::string> pin;
    std::string owned;
    // Bytes that completed while the core had recv suspended.
    std::string stash;
  };

  void CountSyscall() { syscalls_.fetch_add(1, std::memory_order_relaxed); }

  io_uring_sqe* GetSqe() {
    unsigned tail = sq_tail_->load(std::memory_order_relaxed);
    while (tail - sq_head_->load(std::memory_order_acquire) == sq_entries_) {
      // Ring full: flush what we have without waiting.
      CountSyscall();
      const int submitted =
          SysIoUringEnter(ring_fd_, unsubmitted_, 0, 0, nullptr, 0);
      if (submitted > 0) {
        unsubmitted_ -= static_cast<unsigned>(submitted) <= unsubmitted_
                            ? static_cast<unsigned>(submitted)
                            : unsubmitted_;
      }
    }
    const unsigned idx = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    ::memset(sqe, 0, sizeof(*sqe));
    sq_array_[idx] = idx;
    sq_tail_->store(tail + 1, std::memory_order_release);
    ++unsubmitted_;
    return sqe;
  }

  void ArmAccept() {
    io_uring_sqe* sqe = GetSqe();
    sqe->opcode = IORING_OP_ACCEPT;
    sqe->fd = listen_fd_;
    sqe->ioprio = IORING_ACCEPT_MULTISHOT;
    sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
    sqe->user_data = kAcceptData;
    accept_armed_ = true;
  }

  void ArmWake() {
    io_uring_sqe* sqe = GetSqe();
    sqe->opcode = IORING_OP_READ;
    sqe->fd = wake_fd_;
    sqe->addr = reinterpret_cast<__u64>(&wake_value_);
    sqe->len = sizeof(wake_value_);
    sqe->user_data = kWakeData;
  }

  void ArmRecv(UringConn* conn) {
    io_uring_sqe* sqe = GetSqe();
    sqe->opcode = IORING_OP_RECV;
    sqe->fd = conn->fd;
    sqe->flags = IOSQE_BUFFER_SELECT;
    sqe->buf_group = kRecvGroupId;
    sqe->user_data = reinterpret_cast<__u64>(conn) | kTagRecv;
    conn->recv_armed = true;
    ++conn->inflight;
  }

  void SubmitSend(UringConn* conn) {
    io_uring_sqe* sqe = GetSqe();
    if (conn->send_kind == SendKind::kFixed && fixed_slots_usable_) {
      sqe->opcode = IORING_OP_WRITE_FIXED;
      sqe->buf_index = static_cast<__u16>(conn->fixed_slot);
    } else {
      sqe->opcode = IORING_OP_SEND;
      sqe->msg_flags = MSG_WAITALL | MSG_NOSIGNAL;
    }
    sqe->fd = conn->fd;
    sqe->addr = reinterpret_cast<__u64>(conn->send_data + conn->send_off);
    sqe->len = static_cast<__u32>(conn->send_len - conn->send_off);
    sqe->user_data = reinterpret_cast<__u64>(conn) | kTagSend;
    conn->send_inflight = true;
    ++conn->inflight;
  }

  void ParkVolatileTail(UringConn* conn, std::string_view head,
                        std::string_view body, std::size_t written) {
    const std::size_t remaining = head.size() + body.size() - written;
    copied_sends_.fetch_add(1, std::memory_order_relaxed);
    copied_bytes_.fetch_add(static_cast<std::int64_t>(remaining),
                            std::memory_order_relaxed);
    const int slot = AcquireFixedSlot();
    if (slot >= 0 && remaining <= kFixedSlotSize) {
      char* dst = fixed_pool_ + static_cast<std::size_t>(slot) * kFixedSlotSize;
      std::size_t n = 0;
      if (written < head.size()) {
        ::memcpy(dst, head.data() + written, head.size() - written);
        n = head.size() - written;
      }
      const std::size_t body_done =
          written > head.size() ? written - head.size() : 0;
      if (body_done < body.size()) {
        ::memcpy(dst + n, body.data() + body_done, body.size() - body_done);
        n += body.size() - body_done;
      }
      conn->fixed_slot = slot;
      conn->send_data = dst;
      conn->send_len = n;
      conn->send_kind = SendKind::kFixed;
    } else {
      if (slot >= 0) ReleaseFixedSlot(slot);
      conn->owned.clear();
      if (written < head.size()) conn->owned.append(head.substr(written));
      const std::size_t body_done =
          written > head.size() ? written - head.size() : 0;
      if (body_done < body.size()) conn->owned.append(body.substr(body_done));
      conn->send_data = conn->owned.data();
      conn->send_len = conn->owned.size();
      conn->send_kind = SendKind::kOwned;
    }
    conn->send_off = 0;
    SubmitSend(conn);
  }

  int AcquireFixedSlot() {
    if (!fixed_slots_usable_ || free_fixed_slots_ == 0) return -1;
    for (unsigned i = 0; i < kFixedSlotCount; ++i) {
      if (free_fixed_slots_ & (1u << i)) {
        free_fixed_slots_ &= ~(1u << i);
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void ReleaseFixedSlot(int slot) { free_fixed_slots_ |= 1u << slot; }

  void ReleaseSendState(UringConn* conn) {
    if (conn->fixed_slot >= 0) {
      ReleaseFixedSlot(conn->fixed_slot);
      conn->fixed_slot = -1;
    }
    conn->pin.reset();
    conn->owned.clear();
    conn->send_data = nullptr;
    conn->send_len = 0;
    conn->send_off = 0;
    conn->send_kind = SendKind::kNone;
  }

  void RecycleRecvBuf(unsigned bid) {
    const unsigned idx = buf_tail_ & (kRecvBufCount - 1);
    // Do NOT use buf_ring_->bufs here: __DECLARE_FLEX_ARRAY pads the
    // flexible member to offset 8 under C++ (an empty struct has size 1),
    // while the kernel ABI has entry 0 at offset 0 with the ring tail
    // overlaying its resv field.  Index the raw entry array instead.
    io_uring_buf* entry =
        &reinterpret_cast<io_uring_buf*>(buf_ring_)[idx];
    entry->addr = reinterpret_cast<__u64>(recv_pool_ +
                                          static_cast<std::size_t>(bid) *
                                              kRecvBufSize);
    entry->len = kRecvBufSize;
    entry->bid = static_cast<__u16>(bid);
    ++buf_tail_;
    std::atomic_thread_fence(std::memory_order_release);
    __atomic_store_n(&buf_ring_->tail, static_cast<__u16>(buf_tail_),
                     __ATOMIC_RELEASE);
  }

  void Defer(UringConn* conn) {
    if (conn->deferred) return;
    conn->deferred = true;
    deferred_.push_back(conn);
  }

  void FreeConn(UringConn* conn) {
    conns_.erase(conn);
    delete conn;
  }

  void DecInflight(UringConn* conn) {
    --conn->inflight;
    if (conn->closed && conn->inflight == 0) FreeConn(conn);
  }

  void Dispatch(const io_uring_cqe& cqe) {
    switch (cqe.user_data) {
      case kAcceptData: {
        const bool more = (cqe.flags & IORING_CQE_F_MORE) != 0;
        if (!more) accept_armed_ = false;
        if (cqe.res >= 0) {
          if (accepting_) {
            events_->OnAccept(cqe.res);
          } else {
            CountSyscall();
            ::close(cqe.res);
          }
        }
        if (!accept_armed_ && accepting_ && cqe.res != -ECANCELED) ArmAccept();
        return;
      }
      case kWakeData:
        events_->OnWake();
        if (cqe.res > 0) ArmWake();
        return;
      case kCancelData:
        return;
      default:
        break;
    }
    auto* conn = reinterpret_cast<UringConn*>(cqe.user_data & ~kTagMask);
    if ((cqe.user_data & kTagMask) == kTagRecv) {
      HandleRecvCqe(conn, cqe);
    } else {
      HandleSendCqe(conn, cqe);
    }
  }

  void HandleRecvCqe(UringConn* conn, const io_uring_cqe& cqe) {
    conn->recv_armed = false;
    const bool has_buf = (cqe.flags & IORING_CQE_F_BUFFER) != 0;
    const unsigned bid = cqe.flags >> IORING_CQE_BUFFER_SHIFT;
    if (conn->closed) {
      if (has_buf) RecycleRecvBuf(bid);
      DecInflight(conn);
      return;
    }
    --conn->inflight;
    if (cqe.res > 0) {
      bytes_received_.fetch_add(cqe.res, std::memory_order_relaxed);
      const char* data =
          recv_pool_ + static_cast<std::size_t>(bid) * kRecvBufSize;
      const std::string_view view(data, static_cast<std::size_t>(cqe.res));
      if (conn->want_recv) {
        const bool keep = events_->OnRecv(conn->token, view);
        if (has_buf) RecycleRecvBuf(bid);
        if (keep && !conn->closed && conn->want_recv && !conn->recv_armed) {
          ArmRecv(conn);
        }
      } else {
        conn->stash.append(view);
        if (has_buf) RecycleRecvBuf(bid);
      }
      return;
    }
    if (has_buf) RecycleRecvBuf(bid);
    if (cqe.res == -ENOBUFS) {
      // Every provided buffer was in flight; re-arm after this reap pass
      // has recycled them (immediate re-arm could spin hot).
      if (!conn->starved) {
        conn->starved = true;
        starved_.push_back(conn);
      }
      return;
    }
    // EOF (res == 0) or a receive error: surface it now, or remember it
    // for delivery when the core resumes receiving.
    if (conn->want_recv) {
      events_->OnRecvClosed(conn->token);
    } else {
      conn->peer_closed = true;
    }
  }

  void HandleSendCqe(UringConn* conn, const io_uring_cqe& cqe) {
    conn->send_inflight = false;
    if (conn->closed) {
      ReleaseSendState(conn);
      DecInflight(conn);
      return;
    }
    --conn->inflight;
    if (cqe.res < 0) {
      if (cqe.res == -EINVAL && conn->send_kind == SendKind::kFixed &&
          fixed_slots_usable_) {
        // Kernel rejected WRITE_FIXED on this socket: demote the parked
        // bytes to an owned OP_SEND and stop using fixed slots.
        fixed_slots_usable_ = false;
        conn->owned.assign(conn->send_data + conn->send_off,
                           conn->send_len - conn->send_off);
        ReleaseFixedSlot(conn->fixed_slot);
        conn->fixed_slot = -1;
        conn->send_data = conn->owned.data();
        conn->send_len = conn->owned.size();
        conn->send_off = 0;
        conn->send_kind = SendKind::kOwned;
        SubmitSend(conn);
        return;
      }
      ReleaseSendState(conn);
      events_->OnSendError(conn->token);
      return;
    }
    bytes_sent_.fetch_add(cqe.res, std::memory_order_relaxed);
    conn->send_off += static_cast<std::size_t>(cqe.res);
    if (conn->send_off < conn->send_len) {
      SubmitSend(conn);  // short send: resubmit the remainder
      return;
    }
    ReleaseSendState(conn);
    events_->OnSendDrained(conn->token);
  }

  // Delivers bytes (or EOF) that arrived while the core had the
  // connection's receive path suspended, now that it resumed.
  void DeliverDeferred() {
    if (deferred_.empty()) return;
    std::vector<UringConn*> batch;
    batch.swap(deferred_);
    for (UringConn* conn : batch) {
      conn->deferred = false;
      if (conn->closed || !conn->want_recv) continue;
      if (!conn->stash.empty()) {
        std::string data;
        data.swap(conn->stash);
        if (!events_->OnRecv(conn->token, data)) continue;
        if (conn->closed || !conn->want_recv) continue;
      }
      if (conn->peer_closed) {
        events_->OnRecvClosed(conn->token);
        continue;
      }
      if (!conn->recv_armed) ArmRecv(conn);
    }
  }

  void RearmStarved() {
    if (starved_.empty()) return;
    std::vector<UringConn*> batch;
    batch.swap(starved_);
    for (UringConn* conn : batch) {
      conn->starved = false;
      if (conn->closed) continue;
      if (conn->want_recv && !conn->recv_armed) ArmRecv(conn);
    }
  }

  // Low-level CQE tracing for debugging kernel interaction, enabled by
  // AQUA_URING_TRACE=1 in the environment.
  const bool trace_ = ::getenv("AQUA_URING_TRACE") != nullptr;
  int ring_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  Events* events_ = nullptr;
  bool accepting_ = true;
  bool accept_armed_ = false;

  void* ring_map_ = nullptr;
  std::size_t ring_map_size_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_map_size_ = 0;
  std::atomic<unsigned>* sq_head_ = nullptr;
  std::atomic<unsigned>* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_array_ = nullptr;
  std::atomic<unsigned>* cq_head_ = nullptr;
  std::atomic<unsigned>* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned unsubmitted_ = 0;

  io_uring_buf_ring* buf_ring_ = nullptr;
  std::size_t buf_ring_map_size_ = 0;
  bool buf_ring_registered_ = false;
  char* recv_pool_ = nullptr;
  std::size_t recv_pool_size_ = 0;
  unsigned buf_tail_ = 0;

  char* fixed_pool_ = nullptr;
  std::size_t fixed_pool_size_ = 0;
  bool fixed_slots_usable_ = true;
  unsigned free_fixed_slots_ = 0;

  uint64_t wake_value_ = 0;
  std::unordered_set<UringConn*> conns_;
  std::vector<UringConn*> deferred_;
  std::vector<UringConn*> starved_;

  std::atomic<std::int64_t> syscalls_{0};
  std::atomic<std::int64_t> zero_copy_sends_{0};
  std::atomic<std::int64_t> copied_sends_{0};
  std::atomic<std::int64_t> copied_bytes_{0};
  std::atomic<std::int64_t> bytes_sent_{0};
  std::atomic<std::int64_t> bytes_received_{0};
};

}  // namespace

bool IoUringAvailable(std::string* reason) {
  io_uring_params params;
  ::memset(&params, 0, sizeof(params));
  const int fd = SysIoUringSetup(4, &params);
  if (fd < 0) {
    if (reason != nullptr) {
      *reason = "io_uring_setup failed: " + std::string(::strerror(errno));
    }
    return false;
  }
  bool ok = true;
  if (!(params.features & IORING_FEAT_SINGLE_MMAP) ||
      !(params.features & IORING_FEAT_EXT_ARG) ||
      !(params.features & IORING_FEAT_NODROP)) {
    if (reason != nullptr) *reason = "kernel io_uring feature set too old";
    ok = false;
  }
  if (ok) {
    // Required opcodes (io_uring_probe ends in a flexible array, so the
    // storage is a raw buffer sized for 64 trailing op entries).
    alignas(io_uring_probe) unsigned char probe_buf[sizeof(io_uring_probe) +
                                                    64 *
                                                        sizeof(
                                                            io_uring_probe_op)];
    ::memset(probe_buf, 0, sizeof(probe_buf));
    auto* probe = reinterpret_cast<io_uring_probe*>(probe_buf);
    if (SysIoUringRegister(fd, IORING_REGISTER_PROBE, probe, 64) < 0) {
      if (reason != nullptr) *reason = "IORING_REGISTER_PROBE failed";
      ok = false;
    } else {
      const unsigned needed[] = {IORING_OP_ACCEPT, IORING_OP_RECV,
                                 IORING_OP_SEND, IORING_OP_READ,
                                 IORING_OP_ASYNC_CANCEL};
      for (const unsigned op : needed) {
        if (op > probe->last_op ||
            !(probe->ops[op].flags & IO_URING_OP_SUPPORTED)) {
          if (reason != nullptr) {
            *reason = "kernel io_uring lacks a required opcode";
          }
          ok = false;
          break;
        }
      }
    }
  }
  if (ok) {
    // Provided buffer rings (kernel >= 5.19).
    void* page = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                        MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
    if (page == MAP_FAILED) {
      ok = false;
      if (reason != nullptr) *reason = "mmap failed during probe";
    } else {
      io_uring_buf_reg reg;
      ::memset(&reg, 0, sizeof(reg));
      reg.ring_addr = reinterpret_cast<__u64>(page);
      reg.ring_entries = 8;
      reg.bgid = 0;
      if (SysIoUringRegister(fd, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
        if (reason != nullptr) {
          *reason = "kernel lacks IORING_REGISTER_PBUF_RING";
        }
        ok = false;
      }
      ::munmap(page, 4096);
    }
  }
  ::close(fd);
  return ok;
}

std::unique_ptr<IoBackend> MakeIoUringBackend() {
  return std::make_unique<IoUringBackend>();
}

}  // namespace aqua

#else  // !AQUA_WITH_IOURING

namespace aqua {

bool IoUringAvailable(std::string* reason) {
  if (reason != nullptr) *reason = "built without AQUA_WITH_IOURING";
  return false;
}

std::unique_ptr<IoBackend> MakeIoUringBackend() { return nullptr; }

}  // namespace aqua

#endif  // AQUA_WITH_IOURING
