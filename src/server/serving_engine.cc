#include "server/serving_engine.h"

#include "common/check.h"

namespace aqua {

namespace {

SynopsisRegistry::Options RegistryOptions(
    const ServingEngineOptions& options) {
  SynopsisRegistry::Options registry_options;
  registry_options.mode = ExecutionMode::kConcurrent;
  registry_options.shards = options.shards;
  registry_options.seed = options.seed;
  registry_options.cache_max_stale_ops = options.cache_max_stale_ops;
  registry_options.cache_max_stale_interval =
      options.cache_max_stale_interval;
  return registry_options;
}

}  // namespace

ServingEngine::ServingEngine(const ServingEngineOptions& options)
    : options_(options), registry_(RegistryOptions(options)) {
  BuiltinBounds bounds;
  bounds.single = options.footprint_bound;
  bounds.sharded = options.footprint_bound;
  AQUA_CHECK(RegisterBuiltinSynopses(registry_, options, bounds).ok());
  if (options.maintain_full_histogram) {
    AQUA_CHECK(registry_
                   .Register(FullHistogramDescriptor(options.footprint_bound))
                   .ok());
  }
}

Status ServingEngine::Delete(Value value) {
  if (!registry_.HasDeletable()) {
    return Status::FailedPrecondition(
        "deletes require the counting sample (concise samples cannot be "
        "maintained under deletions, §4.1)");
  }
  return registry_.Delete(value);
}

ServingEngine::Stats ServingEngine::GetStats() const {
  Stats stats;
  RegistryStats registry_stats = registry_.GetStats();
  stats.inserts = registry_stats.inserts;
  stats.deletes = registry_stats.deletes;
  stats.shards = options_.shards;
  stats.footprint_bound = options_.footprint_bound;
  stats.epoch = registry_.ServingEpoch();
  const SynopsisHandle* concise = registry_.handle(kConciseSynopsisName);
  stats.concise_valid = concise != nullptr && concise->valid();
  stats.synopses = std::move(registry_stats.synopses);
  return stats;
}

}  // namespace aqua
