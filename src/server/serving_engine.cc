#include "server/serving_engine.h"

#include <chrono>
#include <utility>

#include "random/xoshiro256.h"

namespace aqua {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServingEngine::ServingEngine(const ServingEngineOptions& options)
    : options_(options),
      concise_(
          options.shards,
          [&options](std::size_t i) {
            ConciseSampleOptions o;
            o.footprint_bound = options.footprint_bound;
            // Independent per-shard streams (correlated shards would break
            // merge uniformity); SplitMix64 over seed + shard index.
            std::uint64_t s = options.seed + 0x9e3779b97f4a7c15ULL * (i + 1);
            o.seed = SplitMix64Next(s);
            return ConciseSample(o);
          },
          ShardRouting::kRoundRobin),
      concise_cache_([this] { return concise_.Snapshot(); },
                     {.max_stale_ops = options.cache_max_stale_ops,
                      .max_stale_interval = options.cache_max_stale_interval}) {
  std::uint64_t seed = options.seed ^ 0x5e41f1c3a9d2b807ULL;
  if (options.maintain_counting) {
    CountingSampleOptions ks;
    ks.footprint_bound = options.footprint_bound;
    ks.seed = SplitMix64Next(seed);
    counting_ =
        std::make_unique<SharedSynopsis<CountingSample>>(CountingSample(ks));
    counting_cache_ = std::make_unique<SnapshotCache<CountingSample>>(
        [this]() -> Result<CountingSample> {
          // A counting sample cannot be merged, so the "snapshot" is a
          // copy taken under the shared lock — still O(footprint), still
          // off the per-query path thanks to the epoch cache.
          return counting_->WithRead(
              [](const CountingSample& s) { return s; });
        },
        SnapshotCache<CountingSample>::Options{
            .max_stale_ops = options.cache_max_stale_ops,
            .max_stale_interval = options.cache_max_stale_interval});
  }
  if (options.maintain_distinct_sketch) {
    distinct_sketch_ =
        std::make_unique<FlajoletMartin>(64, SplitMix64Next(seed));
  }
}

void ServingEngine::InsertBatch(std::span<const Value> values) {
  if (values.empty()) return;
  if (concise_valid_.load(std::memory_order_acquire)) {
    concise_.InsertBatch(values);
  }
  if (counting_) counting_->InsertBatch(values);
  if (distinct_sketch_) {
    std::lock_guard<std::mutex> lock(sketch_mutex_);
    for (Value v : values) distinct_sketch_->Insert(v);
  }
  const auto n = static_cast<std::int64_t>(values.size());
  inserts_.fetch_add(n, std::memory_order_relaxed);
  concise_cache_.OnOps(n);
  if (counting_cache_) counting_cache_->OnOps(n);
}

Status ServingEngine::Delete(Value value) {
  if (!counting_) {
    return Status::FailedPrecondition(
        "deletes require the counting sample (concise samples cannot be "
        "maintained under deletions, §4.1)");
  }
  // Drop concise-based serving permanently (§4.1), exactly like
  // ApproximateAnswerEngine::Observe on the first delete.
  concise_valid_.store(false, std::memory_order_release);
  const Status status = counting_->Delete(value);
  deletes_.fetch_add(1, std::memory_order_relaxed);
  concise_cache_.OnOps(1);
  if (counting_cache_) counting_cache_->OnOps(1);
  return status;
}

ServingEngine::PinnedSnapshots ServingEngine::Pin(bool need_counting,
                                                  bool need_concise) const {
  PinnedSnapshots pinned;
  if (need_counting && counting_cache_) {
    auto counting = counting_cache_->Get();
    if (counting.ok()) pinned.counting = std::move(counting).ValueOrDie();
  }
  if (need_concise && concise_valid_.load(std::memory_order_acquire)) {
    auto concise = concise_cache_.Get();
    if (concise.ok()) pinned.concise = std::move(concise).ValueOrDie();
  }
  return pinned;
}

QueryResponse<HotList> ServingEngine::HotListAnswer(
    const HotListQuery& query) const {
  const std::int64_t start = NowNs();
  const PinnedSnapshots pinned = Pin(/*need_counting=*/true,
                                     /*need_concise=*/true);
  SynopsisView view;
  view.counting = pinned.counting.get();
  view.concise = pinned.concise.get();
  view.observed_inserts = observed_inserts();
  QueryResponse<HotList> response = AnswerHotList(view, query);
  response.response_ns = NowNs() - start;  // includes the cache access
  return response;
}

QueryResponse<Estimate> ServingEngine::FrequencyAnswer(Value value) const {
  const std::int64_t start = NowNs();
  const PinnedSnapshots pinned = Pin(/*need_counting=*/true,
                                     /*need_concise=*/true);
  SynopsisView view;
  view.counting = pinned.counting.get();
  view.concise = pinned.concise.get();
  view.observed_inserts = observed_inserts();
  QueryResponse<Estimate> response = AnswerFrequency(view, value);
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> ServingEngine::CountWhereAnswer(
    const ValuePredicate& pred, double confidence) const {
  const std::int64_t start = NowNs();
  const PinnedSnapshots pinned = Pin(/*need_counting=*/false,
                                     /*need_concise=*/true);
  SynopsisView view;
  view.concise = pinned.concise.get();
  view.observed_inserts = observed_inserts();
  QueryResponse<Estimate> response = AnswerCountWhere(view, pred, confidence);
  response.response_ns = NowNs() - start;
  return response;
}

QueryResponse<Estimate> ServingEngine::DistinctValuesAnswer() const {
  const std::int64_t start = NowNs();
  QueryResponse<Estimate> response;
  if (distinct_sketch_) {
    // The sketch is tiny; answer under its lock rather than snapshotting.
    std::lock_guard<std::mutex> lock(sketch_mutex_);
    SynopsisView view;
    view.distinct_sketch = distinct_sketch_.get();
    response = AnswerDistinctValues(view);
  } else {
    response.method = "none";
  }
  response.response_ns = NowNs() - start;
  return response;
}

ServingEngine::Stats ServingEngine::GetStats() const {
  Stats stats;
  stats.inserts = observed_inserts();
  stats.deletes = observed_deletes();
  stats.concise_valid = concise_valid_.load(std::memory_order_acquire);
  stats.shards = concise_.num_shards();
  stats.footprint_bound = options_.footprint_bound;
  stats.concise_epoch = concise_cache_.epoch();
  stats.concise_cache = concise_cache_.Stats();
  if (counting_cache_) {
    stats.counting_epoch = counting_cache_->epoch();
    stats.counting_cache = counting_cache_->Stats();
  }
  return stats;
}

}  // namespace aqua
