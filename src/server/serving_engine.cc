#include "server/serving_engine.h"

#include "common/check.h"

namespace aqua {

namespace {

SynopsisRegistry::Options RegistryOptions(
    const ServingEngineOptions& options) {
  SynopsisRegistry::Options registry_options;
  registry_options.mode = ExecutionMode::kConcurrent;
  registry_options.shards = options.shards;
  registry_options.seed = options.seed;
  registry_options.cache_max_stale_ops = options.cache_max_stale_ops;
  registry_options.cache_max_stale_interval =
      options.cache_max_stale_interval;
  registry_options.external_refresh = options.external_refresh;
  return registry_options;
}

}  // namespace

ServingEngine::ServingEngine(const ServingEngineOptions& options)
    : options_(options), registry_(RegistryOptions(options)) {
  BuiltinBounds bounds;
  bounds.single = options.footprint_bound;
  bounds.sharded = options.footprint_bound;
  AQUA_CHECK(RegisterBuiltinSynopses(registry_, options, bounds).ok());
  if (options.maintain_full_histogram) {
    AQUA_CHECK(registry_
                   .Register(FullHistogramDescriptor(options.footprint_bound))
                   .ok());
  }
}

Status ServingEngine::Delete(Value value) {
  if (!registry_.HasDeletable()) {
    return Status::FailedPrecondition(
        "deletes require the counting sample (concise samples cannot be "
        "maintained under deletions, §4.1)");
  }
  return registry_.Delete(value);
}

ServingEngine::Stats ServingEngine::GetStats() const {
  Stats stats;
  GetStatsInto(&stats);
  return stats;
}

void ServingEngine::GetStatsInto(Stats* out) const {
  // Borrow out->synopses for the registry scratch so the per-handle
  // entries (and their name strings) keep their capacity across calls.
  RegistryStats registry_stats;
  registry_stats.synopses = std::move(out->synopses);
  registry_.GetStatsInto(&registry_stats);
  out->inserts = registry_stats.inserts;
  out->deletes = registry_stats.deletes;
  out->shards = options_.shards;
  out->footprint_bound = options_.footprint_bound;
  out->epoch = registry_.ServingEpoch();
  const SynopsisHandle* concise = registry_.handle(kConciseSynopsisName);
  out->concise_valid = concise != nullptr && concise->valid();
  out->synopses = std::move(registry_stats.synopses);
  out->planner = registry_stats.planner;
}

}  // namespace aqua
