#include "server/response_cache.h"

#include <utility>

namespace aqua {

std::string_view ResponseCache::BuildKey(const HttpRequest& request) {
  key_buf_.clear();
  key_buf_.append(request.method);
  key_buf_.push_back('\n');
  key_buf_.append(request.path);
  key_buf_.push_back('\n');
  request.AppendCanonicalQuery(&key_buf_, &scratch_);
  key_buf_.push_back('\n');
  // The cached wire bytes embed a Connection: header, so a keep-alive and
  // a close request cannot share an entry.
  key_buf_.push_back(request.keep_alive ? 'k' : 'c');
  return key_buf_;
}

bool ResponseCache::BuildKeyWith(
    const HttpRequest& request,
    const std::function<bool(const HttpRequest&, std::string*)>& canonical,
    std::string_view* key) {
  key_buf_.clear();
  key_buf_.append(request.method);
  key_buf_.push_back('\n');
  key_buf_.append(request.path);
  key_buf_.push_back('\n');
  if (!canonical(request, &key_buf_)) return false;
  key_buf_.push_back('\n');
  key_buf_.push_back(request.keep_alive ? 'k' : 'c');
  *key = key_buf_;
  return true;
}

std::uint32_t ResponseCache::NoteScope(std::string_view scope,
                                       std::uint64_t epoch) {
  const auto it = scope_ids_.find(scope);
  std::uint32_t id;
  if (it == scope_ids_.end()) {
    id = static_cast<std::uint32_t>(scope_epochs_.size());
    scope_ids_.emplace(std::string(scope), id);
    scope_epochs_.push_back(epoch);
    scope_seen_.push_back(1);
    return id;
  }
  id = it->second;
  // An older epoch can only be observed across an epoch-source read race;
  // treat any change as an advance — correctness needs only that entries
  // rendered under a different epoch of this scope never replay.  The
  // first observation of an eagerly-interned scope (the default scope, see
  // the constructor) is an interning, not an advance: nothing could have
  // been cached under it yet, so it does not count as an invalidation.
  const bool seen = scope_seen_[id] != 0;
  scope_seen_[id] = 1;
  if (scope_epochs_[id] != epoch) {
    scope_epochs_[id] = epoch;
    if (seen) invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  return id;
}

std::size_t ResponseCache::SweepStale() {
  std::size_t reclaimed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.epoch != scope_epochs_[it->second.scope_id]) {
      it = entries_.erase(it);
      ++reclaimed;
    } else {
      ++it;
    }
  }
  if (reclaimed > 0) {
    stale_evictions_.fetch_add(static_cast<std::int64_t>(reclaimed),
                               std::memory_order_relaxed);
    entry_count_.store(entries_.size(), std::memory_order_relaxed);
  }
  return reclaimed;
}

const std::string* ResponseCache::Lookup(std::string_view scope,
                                         std::uint64_t epoch,
                                         std::string_view key) {
  const std::shared_ptr<const std::string>* entry =
      LookupPinned(scope, epoch, key);
  return entry != nullptr ? entry->get() : nullptr;
}

const std::shared_ptr<const std::string>* ResponseCache::LookupPinned(
    std::string_view scope, std::uint64_t epoch, std::string_view key) {
  const std::uint32_t scope_id = NoteScope(scope, epoch);
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.scope_id != scope_id ||
      it->second.epoch != epoch) {
    // Absent, or stale under this scope's epoch: miss.  A stale entry is
    // left in place — the handler's re-render Store()s over it, so the
    // map node (and the key's allocation) is reused.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return &it->second.wire;
}

void ResponseCache::Store(std::string_view scope, std::uint64_t epoch,
                          std::string_view key, std::string wire) {
  if (wire.size() > options_.max_entry_bytes) return;
  const std::uint32_t scope_id = NoteScope(scope, epoch);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Overwrite in place: the stale (or racing) incarnation's bytes stay
    // alive for any in-flight pinned send via its shared_ptr.
    it->second.wire = std::make_shared<const std::string>(std::move(wire));
    it->second.epoch = epoch;
    it->second.scope_id = scope_id;
    return;
  }
  if (entries_.size() >= options_.max_entries && SweepStale() == 0) {
    return;  // cap reached and everything cached is still fresh
  }
  Entry entry;
  entry.wire = std::make_shared<const std::string>(std::move(wire));
  entry.epoch = epoch;
  entry.scope_id = scope_id;
  entries_.emplace(std::string(key), std::move(entry));
  entry_count_.store(entries_.size(), std::memory_order_relaxed);
}

ResponseCache::Stats ResponseCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.bypass = bypass_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.stale_evictions =
      stale_evictions_.load(std::memory_order_relaxed);
  stats.entries = entry_count_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace aqua
