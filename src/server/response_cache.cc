#include "server/response_cache.h"

#include <utility>

namespace aqua {

std::string_view ResponseCache::BuildKey(const HttpRequest& request) {
  key_buf_.clear();
  key_buf_.append(request.method);
  key_buf_.push_back('\n');
  key_buf_.append(request.path);
  key_buf_.push_back('\n');
  request.AppendCanonicalQuery(&key_buf_, &scratch_);
  key_buf_.push_back('\n');
  // The cached wire bytes embed a Connection: header, so a keep-alive and
  // a close request cannot share an entry.
  key_buf_.push_back(request.keep_alive ? 'k' : 'c');
  return key_buf_;
}

bool ResponseCache::BuildKeyWith(
    const HttpRequest& request,
    const std::function<bool(const HttpRequest&, std::string*)>& canonical,
    std::string_view* key) {
  key_buf_.clear();
  key_buf_.append(request.method);
  key_buf_.push_back('\n');
  key_buf_.append(request.path);
  key_buf_.push_back('\n');
  if (!canonical(request, &key_buf_)) return false;
  key_buf_.push_back('\n');
  key_buf_.push_back(request.keep_alive ? 'k' : 'c');
  *key = key_buf_;
  return true;
}

void ResponseCache::AdvanceEpoch(std::uint64_t epoch) {
  if (epoch == epoch_) return;
  // An older epoch can only be observed across an epoch_source read race;
  // treat it like a new one — correctness needs only that entries from
  // different epochs never coexist.
  if (!entries_.empty()) {
    entries_.clear();
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  entry_count_.store(0, std::memory_order_relaxed);
  epoch_ = epoch;
}

const std::string* ResponseCache::Lookup(std::uint64_t epoch,
                                         std::string_view key) {
  const std::shared_ptr<const std::string>* entry = LookupPinned(epoch, key);
  return entry != nullptr ? entry->get() : nullptr;
}

const std::shared_ptr<const std::string>* ResponseCache::LookupPinned(
    std::uint64_t epoch, std::string_view key) {
  AdvanceEpoch(epoch);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return &it->second;
}

void ResponseCache::Store(std::uint64_t epoch, std::string_view key,
                          std::string wire) {
  AdvanceEpoch(epoch);
  if (wire.size() > options_.max_entry_bytes ||
      entries_.size() >= options_.max_entries) {
    return;
  }
  entries_.emplace(std::string(key),
                   std::make_shared<const std::string>(std::move(wire)));
  entry_count_.store(entries_.size(), std::memory_order_relaxed);
}

ResponseCache::Stats ResponseCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.bypass = bypass_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.entries = entry_count_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace aqua
