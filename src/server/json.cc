#include "server/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace aqua {

JsonWriter::JsonWriter() : out_(&owned_) { owned_.reserve(256); }

JsonWriter::JsonWriter(std::string* out) : out_(out) {}

void JsonWriter::BeforeValue() {
  if (depth_ == 0) return;
  Frame& top = stack_[depth_ - 1];
  if (top.kind == 'O') {
    AQUA_CHECK(top.key_pending) << "JSON object value without a Key()";
    top.key_pending = false;
    return;
  }
  if (top.has_value) out_->push_back(',');
  top.has_value = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  AQUA_CHECK(depth_ < kMaxDepth) << "JSON nesting exceeds kMaxDepth";
  out_->push_back('{');
  stack_[depth_++] = {'O', false, false};
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  AQUA_CHECK(depth_ > 0 && stack_[depth_ - 1].kind == 'O')
      << "EndObject without matching BeginObject";
  AQUA_CHECK(!stack_[depth_ - 1].key_pending)
      << "EndObject with a dangling Key()";
  --depth_;
  out_->push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  AQUA_CHECK(depth_ < kMaxDepth) << "JSON nesting exceeds kMaxDepth";
  out_->push_back('[');
  stack_[depth_++] = {'A', false, false};
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  AQUA_CHECK(depth_ > 0 && stack_[depth_ - 1].kind == 'A')
      << "EndArray without matching BeginArray";
  --depth_;
  out_->push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  AQUA_CHECK(depth_ > 0 && stack_[depth_ - 1].kind == 'O')
      << "Key() outside an object";
  Frame& top = stack_[depth_ - 1];
  AQUA_CHECK(!top.key_pending) << "two Key() calls in a row";
  if (top.has_value) out_->push_back(',');
  top.has_value = true;
  top.key_pending = true;
  out_->push_back('"');
  Escape(key, *out_);
  out_->append("\":");
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_->push_back('"');
  Escape(value, *out_);
  out_->push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out_->append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out_->append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_->append("null");
    return *this;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out_->append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_->append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_->append("null");
  return *this;
}

void JsonWriter::Escape(std::string_view value, std::string& out) {
  for (const char c : value) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
}

Result<std::vector<Value>> ParseValueArray(std::string_view body) {
  std::vector<Value> values;
  std::size_t i = 0;
  const std::size_t n = body.size();
  auto skip_separators = [&] {
    while (i < n && (body[i] == ' ' || body[i] == '\t' || body[i] == '\n' ||
                     body[i] == '\r' || body[i] == ',')) {
      ++i;
    }
  };
  skip_separators();
  bool bracketed = false;
  if (i < n && body[i] == '[') {
    bracketed = true;
    ++i;
  }
  while (true) {
    skip_separators();
    if (i >= n) break;
    if (body[i] == ']') {
      if (!bracketed) {
        return Status::InvalidArgument("unexpected ']' in value list");
      }
      bracketed = false;
      ++i;
      skip_separators();
      if (i != n) {
        return Status::InvalidArgument("trailing bytes after ']'");
      }
      break;
    }
    Value value = 0;
    const auto [ptr, ec] =
        std::from_chars(body.data() + i, body.data() + n, value);
    if (ec == std::errc::result_out_of_range) {
      return Status::InvalidArgument("value out of 64-bit range");
    }
    if (ec != std::errc() || ptr == body.data() + i) {
      return Status::InvalidArgument("expected an integer at offset " +
                                     std::to_string(i));
    }
    values.push_back(value);
    i = static_cast<std::size_t>(ptr - body.data());
  }
  if (bracketed) {
    return Status::InvalidArgument("unterminated '[' in value list");
  }
  return values;
}

}  // namespace aqua
