#ifndef AQUA_SERVER_RESPONSE_CACHE_H_
#define AQUA_SERVER_RESPONSE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "server/http.h"

namespace aqua {

/// Configuration of one ResponseCache.
struct ResponseCacheOptions {
  /// Entries kept across all scopes; a Store() at the cap first sweeps
  /// stale entries and is dropped only if everything left is fresh (bounds
  /// memory against unbounded distinct query strings).
  std::size_t max_entries = 4096;
  /// Responses larger than this are never cached.
  std::size_t max_entry_bytes = 1 << 20;
};

/// An epoch-keyed cache of fully serialized HTTP responses.
///
/// Gibbons & Matias' premise is that answers are computed from a small
/// synopsis frozen at a point in time — so two identical read requests
/// served within one epoch have *identical* responses, rendered bytes
/// included.  This cache exploits that: the key is the request's (method,
/// path, canonical query, keep-alive bit), the value is the ready-to-write
/// wire buffer (status line, headers, body) exactly as first rendered plus
/// the epoch it was rendered under, so a hit is a hash probe, an epoch
/// compare and a write — no JSON rendering, no snapshot pin, no registry
/// access.
///
/// Surgical, per-scope invalidation: every entry belongs to a *scope* (the
/// serving surface that owns its bytes — one catalog attribute, the
/// engine's stream, a /query target), and each scope carries its own
/// epoch.  A lookup or store passes the scope's current epoch; an entry
/// whose recorded epoch differs is stale and misses, but entries of OTHER
/// scopes are untouched — an epoch advance on attribute A leaves attribute
/// B's warmed entries (and their zero-alloc hit paths) intact.  Stale
/// entries are reclaimed lazily: a Store() on the same key overwrites in
/// place, and a Store() at the entry cap sweeps everything stale before
/// giving up.  Scopes are interned once (first occurrence allocates); the
/// legacy two-argument Lookup/Store forms use the default "" scope, which
/// reproduces the old process-wide behavior for callers with one epoch
/// domain.
///
/// Thread model: one instance per reactor, owned and accessed by that
/// reactor thread only — no locks anywhere.  The counters are relaxed
/// atomics purely so Stats() can be aggregated from other threads.
///
/// The hit path does not allocate: BuildKey() appends into an internal
/// buffer whose capacity persists across requests, the map probes use
/// C++20 heterogeneous lookup on string_view keys, and the returned
/// buffer is written to the socket in place.  (Verified by the
/// allocation-counting unit test in tests/server/response_cache_test.cc.)
class ResponseCache {
 public:
  explicit ResponseCache(const ResponseCacheOptions& options = {})
      : options_(options) {
    // Intern the default scope eagerly so the legacy two-argument forms
    // never allocate on their hit path.  Not yet "seen": its first
    // observed epoch is an interning, not an invalidation (see NoteScope).
    scope_ids_.emplace(std::string(), 0);
    scope_epochs_.push_back(0);
    scope_seen_.push_back(0);
  }

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// Builds the canonical cache key for `request` into the internal
  /// reusable buffer and returns a view of it.  Valid until the next
  /// BuildKey() call on this instance.
  std::string_view BuildKey(const HttpRequest& request);

  /// BuildKey() variant for routes with a custom canonicalizer (see
  /// RouteOptions::canonical_key): the canonical form replaces the raw
  /// query string in the key, so every spelling of one query shares one
  /// entry.  Returns false (and no key) when the canonicalizer rejects the
  /// request — the caller serves it uncached.
  bool BuildKeyWith(
      const HttpRequest& request,
      const std::function<bool(const HttpRequest&, std::string*)>& canonical,
      std::string_view* key);

  /// The cached wire bytes for `key` rendered under `scope`'s current
  /// `epoch`, or nullptr (counted as a miss).  An entry recorded under a
  /// different epoch of the same scope is stale: it misses (and will be
  /// overwritten by the re-render's Store) without touching any other
  /// scope's entries.
  const std::string* Lookup(std::string_view scope, std::uint64_t epoch,
                            std::string_view key);

  /// Lookup() variant returning the entry's shared_ptr cell so the caller
  /// can pin the wire bytes across an asynchronous send: an IoBackend
  /// holding a copy of the shared_ptr keeps the buffer alive even if the
  /// entry is overwritten or evicted mid-send.  Copying the shared_ptr is
  /// refcount-only — the hit path stays allocation-free.  The returned
  /// pointer itself is valid until the next Store() on this instance.
  const std::shared_ptr<const std::string>* LookupPinned(
      std::string_view scope, std::uint64_t epoch, std::string_view key);

  /// Caches `wire` for `key` under (`scope`, `epoch`).  An existing entry
  /// for the key is overwritten in place (the usual stale-refresh path).
  /// Dropped (not an error) when the response is oversized, or when the
  /// entry cap is reached and sweeping stale entries frees nothing.
  void Store(std::string_view scope, std::uint64_t epoch,
             std::string_view key, std::string wire);

  /// Default-scope ("") forms for serving surfaces with a single epoch
  /// domain and for existing callers.
  const std::string* Lookup(std::uint64_t epoch, std::string_view key) {
    return Lookup(std::string_view(), epoch, key);
  }
  const std::shared_ptr<const std::string>* LookupPinned(
      std::uint64_t epoch, std::string_view key) {
    return LookupPinned(std::string_view(), epoch, key);
  }
  void Store(std::uint64_t epoch, std::string_view key, std::string wire) {
    Store(std::string_view(), epoch, key, std::move(wire));
  }

  /// Counts a request that skipped the cache (Cache-Control: no-cache).
  void CountBypass() { bypass_.fetch_add(1, std::memory_order_relaxed); }

  /// Counts a cacheable request served uncached because the serving epoch
  /// was unsettled (a snapshot cache was stale, so the handler must run
  /// and refresh).
  void CountMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t bypass = 0;
    /// Scope-epoch advances observed (each makes that scope's entries
    /// stale; other scopes keep serving).
    std::int64_t invalidations = 0;
    /// Stale entries reclaimed by cap-pressure sweeps.
    std::int64_t stale_evictions = 0;
    std::size_t entries = 0;
  };
  /// Safe to call from any thread; `entries` is a racy snapshot.
  Stats GetStats() const;

  /// The default scope's last observed epoch.
  std::uint64_t epoch() const { return scope_epochs_[0]; }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Entry {
    /// shared_ptr so an in-flight async send can outlive an overwrite or
    /// eviction (see LookupPinned).
    std::shared_ptr<const std::string> wire;
    /// Scope epoch the bytes were rendered under.
    std::uint64_t epoch = 0;
    /// Owning scope (index into scope_epochs_).
    std::uint32_t scope_id = 0;
  };

  /// Interns `scope` and records `epoch` as its current epoch (counting
  /// an invalidation when it moved).  Allocation-free after the scope's
  /// first occurrence.
  std::uint32_t NoteScope(std::string_view scope, std::uint64_t epoch);

  /// Erases every entry whose recorded epoch trails its scope's current
  /// epoch; returns the number reclaimed.
  std::size_t SweepStale();

  ResponseCacheOptions options_;
  std::unordered_map<std::string, Entry, StringHash, std::equal_to<>>
      entries_;
  /// Scope interning: name -> id, plus each scope's last observed epoch.
  std::unordered_map<std::string, std::uint32_t, StringHash,
                     std::equal_to<>>
      scope_ids_;
  std::vector<std::uint64_t> scope_epochs_;
  /// 1 once the scope's epoch has been observed by any Lookup/Store;
  /// parallel to scope_epochs_.
  std::vector<char> scope_seen_;
  /// Racy-read-safe mirror of entries_.size() for cross-thread Stats().
  std::atomic<std::size_t> entry_count_{0};
  std::string key_buf_;
  std::vector<std::uint32_t> scratch_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> bypass_{0};
  std::atomic<std::int64_t> invalidations_{0};
  std::atomic<std::int64_t> stale_evictions_{0};
};

}  // namespace aqua

#endif  // AQUA_SERVER_RESPONSE_CACHE_H_
