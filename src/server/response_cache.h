#ifndef AQUA_SERVER_RESPONSE_CACHE_H_
#define AQUA_SERVER_RESPONSE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "server/http.h"

namespace aqua {

/// Configuration of one ResponseCache.
struct ResponseCacheOptions {
  /// Entries kept per epoch; further Store() calls are dropped (bounds
  /// memory against unbounded distinct query strings).
  std::size_t max_entries = 4096;
  /// Responses larger than this are never cached.
  std::size_t max_entry_bytes = 1 << 20;
};

/// An epoch-keyed cache of fully serialized HTTP responses.
///
/// Gibbons & Matias' premise is that answers are computed from a small
/// synopsis frozen at a point in time — so two identical read requests
/// served within one epoch have *identical* responses, rendered bytes
/// included.  This cache exploits that: the key is the serving epoch plus
/// the request's (method, path, canonical query, keep-alive bit), the
/// value is the ready-to-write wire buffer (status line, headers, body)
/// exactly as first rendered, so a hit is a hash probe plus a write — no
/// JSON rendering, no snapshot pin, no registry access.
///
/// Single-epoch, wholesale invalidation: the cache holds entries for ONE
/// epoch at a time.  A Lookup() or Store() carrying a newer epoch clears
/// everything from the previous epoch first — when a TypedSynopsisHandle
/// publishes a new EpochState the serving epoch advances and every cached
/// answer is invalid at once, so per-entry bookkeeping would be waste.
///
/// Thread model: one instance per reactor, owned and accessed by that
/// reactor thread only — no locks anywhere.  The counters are relaxed
/// atomics purely so Stats() can be aggregated from other threads.
///
/// The hit path does not allocate: BuildKey() appends into an internal
/// buffer whose capacity persists across requests, the map probe uses
/// C++20 heterogeneous lookup on the string_view key, and the returned
/// buffer is written to the socket in place.  (Verified by the
/// allocation-counting unit test in tests/server/response_cache_test.cc.)
class ResponseCache {
 public:
  explicit ResponseCache(const ResponseCacheOptions& options = {})
      : options_(options) {}

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// Builds the canonical cache key for `request` into the internal
  /// reusable buffer and returns a view of it.  Valid until the next
  /// BuildKey() call on this instance.
  std::string_view BuildKey(const HttpRequest& request);

  /// BuildKey() variant for routes with a custom canonicalizer (see
  /// RouteOptions::canonical_key): the canonical form replaces the raw
  /// query string in the key, so every spelling of one query shares one
  /// entry.  Returns false (and no key) when the canonicalizer rejects the
  /// request — the caller serves it uncached.
  bool BuildKeyWith(
      const HttpRequest& request,
      const std::function<bool(const HttpRequest&, std::string*)>& canonical,
      std::string_view* key);

  /// The cached wire bytes for `key` under `epoch`, or nullptr (counted
  /// as a miss).  An epoch newer than the cached one clears all entries
  /// first (wholesale invalidation).
  const std::string* Lookup(std::uint64_t epoch, std::string_view key);

  /// Lookup() variant returning the entry's shared_ptr cell so the caller
  /// can pin the wire bytes across an asynchronous send: an IoBackend
  /// holding a copy of the shared_ptr keeps the buffer alive even if an
  /// epoch advance clears the cache mid-send.  Copying the shared_ptr is
  /// refcount-only — the hit path stays allocation-free.  The returned
  /// pointer itself is valid until the next Store()/epoch advance.
  const std::shared_ptr<const std::string>* LookupPinned(std::uint64_t epoch,
                                                         std::string_view key);

  /// Caches `wire` for `key` under `epoch`.  Dropped (not an error) when
  /// the response is oversized or the per-epoch entry cap is reached.
  void Store(std::uint64_t epoch, std::string_view key, std::string wire);

  /// Counts a request that skipped the cache (Cache-Control: no-cache).
  void CountBypass() { bypass_.fetch_add(1, std::memory_order_relaxed); }

  /// Counts a cacheable request served uncached because the serving epoch
  /// was unsettled (a snapshot cache was stale, so the handler must run
  /// and refresh).
  void CountMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t bypass = 0;
    /// Wholesale clears triggered by an epoch advance.
    std::int64_t invalidations = 0;
    std::size_t entries = 0;
  };
  /// Safe to call from any thread; `entries` is a racy snapshot.
  Stats GetStats() const;

  std::uint64_t epoch() const { return epoch_; }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  void AdvanceEpoch(std::uint64_t epoch);

  ResponseCacheOptions options_;
  /// Epoch the current entries were rendered under.
  std::uint64_t epoch_ = 0;
  /// Values are shared_ptr so an in-flight async send can outlive a
  /// wholesale invalidation (see LookupPinned).
  std::unordered_map<std::string, std::shared_ptr<const std::string>,
                     StringHash, std::equal_to<>>
      entries_;
  /// Racy-read-safe mirror of entries_.size() for cross-thread Stats().
  std::atomic<std::size_t> entry_count_{0};
  std::string key_buf_;
  std::vector<std::uint32_t> scratch_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> bypass_{0};
  std::atomic<std::int64_t> invalidations_{0};
};

}  // namespace aqua

#endif  // AQUA_SERVER_RESPONSE_CACHE_H_
