#ifndef AQUA_SERVER_ROUTES_H_
#define AQUA_SERVER_ROUTES_H_

#include "server/server.h"
#include "server/serving_engine.h"
#include "warehouse/catalog.h"

namespace aqua {

class IngestReplicator;

/// Per-deployment knobs for the serving routes (everything else is wired
/// from the engine/catalog objects themselves).
struct RouteConfig {
  /// Expose GET /debug/sleep?ms= (worker-dispatched; testing only).
  bool enable_debug = false;
  /// Cluster ingest role: when set, POST /ingest routes through the
  /// replicator (WAL-ahead, delta accumulation) instead of straight into
  /// the engine — the durability contract only holds if every ingest path
  /// goes through the log.
  IngestReplicator* replicator = nullptr;
};

/// Registers the single-relation query/ingest surface on `server`:
///
///   GET  /healthz /hotlist /frequency /count_where /quantile /distinct
///   GET  /stats   (live counters; never cached)
///   POST /ingest /delete
///
/// Every GET handler runs inline on its reactor and renders into the
/// reactor's reused response scratch with zero allocations once warm: hot
/// lists and stats fill thread-local scratch via the engine's *Into forms,
/// estimates are plain values, and the JSON writer appends straight into
/// the response body.  `engine` (and `server`, for /stats) must outlive the
/// server's serving threads — main() owns both on its stack.
void RegisterServingRoutes(HttpServer& server, ServingEngine& engine,
                           const RouteConfig& config = {});

/// Registers the multi-attribute surface, /attr/{name}/{endpoint}, over a
/// sealed catalog.  Same endpoints and allocation discipline as the
/// single-relation routes; unknown attributes answer 404.
void RegisterCatalogRoutes(HttpServer& server, SynopsisCatalog& catalog);

/// Installs the serving-epoch source the response caches key on: the
/// combined epoch of the engine and the optional catalog, with stale
/// snapshot caches settled first so the epoch converges without waiting
/// for a query to touch every synopsis.  `catalog` may be null.
void InstallEpochSource(HttpServer& server, ServingEngine& engine,
                        SynopsisCatalog* catalog);

}  // namespace aqua

#endif  // AQUA_SERVER_ROUTES_H_
