#ifndef AQUA_SERVER_ROUTES_H_
#define AQUA_SERVER_ROUTES_H_

#include "server/server.h"
#include "server/serving_engine.h"
#include "warehouse/catalog.h"

namespace aqua {

class IngestReplicator;
class EpochPump;

/// Who runs epoch refreshes (snapshot re-merges + frozen-view builds).
enum class RefreshMode {
  /// The first request past a staleness bound settles the caches inline
  /// (inside the epoch source) before its epoch is read — refresh cost
  /// lands on a query thread at every epoch boundary.
  kInline,
  /// A background EpochPump owns every SettleCaches() call; the scoped
  /// epoch sources only *read* epochs, so a query thread never executes a
  /// re-merge.  Requires the engine/catalog to be built with
  /// external_refresh so warmed Get() never refreshes either.
  kPump,
};

/// Per-deployment knobs for the serving routes (everything else is wired
/// from the engine/catalog objects themselves).
struct RouteConfig {
  /// Expose GET /debug/sleep?ms= (worker-dispatched; testing only).
  bool enable_debug = false;
  /// Cluster ingest role: when set, POST /ingest routes through the
  /// replicator (WAL-ahead, delta accumulation) instead of straight into
  /// the engine — the durability contract only holds if every ingest path
  /// goes through the log.
  IngestReplicator* replicator = nullptr;
  /// Refresh ownership for the cacheable routes' scoped epoch sources.
  RefreshMode refresh_mode = RefreshMode::kInline;
  /// The pump whose stats /stats reports (null when refresh_mode is
  /// inline).
  const EpochPump* pump = nullptr;
};

/// Registers the single-relation query/ingest surface on `server`:
///
///   GET  /healthz /hotlist /frequency /count_where /quantile /distinct
///   GET  /stats   (live counters; never cached)
///   POST /ingest /delete
///
/// Every GET handler runs inline on its reactor and renders into the
/// reactor's reused response scratch with zero allocations once warm: hot
/// lists and stats fill thread-local scratch via the engine's *Into forms,
/// estimates are plain values, and the JSON writer appends straight into
/// the response body.  `engine` (and `server`, for /stats) must outlive the
/// server's serving threads — main() owns both on its stack.
void RegisterServingRoutes(HttpServer& server, ServingEngine& engine,
                           const RouteConfig& config = {});

/// Registers the multi-attribute surface, /attr/{name}/{endpoint}, over a
/// sealed catalog.  Same endpoints and allocation discipline as the
/// single-relation routes; unknown attributes answer 404.  Each attribute
/// is its own response-cache scope: an epoch advance on one attribute
/// leaves every other attribute's cached responses serving.
void RegisterCatalogRoutes(HttpServer& server, SynopsisCatalog& catalog,
                           RefreshMode refresh_mode = RefreshMode::kInline);

/// Registers the planned-query surface:
///
///   GET  /query?q=SELECT%20APPROX(COUNT(*))%20FROM%20stream%20...
///   POST /query           (the SQL statement as the request body)
///
/// Statements go through the SQL frontend (plan/sql_frontend.h) and the
/// cost/error planner (plan/planner.h): ERROR/CONFIDENCE/WITHIN bounds
/// pick the synopsis and view-vs-direct path by predicted error and
/// measured latency; unbounded statements reproduce the §6 accuracy
/// ordering exactly.  FROM targets the default engine as "stream", or any
/// catalog attribute by name (404 otherwise; `catalog` may be null).  GET
/// responses are cached under the *canonical* form of the statement, so
/// every spelling of one query — clause order, ERROR 2% vs 0.02, case —
/// hits one entry.
void RegisterQueryRoutes(HttpServer& server, ServingEngine& engine,
                         SynopsisCatalog* catalog = nullptr,
                         RefreshMode refresh_mode = RefreshMode::kInline);

/// Installs the server-wide serving-epoch source — the fallback for
/// cacheable routes without a scoped source: the combined epoch of the
/// engine and the optional catalog.  In inline mode, stale snapshot caches
/// are settled first so the epoch converges without waiting for a query to
/// touch every synopsis; in pump mode the source only reads epochs (the
/// pump owns every settle).  `catalog` may be null.
void InstallEpochSource(HttpServer& server, ServingEngine& engine,
                        SynopsisCatalog* catalog,
                        RefreshMode refresh_mode = RefreshMode::kInline);

}  // namespace aqua

#endif  // AQUA_SERVER_ROUTES_H_
