#ifndef AQUA_SERVER_CLUSTER_H_
#define AQUA_SERVER_CLUSTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "persist/delta_frame.h"
#include "persist/wal.h"
#include "registry/builtin.h"
#include "registry/registry.h"
#include "server/server.h"
#include "server/serving_engine.h"

namespace aqua {

/// Synopsis-shipping cluster mode: N ingest nodes each observe a shard of
/// the load stream, accumulate *delta* synopses locally, and periodically
/// push them — serialized with the persist codecs — to one aggregator,
/// which MergeFroms every delta into its serving registry under one
/// logical epoch per merge round (the paper's §4.2 merge property is what
/// makes the shipped state composable at all).  Each ingest node writes a
/// WAL before applying any op and checkpoints periodically, so a SIGKILLed
/// node recovers its exact synopsis state from disk instead of replaying
/// the stream.
///
/// Exactly-once delta delivery across crashes:
///   - an export marker (seq, up_to) lands in the WAL, durably, before the
///     frame leaves the node — the sequence number is claimed once and
///     never reused;
///   - the commit marker lands only after the aggregator acked the push;
///   - recovery re-derives an exported-but-uncommitted frame
///     byte-identically (delta registries are unsynchronized and seeded
///     deterministically from the export seq, so their serialized state is
///     a pure function of the op sequence) and re-pushes it;
///   - the aggregator deduplicates by (node_id, seq).

enum class ClusterRole { kSingle, kIngest, kAggregator };

/// The synopsis selection both cluster roles run: traditional + concise
/// only.  Only mergeable *and* persistable synopses can ship as deltas;
/// the counting sample is deliberately unmergeable (its threshold is
/// count-coupled) and the FM sketch has no codec, so a cluster node
/// maintaining them would hold state it can never ship.
SynopsisSelection ClusterSelection();

/// The deterministic seed of the delta round that exports under `seq`.
/// Both the live accumulation path and crash recovery derive the same
/// seed from the same seq, which is what makes a re-derived pending frame
/// byte-identical to the one originally pushed.
std::uint64_t DeltaSeed(std::uint64_t node_seed, std::uint64_t seq);

/// Builds the per-round delta registry: unsynchronized (serialized under
/// the replicator's lock anyway, and byte-deterministic, which concurrent
/// snapshot re-seeding is not), one shard, cluster selection.
using DeltaRegistryFactory =
    std::function<std::unique_ptr<SynopsisRegistry>(std::uint64_t seed)>;
DeltaRegistryFactory MakeClusterDeltaFactory(Words footprint_bound);

/// Aggregator side: applies pushed delta frames to a serving registry with
/// (node, seq) idempotency.  Thread-safe; the server's worker pool calls
/// Accept concurrently.
class DeltaAcceptor {
 public:
  explicit DeltaAcceptor(SynopsisRegistry* registry) : registry_(registry) {}

  struct AcceptOutcome {
    /// True when the frame's seq was already applied for this node — the
    /// push is acked without touching any synopsis (a crashed node
    /// re-pushing its uncommitted frame, or a duplicate retry).
    bool duplicate = false;
  };

  /// Applies one frame.  Two-phase: every blob in the frame is decoded and
  /// validated first (PrepareDeltaMerge), so a frame that cannot apply
  /// cleanly mutates nothing and stays retryable.  The seq is recorded
  /// after validation but before the merges — a retry of a frame that
  /// failed mid-merge must dedupe rather than double-apply.
  Result<AcceptOutcome> Accept(const DeltaFrame& frame);

  struct Stats {
    std::uint64_t merge_rounds = 0;
    std::int64_t ops_applied = 0;
    std::int64_t frames_accepted = 0;
    std::int64_t frames_deduped = 0;
    /// (node_id, highest applied seq), sorted by node_id.
    std::vector<std::pair<std::string, std::uint64_t>> nodes;
  };
  Stats GetStats() const;

 private:
  mutable std::mutex mutex_;
  SynopsisRegistry* registry_;
  std::map<std::string, std::uint64_t> last_seq_;
  std::int64_t ops_applied_ = 0;
  std::int64_t frames_accepted_ = 0;
  std::int64_t frames_deduped_ = 0;
};

struct IngestReplicatorOptions {
  std::string node_id = "node";
  /// Directory holding this node's WAL + checkpoint (created if missing).
  std::string data_dir;
  /// Seed of the delta-round seed chain (DeltaSeed derives per-round
  /// seeds from it; keep it fixed across restarts of the same node).
  std::uint64_t node_seed = 0x19980531ULL;
  /// Push attempts per frame per PushNow (1 = no retry).
  int push_attempts = 3;
  std::chrono::milliseconds push_backoff{50};
  /// Fault-injection hook: sleep between the aggregator's ack and the
  /// commit marker, widening the window a SIGKILL must land in for the
  /// re-push/dedupe path to be exercised.  Zero in production.
  std::chrono::milliseconds debug_commit_hold{0};
  /// The transport a frame is pushed through.  main() wires an HTTP POST
  /// to the aggregator; in-process tests inject a function so the
  /// replicator protocol is testable without sockets.
  std::function<Status(const std::vector<std::uint8_t>&)> push_transport;
};

/// Ingest side: WAL-ahead ingest into the node's serving registry plus the
/// current delta round, export/commit-marked delta shipping, periodic
/// checkpoints, and crash recovery.  All entry points are thread-safe (one
/// mutex serializes the WAL and both registries' op order — op order is
/// what recovery determinism is built on).
class IngestReplicator {
 public:
  /// `main_registry` is the node's serving registry (it outlives the
  /// replicator); the factory builds each delta round's registry.
  IngestReplicator(SynopsisRegistry* main_registry,
                   DeltaRegistryFactory delta_factory,
                   IngestReplicatorOptions options);
  ~IngestReplicator();

  IngestReplicator(const IngestReplicator&) = delete;
  IngestReplicator& operator=(const IngestReplicator&) = delete;

  /// Recovery + WAL open.  Reads the checkpoint (if any) into the main
  /// registry, replays the WAL suffix (tolerating a torn tail, which is
  /// truncated), re-derives any exported-but-uncommitted frame, and leaves
  /// the WAL open for append.  Must be called once, before ingest or
  /// serving traffic.
  Status Init();

  /// WAL-ahead ingest: every value is appended to the WAL and the WAL is
  /// flushed *before* any synopsis observes it — the durability order that
  /// makes "recovered state == pre-crash state" literal.
  Status Ingest(std::span<const Value> values);

  /// Pushes now: first retries any pending (exported, uncommitted) frame,
  /// then exports the current delta round if it covers new ops.  Returns
  /// OK with nothing to do; a failed push leaves the frame pending for the
  /// next call.
  Status PushNow();

  /// Writes a checkpoint and rotates the WAL.  Refused (FailedPrecondition)
  /// while a frame is pending — the checkpoint format records exactly one
  /// in-progress round (see NodeCheckpoint's invariants).
  Status CheckpointNow();

  /// Spawns the background pusher: PushNow every `interval`, and
  /// CheckpointNow once at least `checkpoint_every_ops` new ops have been
  /// ingested since the last checkpoint (0 disables checkpointing).
  void StartPusher(std::chrono::milliseconds interval,
                   std::int64_t checkpoint_every_ops);
  /// Stops and joins the pusher (idempotent; also run by the destructor).
  void StopPusher();

  struct Stats {
    std::int64_t op_count = 0;
    std::uint64_t next_seq = 1;
    std::int64_t exported_up_to = 0;
    bool pending = false;
    std::uint64_t pending_seq = 0;
    std::int64_t pushes_ok = 0;
    std::int64_t pushes_failed = 0;
    std::int64_t checkpoints = 0;
    /// Init() provenance: whether a checkpoint was restored, and how many
    /// op records the WAL suffix replayed.
    bool recovered_checkpoint = false;
    std::int64_t recovered_ops = 0;
  };
  Stats GetStats() const;

  const std::string& node_id() const { return options_.node_id; }

 private:
  struct PendingFrame {
    std::uint64_t seq = 0;
    std::int64_t up_to = 0;
    std::int64_t covers_ops = 0;
    std::vector<std::uint8_t> bytes;
  };

  std::string WalPath() const;
  std::string CheckpointPath() const;

  /// Serializes every persistable handle of `registry` into (name, state)
  /// pairs (the shape both delta frames and checkpoint blob lists use).
  Result<std::vector<std::pair<std::string, std::vector<std::uint8_t>>>>
  EncodeRegistryState(const SynopsisRegistry& registry) const;

  /// Builds the wire frame for the current delta round under `seq`.
  Result<std::vector<std::uint8_t>> EncodeDeltaRound(std::uint64_t seq,
                                                     std::int64_t covers);

  /// Pushes `frame.bytes` with retry/backoff, then commits: hold (fault
  /// injection), commit marker, exported_up_to.  Caller holds mutex_.
  Status PushAndCommitLocked(PendingFrame& frame);

  SynopsisRegistry* main_;
  DeltaRegistryFactory delta_factory_;
  IngestReplicatorOptions options_;

  mutable std::mutex mutex_;
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<SynopsisRegistry> delta_;
  std::optional<PendingFrame> pending_;
  std::int64_t op_count_ = 0;
  std::uint64_t next_seq_ = 1;
  std::int64_t exported_up_to_ = 0;
  std::int64_t pushes_ok_ = 0;
  std::int64_t pushes_failed_ = 0;
  std::int64_t checkpoints_ = 0;
  std::int64_t last_checkpoint_ops_ = 0;
  bool recovered_checkpoint_ = false;
  std::int64_t recovered_ops_ = 0;
  bool initialized_ = false;

  std::mutex pusher_mutex_;
  std::condition_variable pusher_cv_;
  bool pusher_stop_ = false;
  std::thread pusher_;
};

/// The cluster HTTP surface, layered over the serving routes:
///
///   POST /cluster/push            delta frame body (aggregator)
///   GET  /cluster/status          role + replication counters (live)
///   GET  /cluster/state?synopsis= serialized synopsis state (octet-stream)
///   POST /cluster/push_now        force an export/push round (ingest)
///   POST /cluster/checkpoint_now  force a checkpoint (ingest)
struct ClusterRouteConfig {
  ClusterRole role = ClusterRole::kSingle;
  /// Aggregator role only.
  DeltaAcceptor* acceptor = nullptr;
  /// Ingest role only.
  IngestReplicator* replicator = nullptr;
};

void RegisterClusterRoutes(HttpServer& server, ServingEngine& engine,
                           const ClusterRouteConfig& config);

const char* ClusterRoleName(ClusterRole role);

}  // namespace aqua

#endif  // AQUA_SERVER_CLUSTER_H_
