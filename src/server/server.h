#ifndef AQUA_SERVER_SERVER_H_
#define AQUA_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "server/http.h"
#include "server/io_backend.h"
#include "server/response_cache.h"

namespace aqua {

/// Configuration of an HttpServer.
struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  std::uint16_t port = 0;
  /// Shared-nothing IO reactors.  Each owns an SO_REUSEPORT listener, an
  /// IO backend (epoll or io_uring), a connection registry and a response
  /// cache; the kernel spreads incoming connections across them by flow
  /// hash.
  int reactors = 1;
  /// Which transport each reactor runs on.  kIoUring falls back to kEpoll
  /// with a logged warning when the kernel (or the build) lacks support;
  /// Stats().io_backend reports what is actually running.
  IoBackendKind io_backend = IoBackendKind::kEpoll;
  /// Handler threads for worker-dispatched (mutating) routes.
  int workers = 4;
  /// Bounded request queue: parsed worker-route requests waiting for a
  /// worker.  When full, new worker-route requests are answered 503
  /// immediately — backpressure instead of unbounded queueing (the
  /// BlinkDB-style bounded-response contract: shed load rather than
  /// stretch latency).  Inline routes never queue and never shed.
  std::size_t queue_capacity = 256;
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  /// Pin reactor i to CPU (i mod online CPUs) via pthread_setaffinity_np,
  /// so a scaling run measures per-core serving instead of scheduler
  /// placement.  Best effort: a failed pin is recorded as unpinned in
  /// Stats(), not an error.
  bool pin_reactors = false;
  /// Test hook: SO_SNDBUF (bytes) set on every listener and inherited by
  /// accepted sockets; 0 keeps the kernel default.  The slow-reader tests
  /// shrink this to force partial writes on the reactor path.
  int sndbuf = 0;
  /// Per-reactor response-cache sizing.
  ResponseCacheOptions cache;
};

/// Per-route serving policy.
struct RouteOptions {
  /// Where the handler runs.  kAuto maps GET to the reactor (read path,
  /// run-to-completion, no queue hop) and everything else to the worker
  /// pool.  Register a blocking GET (e.g. a debug sleeper) with kWorker
  /// explicitly so it cannot stall a reactor.
  enum class Dispatch { kAuto, kInline, kWorker };
  Dispatch dispatch = Dispatch::kAuto;
  /// Inline routes only: 200 responses may be served from / stored into
  /// the reactor's epoch-keyed response cache.  Requires an epoch source
  /// (SetEpochSource) to take effect.
  bool cacheable = false;
  /// Optional per-request veto consulted when `cacheable` (prefix routes
  /// covering a mix of cacheable and live paths).  Return false to serve
  /// the request uncached.
  std::function<bool(const HttpRequest&)> cacheable_if;
  /// Optional canonical cache-key builder for routes whose query strings
  /// have many spellings of one meaning (/query's SQL text): append the
  /// canonical form of `request` to the string and return true, or return
  /// false to serve the request uncached (e.g. unparseable input).  The
  /// raw query string is then NOT part of the key, so every spelling hits
  /// one entry.  Must append deterministically and never allocate beyond
  /// the caller's string.
  std::function<bool(const HttpRequest&, std::string*)> canonical_key;
  /// The (scope, epoch) pair a scoped epoch source resolves for one
  /// request: the serving surface that owns the response's bytes (a
  /// catalog attribute, the engine's stream) and that surface's current
  /// serving epoch.  `scope` must stay valid for the handler call — a
  /// view of the request path or a static literal.
  struct ScopedEpoch {
    std::string_view scope;
    std::uint64_t epoch = 0;
  };
  /// Optional per-request scoped epoch source, preferred over the
  /// server-wide SetEpochSource() source when set: cached entries are
  /// keyed under the returned scope's own epoch, so an epoch advance on
  /// one scope (one attribute's ingest) leaves every other scope's warmed
  /// entries intact — surgical instead of wholesale invalidation.  Return
  /// nullopt to serve the request uncached (the scope's epoch is
  /// unsettled or the request doesn't resolve to one scope).
  std::function<std::optional<ScopedEpoch>(const HttpRequest&)> scoped_epoch;
};

/// An HTTP/1.1 server scaled across N shared-nothing reactors: every
/// reactor owns its own SO_REUSEPORT listener socket, IO backend (epoll
/// readiness loop or io_uring completion ring, selected by
/// HttpServerOptions::io_backend), wake eventfd, connection registry and
/// response cache, so the read path never crosses a thread.  A connection
/// is accepted by exactly one reactor and lives there: reads, parsing,
/// inline handling, response writes and keep-alive re-arming all happen on
/// that reactor's thread.
///
/// Read-path (inline) routes run to completion on the reactor — no queue
/// hop, no cross-thread rearm — and may serve fully cached wire bytes via
/// the per-reactor ResponseCache (under io_uring the cache entry's bytes
/// are submitted to the ring in place: zero copies).  The reactor never
/// blocks on a slow reader: a short write parks the unsent tail with the
/// backend (EPOLLOUT rearm / ring resubmission) and receive delivery stays
/// suspended until it drains.  Mutating routes are handed to a shared
/// bounded queue consumed by worker threads, which compute the response,
/// write what the socket accepts without blocking, and return the
/// connection (plus any unsent tail) to its owning reactor.  Keep-alive
/// and pipelined requests are supported (a pipeline may interleave inline
/// and worker requests); chunked uploads are not.
///
/// Lifecycle: Route(...) then Start(); Shutdown() stops accepting, drains
/// queued and in-flight requests, then joins every thread (graceful drain
/// — wire it to SIGTERM in main()).  Wait() blocks until a Shutdown()
/// completes.
class HttpServer {
 public:
  /// Out-param handler form: the server passes a Reset() response whose
  /// strings keep their capacity across requests, so a warmed handler
  /// renders without allocating.  The request's views are valid for the
  /// duration of the call (and, for worker routes, until the rearm is
  /// pushed).
  using Handler = std::function<void(const HttpRequest&, HttpResponse*)>;
  /// Return-by-value convenience form (tests, simple endpoints); wrapped
  /// into a Handler at registration, paying one response copy per call.
  using SimpleHandler = std::function<HttpResponse(const HttpRequest&)>;
  /// The serving epoch the response cache keys on, or nullopt when the
  /// epoch is unsettled (some snapshot cache is stale and the next query
  /// would refresh it) — nullopt forces the handler to run so the refresh
  /// happens and the epoch advances.
  using EpochSource = std::function<std::optional<std::uint64_t>()>;

  explicit HttpServer(const HttpServerOptions& options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for exact (method, path) matches.  Must be called
  /// before Start().  Unknown paths answer 404; known paths with a
  /// different method answer 405.
  void Route(std::string method, std::string path, Handler handler,
             RouteOptions route_options = {});
  void Route(std::string method, std::string path, SimpleHandler handler,
             RouteOptions route_options = {});

  /// Registers a handler for every path starting with `prefix` (e.g.
  /// "/attr/").  Exact routes win over prefixes; among prefixes the longest
  /// match wins.  Must be called before Start().  A path matched only by a
  /// prefix with a different method answers 405 like exact routes.
  void RoutePrefix(std::string method, std::string prefix, Handler handler,
                   RouteOptions route_options = {});
  void RoutePrefix(std::string method, std::string prefix,
                   SimpleHandler handler, RouteOptions route_options = {});

  /// Installs the serving-epoch source the response caches key on.  Must
  /// be called before Start().  Without one, response caching is disabled
  /// (cacheable routes always render).
  void SetEpochSource(EpochSource source) {
    epoch_source_ = std::move(source);
  }

  /// Binds the per-reactor listeners and spawns the reactor + worker
  /// threads.
  Status Start();

  /// The bound port (valid after Start(); all reactors share it via
  /// SO_REUSEPORT).
  std::uint16_t port() const { return port_; }

  /// The transport the reactors actually run on (after the io_uring
  /// availability probe and possible fallback).  Valid after Start().
  IoBackendKind io_backend() const { return io_backend_actual_; }

  /// Graceful drain: stop accepting, answer everything already queued or
  /// in flight, join all threads.  Idempotent; safe from any thread except
  /// a reactor or worker.
  void Shutdown();

  /// Blocks until Shutdown() has completed (from any thread).
  void Wait();

  struct ServerStats {
    std::int64_t accepted = 0;
    std::int64_t requests = 0;
    std::int64_t responses_503 = 0;
    std::int64_t bad_requests = 0;
    std::size_t queue_depth = 0;
    std::size_t reactors = 0;
    /// Response-cache counters aggregated across all reactors.
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
    std::int64_t cache_bypass = 0;
    std::int64_t cache_invalidations = 0;
    std::int64_t cache_stale_evictions = 0;
    /// Name of the transport actually running ("epoll" / "io_uring").
    std::string_view io_backend;
    /// Reactors whose CPU pin succeeded (0 when pinning is off).
    int reactors_pinned = 0;
    /// Transport counters aggregated across all reactors' backends.
    IoBackend::Stats io;
  };
  ServerStats Stats() const;

 private:
  struct RouteEntry {
    std::string method;
    /// Exact path, or prefix for prefix routes.
    std::string path;
    Handler handler;
    bool run_inline = false;
    bool cacheable = false;
    std::function<bool(const HttpRequest&)> cacheable_if;
    std::function<bool(const HttpRequest&, std::string*)> canonical_key;
    std::function<std::optional<RouteOptions::ScopedEpoch>(
        const HttpRequest&)>
        scoped_epoch;
  };

  struct Reactor;

  struct Connection {
    int fd = -1;
    HttpRequestParser parser;
    /// The reactor that accepted this connection; workers hand it back
    /// here for re-arming.
    Reactor* owner = nullptr;
    /// Opaque per-connection handle from the reactor's IoBackend.
    void* io = nullptr;
    /// Close once the pending backend send drains (write failure-free
    /// Connection: close, or a control response like 400/503).
    bool close_after_send = false;
    Connection(int f, const HttpRequestParser::Limits& limits, Reactor* r)
        : fd(f), parser(limits), owner(r) {}
  };

  struct WorkItem {
    Connection* conn = nullptr;
    HttpRequest request;
    const RouteEntry* route = nullptr;
  };

  struct RearmItem {
    Connection* conn = nullptr;
    bool close = false;
    /// Unsent response tail from the worker's nonblocking write; the
    /// reactor finishes it through the backend (empty when the worker's
    /// write completed).
    std::string pending_wire;
    bool has_pending = false;
  };

  /// One shared-nothing IO reactor (one thread's worth of serving state).
  /// Implements IoBackend::Events by forwarding into the server with
  /// itself as context.
  struct Reactor : IoBackend::Events {
    HttpServer* server = nullptr;
    std::size_t index = 0;
    int listen_fd = -1;
    int event_fd = -1;
    /// Guarded by rearm_mutex only around the rare in-thread fallback
    /// swap; effectively reactor-thread-owned.
    std::unique_ptr<IoBackend> backend;
    std::thread thread;
    /// Reactor-thread-owned registry of live connections.
    std::unordered_set<Connection*> connections;
    /// Connections finished by workers, waiting for this reactor to
    /// re-arm or close them.
    std::mutex rearm_mutex;
    std::vector<RearmItem> rearms;
    /// Reactor-local response cache: no shared locks on the hit path.
    ResponseCache cache;
    /// Render scratch reused across every inline request this reactor
    /// serves: the response body and the serialized head keep their
    /// capacity, so a warmed cold path (cache miss or uncacheable route)
    /// writes the wire without touching the allocator.
    HttpResponse response_scratch;
    std::string head_scratch;
    /// CPU this reactor's thread got pinned to, or -1.
    std::atomic<int> pinned_cpu{-1};

    explicit Reactor(const ResponseCacheOptions& cache_options)
        : cache(cache_options) {}

    void OnAccept(int fd) override { server->OnAccept(*this, fd); }
    bool OnRecv(void* token, std::string_view data) override {
      return server->OnRecv(*this, static_cast<Connection*>(token), data);
    }
    void OnRecvClosed(void* token) override {
      server->CloseConnection(*this, static_cast<Connection*>(token));
    }
    void OnSendDrained(void* token) override {
      server->OnSendDrained(*this, static_cast<Connection*>(token));
    }
    void OnSendError(void* token) override {
      server->CloseConnection(*this, static_cast<Connection*>(token));
    }
    void OnWake() override { server->ProcessRearms(*this); }
  };

  Status StartListener(Reactor& reactor);
  void IoLoop(Reactor& reactor);
  void OnAccept(Reactor& reactor, int fd);
  bool OnRecv(Reactor& reactor, Connection* conn, std::string_view data);
  void OnSendDrained(Reactor& reactor, Connection* conn);
  /// Serves every already-parsed request on `conn` (inline routes run to
  /// completion here; a worker route hands the connection off and stops).
  /// Returns false when receive delivery must stop for now (connection
  /// closed, dispatched to a worker, or a send parked).
  bool DrainParsed(Reactor& reactor, Connection* conn);
  /// Routes one parsed request: inline handling (with response cache) or
  /// worker dispatch with 503 shedding.  Same return convention as
  /// DrainParsed.
  bool HandleParsedRequest(Reactor& reactor, Connection* conn,
                           HttpRequest request);
  /// Inline path: cache lookup, handler, backend send, store.  Same
  /// return convention as DrainParsed.
  bool ServeInline(Reactor& reactor, Connection* conn,
                   const RouteEntry* route, bool path_known,
                   const HttpRequest& request);
  /// Folds a backend Send() result into connection state: closes on error
  /// or Connection: close, suspends receive while a send is pending.
  /// Same return convention as DrainParsed.
  bool FinishSend(Reactor& reactor, Connection* conn,
                  IoBackend::SendResult result, bool keep_alive);
  void FindRoute(std::string_view method, std::string_view path,
                 const RouteEntry** route, bool* path_known) const;
  void ProcessRearms(Reactor& reactor);
  void CloseConnection(Reactor& reactor, Connection* conn);
  /// Sends a control response (400/503) through the backend and marks the
  /// connection to close once it drains.
  void SendControl(Reactor& reactor, Connection* conn,
                   const HttpResponse& response);
  /// True when any connection on this reactor still has a parked send.
  bool AnyPendingSend(Reactor& reactor) const;
  void WorkerLoop();

  HttpServerOptions options_;
  HttpRequestParser::Limits limits_;
  std::vector<RouteEntry> routes_;
  std::vector<RouteEntry> prefix_routes_;
  EpochSource epoch_source_;

  std::uint16_t port_ = 0;
  IoBackendKind io_backend_actual_ = IoBackendKind::kEpoll;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::vector<std::thread> workers_;

  // Bounded request queue shared by all reactors (mutex + cv; closed on
  // drain once empty).
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  bool queue_closed_ = false;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<int> in_flight_{0};
  std::mutex shutdown_mutex_;
  bool shutdown_done_ = false;
  std::condition_variable shutdown_cv_;

  std::atomic<std::int64_t> accepted_{0};
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> responses_503_{0};
  std::atomic<std::int64_t> bad_requests_{0};
};

}  // namespace aqua

#endif  // AQUA_SERVER_SERVER_H_
