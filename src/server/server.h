#ifndef AQUA_SERVER_SERVER_H_
#define AQUA_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "server/http.h"

namespace aqua {

/// Configuration of an HttpServer.
struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  std::uint16_t port = 0;
  /// Handler threads.
  int workers = 4;
  /// Bounded request queue: parsed requests waiting for a worker.  When
  /// full, new requests are answered 503 immediately — backpressure
  /// instead of unbounded queueing (the BlinkDB-style bounded-response
  /// contract: shed load rather than stretch latency).
  std::size_t queue_capacity = 256;
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
};

/// A small epoll-based HTTP/1.1 server: one IO thread owns every socket
/// (accept, read, parse, write-on-overload, close); complete requests are
/// handed to a bounded queue consumed by worker threads, which compute the
/// response and write it back on the (handed-off) connection.  Keep-alive
/// and pipelined requests are supported; chunked uploads are not.
///
/// Lifecycle: Route(...) then Start(); Shutdown() stops accepting, drains
/// queued and in-flight requests, then joins every thread (graceful drain —
/// wire it to SIGTERM in main()).  Wait() blocks until a Shutdown()
/// completes.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(const HttpServerOptions& options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for exact (method, path) matches.  Must be called
  /// before Start().  Unknown paths answer 404; known paths with a
  /// different method answer 405.
  void Route(std::string method, std::string path, Handler handler);

  /// Registers a handler for every path starting with `prefix` (e.g.
  /// "/attr/").  Exact routes win over prefixes; among prefixes the longest
  /// match wins.  Must be called before Start().  A path matched only by a
  /// prefix with a different method answers 405 like exact routes.
  void RoutePrefix(std::string method, std::string prefix, Handler handler);

  /// Binds, listens and spawns the IO + worker threads.
  Status Start();

  /// The bound port (valid after Start()).
  std::uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, answer everything already queued or
  /// in flight, join all threads.  Idempotent; safe from any thread except
  /// a worker.
  void Shutdown();

  /// Blocks until Shutdown() has completed (from any thread).
  void Wait();

  struct ServerStats {
    std::int64_t accepted = 0;
    std::int64_t requests = 0;
    std::int64_t responses_503 = 0;
    std::int64_t bad_requests = 0;
    std::size_t queue_depth = 0;
  };
  ServerStats Stats() const;

 private:
  struct Connection {
    int fd = -1;
    HttpRequestParser parser;
    explicit Connection(int f, const HttpRequestParser::Limits& limits)
        : fd(f), parser(limits) {}
  };

  struct WorkItem {
    Connection* conn = nullptr;
    HttpRequest request;
  };

  struct RearmItem {
    Connection* conn = nullptr;
    bool close = false;
  };

  void IoLoop();
  void WorkerLoop();
  void AcceptAll();
  void HandleReadable(Connection* conn);
  /// Parser produced a complete request: unhook from epoll and enqueue (or
  /// 503 when the queue is full).
  void DispatchOrShed(Connection* conn);
  void ProcessRearms();
  void CloseConnection(Connection* conn);
  /// Best-effort synchronous write from the IO thread (400/503 paths).
  void WriteDirect(Connection* conn, const HttpResponse& response);
  void BeginDrain();

  HttpServerOptions options_;
  HttpRequestParser::Limits limits_;
  std::vector<std::pair<std::pair<std::string, std::string>, Handler>>
      routes_;
  // (method, prefix) -> handler; consulted after exact routes miss.
  std::vector<std::pair<std::pair<std::string, std::string>, Handler>>
      prefix_routes_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::uint16_t port_ = 0;

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // Bounded request queue (mutex + cv; closed on drain once empty).
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  bool queue_closed_ = false;

  // Connections finished by workers, waiting for the IO thread to re-arm
  // or close them.
  std::mutex rearm_mutex_;
  std::vector<RearmItem> rearms_;

  // IO-thread-owned registry of live connections (fd -> connection).
  std::map<int, Connection*> connections_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<int> in_flight_{0};
  std::mutex shutdown_mutex_;
  bool shutdown_done_ = false;
  std::condition_variable shutdown_cv_;

  std::atomic<std::int64_t> accepted_{0};
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> responses_503_{0};
  std::atomic<std::int64_t> bad_requests_{0};
};

}  // namespace aqua

#endif  // AQUA_SERVER_SERVER_H_
