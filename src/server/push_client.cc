#include "server/push_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace aqua {
namespace {

/// RAII socket so every early return closes the fd.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

bool WriteAll(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Status HttpPostBlocking(const std::string& host, std::uint16_t port,
                        const std::string& path,
                        const std::vector<std::uint8_t>& body) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* numeric = (host == "localhost") ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, numeric, &addr.sin_addr) != 1) {
    return Status::InvalidArgument("push target must be a numeric IPv4 "
                                   "address or localhost: " +
                                   host);
  }

  Fd sock;
  sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock.fd < 0) return Status::Internal("socket() failed");

  // Bounded blocking: a wedged peer becomes a retryable timeout, not a
  // hung pusher thread.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(sock.fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(sock.fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  if (::connect(sock.fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::FailedPrecondition("connect to " + host + ":" +
                                      std::to_string(port) + " failed: " +
                                      std::strerror(errno));
  }

  char header[256];
  const int header_len = std::snprintf(
      header, sizeof(header),
      "POST %s HTTP/1.1\r\n"
      "Host: %s:%u\r\n"
      "Content-Type: application/octet-stream\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      path.c_str(), host.c_str(), static_cast<unsigned>(port), body.size());
  if (header_len <= 0 || header_len >= static_cast<int>(sizeof(header))) {
    return Status::InvalidArgument("push path too long: " + path);
  }
  if (!WriteAll(sock.fd, header, static_cast<std::size_t>(header_len)) ||
      (!body.empty() && !WriteAll(sock.fd, body.data(), body.size()))) {
    return Status::FailedPrecondition("push write failed: " +
                                      std::string(std::strerror(errno)));
  }

  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(sock.fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::FailedPrecondition("push read failed: " +
                                        std::string(std::strerror(errno)));
    }
    if (n == 0) break;  // Connection: close — EOF ends the response.
    response.append(buffer, static_cast<std::size_t>(n));
    if (response.size() > (1u << 20)) break;  // runaway peer; enough read
  }

  // "HTTP/1.1 NNN ..." — the three digits after the first space.
  const std::size_t space = response.find(' ');
  if (space == std::string::npos || space + 4 > response.size()) {
    return Status::FailedPrecondition("malformed push response");
  }
  int code = 0;
  for (int i = 1; i <= 3; ++i) {
    const char c = response[space + static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') {
      return Status::FailedPrecondition("malformed push response status");
    }
    code = code * 10 + (c - '0');
  }
  if (code >= 200 && code < 300) return Status::OK();
  const std::size_t body_at = response.find("\r\n\r\n");
  return Status::InvalidArgument(
      "push rejected with HTTP " + std::to_string(code) + ": " +
      (body_at == std::string::npos ? "" : response.substr(body_at + 4)));
}

}  // namespace aqua
