// The serving binary's route table, extracted from main() so the handlers
// are testable (zero-alloc pinning, e2e) without forking the process.
//
// Allocation discipline: every GET handler renders into the server-owned
// response scratch through a JsonWriter bound to response->body, and any
// non-trivial answer object (hot lists, stats) lives in thread-local
// scratch filled by the engine/catalog *Into forms.  Once a thread has
// served each shape once, a GET request — parse, route, answer, render,
// serialize — touches the allocator zero times (pinned by
// tests/server/zero_alloc_test.cc).

#include "server/routes.h"

#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <cmath>

#include "common/alloc_counter.h"
#include "common/result.h"
#include "plan/planner.h"
#include "plan/sql_frontend.h"
#include "server/cluster.h"
#include "server/epoch_pump.h"
#include "server/json.h"

namespace aqua {
namespace {

/// Renders {"error": message} with the given status code into the reused
/// response.  The body is already clear (the server Reset()s its scratch
/// before the handler runs), so this appends into warm capacity.
void JsonErrorInto(int code, std::string_view message,
                   HttpResponse* response) {
  response->status_code = code;
  response->body.clear();  // drop any partial render
  JsonWriter w(&response->body);
  w.BeginObject().Key("error").String(message).EndObject();
}

void WriteEstimate(JsonWriter& w, const QueryResponse<Estimate>& response) {
  w.BeginObject();
  w.Key("estimate").Double(response.answer.value);
  w.Key("ci_low").Double(response.answer.ci_low);
  w.Key("ci_high").Double(response.answer.ci_high);
  w.Key("confidence").Double(response.answer.confidence);
  w.Key("sample_points").Int(response.answer.sample_points);
  w.Key("method").String(response.method);
  w.Key("response_ns").Int(response.response_ns);
  w.EndObject();
}

void WriteHotList(JsonWriter& w, const QueryResponse<HotList>& response) {
  w.BeginObject();
  w.Key("items").BeginArray();
  for (const HotListItem& item : response.answer) {
    w.BeginObject();
    w.Key("value").Int(item.value);
    w.Key("estimated_count").Double(item.estimated_count);
    w.Key("synopsis_count").Int(item.synopsis_count);
    w.EndObject();
  }
  w.EndArray();
  w.Key("method").String(response.method);
  w.Key("response_ns").Int(response.response_ns);
  w.EndObject();
}

void WriteSynopsisStats(JsonWriter& w,
                        const std::vector<SynopsisHandleStats>& synopses) {
  w.Key("synopses").BeginArray();
  for (const SynopsisHandleStats& s : synopses) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("valid").Bool(s.valid);
    w.Key("cached").Bool(s.cached);
    w.Key("sharded").Bool(s.sharded);
    w.Key("footprint").Int(s.footprint);
    w.Key("epoch").UInt(s.epoch);
    w.Key("has_view").Bool(s.has_view);
    w.Key("view_build_ns").Int(s.view_build_ns);
    w.Key("cache").BeginObject();
    w.Key("hits").Int(s.cache.hits);
    w.Key("refreshes").Int(s.cache.refreshes);
    w.Key("stale_served").Int(s.cache.stale_served);
    w.Key("inline_refreshes").Int(s.cache.inline_refreshes);
    w.Key("external_refreshes").Int(s.cache.external_refreshes);
    w.Key("refresh_failures").Int(s.cache.refresh_failures);
    w.Key("refresh_ns_p50").Int(s.cache.refresh_ns_p50);
    w.Key("refresh_ns_p99").Int(s.cache.refresh_ns_p99);
    w.EndObject();
    w.Key("refresh").BeginObject();
    w.Key("full_rebuilds").Int(s.refresh.full_rebuilds);
    w.Key("incremental_rebuilds").Int(s.refresh.incremental_rebuilds);
    w.Key("delta_fraction").Double(s.refresh.last_delta_fraction);
    w.Key("view_full_builds").Int(s.refresh.view_full_builds);
    w.Key("view_patched_builds").Int(s.refresh.view_patched_builds);
    w.Key("view_delta_fraction").Double(s.refresh.last_view_delta_fraction);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
}

void WritePlannerStats(
    JsonWriter& w,
    const std::array<PlannerKindStats, kNumQueryKinds>& planner) {
  w.Key("planner").BeginArray();
  for (const PlannerKindStats& p : planner) {
    w.BeginObject();
    w.Key("kind").String(p.kind);
    w.Key("synopsis").String(p.synopsis);
    w.Key("available").Bool(p.available);
    w.Key("latency_ewma_ns").Double(p.latency_ewma_ns);
    w.Key("last_achieved_error").Double(p.last_achieved_error);
    w.EndObject();
  }
  w.EndArray();
}

/// Parses GET hot-list/frequency/count_where parameters shared by the
/// engine and catalog handlers.  Each returns nullopt after rendering a
/// 400 into *response.
std::optional<HotListQuery> ParseHotListQuery(const HttpRequest& request,
                                              HttpResponse* response) {
  const auto k = request.QueryInt("k", 10);
  const auto beta = request.QueryDouble("beta", 3.0);
  if (!k.has_value() || *k < 0 || !beta.has_value() || *beta < 0) {
    JsonErrorInto(400, "k and beta must be nonnegative numbers", response);
    return std::nullopt;
  }
  HotListQuery query;
  query.k = *k;
  query.beta = *beta;
  return query;
}

struct RangeQuery {
  ValueRange range;
  double confidence = 0.95;
};

std::optional<RangeQuery> ParseRangeQuery(const HttpRequest& request,
                                          HttpResponse* response) {
  const auto low =
      request.QueryInt("low", std::numeric_limits<std::int64_t>::min());
  const auto high =
      request.QueryInt("high", std::numeric_limits<std::int64_t>::max());
  const auto confidence = request.QueryDouble("confidence", 0.95);
  if (!low.has_value() || !high.has_value() || !confidence.has_value() ||
      *confidence <= 0.0 || *confidence >= 1.0) {
    JsonErrorInto(400,
                  "malformed ?low=/?high=/?confidence= (confidence in "
                  "(0,1))",
                  response);
    return std::nullopt;
  }
  RangeQuery query;
  query.range.low = *low;
  query.range.high = *high;
  query.confidence = *confidence;
  return query;
}

struct QuantileQueryParams {
  double q = 0.5;
  double confidence = 0.95;
};

std::optional<QuantileQueryParams> ParseQuantileQuery(
    const HttpRequest& request, HttpResponse* response) {
  const auto q = request.QueryDouble("q", 0.5);
  const auto confidence = request.QueryDouble("confidence", 0.95);
  if (!q.has_value() || *q < 0.0 || *q > 1.0 || !confidence.has_value() ||
      *confidence <= 0.0 || *confidence >= 1.0) {
    JsonErrorInto(
        400, "malformed ?q=/?confidence= (q in [0,1], confidence in (0,1))",
        response);
    return std::nullopt;
  }
  QuantileQueryParams params;
  params.q = *q;
  params.confidence = *confidence;
  return params;
}

/// Thread-local hot-list response scratch shared by the engine and catalog
/// hot-list handlers: the items vector and the per-reactor JSON render are
/// the only non-trivial state, and both keep their capacity.
QueryResponse<HotList>& HotListScratch() {
  thread_local QueryResponse<HotList> scratch;
  return scratch;
}

/// Resolves one registry's scoped cache epoch for a cacheable request.
///
/// Inline mode keeps the old freshness contract: a stale snapshot cache is
/// settled here (the re-merge runs on this query thread, at most once per
/// staleness window), and an epoch that will not settle — a failing
/// refresher — answers nullopt so the request serves uncached.  Pump mode
/// never settles: with external_refresh set, a stale warmed Get() serves
/// the previous epoch's snapshot by pointer copy, so cached bytes keyed on
/// the current (pre-advance) epoch are exactly what the handler would
/// render — the source is a pure epoch read and query threads never pay a
/// re-merge.
std::optional<RouteOptions::ScopedEpoch> RegistryScopedEpoch(
    const SynopsisRegistry* registry, std::string_view scope,
    RefreshMode mode) {
  if (registry == nullptr) return std::nullopt;
  if (mode == RefreshMode::kInline) {
    if (registry->AnyCacheStale()) registry->SettleCaches();
    if (registry->AnyCacheStale()) return std::nullopt;
  }
  return RouteOptions::ScopedEpoch{scope, registry->ServingEpoch()};
}

}  // namespace

void RegisterServingRoutes(HttpServer& server, ServingEngine& engine,
                           const RouteConfig& config) {
  // Query routes are cacheable: within one serving epoch the synopsis is
  // frozen, so identical requests have byte-identical responses.  The
  // engine's registry is one cache scope ("stream"): its epoch advances
  // only invalidate these routes' entries, never a catalog attribute's.
  RouteOptions cacheable;
  cacheable.cacheable = true;
  cacheable.scoped_epoch = [&engine, mode = config.refresh_mode](
                               const HttpRequest&) {
    return RegistryScopedEpoch(&engine.registry(), "stream", mode);
  };

  server.Route("GET", "/healthz",
               [](const HttpRequest&, HttpResponse* response) {
                 response->body.append("{\"ok\":true}");
               });

  server.Route(
      "GET", "/hotlist",
      [&engine](const HttpRequest& request, HttpResponse* response) {
        const auto query = ParseHotListQuery(request, response);
        if (!query.has_value()) return;
        QueryResponse<HotList>& answer = HotListScratch();
        engine.HotListAnswerInto(*query, &answer);
        JsonWriter w(&response->body);
        WriteHotList(w, answer);
      },
      cacheable);

  server.Route(
      "GET", "/frequency",
      [&engine](const HttpRequest& request, HttpResponse* response) {
        const auto value = request.QueryInt("value", /*fallback=*/0);
        if (!value.has_value() || !request.QueryParam("value").has_value()) {
          JsonErrorInto(400, "missing or malformed ?value=", response);
          return;
        }
        JsonWriter w(&response->body);
        WriteEstimate(w, engine.FrequencyAnswer(*value));
      },
      cacheable);

  server.Route(
      "GET", "/count_where",
      [&engine](const HttpRequest& request, HttpResponse* response) {
        const auto query = ParseRangeQuery(request, response);
        if (!query.has_value()) return;
        // The range overload answers in O(log m) from the epoch's frozen
        // view when one exists (identical estimate to the predicate form).
        JsonWriter w(&response->body);
        WriteEstimate(
            w, engine.CountWhereAnswer(query->range, query->confidence));
      },
      cacheable);

  server.Route(
      "GET", "/quantile",
      [&engine](const HttpRequest& request, HttpResponse* response) {
        const auto params = ParseQuantileQuery(request, response);
        if (!params.has_value()) return;
        JsonWriter w(&response->body);
        WriteEstimate(w,
                      engine.QuantileAnswer(params->q, params->confidence));
      },
      cacheable);

  server.Route(
      "GET", "/distinct",
      [&engine](const HttpRequest&, HttpResponse* response) {
        JsonWriter w(&response->body);
        WriteEstimate(w, engine.DistinctValuesAnswer());
      },
      cacheable);

  // /stats is deliberately NOT cacheable: it reports live counters.
  server.Route(
      "GET", "/stats",
      [&engine, &server, mode = config.refresh_mode,
       pump = config.pump](const HttpRequest&, HttpResponse* response) {
        thread_local ServingEngine::Stats stats;
        engine.GetStatsInto(&stats);
        const HttpServer::ServerStats http = server.Stats();
        JsonWriter w(&response->body);
        w.BeginObject();
        w.Key("inserts").Int(stats.inserts);
        w.Key("deletes").Int(stats.deletes);
        w.Key("concise_valid").Bool(stats.concise_valid);
        w.Key("shards").UInt(stats.shards);
        w.Key("footprint_bound").Int(stats.footprint_bound);
        w.Key("epoch").UInt(stats.epoch);
        w.Key("refresh_mode")
            .String(mode == RefreshMode::kPump ? "pump" : "inline");
        if (pump != nullptr) {
          const EpochPump::Stats ps = pump->GetStats();
          w.Key("pump").BeginObject();
          w.Key("running").Bool(pump->running());
          w.Key("domains").UInt(ps.domains);
          w.Key("ticks").Int(ps.ticks);
          w.Key("refreshes").Int(ps.refreshes);
          w.Key("backlog").Int(ps.backlog);
          w.Key("max_backlog").Int(ps.max_backlog);
          w.EndObject();
        }
        // Global operator-new calls since process start; 0 unless built
        // with -DAQUA_COUNT_GLOBAL_ALLOCS=ON.  CI samples this around a
        // warmed GET window to assert allocs_per_request == 0.
        w.Key("allocs_total").Int(GlobalAllocCount());
        w.Key("alloc_counting").Bool(GlobalAllocCountingEnabled());
        WriteSynopsisStats(w, stats.synopses);
        WritePlannerStats(w, stats.planner);
        w.Key("http").BeginObject();
        w.Key("accepted").Int(http.accepted);
        w.Key("requests").Int(http.requests);
        w.Key("responses_503").Int(http.responses_503);
        w.Key("bad_requests").Int(http.bad_requests);
        w.Key("queue_depth").UInt(http.queue_depth);
        w.Key("reactors").UInt(http.reactors);
        w.Key("cache_hits").Int(http.cache_hits);
        w.Key("cache_misses").Int(http.cache_misses);
        w.Key("cache_bypass").Int(http.cache_bypass);
        w.Key("cache_invalidations").Int(http.cache_invalidations);
        w.Key("cache_stale_evictions").Int(http.cache_stale_evictions);
        w.Key("io_backend").String(http.io_backend);
        w.Key("reactors_pinned").Int(http.reactors_pinned);
        w.Key("io").BeginObject();
        w.Key("syscalls").Int(http.io.syscalls);
        w.Key("zero_copy_sends").Int(http.io.zero_copy_sends);
        w.Key("copied_sends").Int(http.io.copied_sends);
        w.Key("copied_bytes").Int(http.io.copied_bytes);
        w.Key("bytes_sent").Int(http.io.bytes_sent);
        w.Key("bytes_received").Int(http.io.bytes_received);
        w.EndObject();
        w.EndObject();
        w.EndObject();
      });

  server.Route(
      "POST", "/ingest",
      [&engine, replicator = config.replicator](const HttpRequest& request,
                                                HttpResponse* response) {
        Result<std::vector<Value>> values = ParseValueArray(request.body);
        if (!values.ok()) {
          JsonErrorInto(400, values.status().message(), response);
          return;
        }
        if (replicator != nullptr) {
          // Cluster ingest: WAL-ahead through the replicator (which feeds
          // the same engine registry, so queries see the batch too).
          const Status status = replicator->Ingest(values.ValueOrDie());
          if (!status.ok()) {
            JsonErrorInto(500, status.message(), response);
            return;
          }
        } else {
          engine.InsertBatch(values.ValueOrDie());
        }
        JsonWriter w(&response->body);
        w.BeginObject();
        w.Key("ingested").UInt(values.ValueOrDie().size());
        w.Key("total_inserts").Int(engine.observed_inserts());
        w.EndObject();
      });

  server.Route(
      "POST", "/delete",
      [&engine](const HttpRequest& request, HttpResponse* response) {
        Result<std::vector<Value>> values = ParseValueArray(request.body);
        if (!values.ok()) {
          JsonErrorInto(400, values.status().message(), response);
          return;
        }
        for (Value v : values.ValueOrDie()) {
          const Status status = engine.Delete(v);
          if (!status.ok()) {
            JsonErrorInto(409, status.message(), response);
            return;
          }
        }
        JsonWriter w(&response->body);
        w.BeginObject();
        w.Key("deleted").UInt(values.ValueOrDie().size());
        w.Key("total_deletes").Int(engine.observed_deletes());
        w.EndObject();
      });

  if (config.enable_debug) {
    // Deterministic worker occupancy for overload tests: holds a worker
    // thread for ?ms= milliseconds before answering.  Explicitly
    // worker-dispatched — a blocking GET must never stall a reactor.
    RouteOptions on_worker;
    on_worker.dispatch = RouteOptions::Dispatch::kWorker;
    server.Route(
        "GET", "/debug/sleep",
        [](const HttpRequest& request, HttpResponse* response) {
          const auto ms = request.QueryInt("ms", 100);
          if (!ms.has_value() || *ms < 0 || *ms > 10000) {
            JsonErrorInto(400, "ms must be in [0, 10000]", response);
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(*ms));
          JsonWriter w(&response->body);
          w.BeginObject().Key("slept_ms").Int(*ms).EndObject();
        },
        on_worker);
  }
}

namespace {

/// Splits "/attr/{name}/{endpoint}" into its two view components (both
/// alias request.path, valid for the handler's duration).
std::optional<std::pair<std::string_view, std::string_view>> SplitAttrPath(
    std::string_view path) {
  constexpr std::string_view kPrefix = "/attr/";
  std::string_view rest = path;
  rest.remove_prefix(kPrefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos || slash == 0) return std::nullopt;
  const std::string_view endpoint = rest.substr(slash + 1);
  if (endpoint.empty() || endpoint.find('/') != std::string_view::npos) {
    return std::nullopt;
  }
  return std::make_pair(rest.substr(0, slash), endpoint);
}

/// Maps a catalog Status to the HTTP layer: NotFound (unknown attribute)
/// answers 404, everything else 500.
void CatalogErrorInto(const Status& status, HttpResponse* response) {
  JsonErrorInto(status.code() == StatusCode::kNotFound ? 404 : 500,
                status.message(), response);
}

void HandleCatalogGet(const SynopsisCatalog& catalog,
                      std::string_view attribute, std::string_view endpoint,
                      const HttpRequest& request, HttpResponse* response) {
  if (endpoint == "hotlist") {
    const auto query = ParseHotListQuery(request, response);
    if (!query.has_value()) return;
    QueryResponse<HotList>& answer = HotListScratch();
    const Status status = catalog.HotListForInto(attribute, *query, &answer);
    if (!status.ok()) return CatalogErrorInto(status, response);
    JsonWriter w(&response->body);
    WriteHotList(w, answer);
    return;
  }
  if (endpoint == "frequency") {
    const auto value = request.QueryInt("value", /*fallback=*/0);
    if (!value.has_value() || !request.QueryParam("value").has_value()) {
      return JsonErrorInto(400, "missing or malformed ?value=", response);
    }
    const auto answer = catalog.FrequencyFor(attribute, *value);
    if (!answer.ok()) return CatalogErrorInto(answer.status(), response);
    JsonWriter w(&response->body);
    WriteEstimate(w, answer.ValueOrDie());
    return;
  }
  if (endpoint == "count_where") {
    const auto query = ParseRangeQuery(request, response);
    if (!query.has_value()) return;
    const auto answer =
        catalog.CountWhereFor(attribute, query->range, query->confidence);
    if (!answer.ok()) return CatalogErrorInto(answer.status(), response);
    JsonWriter w(&response->body);
    WriteEstimate(w, answer.ValueOrDie());
    return;
  }
  if (endpoint == "quantile") {
    const auto params = ParseQuantileQuery(request, response);
    if (!params.has_value()) return;
    const auto answer =
        catalog.QuantileFor(attribute, params->q, params->confidence);
    if (!answer.ok()) return CatalogErrorInto(answer.status(), response);
    JsonWriter w(&response->body);
    WriteEstimate(w, answer.ValueOrDie());
    return;
  }
  if (endpoint == "distinct") {
    const auto answer = catalog.DistinctFor(attribute);
    if (!answer.ok()) return CatalogErrorInto(answer.status(), response);
    JsonWriter w(&response->body);
    WriteEstimate(w, answer.ValueOrDie());
    return;
  }
  if (endpoint == "stats") {
    thread_local RegistryStats stats;
    const Status status = catalog.StatsForInto(attribute, &stats);
    if (!status.ok()) return CatalogErrorInto(status, response);
    const SynopsisRegistry* registry = catalog.registry(attribute);
    JsonWriter w(&response->body);
    w.BeginObject();
    w.Key("attribute").String(attribute);
    w.Key("inserts").Int(stats.inserts);
    w.Key("deletes").Int(stats.deletes);
    w.Key("share_words").Int(catalog.ShareOf(attribute));
    w.Key("epoch").UInt(registry != nullptr ? registry->ServingEpoch() : 0);
    WriteSynopsisStats(w, stats.synopses);
    WritePlannerStats(w, stats.planner);
    w.EndObject();
    return;
  }
  JsonErrorInto(404, "no such endpoint", response);
}

void HandleCatalogPost(SynopsisCatalog& catalog, std::string_view attribute,
                       std::string_view endpoint, const HttpRequest& request,
                       HttpResponse* response) {
  if (endpoint != "ingest" && endpoint != "delete") {
    return JsonErrorInto(404, "no such endpoint", response);
  }
  Result<std::vector<Value>> values = ParseValueArray(request.body);
  if (!values.ok()) {
    return JsonErrorInto(400, values.status().message(), response);
  }
  // The mutating surface routes through std::string keys (ingest is the
  // allocating path anyway — ParseValueArray just built a vector).
  const std::string name(attribute);
  if (endpoint == "ingest") {
    const Status status = catalog.InsertBatch(name, values.ValueOrDie());
    if (!status.ok()) return CatalogErrorInto(status, response);
    JsonWriter w(&response->body);
    w.BeginObject();
    w.Key("attribute").String(attribute);
    w.Key("ingested").UInt(values.ValueOrDie().size());
    w.EndObject();
    return;
  }
  for (Value v : values.ValueOrDie()) {
    StreamOp op;
    op.kind = StreamOp::Kind::kDelete;
    op.value = v;
    const Status status = catalog.Observe(name, op);
    if (!status.ok()) {
      if (status.code() == StatusCode::kNotFound) {
        return CatalogErrorInto(status, response);
      }
      return JsonErrorInto(409, status.message(), response);
    }
  }
  JsonWriter w(&response->body);
  w.BeginObject();
  w.Key("attribute").String(attribute);
  w.Key("deleted").UInt(values.ValueOrDie().size());
  w.EndObject();
}

}  // namespace

void RegisterCatalogRoutes(HttpServer& server, SynopsisCatalog& catalog,
                           RefreshMode refresh_mode) {
  // Catalog queries are cacheable like the engine's, except the live
  // /attr/{name}/stats endpoint, which the predicate carves out.  Each
  // attribute is its own cache scope, keyed on *its* registry's epoch —
  // ingest into attribute A advances only A's scope, so B's warmed
  // entries keep hitting (the surgical-invalidation contract, pinned by
  // tests/server/response_cache_test.cc and e2e_http_test.cc).
  RouteOptions cacheable;
  cacheable.cacheable = true;
  cacheable.cacheable_if = [](const HttpRequest& request) {
    return !request.path.ends_with("/stats");
  };
  cacheable.scoped_epoch =
      [&catalog, refresh_mode](const HttpRequest& request)
      -> std::optional<RouteOptions::ScopedEpoch> {
    const auto parts = SplitAttrPath(request.path);
    if (!parts.has_value()) return std::nullopt;
    // parts->first aliases request.path — stable for the handler call.
    return RegistryScopedEpoch(catalog.registry(parts->first), parts->first,
                               refresh_mode);
  };

  server.RoutePrefix(
      "GET", "/attr/",
      [&catalog](const HttpRequest& request, HttpResponse* response) {
        const auto parts = SplitAttrPath(request.path);
        if (!parts.has_value()) {
          return JsonErrorInto(404, "expected /attr/{name}/{endpoint}",
                               response);
        }
        HandleCatalogGet(catalog, parts->first, parts->second, request,
                         response);
      },
      cacheable);
  server.RoutePrefix(
      "POST", "/attr/",
      [&catalog](const HttpRequest& request, HttpResponse* response) {
        const auto parts = SplitAttrPath(request.path);
        if (!parts.has_value()) {
          return JsonErrorInto(404, "expected /attr/{name}/{endpoint}",
                               response);
        }
        HandleCatalogPost(catalog, parts->first, parts->second, request,
                          response);
      });
}

namespace {

/// FROM resolution: the default engine by the reserved name "stream", any
/// catalog attribute by name otherwise.
const SynopsisRegistry* ResolveQueryTarget(const ServingEngine& engine,
                                           const SynopsisCatalog* catalog,
                                           std::string_view target) {
  if (target == "stream") return &engine.registry();
  if (catalog != nullptr) return catalog->registry(target);
  return nullptr;
}

void WritePlannedResponse(const ParsedSqlQuery& parsed,
                          const PlannedResponse& planned,
                          HttpResponse* response) {
  JsonWriter w(&response->body);
  w.BeginObject();
  w.Key("kind").String(QueryKindName(parsed.query.kind));
  w.Key("target").String(parsed.target);
  if (parsed.query.kind == QueryKind::kHotList) {
    w.Key("items").BeginArray();
    for (const HotListItem& item : planned.hotlist) {
      w.BeginObject();
      w.Key("value").Int(item.value);
      w.Key("estimated_count").Double(item.estimated_count);
      w.Key("synopsis_count").Int(item.synopsis_count);
      w.EndObject();
    }
    w.EndArray();
  } else {
    w.Key("estimate").Double(planned.estimate.value);
    w.Key("ci_low").Double(planned.estimate.ci_low);
    w.Key("ci_high").Double(planned.estimate.ci_high);
    w.Key("confidence").Double(planned.estimate.confidence);
    w.Key("sample_points").Int(planned.estimate.sample_points);
  }
  // `method` matches the dedicated routes' tag (the synopsis name);
  // `synopsis` and `path` spell the planner's choice out explicitly.
  w.Key("method").String(planned.method);
  w.Key("synopsis").String(planned.method);
  w.Key("path").String(planned.used_view ? "view" : "direct");
  if (std::isfinite(planned.achieved_error)) {
    w.Key("achieved_error").Double(planned.achieved_error);
  }
  if (std::isfinite(planned.predicted_error)) {
    w.Key("predicted_error").Double(planned.predicted_error);
  }
  if (parsed.has_error) {
    w.Key("requested_error").Double(parsed.query.bound.max_error);
    w.Key("met_error").Bool(planned.met_error);
  }
  if (parsed.has_deadline) {
    w.Key("deadline_ns").Int(parsed.query.bound.deadline_ns);
    w.Key("predicted_ns").Double(planned.predicted_ns);
    w.Key("met_deadline").Bool(planned.met_deadline);
  }
  w.Key("response_ns").Int(planned.response_ns);
  w.EndObject();
}

void HandleSqlStatement(const ServingEngine& engine,
                        const SynopsisCatalog* catalog,
                        std::string_view text, HttpResponse* response) {
  ParsedSqlQuery parsed;
  const Status status = ParseSqlQuery(text, &parsed);
  if (!status.ok()) {
    return JsonErrorInto(400, status.message(), response);
  }
  const SynopsisRegistry* registry =
      ResolveQueryTarget(engine, catalog, parsed.target);
  if (registry == nullptr) {
    return JsonErrorInto(404, "unknown relation", response);
  }
  // Thread-local planned-response scratch: the hot-list vector keeps its
  // capacity, so a warmed /query GET answers without allocating.
  thread_local PlannedResponse planned;
  RunPlannedQueryInto(*registry, parsed.query, &planned);
  WritePlannedResponse(parsed, planned, response);
}

}  // namespace

void RegisterQueryRoutes(HttpServer& server, ServingEngine& engine,
                         SynopsisCatalog* catalog, RefreshMode refresh_mode) {
  RouteOptions cacheable;
  cacheable.cacheable = true;
  // Cache under the canonical statement, not the raw text: clause order,
  // percent spellings and keyword case all collapse to one entry.
  // Unparseable statements serve uncached (the 400 is never stored).
  cacheable.canonical_key = [](const HttpRequest& request,
                               std::string* out) {
    const auto q = request.QueryParam("q");
    if (!q.has_value()) return false;
    ParsedSqlQuery parsed;
    if (!ParseSqlQuery(*q, &parsed).ok()) return false;
    AppendCanonicalSqlKey(parsed, out);
    return true;
  };
  // Scope a cached /query entry to its FROM target's registry — the same
  // scope names the dedicated routes use ("stream" or the attribute), so
  // /query and /attr/{name}/... share one invalidation domain per
  // relation.  parsed.target aliases the request's query text.
  cacheable.scoped_epoch =
      [&engine, catalog, refresh_mode](const HttpRequest& request)
      -> std::optional<RouteOptions::ScopedEpoch> {
    const auto q = request.QueryParam("q");
    if (!q.has_value()) return std::nullopt;
    ParsedSqlQuery parsed;
    if (!ParseSqlQuery(*q, &parsed).ok()) return std::nullopt;
    return RegistryScopedEpoch(ResolveQueryTarget(engine, catalog,
                                                  parsed.target),
                               parsed.target, refresh_mode);
  };

  server.Route(
      "GET", "/query",
      [&engine, catalog](const HttpRequest& request, HttpResponse* response) {
        const auto q = request.QueryParam("q");
        if (!q.has_value()) {
          return JsonErrorInto(400, "missing ?q=", response);
        }
        HandleSqlStatement(engine, catalog, *q, response);
      },
      cacheable);

  // POST /query takes the statement as the body (no percent-encoding
  // gymnastics for ad-hoc clients); mutating-path dispatch, never cached.
  server.Route(
      "POST", "/query",
      [&engine, catalog](const HttpRequest& request, HttpResponse* response) {
        HandleSqlStatement(engine, catalog, request.body, response);
      });
}

void InstallEpochSource(HttpServer& server, ServingEngine& engine,
                        SynopsisCatalog* catalog, RefreshMode refresh_mode) {
  // The fallback source for cacheable routes without a scoped_epoch: the
  // combined serving epoch of everything this process serves; nullopt
  // (some snapshot cache stale in inline mode) forces a miss so the
  // handler runs, refreshes, and advances the epoch — cached bytes are
  // never fresher-looking than the staleness bounds allow.
  server.SetEpochSource([&engine, catalog,
                         refresh_mode]() -> std::optional<std::uint64_t> {
    if (refresh_mode == RefreshMode::kInline) {
      // Queries only refresh the synopsis they touch, so stale caches on
      // other synopses would keep the epoch unsettled forever; settle
      // them here (at most one merge per handle per staleness window).
      // In pump mode this branch is dead by construction: the pump owns
      // every settle, and a stale warmed cache keeps serving its current
      // epoch, so reading the epochs below stays consistent with what a
      // handler would render.
      if (engine.AnyCacheStale()) engine.SettleCaches();
      if (catalog != nullptr && catalog->AnyCacheStale()) {
        catalog->SettleCaches();
      }
      if (engine.AnyCacheStale() ||
          (catalog != nullptr && catalog->AnyCacheStale())) {
        return std::nullopt;  // a refresh failed; serve uncached
      }
    }
    std::uint64_t epoch = engine.ServingEpoch();
    if (catalog != nullptr) epoch += catalog->ServingEpoch();
    return epoch;
  });
}

}  // namespace aqua
