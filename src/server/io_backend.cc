// Epoll implementation of the IoBackend interface plus the shared kind
// parsing / fallback factory.  The io_uring implementation lives in
// io_uring_backend.cc (gated on AQUA_WITH_IOURING).
#include "server/io_backend.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <vector>

namespace aqua {

bool ParseIoBackendKind(std::string_view name, IoBackendKind* kind) {
  if (name == "epoll") {
    *kind = IoBackendKind::kEpoll;
    return true;
  }
  if (name == "io_uring" || name == "iouring" || name == "uring") {
    *kind = IoBackendKind::kIoUring;
    return true;
  }
  return false;
}

std::string_view IoBackendKindName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kEpoll:
      return "epoll";
    case IoBackendKind::kIoUring:
      return "io_uring";
  }
  return "unknown";
}

namespace {

// Readiness-driven backend: level-triggered epoll, nonblocking read/writev
// performed by the backend at readiness time so the serving core sees the
// same completion-style callbacks io_uring produces.  Never blocks outside
// epoll_wait: a short write parks the unsent tail on the connection and
// arms EPOLLOUT (satellite fix for the old WritevAll spin).
class EpollBackend final : public IoBackend {
 public:
  EpollBackend() = default;
  ~EpollBackend() override { Shutdown(); }

  Status Init(int listen_fd, int wake_fd, Events* events) override {
    listen_fd_ = listen_fd;
    wake_fd_ = wake_fd;
    events_ = events;
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    CountSyscall();
    if (epoll_fd_ < 0) {
      return Status::Internal("epoll_create1 failed: " +
                              std::string(::strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &listen_tag_;
    CountSyscall();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      return Status::Internal("epoll_ctl(listener) failed: " +
                              std::string(::strerror(errno)));
    }
    ev.events = EPOLLIN;
    ev.data.ptr = &wake_tag_;
    CountSyscall();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      return Status::Internal("epoll_ctl(wake fd) failed: " +
                              std::string(::strerror(errno)));
    }
    return Status::OK();
  }

  Status Poll(int timeout_ms) override {
    ReapClosed();
    epoll_event events[128];
    CountSyscall();
    const int n = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Status::Internal("epoll_wait failed: " +
                              std::string(::strerror(errno)));
    }
    for (int i = 0; i < n; ++i) {
      void* ptr = events[i].data.ptr;
      if (ptr == &listen_tag_) {
        HandleAccept();
        continue;
      }
      if (ptr == &wake_tag_) {
        HandleWake();
        continue;
      }
      auto* conn = static_cast<Conn*>(ptr);
      if (conn->closed) continue;
      if (conn->send_pending) {
        // While a send is parked the mask is EPOLLOUT-only; errors and
        // hangups surface as a write failure inside the flush.
        if (events[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) {
          FlushParked(conn);
        }
        continue;
      }
      if (conn->recv_on &&
          (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP))) {
        HandleReadable(conn);
      }
    }
    ReapClosed();
    return Status::OK();
  }

  void* Add(int fd, void* token) override {
    auto* conn = new Conn();
    conn->fd = fd;
    conn->token = token;
    conn->recv_on = true;
    if (!SyncMask(conn)) {
      delete conn;
      return nullptr;
    }
    return conn;
  }

  void SuspendRecv(void* handle) override {
    auto* conn = static_cast<Conn*>(handle);
    if (!conn->recv_on) return;
    conn->recv_on = false;
    SyncMask(conn);
  }

  void ResumeRecv(void* handle) override {
    auto* conn = static_cast<Conn*>(handle);
    if (conn->recv_on) return;
    conn->recv_on = true;
    SyncMask(conn);
  }

  SendResult Send(void* handle, std::string_view head, std::string_view body,
                  const std::shared_ptr<const std::string>* pin) override {
    auto* conn = static_cast<Conn*>(handle);
    const std::size_t total = head.size() + body.size();
    std::size_t written = 0;
    while (written < total) {
      iovec iov[2];
      int iovcnt = 0;
      if (written < head.size()) {
        iov[iovcnt].iov_base = const_cast<char*>(head.data()) + written;
        iov[iovcnt].iov_len = head.size() - written;
        ++iovcnt;
      }
      const std::size_t body_done =
          written > head.size() ? written - head.size() : 0;
      if (body_done < body.size()) {
        iov[iovcnt].iov_base = const_cast<char*>(body.data()) + body_done;
        iov[iovcnt].iov_len = body.size() - body_done;
        ++iovcnt;
      }
      CountSyscall();
      const ssize_t n = ::writev(conn->fd, iov, iovcnt);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
        bytes_sent_.fetch_add(n, std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        ParkTail(conn, head, body, written, pin);
        return SendResult::kPending;
      }
      return SendResult::kError;
    }
    zero_copy_sends_.fetch_add(1, std::memory_order_relaxed);
    return SendResult::kDone;
  }

  bool HasPendingSend(const void* handle) const override {
    return static_cast<const Conn*>(handle)->send_pending;
  }

  void StopAccepting() override {
    if (!accepting_) return;
    accepting_ = false;
    CountSyscall();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  }

  void Close(void* handle) override {
    auto* conn = static_cast<Conn*>(handle);
    if (conn->closed) return;
    if (conn->registered) {
      CountSyscall();
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
      conn->registered = false;
    }
    CountSyscall();
    ::close(conn->fd);
    conn->fd = -1;
    conn->closed = true;
    conn->pin.reset();
    // Deferred free: a later event in the current epoll_wait batch may
    // still carry this pointer; Poll() skips closed conns and frees them
    // once the batch is fully dispatched.
    closed_.push_back(conn);
  }

  void Shutdown() override {
    ReapClosed();
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
    }
  }

  IoBackendKind kind() const override { return IoBackendKind::kEpoll; }

  Stats GetStats() const override {
    Stats s;
    s.syscalls = syscalls_.load(std::memory_order_relaxed);
    s.zero_copy_sends = zero_copy_sends_.load(std::memory_order_relaxed);
    s.copied_sends = copied_sends_.load(std::memory_order_relaxed);
    s.copied_bytes = copied_bytes_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Conn {
    int fd = -1;
    void* token = nullptr;
    bool recv_on = false;
    bool send_pending = false;
    bool registered = false;
    bool closed = false;
    // Parked send tail: `park_data/park_len` point either into *pin (cache
    // entry kept alive with no copy) or into `owned` (copied volatile
    // scratch).
    std::shared_ptr<const std::string> pin;
    std::string owned;
    const char* park_data = nullptr;
    std::size_t park_len = 0;
  };

  void CountSyscall() { syscalls_.fetch_add(1, std::memory_order_relaxed); }

  // Brings the epoll registration in line with (recv_on, send_pending).
  // A connection with neither (worker handoff) is deregistered entirely so
  // level-triggered hangups cannot spin the reactor while a worker owns it.
  bool SyncMask(Conn* conn) {
    const uint32_t mask = (conn->recv_on ? EPOLLIN : 0u) |
                          (conn->send_pending ? EPOLLOUT : 0u);
    if (mask == 0) {
      if (conn->registered) {
        CountSyscall();
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
        conn->registered = false;
      }
      return true;
    }
    epoll_event ev{};
    ev.events = mask;
    ev.data.ptr = conn;
    const int op = conn->registered ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
    CountSyscall();
    if (::epoll_ctl(epoll_fd_, op, conn->fd, &ev) != 0) return false;
    conn->registered = true;
    return true;
  }

  void HandleAccept() {
    if (!accepting_) return;
    for (;;) {
      CountSyscall();
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept failure; next event retries
      }
      events_->OnAccept(fd);
    }
  }

  void HandleWake() {
    uint64_t value = 0;
    CountSyscall();
    [[maybe_unused]] const ssize_t n =
        ::read(wake_fd_, &value, sizeof(value));
    events_->OnWake();
  }

  void HandleReadable(Conn* conn) {
    char buf[16384];
    for (;;) {
      CountSyscall();
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        bytes_received_.fetch_add(n, std::memory_order_relaxed);
        if (!events_->OnRecv(conn->token,
                             std::string_view(buf, static_cast<size_t>(n)))) {
          return;  // core closed / suspended / parked — conn may be gone
        }
        if (conn->closed || !conn->recv_on) return;
        // Level-triggered epoll re-fires if more bytes are queued, so a
        // short read ends the loop without paying an extra EAGAIN read.
        if (n < static_cast<ssize_t>(sizeof(buf))) return;
        continue;
      }
      if (n == 0) {
        events_->OnRecvClosed(conn->token);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      events_->OnRecvClosed(conn->token);
      return;
    }
  }

  void ParkTail(Conn* conn, std::string_view head, std::string_view body,
                std::size_t written,
                const std::shared_ptr<const std::string>* pin) {
    const std::size_t remaining = head.size() + body.size() - written;
    // A pinned buffer can be parked in place (the shared_ptr keeps the
    // cache entry alive, even across an epoch flush) as long as head and
    // body are one contiguous span inside it — true for the cached wire
    // path, which passes the whole entry as `head`.
    if (pin != nullptr && *pin != nullptr &&
        (body.empty() || head.data() + head.size() == body.data())) {
      conn->pin = *pin;
      conn->park_data = head.data() + written;
      conn->park_len = remaining;
      zero_copy_sends_.fetch_add(1, std::memory_order_relaxed);
    } else {
      conn->owned.clear();
      if (written < head.size()) conn->owned.append(head.substr(written));
      const std::size_t body_done =
          written > head.size() ? written - head.size() : 0;
      if (body_done < body.size()) conn->owned.append(body.substr(body_done));
      conn->park_data = conn->owned.data();
      conn->park_len = conn->owned.size();
      copied_sends_.fetch_add(1, std::memory_order_relaxed);
      copied_bytes_.fetch_add(static_cast<std::int64_t>(remaining),
                              std::memory_order_relaxed);
    }
    conn->send_pending = true;
    SyncMask(conn);
  }

  void FlushParked(Conn* conn) {
    while (conn->park_len > 0) {
      CountSyscall();
      const ssize_t n = ::write(conn->fd, conn->park_data, conn->park_len);
      if (n > 0) {
        bytes_sent_.fetch_add(n, std::memory_order_relaxed);
        conn->park_data += n;
        conn->park_len -= static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      conn->send_pending = false;
      conn->pin.reset();
      conn->park_data = nullptr;
      conn->park_len = 0;
      events_->OnSendError(conn->token);
      return;
    }
    conn->send_pending = false;
    conn->pin.reset();
    conn->owned.clear();
    conn->park_data = nullptr;
    SyncMask(conn);
    events_->OnSendDrained(conn->token);
  }

  void ReapClosed() {
    for (Conn* conn : closed_) delete conn;
    closed_.clear();
  }

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  bool accepting_ = true;
  Events* events_ = nullptr;
  // Distinct addresses used as epoll_event.data.ptr sentinels.
  int listen_tag_ = 0;
  int wake_tag_ = 0;
  std::vector<Conn*> closed_;

  std::atomic<std::int64_t> syscalls_{0};
  std::atomic<std::int64_t> zero_copy_sends_{0};
  std::atomic<std::int64_t> copied_sends_{0};
  std::atomic<std::int64_t> copied_bytes_{0};
  std::atomic<std::int64_t> bytes_sent_{0};
  std::atomic<std::int64_t> bytes_received_{0};
};

}  // namespace

std::unique_ptr<IoBackend> MakeEpollBackend() {
  return std::make_unique<EpollBackend>();
}

std::unique_ptr<IoBackend> MakeIoBackend(IoBackendKind requested,
                                         IoBackendKind* actual) {
  if (requested == IoBackendKind::kIoUring) {
    std::string reason;
    if (IoUringAvailable(&reason)) {
      auto backend = MakeIoUringBackend();
      if (backend != nullptr) {
        if (actual != nullptr) *actual = IoBackendKind::kIoUring;
        return backend;
      }
      reason = "backend construction failed";
    }
    std::fprintf(stderr,
                 "aqua: io_uring backend unavailable (%s); "
                 "falling back to epoll\n",
                 reason.c_str());
  }
  if (actual != nullptr) *actual = IoBackendKind::kEpoll;
  return MakeEpollBackend();
}

}  // namespace aqua
