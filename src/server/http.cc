#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace aqua {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Appends `in` with every byte outside the unreserved alphabet
/// (RFC 3986 §2.3) percent-encoded, so canonical keys are unambiguous
/// regardless of how the client escaped them.
void AppendPercentEncoded(std::string_view in, std::string& out) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  for (const char c : in) {
    const auto u = static_cast<unsigned char>(c);
    if ((u >= 'A' && u <= 'Z') || (u >= 'a' && u <= 'z') ||
        (u >= '0' && u <= '9') || u == '-' || u == '.' || u == '_' ||
        u == '~') {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
}

/// Appends the decimal form of `v` without a std::to_string temporary.
void AppendUint(std::uint64_t v, std::string& out) {
  char buf[20];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, ptr);
}

}  // namespace

std::optional<std::string_view> HttpRequest::QueryParam(
    std::string_view name) const {
  for (std::size_t i = 0; i < query_count; ++i) {
    if (query[i].key == name) return query[i].value;
  }
  return std::nullopt;
}

std::optional<std::int64_t> HttpRequest::QueryInt(
    std::string_view name, std::int64_t fallback) const {
  const auto raw = QueryParam(name);
  if (!raw.has_value()) return fallback;
  std::int64_t value = 0;
  const char* begin = raw->data();
  const char* end = begin + raw->size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || raw->empty()) return std::nullopt;
  return value;
}

std::optional<double> HttpRequest::QueryDouble(std::string_view name,
                                               double fallback) const {
  const auto raw = QueryParam(name);
  if (!raw.has_value()) return fallback;
  double value = 0.0;
  const char* begin = raw->data();
  const char* end = begin + raw->size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || raw->empty()) return std::nullopt;
  return value;
}

std::optional<std::string_view> HttpRequest::Header(
    std::string_view name) const {
  for (std::size_t i = 0; i < header_count; ++i) {
    if (EqualsIgnoreCase(headers[i].key, name)) return headers[i].value;
  }
  return std::nullopt;
}

bool HttpRequest::NoCache() const {
  const auto value = Header("Cache-Control");
  if (!value.has_value()) return false;
  // Directive scan over a comma-separated list; "no-cache" must be a whole
  // directive, not a substring of another one.
  std::string_view rest = *value;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view directive = Trim(rest.substr(0, comma));
    if (EqualsIgnoreCase(directive, "no-cache")) return true;
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  return false;
}

void HttpRequest::AppendCanonicalQuery(
    std::string* out, std::vector<std::uint32_t>* scratch) const {
  scratch->clear();
  for (std::uint32_t i = 0; i < query_count; ++i) scratch->push_back(i);
  // Insertion sort by key, stable: duplicate keys stay in request order so
  // the canonical form preserves the parser's first-wins semantics.
  for (std::size_t i = 1; i < scratch->size(); ++i) {
    const std::uint32_t idx = (*scratch)[i];
    std::size_t j = i;
    while (j > 0 && query[(*scratch)[j - 1]].key > query[idx].key) {
      (*scratch)[j] = (*scratch)[j - 1];
      --j;
    }
    (*scratch)[j] = idx;
  }
  bool first = true;
  for (const std::uint32_t idx : *scratch) {
    if (!first) out->push_back('&');
    first = false;
    AppendPercentEncoded(query[idx].key, *out);
    out->push_back('=');
    AppendPercentEncoded(query[idx].value, *out);
  }
}

std::string HttpRequest::CanonicalQuery() const {
  std::string out;
  std::vector<std::uint32_t> scratch;
  AppendCanonicalQuery(&out, &scratch);
  return out;
}

std::string_view HttpStatusText(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 411:
      return "Length Required";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void HttpResponse::Reset() {
  status_code = 200;
  content_type.assign("application/json");
  body.clear();
  keep_alive = true;
}

void HttpResponse::SerializeHeadInto(std::string* out) const {
  out->append("HTTP/1.1 ");
  AppendUint(static_cast<std::uint64_t>(status_code), *out);
  out->push_back(' ');
  out->append(HttpStatusText(status_code));
  out->append("\r\nContent-Type: ");
  out->append(content_type);
  out->append("\r\nContent-Length: ");
  AppendUint(body.size(), *out);
  out->append("\r\nConnection: ");
  out->append(keep_alive ? "keep-alive" : "close");
  out->append("\r\n\r\n");
}

std::string HttpResponse::Serialize() const {
  std::string out;
  out.reserve(128 + body.size());
  SerializeHeadInto(&out);
  out.append(body);
  return out;
}

std::optional<std::string> HttpRequestParser::PercentDecode(
    std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out.push_back(in[i]);
      continue;
    }
    if (i + 2 >= in.size()) return std::nullopt;
    const int hi = HexDigit(in[i + 1]);
    const int lo = HexDigit(in[i + 2]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

std::optional<std::string_view> HttpRequestParser::DecodeIntoArena(
    std::string_view in) {
  const std::size_t start = arena_.size();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      arena_.push_back(in[i]);
      continue;
    }
    if (i + 2 >= in.size()) return std::nullopt;
    const int hi = HexDigit(in[i + 1]);
    const int lo = HexDigit(in[i + 2]);
    if (hi < 0 || lo < 0) return std::nullopt;
    arena_.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return std::string_view(arena_.data() + start, arena_.size() - start);
}

HttpRequestParser::State HttpRequestParser::Fail(std::string reason) {
  state_ = State::kError;
  error_ = std::move(reason);
  return state_;
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view bytes) {
  if (state_ == State::kError) return state_;
  buffer_.append(bytes);
  if (state_ == State::kComplete) return state_;  // pipelined backlog
  return TryParse();
}

HttpRequestParser::State HttpRequestParser::Reparse() {
  if (state_ != State::kNeedMore) return state_;
  return TryParse();
}

HttpRequestParser::State HttpRequestParser::TryParse() {
  // Compact away the previous request's bytes now, not at TakeRequest:
  // TryParse is only reachable in kNeedMore, after the previous request's
  // views are dead by contract, and erase-from-front reuses the buffer's
  // existing capacity.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  // One-time arena sizing: decoding never expands its input and the input
  // is capped at max_header_bytes, so after this reserve the arena never
  // reallocates and decoded views stay stable while we append.
  arena_.clear();
  if (arena_.capacity() < limits_.max_header_bytes) {
    arena_.reserve(limits_.max_header_bytes);
  }

  const std::size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      return Fail("request header section exceeds limit");
    }
    return state_ = State::kNeedMore;
  }
  if (header_end > limits_.max_header_bytes) {
    return Fail("request header section exceeds limit");
  }

  const std::string_view head(buffer_.data(), header_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail("malformed request line");
  }
  HttpRequest request;
  request.method = request_line.substr(0, sp1);
  const std::string_view target =
      request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (request.method.empty() || target.empty()) {
    return Fail("empty method or target");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Fail("unsupported HTTP version");
  }
  request.keep_alive = (version == "HTTP/1.1");

  // Split target into path and query string; decode both into the arena.
  const std::size_t qmark = target.find('?');
  const std::string_view raw_path = target.substr(0, qmark);
  const auto decoded_path = DecodeIntoArena(raw_path);
  if (!decoded_path.has_value()) return Fail("malformed percent-escape");
  request.path = *decoded_path;
  if (qmark != std::string_view::npos) {
    std::string_view qs = target.substr(qmark + 1);
    while (!qs.empty()) {
      const std::size_t amp = qs.find('&');
      const std::string_view pair = qs.substr(0, amp);
      if (!pair.empty()) {
        if (request.query_count >= HttpRequest::kMaxQueryParams) {
          return Fail("too many query parameters");
        }
        const std::size_t eq = pair.find('=');
        const auto key = DecodeIntoArena(pair.substr(0, eq));
        const auto value = DecodeIntoArena(
            eq == std::string_view::npos ? std::string_view()
                                         : pair.substr(eq + 1));
        if (!key.has_value() || !value.has_value()) {
          return Fail("malformed percent-escape in query");
        }
        request.query[request.query_count++] = {*key, *value};
      }
      if (amp == std::string_view::npos) break;
      qs = qs.substr(amp + 1);
    }
  }

  // Header fields.
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  std::uint64_t content_length = 0;
  bool saw_content_length = false;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      return Fail("obsolete header folding rejected");
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Fail("malformed header field");
    }
    const std::string_view name = line.substr(0, colon);
    const std::string_view value = Trim(line.substr(colon + 1));
    if (EqualsIgnoreCase(name, "Content-Length")) {
      const auto [ptr, ec] = std::from_chars(
          value.data(), value.data() + value.size(), content_length);
      if (ec != std::errc() || ptr != value.data() + value.size() ||
          value.empty()) {
        return Fail("malformed Content-Length");
      }
      saw_content_length = true;
    } else if (EqualsIgnoreCase(name, "Transfer-Encoding")) {
      return Fail("chunked transfer-encoding not supported");
    } else if (EqualsIgnoreCase(name, "Connection")) {
      if (EqualsIgnoreCase(value, "close")) request.keep_alive = false;
      if (EqualsIgnoreCase(value, "keep-alive")) request.keep_alive = true;
    }
    if (request.header_count >= HttpRequest::kMaxHeaders) {
      return Fail("too many header fields");
    }
    request.headers[request.header_count++] = {name, value};
  }

  if (saw_content_length && content_length > limits_.max_body_bytes) {
    return Fail("request body exceeds limit");
  }
  const std::size_t body_start = header_end + 4;
  const std::size_t body_bytes = saw_content_length
                                     ? static_cast<std::size_t>(content_length)
                                     : 0;
  if (buffer_.size() - body_start < body_bytes) {
    return state_ = State::kNeedMore;
  }
  request.body = std::string_view(buffer_.data() + body_start, body_bytes);
  consumed_ = body_start + body_bytes;
  request_ = request;
  return state_ = State::kComplete;
}

HttpRequest HttpRequestParser::TakeRequest() {
  HttpRequest out = request_;
  request_ = HttpRequest{};
  state_ = State::kNeedMore;
  return out;
}

}  // namespace aqua
