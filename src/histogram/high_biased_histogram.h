#ifndef AQUA_HISTOGRAM_HIGH_BIASED_HISTOGRAM_H_
#define AQUA_HISTOGRAM_HIGH_BIASED_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "container/flat_hash_map.h"
#include "core/value_count.h"

namespace aqua {

/// A high-biased histogram [IC93]: the m most frequent values in singleton
/// buckets with exact (or estimated) counts, plus one aggregate bucket for
/// everything else.  §1.2: "hot lists of m pairs are denoted as high-biased
/// histograms of m+1 buckets" — this class is the histogram view of a hot
/// list, adding the remainder bucket so it can answer frequency and
/// equality-selectivity estimates over *all* values.
class HighBiasedHistogram {
 public:
  /// `hot`: the m <value, count> pairs (estimated or exact);
  /// `relation_size`: n; `remainder_distinct`: estimated number of distinct
  /// values outside the hot set (>= 1 unless the hot set is exhaustive).
  HighBiasedHistogram(std::vector<ValueCount> hot, std::int64_t relation_size,
                      std::int64_t remainder_distinct);

  /// Estimated frequency of `value`: its singleton bucket if hot, else the
  /// remainder bucket's average frequency.
  double EstimateFrequency(Value value) const;

  /// Estimated selectivity of the equality predicate `A = value`.
  double EstimateEqualitySelectivity(Value value) const;

  /// Estimated join size |R ⋈ S| on the histogrammed attributes, under the
  /// standard serial-histogram estimate Σ_v f_R(v)·f_S(v) over hot values
  /// plus a uniform-remainder term ([Ioa93]'s motivation for keeping the
  /// skewed values exact).
  static double EstimateJoinSize(const HighBiasedHistogram& r,
                                 const HighBiasedHistogram& s);

  std::int64_t relation_size() const { return relation_size_; }
  const std::vector<ValueCount>& hot_values() const { return hot_; }

  /// Count mass and distinct-value count of the remainder bucket.
  double remainder_mass() const { return remainder_mass_; }
  std::int64_t remainder_distinct() const { return remainder_distinct_; }

  /// Footprint: 2 words per hot pair + 2 for the remainder bucket.
  Words Footprint() const {
    return 2 * static_cast<Words>(hot_.size()) + 2;
  }

 private:
  std::vector<ValueCount> hot_;
  FlatHashMap<Value, Count> index_;
  std::int64_t relation_size_;
  double remainder_mass_;
  std::int64_t remainder_distinct_;
};

}  // namespace aqua

#endif  // AQUA_HISTOGRAM_HIGH_BIASED_HISTOGRAM_H_
