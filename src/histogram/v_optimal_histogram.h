#ifndef AQUA_HISTOGRAM_V_OPTIMAL_HISTOGRAM_H_
#define AQUA_HISTOGRAM_V_OPTIMAL_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/value_count.h"

namespace aqua {

/// A V-optimal histogram [PIHS96] — the synopsis §1 holds up as the
/// state of the art for range selectivity ("it has been shown that for
/// providing approximate answers to range selectivity queries, the
/// V-optimal histograms capture important features of the data in a
/// concise way").  Bucket boundaries minimize the total within-bucket
/// variance (SSE) of the value frequencies, computed by the classic
/// O(d²·B) dynamic program over the d distinct values of a sample.
///
/// Built over a uniform point sample (a concise sample's point sample
/// serves as a larger backing sample for the same footprint, §2).
class VOptimalHistogram {
 public:
  /// `sample`: uniform point sample of the relation; `buckets` = B >= 1;
  /// `relation_size` = n scales estimates.
  VOptimalHistogram(std::span<const Value> sample, int buckets,
                    std::int64_t relation_size);

  /// Estimated number of tuples with value in [lo, hi] (inclusive), under
  /// the standard continuous-spread assumption within buckets.
  double EstimateRangeCount(Value lo, Value hi) const;

  /// Estimated frequency of one value (bucket average).
  double EstimateFrequency(Value value) const;

  int bucket_count() const { return static_cast<int>(buckets_.size()); }

  struct Bucket {
    Value lo = 0;              // smallest distinct value in the bucket
    Value hi = 0;              // largest distinct value in the bucket
    std::int64_t distinct = 0; // distinct sample values in the bucket
    double sample_mass = 0.0;  // total sample frequency in the bucket
  };
  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// Total within-bucket SSE achieved by the chosen partition (the DP
  /// objective; exposed for tests against brute force).
  double sse() const { return sse_; }

  /// Core DP (exposed for tests): partitions `frequencies` (ordered by
  /// value) into at most `buckets` contiguous runs minimizing total SSE;
  /// returns the end index (exclusive) of every bucket.
  static std::vector<std::size_t> OptimalPartition(
      const std::vector<double>& frequencies, int buckets,
      double* out_sse = nullptr);

 private:
  std::vector<Bucket> buckets_;
  std::int64_t sample_size_ = 0;
  std::int64_t relation_size_ = 0;
  double sse_ = 0.0;
};

}  // namespace aqua

#endif  // AQUA_HISTOGRAM_V_OPTIMAL_HISTOGRAM_H_
