#include "histogram/v_optimal_histogram.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "container/flat_hash_map.h"

namespace aqua {

std::vector<std::size_t> VOptimalHistogram::OptimalPartition(
    const std::vector<double>& frequencies, int buckets, double* out_sse) {
  const std::size_t d = frequencies.size();
  if (d == 0) {
    if (out_sse != nullptr) *out_sse = 0.0;
    return {};
  }
  const auto b_max = static_cast<std::size_t>(
      std::min<std::int64_t>(buckets, static_cast<std::int64_t>(d)));

  // Prefix sums of f and f² make any interval's SSE O(1):
  //   sse(i, j) = Q[j] - Q[i] - (S[j] - S[i])² / (j - i).
  std::vector<double> sum(d + 1, 0.0), sum_sq(d + 1, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    sum[i + 1] = sum[i] + frequencies[i];
    sum_sq[i + 1] = sum_sq[i] + frequencies[i] * frequencies[i];
  }
  auto interval_sse = [&](std::size_t i, std::size_t j) {
    const double s = sum[j] - sum[i];
    return (sum_sq[j] - sum_sq[i]) - s * s / static_cast<double>(j - i);
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[j]: best SSE for the first j values using exactly the current
  // number of buckets; choice[b][j]: split point achieving dp with b+1
  // buckets (more buckets never hurt, so exactly-b_max is optimal).
  std::vector<double> dp(d + 1, kInf), next(d + 1, kInf);
  std::vector<std::vector<std::uint32_t>> choice(
      b_max, std::vector<std::uint32_t>(d + 1, 0));
  for (std::size_t j = 1; j <= d; ++j) dp[j] = interval_sse(0, j);
  for (std::size_t b = 1; b < b_max; ++b) {
    next.assign(d + 1, kInf);
    // With b+1 buckets, at least b+1 values are needed.
    for (std::size_t j = b + 1; j <= d; ++j) {
      for (std::size_t i = b; i < j; ++i) {
        if (dp[i] == kInf) continue;
        const double candidate = dp[i] + interval_sse(i, j);
        if (candidate < next[j]) {
          next[j] = candidate;
          choice[b][j] = static_cast<std::uint32_t>(i);
        }
      }
    }
    dp.swap(next);
  }
  if (out_sse != nullptr) *out_sse = dp[d];

  // Walk the choice table back from (b_max buckets, all d values).
  std::vector<std::size_t> ends;
  std::size_t j = d;
  for (std::size_t b = b_max; b-- > 1;) {
    ends.push_back(j);
    j = choice[b][j];
  }
  ends.push_back(j);  // end of the first bucket
  std::reverse(ends.begin(), ends.end());
  return ends;
}

VOptimalHistogram::VOptimalHistogram(std::span<const Value> sample,
                                     int buckets,
                                     std::int64_t relation_size)
    : relation_size_(relation_size) {
  AQUA_CHECK_GE(buckets, 1);
  sample_size_ = static_cast<std::int64_t>(sample.size());
  if (sample.empty()) return;

  // Distinct sample values with frequencies, sorted by value.
  FlatHashMap<Value, Count> freq;
  for (Value v : sample) ++freq[v];
  std::vector<ValueCount> sorted;
  sorted.reserve(freq.size());
  for (const auto& entry : freq) {
    sorted.push_back(ValueCount{entry.key, entry.value});
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.value < b.value;
            });

  std::vector<double> frequencies;
  frequencies.reserve(sorted.size());
  for (const ValueCount& vc : sorted) {
    frequencies.push_back(static_cast<double>(vc.count));
  }
  const std::vector<std::size_t> ends =
      OptimalPartition(frequencies, buckets, &sse_);

  std::size_t start = 0;
  for (std::size_t end : ends) {
    Bucket bucket;
    bucket.lo = sorted[start].value;
    bucket.hi = sorted[end - 1].value;
    bucket.distinct = static_cast<std::int64_t>(end - start);
    for (std::size_t i = start; i < end; ++i) {
      bucket.sample_mass += static_cast<double>(sorted[i].count);
    }
    buckets_.push_back(bucket);
    start = end;
  }
}

double VOptimalHistogram::EstimateFrequency(Value value) const {
  if (sample_size_ == 0) return 0.0;
  const double scale = static_cast<double>(relation_size_) /
                       static_cast<double>(sample_size_);
  for (const Bucket& b : buckets_) {
    if (value >= b.lo && value <= b.hi) {
      return b.sample_mass / static_cast<double>(b.distinct) * scale;
    }
  }
  return 0.0;
}

double VOptimalHistogram::EstimateRangeCount(Value lo, Value hi) const {
  if (sample_size_ == 0 || hi < lo) return 0.0;
  const double scale = static_cast<double>(relation_size_) /
                       static_cast<double>(sample_size_);
  double mass = 0.0;
  for (const Bucket& b : buckets_) {
    if (b.hi < lo || b.lo > hi) continue;
    // Continuous-spread assumption over the bucket's value span.
    const double span = static_cast<double>(b.hi - b.lo) + 1.0;
    const double overlap =
        static_cast<double>(std::min(hi, b.hi) - std::max(lo, b.lo)) + 1.0;
    mass += b.sample_mass * (overlap / span);
  }
  return mass * scale;
}

}  // namespace aqua
