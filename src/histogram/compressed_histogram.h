#ifndef AQUA_HISTOGRAM_COMPRESSED_HISTOGRAM_H_
#define AQUA_HISTOGRAM_COMPRESSED_HISTOGRAM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "container/flat_hash_map.h"
#include "core/value_count.h"
#include "histogram/equi_depth_histogram.h"

namespace aqua {

/// A Compressed histogram ([PIHS96]; maintained from a backing sample in
/// [GMP97b]): values whose sample frequency exceeds the equi-depth bucket
/// size get exact singleton buckets, and the remaining values are spread
/// over equi-depth buckets.  Combines the strengths of the high-biased and
/// equi-depth forms: exact mass for the skewed head, balanced buckets for
/// the tail.
class CompressedHistogram {
 public:
  /// Builds from a uniform point sample: any value holding more than
  /// 1/`buckets` of the sample becomes a singleton bucket; the rest feed an
  /// equi-depth histogram with the leftover bucket budget.
  /// `relation_size` = n scales estimates to relation units.
  CompressedHistogram(std::span<const Value> sample, int buckets,
                      std::int64_t relation_size);

  /// Estimated number of tuples with value in [lo, hi] (inclusive).
  double EstimateRangeCount(Value lo, Value hi) const;

  /// Estimated frequency of a single value.
  double EstimateFrequency(Value value) const;

  /// Singleton buckets, counts in sample units.
  const std::vector<ValueCount>& singleton_buckets() const {
    return singletons_;
  }
  int equi_depth_buckets() const;

 private:
  std::vector<ValueCount> singletons_;
  FlatHashMap<Value, Count> singleton_index_;
  std::int64_t sample_size_ = 0;
  std::int64_t relation_size_ = 0;
  /// Fraction of sample points in the tail (non-singleton) part.
  double tail_fraction_ = 0.0;
  /// Equi-depth histogram over the tail points, in tail-sample units.
  std::unique_ptr<EquiDepthHistogram> tail_;
};

}  // namespace aqua

#endif  // AQUA_HISTOGRAM_COMPRESSED_HISTOGRAM_H_
