#ifndef AQUA_HISTOGRAM_INCREMENTAL_EQUI_DEPTH_H_
#define AQUA_HISTOGRAM_INCREMENTAL_EQUI_DEPTH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace aqua {

/// Incrementally maintained equi-depth histogram in the style of
/// [GMP97b] ("Fast incremental maintenance of approximate histograms"),
/// the companion work §2 builds on: bucket counts are updated in place as
/// tuples stream in, and when a bucket overflows the imbalance threshold
/// it is *split at the backing sample's local median* while the two
/// cheapest adjacent buckets merge, keeping the bucket budget fixed —
/// avoiding full recomputation on most updates.
///
/// A concise sample serves as a drop-in backing sample with more points
/// for the same footprint (§2), which is exactly what the sample_provider
/// indirection allows.
class IncrementalEquiDepthHistogram {
 public:
  /// Supplies the current backing-sample points on demand (only consulted
  /// on splits/recomputes, not per insert).
  using SampleProvider = std::function<std::vector<Value>()>;

  /// `buckets` = B >= 2; `imbalance` = γ: a bucket splits when its count
  /// exceeds (1 + γ)·n/B ([GMP97b] uses small constants like 0.5..2).
  IncrementalEquiDepthHistogram(int buckets, double imbalance,
                                SampleProvider sample_provider);

  /// Routes one inserted value to its bucket; O(log B), plus an O(B + m)
  /// split/merge or recompute when the imbalance trigger fires.
  void Insert(Value value);

  /// Estimated number of tuples in [lo, hi] (inclusive; intra-bucket
  /// linear interpolation).
  double EstimateRangeCount(Value lo, Value hi) const;

  std::int64_t total() const { return total_; }
  int bucket_count() const { return static_cast<int>(counts_.size()); }

  /// Maintenance-event counters (the [GMP97b] efficiency story: splits
  /// should vastly outnumber full recomputes).
  std::int64_t splits() const { return splits_; }
  std::int64_t recomputes() const { return recomputes_; }

  /// Boundaries b_0 <= … <= b_B (bucket i covers (b_i, b_{i+1}], with the
  /// first bucket closed below).
  const std::vector<double>& boundaries() const { return boundaries_; }
  const std::vector<double>& counts() const { return counts_; }

 private:
  std::size_t BucketOf(Value value) const;
  void SplitAndMerge(std::size_t overfull);
  void RecomputeFromSample();

  int buckets_;
  double imbalance_;
  SampleProvider sample_provider_;
  std::vector<double> boundaries_;  // size B+1
  std::vector<double> counts_;      // size B
  std::int64_t total_ = 0;
  std::int64_t splits_ = 0;
  std::int64_t recomputes_ = 0;
};

}  // namespace aqua

#endif  // AQUA_HISTOGRAM_INCREMENTAL_EQUI_DEPTH_H_
