#include "histogram/equi_depth_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqua {

EquiDepthHistogram::EquiDepthHistogram(std::span<const Value> sample,
                                       int buckets,
                                       std::int64_t relation_size)
    : relation_size_(relation_size) {
  AQUA_CHECK_GE(buckets, 1);
  sample_size_ = static_cast<std::int64_t>(sample.size());
  std::vector<Value> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  boundaries_.clear();
  if (sorted.empty()) {
    boundaries_ = {0.0, 0.0};
    points_per_bucket_ = 0.0;
    return;
  }
  points_per_bucket_ =
      static_cast<double>(sorted.size()) / static_cast<double>(buckets);
  boundaries_.reserve(static_cast<std::size_t>(buckets) + 1);
  boundaries_.push_back(static_cast<double>(sorted.front()));
  for (int b = 1; b < buckets; ++b) {
    const auto idx = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(sorted.size()) - 1.0,
        std::floor(points_per_bucket_ * static_cast<double>(b))));
    boundaries_.push_back(static_cast<double>(sorted[idx]));
  }
  boundaries_.push_back(static_cast<double>(sorted.back()));
}

double EquiDepthHistogram::EstimateRangeSelectivity(Value lo, Value hi) const {
  if (sample_size_ == 0 || hi < lo) return 0.0;
  // Fraction of points below x (with intra-bucket linear interpolation).
  auto cdf = [this](double x) -> double {
    const double min = boundaries_.front();
    const double max = boundaries_.back();
    if (x <= min) return 0.0;
    if (x >= max) return 1.0;
    const int buckets = bucket_count();
    // Find bucket via binary search over boundaries.
    const auto it =
        std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
    auto b = static_cast<int>(it - boundaries_.begin()) - 1;
    b = std::clamp(b, 0, buckets - 1);
    const double left = boundaries_[static_cast<std::size_t>(b)];
    const double right = boundaries_[static_cast<std::size_t>(b) + 1];
    const double within =
        right > left ? (x - left) / (right - left) : 1.0;
    return (static_cast<double>(b) + within) / static_cast<double>(buckets);
  };
  // Inclusive range [lo, hi] ≈ CDF(hi + 1) - CDF(lo) on integer domains.
  const double f = cdf(static_cast<double>(hi) + 1.0) -
                   cdf(static_cast<double>(lo));
  return std::clamp(f, 0.0, 1.0);
}

double EquiDepthHistogram::EstimateRangeCount(Value lo, Value hi) const {
  return EstimateRangeSelectivity(lo, hi) *
         static_cast<double>(relation_size_);
}

}  // namespace aqua
