#ifndef AQUA_HISTOGRAM_EQUI_DEPTH_HISTOGRAM_H_
#define AQUA_HISTOGRAM_EQUI_DEPTH_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace aqua {

/// An equi-depth histogram: bucket boundaries chosen so every bucket holds
/// (approximately) the same number of tuples.  [GMP97b] maintains these
/// incrementally from a backing sample; §2 of our paper observes that "a
/// concise sample could be used as a backing sample, for more sample points
/// for the same footprint" — which is exactly what histogram tests and the
/// backing-sample example demonstrate: more sample points → more accurate
/// bucket boundaries → tighter range-selectivity estimates.
///
/// The histogram is (re)computed from a point sample in O(m log m); range
/// selectivities are answered in O(log B) with intra-bucket linear
/// interpolation (the continuous-values assumption).
class EquiDepthHistogram {
 public:
  /// Builds `buckets` equi-depth buckets from a uniform point sample of the
  /// relation; `relation_size` = n scales estimated counts.
  EquiDepthHistogram(std::span<const Value> sample, int buckets,
                     std::int64_t relation_size);

  /// Estimated number of tuples with value in [lo, hi] (inclusive).
  double EstimateRangeCount(Value lo, Value hi) const;

  /// Estimated fraction of tuples with value in [lo, hi].
  double EstimateRangeSelectivity(Value lo, Value hi) const;

  int bucket_count() const { return static_cast<int>(boundaries_.size()) - 1; }

  /// Bucket boundaries b_0 <= b_1 <= … <= b_B; bucket i covers
  /// [b_i, b_{i+1}] with b_0 / b_B the sample min/max.
  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Footprint in words: B+1 boundaries plus one shared depth word.
  Words Footprint() const {
    return static_cast<Words>(boundaries_.size()) + 1;
  }

 private:
  std::vector<double> boundaries_;
  double points_per_bucket_ = 0.0;  // sample points per bucket
  std::int64_t sample_size_ = 0;
  std::int64_t relation_size_ = 0;
};

}  // namespace aqua

#endif  // AQUA_HISTOGRAM_EQUI_DEPTH_HISTOGRAM_H_
