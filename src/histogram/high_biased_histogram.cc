#include "histogram/high_biased_histogram.h"

#include <algorithm>

#include "common/check.h"

namespace aqua {

HighBiasedHistogram::HighBiasedHistogram(std::vector<ValueCount> hot,
                                         std::int64_t relation_size,
                                         std::int64_t remainder_distinct)
    : hot_(std::move(hot)),
      relation_size_(relation_size),
      remainder_distinct_(std::max<std::int64_t>(remainder_distinct, 0)) {
  double hot_mass = 0.0;
  for (const ValueCount& vc : hot_) {
    index_.TryInsert(vc.value, vc.count);
    hot_mass += static_cast<double>(vc.count);
  }
  remainder_mass_ =
      std::max(0.0, static_cast<double>(relation_size_) - hot_mass);
}

double HighBiasedHistogram::EstimateFrequency(Value value) const {
  const Count* c = index_.Find(value);
  if (c != nullptr) return static_cast<double>(*c);
  if (remainder_distinct_ == 0) return 0.0;
  return remainder_mass_ / static_cast<double>(remainder_distinct_);
}

double HighBiasedHistogram::EstimateEqualitySelectivity(Value value) const {
  if (relation_size_ == 0) return 0.0;
  return EstimateFrequency(value) / static_cast<double>(relation_size_);
}

double HighBiasedHistogram::EstimateJoinSize(const HighBiasedHistogram& r,
                                             const HighBiasedHistogram& s) {
  // Hot ⋈ hot and hot ⋈ remainder terms from r's hot set …
  double join = 0.0;
  double r_hot_mass_joining_s_hot = 0.0;
  for (const ValueCount& vc : r.hot_values()) {
    const Count* sc = s.index_.Find(vc.value);
    if (sc != nullptr) {
      join += static_cast<double>(vc.count) * static_cast<double>(*sc);
      r_hot_mass_joining_s_hot += static_cast<double>(vc.count);
    } else if (s.remainder_distinct_ > 0) {
      join += static_cast<double>(vc.count) * s.remainder_mass_ /
              static_cast<double>(s.remainder_distinct_);
    }
  }
  // … remainder ⋈ s-hot …
  for (const ValueCount& vc : s.hot_values()) {
    if (!r.index_.Contains(vc.value) && r.remainder_distinct_ > 0) {
      join += static_cast<double>(vc.count) * r.remainder_mass_ /
              static_cast<double>(r.remainder_distinct_);
    }
  }
  // … remainder ⋈ remainder, assuming the remainders share
  // min(D_r, D_s) values uniformly.
  if (r.remainder_distinct_ > 0 && s.remainder_distinct_ > 0) {
    const double shared = static_cast<double>(
        std::min(r.remainder_distinct_, s.remainder_distinct_));
    join += shared *
            (r.remainder_mass_ / static_cast<double>(r.remainder_distinct_)) *
            (s.remainder_mass_ / static_cast<double>(s.remainder_distinct_));
  }
  return join;
}

}  // namespace aqua
