#include "histogram/incremental_equi_depth.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace aqua {

IncrementalEquiDepthHistogram::IncrementalEquiDepthHistogram(
    int buckets, double imbalance, SampleProvider sample_provider)
    : buckets_(buckets),
      imbalance_(imbalance),
      sample_provider_(std::move(sample_provider)) {
  AQUA_CHECK_GE(buckets, 2);
  AQUA_CHECK(imbalance > 0.0);
  AQUA_CHECK(sample_provider_ != nullptr);
  boundaries_.assign(static_cast<std::size_t>(buckets) + 1, 0.0);
  counts_.assign(static_cast<std::size_t>(buckets), 0.0);
}

std::size_t IncrementalEquiDepthHistogram::BucketOf(Value value) const {
  const double x = static_cast<double>(value);
  // First bucket absorbs anything at or below its upper edge; last bucket
  // absorbs anything above the top boundary (boundaries stretch lazily).
  const auto it =
      std::lower_bound(boundaries_.begin() + 1, boundaries_.end() - 1, x);
  return static_cast<std::size_t>(it - (boundaries_.begin() + 1));
}

void IncrementalEquiDepthHistogram::Insert(Value value) {
  ++total_;
  if (total_ == 1) {
    boundaries_.assign(boundaries_.size(), static_cast<double>(value));
    counts_.assign(counts_.size(), 0.0);
    counts_[0] = 1.0;
    return;
  }
  const double x = static_cast<double>(value);
  boundaries_.front() = std::min(boundaries_.front(), x);
  boundaries_.back() = std::max(boundaries_.back(), x);
  const std::size_t bucket = BucketOf(value);
  counts_[bucket] += 1.0;

  const double threshold = (1.0 + imbalance_) *
                           static_cast<double>(total_) /
                           static_cast<double>(buckets_);
  if (counts_[bucket] > threshold && total_ >= 2 * buckets_) {
    SplitAndMerge(bucket);
  }
}

void IncrementalEquiDepthHistogram::SplitAndMerge(std::size_t overfull) {
  // Median of the backing-sample points inside the over-full bucket.
  const std::vector<Value> sample = sample_provider_();
  std::vector<double> inside;
  const double lo = boundaries_[overfull];
  const double hi = boundaries_[overfull + 1];
  for (Value v : sample) {
    const auto x = static_cast<double>(v);
    const bool in_low_edge = overfull == 0 && x <= hi && x >= lo;
    if (in_low_edge || (x > lo && x <= hi)) inside.push_back(x);
  }
  std::sort(inside.begin(), inside.end());
  if (inside.size() < 2) {
    RecomputeFromSample();
    return;
  }
  const double median = inside[inside.size() / 2];
  if (median <= lo || median >= hi) {
    RecomputeFromSample();
    return;
  }

  // Merge the adjacent pair with the smallest combined count, excluding
  // the bucket being split.
  double best = std::numeric_limits<double>::infinity();
  std::size_t merge_at = counts_.size();  // left index of the merged pair
  for (std::size_t i = 0; i + 1 < counts_.size(); ++i) {
    if (i == overfull || i + 1 == overfull) continue;
    const double combined = counts_[i] + counts_[i + 1];
    if (combined < best) {
      best = combined;
      merge_at = i;
    }
  }
  if (merge_at == counts_.size() || best > counts_[overfull]) {
    // No profitable merge (pathological bucket budget): full recompute.
    RecomputeFromSample();
    return;
  }

  // Apply the merge: drop the boundary between merge_at and merge_at+1.
  counts_[merge_at] += counts_[merge_at + 1];
  counts_.erase(counts_.begin() + static_cast<std::ptrdiff_t>(merge_at) + 1);
  boundaries_.erase(boundaries_.begin() +
                    static_cast<std::ptrdiff_t>(merge_at) + 1);
  if (merge_at < overfull) --overfull;

  // Apply the split: halve the over-full bucket at the sample median.
  const double half = counts_[overfull] / 2.0;
  counts_[overfull] = half;
  counts_.insert(counts_.begin() + static_cast<std::ptrdiff_t>(overfull) + 1,
                 half);
  boundaries_.insert(
      boundaries_.begin() + static_cast<std::ptrdiff_t>(overfull) + 1,
      median);
  ++splits_;
  AQUA_DCHECK_EQ(static_cast<int>(counts_.size()), buckets_);
}

void IncrementalEquiDepthHistogram::RecomputeFromSample() {
  const std::vector<Value> sample = sample_provider_();
  ++recomputes_;
  if (sample.empty()) return;
  std::vector<double> sorted;
  sorted.reserve(sample.size());
  for (Value v : sample) sorted.push_back(static_cast<double>(v));
  std::sort(sorted.begin(), sorted.end());
  const double per_bucket =
      static_cast<double>(sorted.size()) / static_cast<double>(buckets_);
  boundaries_.resize(static_cast<std::size_t>(buckets_) + 1);
  counts_.assign(static_cast<std::size_t>(buckets_),
                 static_cast<double>(total_) /
                     static_cast<double>(buckets_));
  boundaries_.front() =
      std::min(boundaries_.front(), sorted.front());
  boundaries_.back() = std::max(boundaries_.back(), sorted.back());
  for (int b = 1; b < buckets_; ++b) {
    const auto idx = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(sorted.size()) - 1.0,
        std::floor(per_bucket * static_cast<double>(b))));
    boundaries_[static_cast<std::size_t>(b)] = sorted[idx];
  }
  // Boundaries must stay nondecreasing even with stretched extremes.
  for (std::size_t i = 1; i < boundaries_.size(); ++i) {
    boundaries_[i] = std::max(boundaries_[i], boundaries_[i - 1]);
  }
}

double IncrementalEquiDepthHistogram::EstimateRangeCount(Value lo,
                                                         Value hi) const {
  if (total_ == 0 || hi < lo) return 0.0;
  const double lo_x = static_cast<double>(lo);
  const double hi_x = static_cast<double>(hi) + 1.0;  // inclusive range
  double covered = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double left = boundaries_[b];
    const double right = boundaries_[b + 1];
    const double width = right - left;
    if (width <= 0.0) {
      // Degenerate bucket (single value): counted fully if inside.  Must
      // be handled before the overlap guard, which would skip it when the
      // bucket sits exactly on the range edge.
      if (left >= lo_x && left < hi_x) covered += counts_[b];
      continue;
    }
    if (right <= lo_x || left >= hi_x) continue;
    const double overlap =
        std::min(hi_x, right) - std::max(lo_x, left);
    covered += counts_[b] * std::clamp(overlap / width, 0.0, 1.0);
  }
  return covered;
}

}  // namespace aqua
