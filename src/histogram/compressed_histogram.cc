#include "histogram/compressed_histogram.h"

#include <algorithm>

#include "common/check.h"

namespace aqua {

CompressedHistogram::CompressedHistogram(std::span<const Value> sample,
                                         int buckets,
                                         std::int64_t relation_size)
    : relation_size_(relation_size) {
  AQUA_CHECK_GE(buckets, 2);
  sample_size_ = static_cast<std::int64_t>(sample.size());

  // Count sample frequencies.
  FlatHashMap<Value, Count> freq;
  for (Value v : sample) ++freq[v];

  // Values exceeding the equi-depth depth get singleton buckets.
  const double depth_cut =
      static_cast<double>(sample_size_) / static_cast<double>(buckets);
  for (const auto& entry : freq) {
    if (static_cast<double>(entry.value) > depth_cut) {
      singletons_.push_back(ValueCount{entry.key, entry.value});
      singleton_index_.TryInsert(entry.key, entry.value);
    }
  }
  std::sort(singletons_.begin(), singletons_.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.count > b.count ||
                     (a.count == b.count && a.value < b.value);
            });
  // Cap singletons at buckets - 1 so at least one equi-depth bucket remains.
  if (static_cast<int>(singletons_.size()) > buckets - 1) {
    for (std::size_t i = static_cast<std::size_t>(buckets - 1);
         i < singletons_.size(); ++i) {
      singleton_index_.Erase(singletons_[i].value);
    }
    singletons_.resize(static_cast<std::size_t>(buckets - 1));
  }

  // Tail: the sample minus singleton values.
  std::vector<Value> tail_points;
  for (Value v : sample) {
    if (!singleton_index_.Contains(v)) tail_points.push_back(v);
  }
  tail_fraction_ =
      sample_size_ > 0
          ? static_cast<double>(tail_points.size()) /
                static_cast<double>(sample_size_)
          : 0.0;
  const int tail_buckets =
      std::max(1, buckets - static_cast<int>(singletons_.size()));
  // Build in tail-sample units; scaling to relation units happens in the
  // estimators via tail_fraction_ and relation_size_.
  tail_ = std::make_unique<EquiDepthHistogram>(
      std::span<const Value>(tail_points), tail_buckets,
      static_cast<std::int64_t>(tail_points.size()));
}

int CompressedHistogram::equi_depth_buckets() const {
  return tail_ ? tail_->bucket_count() : 0;
}

double CompressedHistogram::EstimateFrequency(Value value) const {
  if (sample_size_ == 0) return 0.0;
  const double scale = static_cast<double>(relation_size_) /
                       static_cast<double>(sample_size_);
  const Count* c = singleton_index_.Find(value);
  if (c != nullptr) return static_cast<double>(*c) * scale;
  // One-point range over the tail histogram: the result is in tail-sample
  // points, which are a subset of the full sample, so the full-sample scale
  // applies directly.
  const double tail_count = tail_->EstimateRangeCount(value, value);
  return tail_count * scale;
}

double CompressedHistogram::EstimateRangeCount(Value lo, Value hi) const {
  if (sample_size_ == 0 || hi < lo) return 0.0;
  const double scale = static_cast<double>(relation_size_) /
                       static_cast<double>(sample_size_);
  double sample_units = 0.0;
  for (const ValueCount& vc : singletons_) {
    if (vc.value >= lo && vc.value <= hi) {
      sample_units += static_cast<double>(vc.count);
    }
  }
  // Tail selectivity is relative to the tail sample; convert to full-sample
  // units via the tail fraction.
  sample_units += tail_->EstimateRangeSelectivity(lo, hi) * tail_fraction_ *
                  static_cast<double>(sample_size_);
  return sample_units * scale;
}

}  // namespace aqua
