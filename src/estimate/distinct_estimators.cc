#include "estimate/distinct_estimators.h"

#include <algorithm>
#include <cmath>

namespace aqua {

SampleDistinctStatistics SampleDistinctStatistics::FromEntries(
    std::span<const ValueCount> entries) {
  SampleDistinctStatistics s;
  for (const ValueCount& e : entries) {
    s.sample_size += e.count;
    ++s.distinct;
    if (e.count == 1) ++s.singletons;
    if (e.count == 2) ++s.doubletons;
  }
  return s;
}

double DistinctEstimators::NaiveScale(const SampleDistinctStatistics& s,
                                      std::int64_t relation_size) {
  if (s.sample_size == 0) return 0.0;
  return static_cast<double>(s.distinct) *
         static_cast<double>(relation_size) /
         static_cast<double>(s.sample_size);
}

double DistinctEstimators::Chao84(const SampleDistinctStatistics& s) {
  const auto d = static_cast<double>(s.distinct);
  const auto f1 = static_cast<double>(s.singletons);
  const auto f2 = static_cast<double>(s.doubletons);
  if (f2 == 0.0) return d + f1 * (f1 - 1.0) / 2.0;  // bias-corrected form
  return d + f1 * f1 / (2.0 * f2);
}

double DistinctEstimators::ChaoLee(const SampleDistinctStatistics& s,
                                   std::span<const ValueCount> entries) {
  const auto m = static_cast<double>(s.sample_size);
  const auto d = static_cast<double>(s.distinct);
  const auto f1 = static_cast<double>(s.singletons);
  if (m == 0.0) return 0.0;
  const double coverage = std::max(1.0 - f1 / m, 1.0 / m);
  const double d0 = d / coverage;
  // γ̂² = max(0, D̂₀/ (m(m-1)) · Σ i(i-1) f_i  - 1): squared CV estimate.
  double sum_ii1 = 0.0;
  for (const ValueCount& e : entries) {
    sum_ii1 += static_cast<double>(e.count) *
               static_cast<double>(e.count - 1);
  }
  double gamma_sq = 0.0;
  if (m > 1.0) {
    gamma_sq = std::max(0.0, d0 * sum_ii1 / (m * (m - 1.0)) - 1.0);
  }
  return d0 + m * (1.0 - coverage) / coverage * gamma_sq;
}

double DistinctEstimators::Jackknife1(const SampleDistinctStatistics& s) {
  if (s.sample_size == 0) return 0.0;
  const auto m = static_cast<double>(s.sample_size);
  return static_cast<double>(s.distinct) +
         static_cast<double>(s.singletons) * (m - 1.0) / m;
}

double DistinctEstimators::SqrtScale(const SampleDistinctStatistics& s,
                                     std::int64_t relation_size) {
  if (s.sample_size == 0) return 0.0;
  const double ratio = static_cast<double>(relation_size) /
                       static_cast<double>(s.sample_size);
  return std::sqrt(std::max(1.0, ratio)) *
             static_cast<double>(s.singletons) +
         static_cast<double>(s.distinct - s.singletons);
}

}  // namespace aqua
