#ifndef AQUA_ESTIMATE_FREQUENCY_ESTIMATOR_H_
#define AQUA_ESTIMATE_FREQUENCY_ESTIMATOR_H_

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "estimate/aggregates.h"

namespace aqua {

/// Per-value frequency estimation from the paper's synopses — the primitive
/// behind predicate-selectivity and join-size estimation over skewed values
/// ([Ioa93, IC93, IP95] motivate why the skewed values matter most).
class FrequencyEstimator {
 public:
  /// Estimates f_v from a concise sample: sample count scaled by
  /// n / sample-size, with a binomial normal-approximation interval.
  static Estimate FromConcise(const ConciseSample& sample, Value value,
                              double confidence = 0.95);

  /// The arithmetic core of FromConcise once the synopsis count is known —
  /// shared with frozen views, which look the count up in O(log m) with
  /// `sample_size`/`observed_inserts` captured at freeze time, so both
  /// paths produce bit-identical estimates.
  static Estimate FromConciseCounts(Count count, std::int64_t sample_size,
                                    std::int64_t observed_inserts,
                                    double confidence = 0.95);

  /// Estimates f_v from a counting sample: count + ĉ (the §5.2
  /// compensation).  Under insert-only streams count <= f_v always, and the
  /// pre-admission loss f_v - count is stochastically dominated by a
  /// geometric with mean ~τ (Theorem 6), so the interval is
  /// [count, count + τ·ln(1/(1-confidence))] with the given coverage.
  static Estimate FromCounting(const CountingSample& sample, Value value,
                               double confidence = 0.95);

  /// FromCounting's core over the frozen scalars (threshold τ and the
  /// counted-occurrences total that reports as sample_points).
  static Estimate FromCountingCounts(Count count, double threshold,
                                     std::int64_t counted_occurrences,
                                     double confidence = 0.95);
};

}  // namespace aqua

#endif  // AQUA_ESTIMATE_FREQUENCY_ESTIMATOR_H_
