#ifndef AQUA_ESTIMATE_FREQUENCY_MOMENTS_H_
#define AQUA_ESTIMATE_FREQUENCY_MOMENTS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/value_count.h"

namespace aqua {

/// Exact frequency moments of a data set (as used by Theorem 4 and
/// [AMS96]):  F_k = Σ_j n_j^k  over the values j represented in the set,
/// where n_j is the number of elements of value j.  F_0 is the number of
/// distinct values, F_1 the data set size.
class FrequencyMoments {
 public:
  /// Builds the exact value-frequency table from raw data.
  static FrequencyMoments FromData(std::span<const Value> data);

  /// Builds from an exact <value, count> table.
  static FrequencyMoments FromCounts(std::vector<ValueCount> counts);

  /// F_k (computed in doubles; overflows are the caller's concern for huge
  /// k — Theorem 4 normalizes by n^k which we expose via NormalizedMoment).
  double Moment(int k) const;

  /// F_k / n^k, computed stably as Σ_j (n_j/n)^k.
  double NormalizedMoment(int k) const;

  std::int64_t distinct_values() const {
    return static_cast<std::int64_t>(counts_.size());
  }
  std::int64_t size() const { return n_; }
  const std::vector<ValueCount>& counts() const { return counts_; }

 private:
  std::vector<ValueCount> counts_;
  std::int64_t n_ = 0;
};

}  // namespace aqua

#endif  // AQUA_ESTIMATE_FREQUENCY_MOMENTS_H_
