#include "estimate/quantiles.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqua {

QuantileEstimator::QuantileEstimator(std::span<const Value> sample)
    : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

Value QuantileEstimator::Quantile(double q) const {
  AQUA_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted_.empty()) return 0;
  const auto idx = static_cast<std::size_t>(std::min<double>(
      static_cast<double>(sorted_.size()) - 1.0,
      std::floor(q * static_cast<double>(sorted_.size()))));
  return sorted_[idx];
}

Estimate QuantileEstimator::QuantileWithBounds(double q,
                                               double confidence) const {
  Estimate est;
  est.confidence = confidence;
  est.sample_points = sample_size();
  if (sorted_.empty()) return est;
  const auto m = static_cast<double>(sorted_.size());
  const double z = SampleEstimator::NormalQuantile(confidence);
  const double half = z * std::sqrt(std::max(0.0, q * (1.0 - q) / m));
  est.value = static_cast<double>(Quantile(q));
  est.ci_low = static_cast<double>(Quantile(std::max(0.0, q - half)));
  est.ci_high = static_cast<double>(Quantile(std::min(1.0, q + half)));
  return est;
}

double QuantileEstimator::RankOf(Value value) const {
  if (sorted_.empty()) return 0.0;
  const auto below = std::upper_bound(sorted_.begin(), sorted_.end(), value) -
                     sorted_.begin();
  return static_cast<double>(below) / static_cast<double>(sorted_.size());
}

}  // namespace aqua
