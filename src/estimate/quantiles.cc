#include "estimate/quantiles.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqua {

QuantileEstimator::QuantileEstimator(std::span<const Value> sample)
    : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

Value QuantileEstimator::Quantile(double q) const {
  AQUA_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted_.empty()) return 0;
  return sorted_[internal_quantile::IndexFor(q, sorted_.size())];
}

Estimate QuantileEstimator::QuantileWithBounds(double q,
                                               double confidence) const {
  return internal_quantile::WithBounds(
      [this](double qq) { return Quantile(qq); }, sample_size(), q,
      confidence);
}

double QuantileEstimator::RankOf(Value value) const {
  if (sorted_.empty()) return 0.0;
  const auto below = std::upper_bound(sorted_.begin(), sorted_.end(), value) -
                     sorted_.begin();
  return static_cast<double>(below) / static_cast<double>(sorted_.size());
}

}  // namespace aqua
