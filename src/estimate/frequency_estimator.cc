#include "estimate/frequency_estimator.h"

#include <algorithm>
#include <cmath>

#include "hotlist/counting_hot_list.h"

namespace aqua {

Estimate FrequencyEstimator::FromConcise(const ConciseSample& sample,
                                         Value value, double confidence) {
  return FromConciseCounts(sample.CountOf(value), sample.SampleSize(),
                           sample.ObservedInserts(), confidence);
}

Estimate FrequencyEstimator::FromConciseCounts(Count count,
                                               std::int64_t sample_size,
                                               std::int64_t observed_inserts,
                                               double confidence) {
  Estimate est;
  est.confidence = confidence;
  est.sample_points = sample_size;
  const auto m = static_cast<double>(sample_size);
  if (m == 0) return est;
  const auto n = static_cast<double>(observed_inserts);
  const auto c = static_cast<double>(count);
  const double p = c / m;
  const double z = SampleEstimator::NormalQuantile(confidence);
  const double half = z * std::sqrt(std::max(0.0, p * (1.0 - p) / m)) * n;
  est.value = p * n;
  est.ci_low = std::max(0.0, est.value - half);
  est.ci_high = std::min(n, est.value + half);
  return est;
}

Estimate FrequencyEstimator::FromCounting(const CountingSample& sample,
                                          Value value, double confidence) {
  return FromCountingCounts(sample.CountOf(value), sample.Threshold(),
                            sample.CountedOccurrences(), confidence);
}

Estimate FrequencyEstimator::FromCountingCounts(
    Count count, double threshold, std::int64_t counted_occurrences,
    double confidence) {
  Estimate est;
  est.confidence = confidence;
  est.sample_points = counted_occurrences;
  const Count c = count;
  const double tau = threshold;
  const double c_hat = CountingHotList::Compensation(tau);
  // The pre-admission loss L = f_v - count satisfies
  // P(L >= γτ) <= (1 - 1/τ)^{γτ} <= e^{-γ}  (Theorem 6(iii) rearranged);
  // choose γ = ln(1/(1-confidence)) for the requested one-sided coverage.
  const double gamma = std::log(1.0 / (1.0 - confidence));
  if (c == 0) {
    // Absent: f_v is below γτ with the same coverage.
    est.value = 0.0;
    est.ci_low = 0.0;
    est.ci_high = gamma * tau;
    return est;
  }
  est.value = static_cast<double>(c) + c_hat;
  // count <= f_v always (insert-only); the upper side covers the loss.
  est.ci_low = static_cast<double>(c);
  est.ci_high = static_cast<double>(c) + gamma * tau;
  return est;
}

}  // namespace aqua
