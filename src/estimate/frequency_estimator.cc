#include "estimate/frequency_estimator.h"

#include <algorithm>
#include <cmath>

#include "hotlist/counting_hot_list.h"

namespace aqua {

Estimate FrequencyEstimator::FromConcise(const ConciseSample& sample,
                                         Value value, double confidence) {
  Estimate est;
  est.confidence = confidence;
  est.sample_points = sample.SampleSize();
  const auto m = static_cast<double>(sample.SampleSize());
  if (m == 0) return est;
  const auto n = static_cast<double>(sample.ObservedInserts());
  const auto c = static_cast<double>(sample.CountOf(value));
  const double p = c / m;
  const double z = SampleEstimator::NormalQuantile(confidence);
  const double half = z * std::sqrt(std::max(0.0, p * (1.0 - p) / m)) * n;
  est.value = p * n;
  est.ci_low = std::max(0.0, est.value - half);
  est.ci_high = std::min(n, est.value + half);
  return est;
}

Estimate FrequencyEstimator::FromCounting(const CountingSample& sample,
                                          Value value, double confidence) {
  Estimate est;
  est.confidence = confidence;
  est.sample_points = sample.CountedOccurrences();
  const Count c = sample.CountOf(value);
  const double tau = sample.Threshold();
  const double c_hat = CountingHotList::Compensation(tau);
  // The pre-admission loss L = f_v - count satisfies
  // P(L >= γτ) <= (1 - 1/τ)^{γτ} <= e^{-γ}  (Theorem 6(iii) rearranged);
  // choose γ = ln(1/(1-confidence)) for the requested one-sided coverage.
  const double gamma = std::log(1.0 / (1.0 - confidence));
  if (c == 0) {
    // Absent: f_v is below γτ with the same coverage.
    est.value = 0.0;
    est.ci_low = 0.0;
    est.ci_high = gamma * tau;
    return est;
  }
  est.value = static_cast<double>(c) + c_hat;
  // count <= f_v always (insert-only); the upper side covers the loss.
  est.ci_low = static_cast<double>(c);
  est.ci_high = static_cast<double>(c) + gamma * tau;
  return est;
}

}  // namespace aqua
