#include "estimate/aggregates.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqua {
namespace {

/// Inverse standard normal CDF (Acklam 2003); |error| < 1.15e-9, ample for
/// confidence intervals.
double Probit(double p) {
  AQUA_CHECK(p > 0.0 && p < 1.0);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

SampleEstimator::SampleEstimator(std::span<const Value> sample,
                                 std::int64_t relation_size)
    : sample_(sample), relation_size_(relation_size) {
  AQUA_CHECK_GE(relation_size, 0);
}

double SampleEstimator::NormalQuantile(double confidence) {
  AQUA_CHECK(confidence > 0.0 && confidence < 1.0);
  return Probit(0.5 + confidence / 2.0);
}

Estimate SampleEstimator::Selectivity(const ValuePredicate& pred,
                                      double confidence) const {
  std::int64_t hits = 0;
  for (Value v : sample_) {
    if (pred(v)) ++hits;
  }
  return SelectivityFromHits(hits, sample_size(), confidence);
}

Estimate SampleEstimator::SelectivityFromHits(std::int64_t hits,
                                              std::int64_t sample_size,
                                              double confidence) {
  Estimate est;
  est.confidence = confidence;
  est.sample_points = sample_size;
  if (sample_size == 0) return est;
  const auto m = static_cast<double>(sample_size);
  const double p = static_cast<double>(hits) / m;
  const double z = NormalQuantile(confidence);
  const double half = z * std::sqrt(std::max(0.0, p * (1.0 - p) / m));
  est.value = p;
  est.ci_low = std::max(0.0, p - half);
  est.ci_high = std::min(1.0, p + half);
  return est;
}

Estimate SampleEstimator::CountWhereFromHits(std::int64_t hits,
                                             std::int64_t sample_size,
                                             std::int64_t relation_size,
                                             double confidence) {
  Estimate est = SelectivityFromHits(hits, sample_size, confidence);
  const auto n = static_cast<double>(relation_size);
  est.value *= n;
  est.ci_low *= n;
  est.ci_high *= n;
  return est;
}

Estimate SampleEstimator::SelectivityHoeffding(const ValuePredicate& pred,
                                               double confidence) const {
  Estimate est = Selectivity(pred, confidence);
  if (sample_.empty()) return est;
  const auto m = static_cast<double>(sample_.size());
  // Hoeffding: P(|p̂ - p| >= t) <= 2 exp(-2 m t²); solve for t.
  const double t = std::sqrt(std::log(2.0 / (1.0 - confidence)) / (2.0 * m));
  est.ci_low = std::max(0.0, est.value - t);
  est.ci_high = std::min(1.0, est.value + t);
  return est;
}

Estimate SampleEstimator::CountWhere(const ValuePredicate& pred,
                                     double confidence) const {
  Estimate est = Selectivity(pred, confidence);
  const auto n = static_cast<double>(relation_size_);
  est.value *= n;
  est.ci_low *= n;
  est.ci_high *= n;
  return est;
}

Estimate SampleEstimator::Sum(double confidence) const {
  Estimate est = Average(confidence);
  const auto n = static_cast<double>(relation_size_);
  est.value *= n;
  est.ci_low *= n;
  est.ci_high *= n;
  // Scaling by n can flip the interval orientation only for n < 0, which
  // cannot happen; nothing further to fix up.
  return est;
}

Estimate SampleEstimator::Average(double confidence) const {
  Estimate est;
  est.confidence = confidence;
  est.sample_points = sample_size();
  if (sample_.empty()) return est;
  const auto m = static_cast<double>(sample_.size());
  double mean = 0.0;
  for (Value v : sample_) mean += static_cast<double>(v);
  mean /= m;
  double var = 0.0;
  for (Value v : sample_) {
    const double d = static_cast<double>(v) - mean;
    var += d * d;
  }
  var = m > 1 ? var / (m - 1.0) : 0.0;
  const double z = NormalQuantile(confidence);
  const double half = z * std::sqrt(var / m);
  est.value = mean;
  est.ci_low = mean - half;
  est.ci_high = mean + half;
  return est;
}

}  // namespace aqua
