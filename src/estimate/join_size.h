#ifndef AQUA_ESTIMATE_JOIN_SIZE_H_
#define AQUA_ESTIMATE_JOIN_SIZE_H_

#include <cstdint>

#include "core/concise_sample.h"
#include "core/counting_sample.h"

namespace aqua {

/// Direct join-size estimation |R ⋈_A S| = Σ_v f_R(v) · f_S(v) from the
/// paper's synopses (§1.2: hot lists "have been shown to be quite useful
/// for estimating predicate selectivities and join sizes [Ioa93, IC93,
/// IP95]" — because the skewed values dominate the sum).
///
/// The estimators split the sum into a head term over the values both
/// synopses track (estimated counts multiplied directly) and a tail term
/// that assumes the untracked mass joins uniformly over the given number
/// of untracked distinct values on each side.
class JoinSizeEstimator {
 public:
  /// From two counting samples (the most accurate per-value counts).
  /// `r_distinct` / `s_distinct` are (estimates of) each relation's total
  /// distinct-value counts — e.g. from estimate/distinct_estimators.h or a
  /// sketch.
  static double FromCounting(const CountingSample& r,
                             const CountingSample& s,
                             std::int64_t r_distinct,
                             std::int64_t s_distinct);

  /// From two concise samples (scaled counts).
  static double FromConcise(const ConciseSample& r, const ConciseSample& s,
                            std::int64_t r_distinct,
                            std::int64_t s_distinct);
};

}  // namespace aqua

#endif  // AQUA_ESTIMATE_JOIN_SIZE_H_
