#include "estimate/join_size.h"

#include <algorithm>

#include "container/flat_hash_map.h"
#include "estimate/frequency_estimator.h"
#include "hotlist/counting_hot_list.h"

namespace aqua {

namespace {

/// Shared skeleton: head = Σ over tracked values of est_r(v)·est_s(v);
/// tail = uniform-join of the untracked mass.
double EstimateJoin(const std::vector<ValueCount>& r_entries,
                double r_scale, double r_offset, double r_total,
                std::int64_t r_distinct,
                const std::vector<ValueCount>& s_entries, double s_scale,
                double s_offset, double s_total, std::int64_t s_distinct) {
  FlatHashMap<Value, Count> s_index;
  for (const ValueCount& e : s_entries) s_index.TryInsert(e.value, e.count);

  auto estimate_r = [&](Count c) {
    return static_cast<double>(c) * r_scale + r_offset;
  };
  auto estimate_s = [&](Count c) {
    return static_cast<double>(c) * s_scale + s_offset;
  };

  double join = 0.0;
  double r_head_mass = 0.0, s_head_mass = 0.0;
  std::int64_t r_head_distinct = 0, s_head_distinct = 0;

  for (const ValueCount& e : r_entries) {
    const double fr = estimate_r(e.count);
    r_head_mass += fr;
    ++r_head_distinct;
    const Count* sc = s_index.Find(e.value);
    if (sc != nullptr) join += fr * estimate_s(*sc);
  }
  for (const ValueCount& e : s_entries) {
    s_head_mass += estimate_s(e.count);
    ++s_head_distinct;
  }

  // Tail ⋈ tail: untracked mass joins uniformly over the untracked
  // distinct values shared between the relations.  (Head ⋈ tail terms are
  // deliberately dropped: a value tracked on one side but not the other is
  // light on the untracked side, so its contribution is second-order.)
  const double r_tail_mass = std::max(0.0, r_total - r_head_mass);
  const double s_tail_mass = std::max(0.0, s_total - s_head_mass);
  const auto r_tail_distinct =
      static_cast<double>(std::max<std::int64_t>(r_distinct - r_head_distinct, 0));
  const auto s_tail_distinct =
      static_cast<double>(std::max<std::int64_t>(s_distinct - s_head_distinct, 0));
  if (r_tail_distinct > 0 && s_tail_distinct > 0) {
    const double shared = std::min(r_tail_distinct, s_tail_distinct);
    join += shared * (r_tail_mass / r_tail_distinct) *
            (s_tail_mass / s_tail_distinct);
  }
  return join;
}

}  // namespace

double JoinSizeEstimator::FromCounting(const CountingSample& r,
                                       const CountingSample& s,
                                       std::int64_t r_distinct,
                                       std::int64_t s_distinct) {
  const double r_hat = CountingHotList::Compensation(r.Threshold());
  const double s_hat = CountingHotList::Compensation(s.Threshold());
  return EstimateJoin(r.Entries(), 1.0, r_hat,
                  static_cast<double>(r.ObservedInserts()), r_distinct,
                  s.Entries(), 1.0, s_hat,
                  static_cast<double>(s.ObservedInserts()), s_distinct);
}

double JoinSizeEstimator::FromConcise(const ConciseSample& r,
                                      const ConciseSample& s,
                                      std::int64_t r_distinct,
                                      std::int64_t s_distinct) {
  const double r_scale =
      r.SampleSize() > 0 ? static_cast<double>(r.ObservedInserts()) /
                               static_cast<double>(r.SampleSize())
                         : 0.0;
  const double s_scale =
      s.SampleSize() > 0 ? static_cast<double>(s.ObservedInserts()) /
                               static_cast<double>(s.SampleSize())
                         : 0.0;
  return EstimateJoin(r.Entries(), r_scale, 0.0,
                  static_cast<double>(r.ObservedInserts()), r_distinct,
                  s.Entries(), s_scale, 0.0,
                  static_cast<double>(s.ObservedInserts()), s_distinct);
}

}  // namespace aqua
