#ifndef AQUA_ESTIMATE_DISTINCT_ESTIMATORS_H_
#define AQUA_ESTIMATE_DISTINCT_ESTIMATORS_H_

#include <cstdint>
#include <span>

#include "common/types.h"
#include "core/value_count.h"

namespace aqua {

/// Sampling-based distinct-value estimation ([HNSS95] territory, cited in
/// §2) — and a natural fit for concise samples, whose representation
/// already exposes exactly the statistics these estimators need: the
/// number of sampled distinct values d, the singletons f₁ (count == 1) and
/// the doubletons f₂ (count == 2).
struct SampleDistinctStatistics {
  std::int64_t sample_size = 0;   // m (sample points)
  std::int64_t distinct = 0;      // d
  std::int64_t singletons = 0;    // f1
  std::int64_t doubletons = 0;    // f2

  /// Computed from concise-sample entries (or any <value,count> sample).
  static SampleDistinctStatistics FromEntries(
      std::span<const ValueCount> entries);
};

/// Estimators of the relation's distinct-value count D from a uniform
/// sample of m of its n tuples.
class DistinctEstimators {
 public:
  /// Naive scale-up d·(n/m): a (bad) baseline that assumes every value's
  /// sample frequency scales; wildly overestimates on skewed data.
  static double NaiveScale(const SampleDistinctStatistics& s,
                           std::int64_t relation_size);

  /// Chao (1984) lower-bound estimator: d + f1² / (2 f2).
  static double Chao84(const SampleDistinctStatistics& s);

  /// Chao & Lee (1992) coverage-based estimator:
  ///   Ĉ = 1 - f1/m (Good–Turing sample coverage),
  ///   D̂ = d/Ĉ + m(1-Ĉ)/Ĉ · γ̂²,
  /// with γ̂² the estimated squared coefficient of variation of the value
  /// frequencies — the family [HNSS95] builds its smoothed estimators on.
  static double ChaoLee(const SampleDistinctStatistics& s,
                        std::span<const ValueCount> entries);

  /// First-order jackknife: d + f1 · (m-1)/m.
  static double Jackknife1(const SampleDistinctStatistics& s);

  /// Guaranteed-error style sqrt-scaling: sqrt(n/m)·f1 + (d - f1).
  /// (Charikar et al.'s GEE, which post-dates the paper, included as the
  /// modern reference point; it is the minimax-optimal scaling of f1.)
  static double SqrtScale(const SampleDistinctStatistics& s,
                          std::int64_t relation_size);
};

}  // namespace aqua

#endif  // AQUA_ESTIMATE_DISTINCT_ESTIMATORS_H_
