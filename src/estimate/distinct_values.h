#ifndef AQUA_ESTIMATE_DISTINCT_VALUES_H_
#define AQUA_ESTIMATE_DISTINCT_VALUES_H_

#include <cstdint>

#include "estimate/frequency_moments.h"

namespace aqua {

/// Theorem 4 machinery: the expected number of distinct values in a uniform
/// random sample (with replacement) of size m from a data set, and hence
/// the expected sample-size gain of a concise sample.
///
/// Two algebraically equal forms:
///   stable:  E[X] = Σ_j (1 - (1 - p_j)^m)            (p_j = n_j / n)
///   moment:  E[X] = Σ_{k=1}^{m} (-1)^{k+1} C(m,k) F_k / n^k
/// The moment form is the paper's statement; it alternates with huge terms
/// and is numerically usable only for small m — the tests verify the two
/// agree there, and everything else uses the stable form.
class ExpectedDistinctValues {
 public:
  explicit ExpectedDistinctValues(const FrequencyMoments& moments)
      : moments_(&moments) {}

  /// E[#distinct values in a with-replacement sample of size m].
  double Stable(std::int64_t m) const;

  /// The Theorem 4 alternating-sum form; accurate only for small m
  /// (roughly m <= 40 in double precision).
  double MomentForm(std::int64_t m) const;

  /// Theorem 4's "expected gain": E[m - #distinct values in S] — the number
  /// of words a concise representation saves relative to a traditional
  /// sample of the same sample-size m, i.e.
  /// Σ_{k=2}^{m} (-1)^k C(m,k) F_k / n^k.
  double ExpectedGain(std::int64_t m) const { return
    static_cast<double>(m) - Stable(m); }

 private:
  const FrequencyMoments* moments_;
};

}  // namespace aqua

#endif  // AQUA_ESTIMATE_DISTINCT_VALUES_H_
