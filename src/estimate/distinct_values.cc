#include "estimate/distinct_values.h"

#include <cmath>

namespace aqua {

double ExpectedDistinctValues::Stable(std::int64_t m) const {
  const auto n = static_cast<double>(moments_->size());
  if (n == 0) return 0.0;
  double expected = 0.0;
  for (const ValueCount& vc : moments_->counts()) {
    const double p = static_cast<double>(vc.count) / n;
    expected += 1.0 - std::pow(1.0 - p, static_cast<double>(m));
  }
  return expected;
}

double ExpectedDistinctValues::MomentForm(std::int64_t m) const {
  // Σ_{k=1}^{m} (-1)^{k+1} C(m,k) F_k / n^k with C(m,k) built
  // incrementally: C(m,k) = C(m,k-1) (m-k+1)/k.
  double binom = 1.0;
  double total = 0.0;
  double sign = 1.0;
  for (std::int64_t k = 1; k <= m; ++k) {
    binom *= static_cast<double>(m - k + 1) / static_cast<double>(k);
    total += sign * binom * moments_->NormalizedMoment(static_cast<int>(k));
    sign = -sign;
  }
  return total;
}

}  // namespace aqua
