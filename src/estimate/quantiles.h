#ifndef AQUA_ESTIMATE_QUANTILES_H_
#define AQUA_ESTIMATE_QUANTILES_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "estimate/aggregates.h"

namespace aqua {

namespace internal_quantile {

/// The sorted-sample index answering the q-quantile over m points —
/// min(m - 1, floor(q·m)), the one place that rounding rule lives.
inline std::size_t IndexFor(double q, std::size_t m) {
  return static_cast<std::size_t>(
      std::min<double>(static_cast<double>(m) - 1.0,
                       std::floor(q * static_cast<double>(m))));
}

/// The interval arithmetic of QuantileEstimator::QuantileWithBounds over
/// any rank-lookup primitive: `value_at(q)` must return the sorted
/// sample's value at IndexFor(q, m).  Shared between the per-query sorting
/// estimator and frozen views (which look ranks up in O(log m) via count
/// prefix sums), so both paths produce bit-identical estimates.
template <typename LookupFn>
Estimate WithBounds(const LookupFn& value_at, std::int64_t m, double q,
                    double confidence) {
  Estimate est;
  est.confidence = confidence;
  est.sample_points = m;
  if (m == 0) return est;
  const auto md = static_cast<double>(m);
  const double z = SampleEstimator::NormalQuantile(confidence);
  const double half = z * std::sqrt(std::max(0.0, q * (1.0 - q) / md));
  est.value = static_cast<double>(value_at(q));
  est.ci_low = static_cast<double>(value_at(std::max(0.0, q - half)));
  est.ci_high = static_cast<double>(value_at(std::min(1.0, q + half)));
  return est;
}

}  // namespace internal_quantile

/// Sampling-based quantile estimation — one of §6's "other concrete
/// approximate answer scenarios" for concise samples: a uniform sample of
/// size m answers any quantile query with rank error O(sqrt(m)) whp, so a
/// concise sample's larger sample-size directly tightens quantile answers
/// for the same footprint (the same argument as for counts, §1.1).
class QuantileEstimator {
 public:
  /// `sample`: a uniform point sample (e.g. ConciseSample::ToPointSample());
  /// copied and sorted once, O(m log m).
  explicit QuantileEstimator(std::span<const Value> sample);

  /// Estimated q-quantile (0 <= q <= 1) of the relation's values.
  Value Quantile(double q) const;

  /// Median shorthand.
  Value Median() const { return Quantile(0.5); }

  /// Estimated q-quantile with a distribution-free confidence interval on
  /// the *value* obtained by inverting the binomial rank bounds: the true
  /// q-quantile lies between the sample's (q ± z·sqrt(q(1-q)/m))-quantiles
  /// with the given confidence.
  Estimate QuantileWithBounds(double q, double confidence = 0.95) const;

  /// Estimated rank (fraction of tuples <= value).
  double RankOf(Value value) const;

  std::int64_t sample_size() const {
    return static_cast<std::int64_t>(sorted_.size());
  }

 private:
  std::vector<Value> sorted_;
};

}  // namespace aqua

#endif  // AQUA_ESTIMATE_QUANTILES_H_
