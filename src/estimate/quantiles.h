#ifndef AQUA_ESTIMATE_QUANTILES_H_
#define AQUA_ESTIMATE_QUANTILES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "estimate/aggregates.h"

namespace aqua {

/// Sampling-based quantile estimation — one of §6's "other concrete
/// approximate answer scenarios" for concise samples: a uniform sample of
/// size m answers any quantile query with rank error O(sqrt(m)) whp, so a
/// concise sample's larger sample-size directly tightens quantile answers
/// for the same footprint (the same argument as for counts, §1.1).
class QuantileEstimator {
 public:
  /// `sample`: a uniform point sample (e.g. ConciseSample::ToPointSample());
  /// copied and sorted once, O(m log m).
  explicit QuantileEstimator(std::span<const Value> sample);

  /// Estimated q-quantile (0 <= q <= 1) of the relation's values.
  Value Quantile(double q) const;

  /// Median shorthand.
  Value Median() const { return Quantile(0.5); }

  /// Estimated q-quantile with a distribution-free confidence interval on
  /// the *value* obtained by inverting the binomial rank bounds: the true
  /// q-quantile lies between the sample's (q ± z·sqrt(q(1-q)/m))-quantiles
  /// with the given confidence.
  Estimate QuantileWithBounds(double q, double confidence = 0.95) const;

  /// Estimated rank (fraction of tuples <= value).
  double RankOf(Value value) const;

  std::int64_t sample_size() const {
    return static_cast<std::int64_t>(sorted_.size());
  }

 private:
  std::vector<Value> sorted_;
};

}  // namespace aqua

#endif  // AQUA_ESTIMATE_QUANTILES_H_
