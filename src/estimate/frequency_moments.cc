#include "estimate/frequency_moments.h"

#include <cmath>

#include "container/flat_hash_map.h"

namespace aqua {

FrequencyMoments FrequencyMoments::FromData(std::span<const Value> data) {
  FlatHashMap<Value, Count> table;
  for (Value v : data) ++table[v];
  std::vector<ValueCount> counts;
  counts.reserve(table.size());
  for (const auto& entry : table) {
    counts.push_back(ValueCount{entry.key, entry.value});
  }
  return FromCounts(std::move(counts));
}

FrequencyMoments FrequencyMoments::FromCounts(
    std::vector<ValueCount> counts) {
  FrequencyMoments fm;
  fm.counts_ = std::move(counts);
  for (const ValueCount& vc : fm.counts_) fm.n_ += vc.count;
  return fm;
}

double FrequencyMoments::Moment(int k) const {
  double total = 0.0;
  for (const ValueCount& vc : counts_) {
    total += std::pow(static_cast<double>(vc.count), k);
  }
  return total;
}

double FrequencyMoments::NormalizedMoment(int k) const {
  if (n_ == 0) return 0.0;
  double total = 0.0;
  for (const ValueCount& vc : counts_) {
    total += std::pow(
        static_cast<double>(vc.count) / static_cast<double>(n_), k);
  }
  return total;
}

}  // namespace aqua
