#ifndef AQUA_ESTIMATE_AGGREGATES_H_
#define AQUA_ESTIMATE_AGGREGATES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <span>

#include "common/types.h"

namespace aqua {

/// An approximate numeric answer with its accuracy measure — "an
/// approximate answer and an accuracy measure (e.g., a 95% confidence
/// interval for numerical answers)" (§1).
struct Estimate {
  double value = 0.0;
  double ci_low = 0.0;
  double ci_high = 0.0;
  /// Confidence level of [ci_low, ci_high], e.g. 0.95.
  double confidence = 0.95;
  /// Number of sample points the estimate was computed from.
  std::int64_t sample_points = 0;

  bool Contains(double x) const { return x >= ci_low && x <= ci_high; }
  double HalfWidth() const { return (ci_high - ci_low) / 2.0; }
};

/// Predicate over attribute values.
using ValuePredicate = std::function<bool(Value)>;

/// An inclusive value interval [low, high] — the structured form of the
/// most common predicate shape.  Passing a range (instead of an opaque
/// ValuePredicate) lets value-ordered answer structures (FrozenView) count
/// it in O(log m) via prefix sums; AsPredicate() is the exact fallback for
/// scan-based paths, so both produce identical hit counts.
struct ValueRange {
  Value low = std::numeric_limits<Value>::min();
  Value high = std::numeric_limits<Value>::max();

  bool Contains(Value v) const { return v >= low && v <= high; }
  ValuePredicate AsPredicate() const {
    const Value lo = low;
    const Value hi = high;
    return [lo, hi](Value v) { return v >= lo && v <= hi; };
  }
};

/// Sampling-based estimators over a uniform point sample of a relation of
/// size n.  Concise samples plug in via ConciseSample::ToPointSample() and
/// deliver strictly tighter intervals than a traditional sample of the same
/// footprint, because their sample-size is larger (§1.1: "since both
/// concise and counting samples provide more sample points for the same
/// footprint, they provide more accurate estimations").
class SampleEstimator {
 public:
  /// `sample` is a uniform random sample of the relation's attribute
  /// values; `relation_size` = n.  The span must outlive the estimator.
  SampleEstimator(std::span<const Value> sample, std::int64_t relation_size);

  /// Fraction of tuples satisfying `pred`, with a normal-approximation
  /// confidence interval (clamped to [0,1]).
  Estimate Selectivity(const ValuePredicate& pred,
                       double confidence = 0.95) const;

  /// Like Selectivity but with the distribution-free Hoeffding interval.
  Estimate SelectivityHoeffding(const ValuePredicate& pred,
                                double confidence = 0.95) const;

  /// COUNT(*) WHERE pred — selectivity scaled by n.
  Estimate CountWhere(const ValuePredicate& pred,
                      double confidence = 0.95) const;

  /// The arithmetic core of Selectivity once the hit count is known —
  /// shared with answer structures that derive `hits` without scanning
  /// points (FrozenView's prefix sums), so both paths produce bit-identical
  /// estimates.
  static Estimate SelectivityFromHits(std::int64_t hits,
                                      std::int64_t sample_size,
                                      double confidence);

  /// CountWhere's core: SelectivityFromHits scaled to a relation of size n.
  static Estimate CountWhereFromHits(std::int64_t hits,
                                     std::int64_t sample_size,
                                     std::int64_t relation_size,
                                     double confidence);

  /// SUM(value) over all tuples, via the sample mean scaled by n, with a
  /// CLT interval from the sample standard deviation.
  Estimate Sum(double confidence = 0.95) const;

  /// AVG(value) over all tuples.
  Estimate Average(double confidence = 0.95) const;

  std::int64_t sample_size() const {
    return static_cast<std::int64_t>(sample_.size());
  }

  /// Two-sided standard-normal quantile for the given confidence, e.g.
  /// 1.96 for 0.95 (Acklam's rational approximation of the probit).
  static double NormalQuantile(double confidence);

 private:
  std::span<const Value> sample_;
  std::int64_t relation_size_;
};

}  // namespace aqua

#endif  // AQUA_ESTIMATE_AGGREGATES_H_
