file(REMOVE_RECURSE
  "CMakeFiles/theorem4.dir/theorem4.cc.o"
  "CMakeFiles/theorem4.dir/theorem4.cc.o.d"
  "theorem4"
  "theorem4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
