# Empty compiler generated dependencies file for theorem4.
# This may be replaced when dependencies are built.
