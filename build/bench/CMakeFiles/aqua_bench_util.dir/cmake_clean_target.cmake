file(REMOVE_RECURSE
  "../lib/libaqua_bench_util.a"
)
