file(REMOVE_RECURSE
  "../lib/libaqua_bench_util.a"
  "../lib/libaqua_bench_util.pdb"
  "CMakeFiles/aqua_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/aqua_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
