# Empty dependencies file for response_time.
# This may be replaced when dependencies are built.
