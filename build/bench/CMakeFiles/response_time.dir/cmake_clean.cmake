file(REMOVE_RECURSE
  "CMakeFiles/response_time.dir/response_time.cc.o"
  "CMakeFiles/response_time.dir/response_time.cc.o.d"
  "response_time"
  "response_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
