file(REMOVE_RECURSE
  "CMakeFiles/update_micro.dir/update_micro.cc.o"
  "CMakeFiles/update_micro.dir/update_micro.cc.o.d"
  "update_micro"
  "update_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
