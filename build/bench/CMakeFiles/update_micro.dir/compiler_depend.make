# Empty compiler generated dependencies file for update_micro.
# This may be replaced when dependencies are built.
