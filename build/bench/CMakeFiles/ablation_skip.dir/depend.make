# Empty dependencies file for ablation_skip.
# This may be replaced when dependencies are built.
