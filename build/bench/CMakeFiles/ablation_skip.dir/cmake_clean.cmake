file(REMOVE_RECURSE
  "CMakeFiles/ablation_skip.dir/ablation_skip.cc.o"
  "CMakeFiles/ablation_skip.dir/ablation_skip.cc.o.d"
  "ablation_skip"
  "ablation_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
