# Empty compiler generated dependencies file for figure3.
# This may be replaced when dependencies are built.
