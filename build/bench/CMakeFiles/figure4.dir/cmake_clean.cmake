file(REMOVE_RECURSE
  "CMakeFiles/figure4.dir/figure4.cc.o"
  "CMakeFiles/figure4.dir/figure4.cc.o.d"
  "figure4"
  "figure4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
