# Empty dependencies file for figure4.
# This may be replaced when dependencies are built.
