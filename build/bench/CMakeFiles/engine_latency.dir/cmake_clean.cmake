file(REMOVE_RECURSE
  "CMakeFiles/engine_latency.dir/engine_latency.cc.o"
  "CMakeFiles/engine_latency.dir/engine_latency.cc.o.d"
  "engine_latency"
  "engine_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
