# Empty compiler generated dependencies file for engine_latency.
# This may be replaced when dependencies are built.
