# Empty dependencies file for theorem3.
# This may be replaced when dependencies are built.
