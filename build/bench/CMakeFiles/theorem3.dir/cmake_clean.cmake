file(REMOVE_RECURSE
  "CMakeFiles/theorem3.dir/theorem3.cc.o"
  "CMakeFiles/theorem3.dir/theorem3.cc.o.d"
  "theorem3"
  "theorem3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
