# Empty dependencies file for deletions.
# This may be replaced when dependencies are built.
