# Empty compiler generated dependencies file for deletions.
# This may be replaced when dependencies are built.
