file(REMOVE_RECURSE
  "CMakeFiles/deletions.dir/deletions.cc.o"
  "CMakeFiles/deletions.dir/deletions.cc.o.d"
  "deletions"
  "deletions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deletions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
