# Empty dependencies file for figure5.
# This may be replaced when dependencies are built.
