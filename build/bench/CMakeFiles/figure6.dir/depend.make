# Empty dependencies file for figure6.
# This may be replaced when dependencies are built.
