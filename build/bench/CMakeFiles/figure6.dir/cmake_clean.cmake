file(REMOVE_RECURSE
  "CMakeFiles/figure6.dir/figure6.cc.o"
  "CMakeFiles/figure6.dir/figure6.cc.o.d"
  "figure6"
  "figure6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
