# Empty dependencies file for v_optimal_histogram_test.
# This may be replaced when dependencies are built.
