file(REMOVE_RECURSE
  "CMakeFiles/v_optimal_histogram_test.dir/histogram/v_optimal_histogram_test.cc.o"
  "CMakeFiles/v_optimal_histogram_test.dir/histogram/v_optimal_histogram_test.cc.o.d"
  "v_optimal_histogram_test"
  "v_optimal_histogram_test.pdb"
  "v_optimal_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v_optimal_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
