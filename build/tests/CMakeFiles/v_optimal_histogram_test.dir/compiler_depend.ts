# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for v_optimal_histogram_test.
