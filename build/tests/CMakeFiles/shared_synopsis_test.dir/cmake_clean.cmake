file(REMOVE_RECURSE
  "CMakeFiles/shared_synopsis_test.dir/concurrency/shared_synopsis_test.cc.o"
  "CMakeFiles/shared_synopsis_test.dir/concurrency/shared_synopsis_test.cc.o.d"
  "shared_synopsis_test"
  "shared_synopsis_test.pdb"
  "shared_synopsis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_synopsis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
