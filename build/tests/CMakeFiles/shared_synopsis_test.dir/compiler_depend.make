# Empty compiler generated dependencies file for shared_synopsis_test.
# This may be replaced when dependencies are built.
