file(REMOVE_RECURSE
  "CMakeFiles/counting_inclusion_property_test.dir/property/counting_inclusion_property_test.cc.o"
  "CMakeFiles/counting_inclusion_property_test.dir/property/counting_inclusion_property_test.cc.o.d"
  "counting_inclusion_property_test"
  "counting_inclusion_property_test.pdb"
  "counting_inclusion_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_inclusion_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
