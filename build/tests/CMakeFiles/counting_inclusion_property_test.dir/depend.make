# Empty dependencies file for counting_inclusion_property_test.
# This may be replaced when dependencies are built.
