# Empty dependencies file for frequency_moments_test.
# This may be replaced when dependencies are built.
