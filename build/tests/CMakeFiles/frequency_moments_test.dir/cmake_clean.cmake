file(REMOVE_RECURSE
  "CMakeFiles/frequency_moments_test.dir/estimate/frequency_moments_test.cc.o"
  "CMakeFiles/frequency_moments_test.dir/estimate/frequency_moments_test.cc.o.d"
  "frequency_moments_test"
  "frequency_moments_test.pdb"
  "frequency_moments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_moments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
