# Empty compiler generated dependencies file for concise_uniformity_property_test.
# This may be replaced when dependencies are built.
