file(REMOVE_RECURSE
  "CMakeFiles/concise_uniformity_property_test.dir/property/concise_uniformity_property_test.cc.o"
  "CMakeFiles/concise_uniformity_property_test.dir/property/concise_uniformity_property_test.cc.o.d"
  "concise_uniformity_property_test"
  "concise_uniformity_property_test.pdb"
  "concise_uniformity_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concise_uniformity_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
