# Empty dependencies file for distinct_estimators_test.
# This may be replaced when dependencies are built.
