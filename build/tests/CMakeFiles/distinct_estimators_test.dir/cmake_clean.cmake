file(REMOVE_RECURSE
  "CMakeFiles/distinct_estimators_test.dir/estimate/distinct_estimators_test.cc.o"
  "CMakeFiles/distinct_estimators_test.dir/estimate/distinct_estimators_test.cc.o.d"
  "distinct_estimators_test"
  "distinct_estimators_test.pdb"
  "distinct_estimators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_estimators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
