# Empty dependencies file for compressed_histogram_test.
# This may be replaced when dependencies are built.
