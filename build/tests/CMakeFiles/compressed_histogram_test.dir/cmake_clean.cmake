file(REMOVE_RECURSE
  "CMakeFiles/compressed_histogram_test.dir/histogram/compressed_histogram_test.cc.o"
  "CMakeFiles/compressed_histogram_test.dir/histogram/compressed_histogram_test.cc.o.d"
  "compressed_histogram_test"
  "compressed_histogram_test.pdb"
  "compressed_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
