# Empty compiler generated dependencies file for backing_sample_test.
# This may be replaced when dependencies are built.
