file(REMOVE_RECURSE
  "CMakeFiles/backing_sample_test.dir/sample/backing_sample_test.cc.o"
  "CMakeFiles/backing_sample_test.dir/sample/backing_sample_test.cc.o.d"
  "backing_sample_test"
  "backing_sample_test.pdb"
  "backing_sample_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backing_sample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
