# Empty dependencies file for theorem7_property_test.
# This may be replaced when dependencies are built.
