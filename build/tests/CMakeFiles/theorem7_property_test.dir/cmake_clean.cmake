file(REMOVE_RECURSE
  "CMakeFiles/theorem7_property_test.dir/property/theorem7_property_test.cc.o"
  "CMakeFiles/theorem7_property_test.dir/property/theorem7_property_test.cc.o.d"
  "theorem7_property_test"
  "theorem7_property_test.pdb"
  "theorem7_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem7_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
