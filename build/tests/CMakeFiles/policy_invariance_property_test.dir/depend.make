# Empty dependencies file for policy_invariance_property_test.
# This may be replaced when dependencies are built.
