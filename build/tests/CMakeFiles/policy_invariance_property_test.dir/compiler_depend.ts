# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for policy_invariance_property_test.
