file(REMOVE_RECURSE
  "CMakeFiles/policy_invariance_property_test.dir/property/policy_invariance_property_test.cc.o"
  "CMakeFiles/policy_invariance_property_test.dir/property/policy_invariance_property_test.cc.o.d"
  "policy_invariance_property_test"
  "policy_invariance_property_test.pdb"
  "policy_invariance_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_invariance_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
