file(REMOVE_RECURSE
  "CMakeFiles/skip_sampler_test.dir/random/skip_sampler_test.cc.o"
  "CMakeFiles/skip_sampler_test.dir/random/skip_sampler_test.cc.o.d"
  "skip_sampler_test"
  "skip_sampler_test.pdb"
  "skip_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skip_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
