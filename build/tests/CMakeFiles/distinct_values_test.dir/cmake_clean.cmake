file(REMOVE_RECURSE
  "CMakeFiles/distinct_values_test.dir/estimate/distinct_values_test.cc.o"
  "CMakeFiles/distinct_values_test.dir/estimate/distinct_values_test.cc.o.d"
  "distinct_values_test"
  "distinct_values_test.pdb"
  "distinct_values_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_values_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
