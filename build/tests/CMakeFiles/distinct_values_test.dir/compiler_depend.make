# Empty compiler generated dependencies file for distinct_values_test.
# This may be replaced when dependencies are built.
