file(REMOVE_RECURSE
  "CMakeFiles/maintained_hot_list_test.dir/hotlist/maintained_hot_list_test.cc.o"
  "CMakeFiles/maintained_hot_list_test.dir/hotlist/maintained_hot_list_test.cc.o.d"
  "maintained_hot_list_test"
  "maintained_hot_list_test.pdb"
  "maintained_hot_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintained_hot_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
