# Empty dependencies file for maintained_hot_list_test.
# This may be replaced when dependencies are built.
