# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for maintained_hot_list_test.
