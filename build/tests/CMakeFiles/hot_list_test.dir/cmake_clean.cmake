file(REMOVE_RECURSE
  "CMakeFiles/hot_list_test.dir/hotlist/hot_list_test.cc.o"
  "CMakeFiles/hot_list_test.dir/hotlist/hot_list_test.cc.o.d"
  "hot_list_test"
  "hot_list_test.pdb"
  "hot_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
