# Empty compiler generated dependencies file for hot_list_test.
# This may be replaced when dependencies are built.
