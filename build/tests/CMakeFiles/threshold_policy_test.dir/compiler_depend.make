# Empty compiler generated dependencies file for threshold_policy_test.
# This may be replaced when dependencies are built.
