file(REMOVE_RECURSE
  "CMakeFiles/threshold_policy_test.dir/core/threshold_policy_test.cc.o"
  "CMakeFiles/threshold_policy_test.dir/core/threshold_policy_test.cc.o.d"
  "threshold_policy_test"
  "threshold_policy_test.pdb"
  "threshold_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
