file(REMOVE_RECURSE
  "CMakeFiles/hotlist_accuracy_test.dir/metrics/hotlist_accuracy_test.cc.o"
  "CMakeFiles/hotlist_accuracy_test.dir/metrics/hotlist_accuracy_test.cc.o.d"
  "hotlist_accuracy_test"
  "hotlist_accuracy_test.pdb"
  "hotlist_accuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlist_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
