# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hotlist_accuracy_test.
