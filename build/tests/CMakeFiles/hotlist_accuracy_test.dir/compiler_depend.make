# Empty compiler generated dependencies file for hotlist_accuracy_test.
# This may be replaced when dependencies are built.
