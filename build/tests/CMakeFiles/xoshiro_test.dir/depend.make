# Empty dependencies file for xoshiro_test.
# This may be replaced when dependencies are built.
