file(REMOVE_RECURSE
  "CMakeFiles/xoshiro_test.dir/random/xoshiro_test.cc.o"
  "CMakeFiles/xoshiro_test.dir/random/xoshiro_test.cc.o.d"
  "xoshiro_test"
  "xoshiro_test.pdb"
  "xoshiro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xoshiro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
