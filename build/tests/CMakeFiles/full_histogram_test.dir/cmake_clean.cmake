file(REMOVE_RECURSE
  "CMakeFiles/full_histogram_test.dir/warehouse/full_histogram_test.cc.o"
  "CMakeFiles/full_histogram_test.dir/warehouse/full_histogram_test.cc.o.d"
  "full_histogram_test"
  "full_histogram_test.pdb"
  "full_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
