
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/warehouse/full_histogram_test.cc" "tests/CMakeFiles/full_histogram_test.dir/warehouse/full_histogram_test.cc.o" "gcc" "tests/CMakeFiles/full_histogram_test.dir/warehouse/full_histogram_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/histogram/CMakeFiles/aqua_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/aqua_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/aqua_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/aqua_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/aqua_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/hotlist/CMakeFiles/aqua_hotlist.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/aqua_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aqua_core.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/aqua_container.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/aqua_sample.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/aqua_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/aqua_random.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/aqua_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
