# Empty dependencies file for full_histogram_test.
# This may be replaced when dependencies are built.
