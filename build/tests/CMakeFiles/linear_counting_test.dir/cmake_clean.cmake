file(REMOVE_RECURSE
  "CMakeFiles/linear_counting_test.dir/sketch/linear_counting_test.cc.o"
  "CMakeFiles/linear_counting_test.dir/sketch/linear_counting_test.cc.o.d"
  "linear_counting_test"
  "linear_counting_test.pdb"
  "linear_counting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
