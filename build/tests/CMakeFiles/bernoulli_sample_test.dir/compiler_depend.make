# Empty compiler generated dependencies file for bernoulli_sample_test.
# This may be replaced when dependencies are built.
