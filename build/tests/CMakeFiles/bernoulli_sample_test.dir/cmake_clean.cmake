file(REMOVE_RECURSE
  "CMakeFiles/bernoulli_sample_test.dir/sample/bernoulli_sample_test.cc.o"
  "CMakeFiles/bernoulli_sample_test.dir/sample/bernoulli_sample_test.cc.o.d"
  "bernoulli_sample_test"
  "bernoulli_sample_test.pdb"
  "bernoulli_sample_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bernoulli_sample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
