# Empty compiler generated dependencies file for high_biased_histogram_test.
# This may be replaced when dependencies are built.
