file(REMOVE_RECURSE
  "CMakeFiles/high_biased_histogram_test.dir/histogram/high_biased_histogram_test.cc.o"
  "CMakeFiles/high_biased_histogram_test.dir/histogram/high_biased_histogram_test.cc.o.d"
  "high_biased_histogram_test"
  "high_biased_histogram_test.pdb"
  "high_biased_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/high_biased_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
