file(REMOVE_RECURSE
  "CMakeFiles/concise_sample_builder_test.dir/core/concise_sample_builder_test.cc.o"
  "CMakeFiles/concise_sample_builder_test.dir/core/concise_sample_builder_test.cc.o.d"
  "concise_sample_builder_test"
  "concise_sample_builder_test.pdb"
  "concise_sample_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concise_sample_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
