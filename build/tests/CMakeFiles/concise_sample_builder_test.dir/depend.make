# Empty dependencies file for concise_sample_builder_test.
# This may be replaced when dependencies are built.
