file(REMOVE_RECURSE
  "CMakeFiles/incremental_equi_depth_test.dir/histogram/incremental_equi_depth_test.cc.o"
  "CMakeFiles/incremental_equi_depth_test.dir/histogram/incremental_equi_depth_test.cc.o.d"
  "incremental_equi_depth_test"
  "incremental_equi_depth_test.pdb"
  "incremental_equi_depth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_equi_depth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
