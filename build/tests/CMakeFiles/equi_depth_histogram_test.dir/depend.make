# Empty dependencies file for equi_depth_histogram_test.
# This may be replaced when dependencies are built.
