# Empty compiler generated dependencies file for concise_sample_test.
# This may be replaced when dependencies are built.
