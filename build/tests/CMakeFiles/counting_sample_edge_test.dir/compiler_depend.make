# Empty compiler generated dependencies file for counting_sample_edge_test.
# This may be replaced when dependencies are built.
