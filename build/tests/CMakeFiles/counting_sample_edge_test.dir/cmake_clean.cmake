file(REMOVE_RECURSE
  "CMakeFiles/counting_sample_edge_test.dir/core/counting_sample_edge_test.cc.o"
  "CMakeFiles/counting_sample_edge_test.dir/core/counting_sample_edge_test.cc.o.d"
  "counting_sample_edge_test"
  "counting_sample_edge_test.pdb"
  "counting_sample_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_sample_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
