# Empty dependencies file for join_size_test.
# This may be replaced when dependencies are built.
