file(REMOVE_RECURSE
  "CMakeFiles/join_size_test.dir/estimate/join_size_test.cc.o"
  "CMakeFiles/join_size_test.dir/estimate/join_size_test.cc.o.d"
  "join_size_test"
  "join_size_test.pdb"
  "join_size_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_size_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
