file(REMOVE_RECURSE
  "CMakeFiles/morris_counter_test.dir/sketch/morris_counter_test.cc.o"
  "CMakeFiles/morris_counter_test.dir/sketch/morris_counter_test.cc.o.d"
  "morris_counter_test"
  "morris_counter_test.pdb"
  "morris_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morris_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
