# Empty compiler generated dependencies file for morris_counter_test.
# This may be replaced when dependencies are built.
